"""Distributions, parameter spaces and corner presets."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.variability.params import (
    CORNERS,
    Choice,
    Fixed,
    Normal,
    ParameterSpace,
    Uniform,
    chirality_device_space,
    corner_sample,
    default_device_space,
    inverse_normal_cdf,
)


class TestInverseNormal:
    def test_known_quantiles(self):
        # Reference values of the standard normal quantile function.
        assert inverse_normal_cdf(0.5) == pytest.approx(0.0, abs=1e-9)
        assert inverse_normal_cdf(0.975) == pytest.approx(1.959964, abs=1e-5)
        assert inverse_normal_cdf(0.025) == pytest.approx(-1.959964,
                                                          abs=1e-5)
        assert inverse_normal_cdf(0.8413447) == pytest.approx(1.0, abs=1e-4)

    def test_symmetry(self):
        u = np.linspace(0.01, 0.99, 25)
        z = inverse_normal_cdf(u)
        assert np.allclose(z, -inverse_normal_cdf(1.0 - u), atol=1e-8)

    def test_tail_branches(self):
        # Acklam's approximation switches branches at p = 0.02425.
        assert inverse_normal_cdf(1e-6) == pytest.approx(-4.753424, abs=1e-4)
        assert inverse_normal_cdf(1 - 1e-6) == pytest.approx(4.753424,
                                                             abs=1e-4)

    def test_domain(self):
        with pytest.raises(ParameterError):
            inverse_normal_cdf(0.0)
        with pytest.raises(ParameterError):
            inverse_normal_cdf(np.array([0.5, 1.0]))


class TestDistributions:
    def test_normal_ppf_and_clip(self):
        d = Normal(1.0, 0.1, low=0.9, high=1.1)
        u = np.linspace(0.001, 0.999, 101)
        x = d.ppf(u)
        assert np.all((x >= 0.9) & (x <= 1.1))
        assert d.ppf(np.array([0.5]))[0] == pytest.approx(1.0, abs=1e-9)
        assert d.nominal() == 1.0
        assert d.at_sigma(1.0) == pytest.approx(1.1)   # clipped at high
        assert d.at_sigma(-0.5) == pytest.approx(0.95)

    def test_zero_sigma_normal_is_constant(self):
        d = Normal(2.0, 0.0)
        assert np.all(d.ppf(np.array([0.1, 0.9])) == 2.0)

    def test_uniform(self):
        d = Uniform(1.0, 3.0)
        assert d.ppf(np.array([0.0, 0.5, 1.0])) == pytest.approx(
            [1.0, 2.0, 3.0])
        assert d.nominal() == 2.0
        with pytest.raises(ParameterError):
            Uniform(3.0, 1.0)

    def test_fixed(self):
        d = Fixed(3.9)
        assert np.all(d.ppf(np.zeros(4)) == 3.9)
        assert d.at_sigma(5.0) == 3.9

    def test_choice_weights_and_sigma_steps(self):
        d = Choice(((10, 0), (13, 0), (16, 0)), weights=(0.2, 0.6, 0.2))
        assert d.nominal() == (13, 0)
        assert d.at_sigma(+1.0) == (16, 0)
        assert d.at_sigma(-1.0) == (10, 0)
        assert d.at_sigma(-5.0) == (10, 0)   # clipped to the ends
        values = d.ppf(np.array([0.05, 0.5, 0.95]))
        assert list(values) == [(10, 0), (13, 0), (16, 0)]

    def test_choice_ppf_2d(self):
        d = Choice(((10, 0), (13, 0), (17, 0)))
        out = d.ppf(np.array([[0.1, 0.9], [0.5, 0.2]]))
        assert out.shape == (2, 2)
        assert out[0, 0] == (10, 0)
        assert out[0, 1] == (17, 0)

    def test_choice_validation(self):
        with pytest.raises(ParameterError):
            Choice((), None)
        with pytest.raises(ParameterError):
            Choice(((13, 0),), weights=(0.2, 0.8))


class TestParameterSpace:
    def test_rejects_unknown_knob(self):
        with pytest.raises(ParameterError):
            ParameterSpace.from_dict({"threshold_v": Fixed(0.3)})

    def test_to_parameters_chirality_override(self):
        space = chirality_device_space()
        params = space.to_parameters({"chirality": (14, 0),
                                      "tox_nm": 1.4,
                                      "fermi_level_ev": -0.3})
        assert params.chirality == (14, 0)
        assert params.resolve_chirality().n == 14
        assert params.tox_nm == 1.4

    def test_materialize_shape_check(self):
        space = default_device_space()
        with pytest.raises(ParameterError):
            space.materialize(np.zeros((4, space.dims + 1)))

    def test_describe_is_jsonable_and_ordered(self):
        import json

        desc = default_device_space().describe()
        names = [k["name"] for k in desc["knobs"]]
        assert names == ["diameter_nm", "tox_nm", "kappa",
                         "fermi_level_ev", "temperature_k"]
        json.dumps(desc)


class TestCorners:
    def test_tt_is_nominal(self):
        space = default_device_space()
        tt = corner_sample(space, "TT")
        assert tt["diameter_nm"] == pytest.approx(1.0)
        assert tt["tox_nm"] == pytest.approx(1.5)
        assert tt["fermi_level_ev"] == pytest.approx(-0.32)

    def test_fast_and_slow_move_in_drive_direction(self):
        """FF increases Ion-favourable knobs, SS decreases them (thinner
        oxide is faster, hence the inverted t_ox ordering)."""
        space = default_device_space()
        tt, ff, ss = (corner_sample(space, c) for c in ("TT", "FF", "SS"))
        assert ss["diameter_nm"] < tt["diameter_nm"] < ff["diameter_nm"]
        assert ff["tox_nm"] < tt["tox_nm"] < ss["tox_nm"]
        assert ss["fermi_level_ev"] < tt["fermi_level_ev"] \
            < ff["fermi_level_ev"]

    def test_corner_ion_ordering(self):
        """The presets actually order the drive current FF > TT > SS."""
        from repro.pwl.device import CNFET

        space = default_device_space()
        ion = {}
        for corner in CORNERS:
            params = space.to_parameters(corner_sample(space, corner))
            ion[corner] = CNFET(params).ids(0.6, 0.6)
        assert ion["FF"] > ion["TT"] > ion["SS"]

    def test_unknown_corner(self):
        with pytest.raises(ParameterError):
            corner_sample(default_device_space(), "FS")
