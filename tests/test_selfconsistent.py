"""Closed-form VSC solver vs the reference Newton solver.

The central correctness property of the paper: solving the piecewise
equation in closed form must agree with iterating the *same* piecewise
equation numerically — and with the full theory to within the fit error.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.pwl.model2 import build_model2
from repro.pwl.selfconsistent import ClosedFormSolver
from repro.reference.solver import brent


@pytest.fixture(scope="module")
def solver(ref300):
    fitted = build_model2(ref300.charge, optimize_boundaries=True)
    return ClosedFormSolver(fitted.curve, ref300.capacitances)


class TestResidual:
    def test_residual_zero_at_solution(self, solver):
        vsc = solver.solve(0.5, 0.4)
        assert abs(solver.residual(vsc, 0.5, 0.4)) < 1e-10

    def test_residual_monotone(self, solver):
        v = np.linspace(-0.8, 0.2, 60)
        g = [solver.residual(x, 0.5, 0.4) for x in v]
        assert all(b >= a - 1e-12 for a, b in zip(g, g[1:]))


class TestClosedFormAgainstBrent:
    @settings(max_examples=60, deadline=None)
    @given(st.floats(min_value=0.0, max_value=0.8),
           st.floats(min_value=0.0, max_value=0.8))
    def test_matches_numerical_root_of_same_equation(self, solver, vg, vd):
        """Property: closed form == Brent on the identical residual."""
        closed = solver.solve(vg, vd)
        root, _ = brent(lambda v: solver.residual(v, vg, vd),
                        closed - 0.5, closed + 0.5)
        assert closed == pytest.approx(root, abs=1e-8)

    def test_zero_bias(self, solver):
        assert solver.solve(0.0, 0.0) == pytest.approx(0.0, abs=1e-6)

    def test_negative_gate_lands_in_tail_region(self, solver):
        """Strong negative gate: both charges sit in the constant tail,
        where the equation is exactly linear."""
        vsc = solver.solve(-0.5, 0.1)
        assert vsc > 0.2

    def test_strong_overdrive_lands_in_linear_region(self, solver):
        vsc = solver.solve(1.5, 0.1)
        assert vsc < solver.qs_curve.breakpoints[0]


class TestAgainstFullTheory:
    @pytest.mark.parametrize("vg", [0.2, 0.4, 0.6])
    @pytest.mark.parametrize("vd", [0.05, 0.3, 0.6])
    def test_vsc_close_to_reference(self, solver, ref300, vg, vd):
        v_closed = solver.solve(vg, vd)
        v_ref = ref300.solve_vsc(vg, vd)
        assert v_closed == pytest.approx(v_ref, abs=0.01)


class TestCaching:
    def test_vds_cache_consistency(self, solver):
        # First call populates; second must return the identical value.
        a = solver.solve(0.45, 0.37)
        b = solver.solve(0.45, 0.37)
        assert a == b

    def test_cache_does_not_leak_across_vds(self, solver):
        v1 = solver.solve(0.45, 0.10)
        v2 = solver.solve(0.45, 0.60)
        assert v1 != v2


class TestValidation:
    def test_rejects_zero_csum(self, ref300):
        fitted = build_model2(ref300.charge)

        class FakeCaps:
            csum = 0.0

        with pytest.raises((ParameterError, AttributeError)):
            ClosedFormSolver(fitted.curve, FakeCaps())
