"""Mobile-charge integrals: identities the paper's model relies on."""

import numpy as np
import pytest

from repro.constants import ELEMENTARY_CHARGE
from repro.errors import ParameterError
from repro.physics.charge import ChargeModel


@pytest.fixture(scope="module")
def cm():
    """Single-subband model at the paper's stock operating point."""
    return ChargeModel([0.41], 300.0, -0.32)


class TestHalfDensity:
    def test_positive_and_increasing(self, cm):
        u = np.linspace(-0.4, 0.4, 30)
        n = cm.half_density(u)
        assert np.all(n > 0.0)
        assert np.all(np.diff(n) > 0.0)

    def test_derivative_matches_finite_difference(self, cm):
        u, h = 0.1, 1e-6
        fd = (cm.half_density(u + h) - cm.half_density(u - h)) / (2 * h)
        assert cm.half_density_derivative(u) == pytest.approx(fd, rel=1e-5)

    def test_deep_subthreshold_is_tiny(self, cm):
        # 1 eV below the band edge at 300 K: e^-40 suppression.
        assert cm.half_density(-1.0) < 1e-6 * cm.half_density(0.3)

    def test_quadrature_converged(self):
        coarse = ChargeModel([0.41], 300.0, -0.32, nodes=64)
        fine = ChargeModel([0.41], 300.0, -0.32, nodes=400)
        u = 0.2
        assert coarse.half_density(u) == pytest.approx(
            fine.half_density(u), rel=1e-8
        )

    def test_scalar_and_array_agree(self, cm):
        u = 0.05
        scalar = cm.half_density(u)
        array = cm.half_density(np.array([u]))
        assert scalar == pytest.approx(float(array[0]))


class TestPaperIdentities:
    def test_n0_equals_twice_ns_at_zero_vsc(self, cm):
        """NS(VSC=0) = N0/2 exactly — the identity behind QS(0) = 0."""
        assert cm.n_equilibrium() == pytest.approx(
            2.0 * float(cm.n_source(0.0)), rel=1e-12
        )

    def test_qs_zero_at_origin(self, cm):
        assert abs(cm.qs(0.0)) < 1e-25

    def test_qs_monotone_decreasing(self, cm):
        vsc = np.linspace(-0.6, 0.3, 50)
        qs = cm.qs(vsc)
        assert np.all(np.diff(qs) < 0.0)

    def test_qd_is_shifted_qs(self, cm):
        vsc, vds = -0.3, 0.25
        assert cm.qd(vsc, vds) == pytest.approx(
            cm.qs(vsc + vds), rel=1e-12
        )

    def test_qs_saturates_to_minus_half_n0(self, cm):
        expected = -0.5 * ELEMENTARY_CHARGE * cm.n_equilibrium()
        assert cm.qs(2.0) == pytest.approx(expected, rel=1e-6)

    def test_delta_n_decomposition(self, cm):
        """q * delta_n == QS + QD (eq. (1) vs eqs. (10)-(11))."""
        vsc, vds = -0.25, 0.4
        lhs = ELEMENTARY_CHARGE * cm.delta_n(vsc, vds)
        rhs = cm.qs(vsc) + cm.qd(vsc, vds)
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_dqs_dvsc_negative(self, cm):
        vsc = np.linspace(-0.5, 0.2, 20)
        assert np.all(np.asarray(cm.dqs_dvsc(vsc)) <= 0.0)

    def test_quantum_capacitance_positive(self, cm):
        assert cm.quantum_capacitance(-0.3, 0.2) > 0.0

    def test_charge_magnitude_matches_paper_axis(self, cm):
        """Fig. 2's y axis: QS ~ 1e-10 C/m at VSC = -0.5 V."""
        qs = cm.qs(-0.5)
        assert 2e-11 < qs < 3e-10


class TestMultiSubband:
    def test_second_subband_adds_charge(self):
        one = ChargeModel([0.41], 300.0, -0.32)
        two = ChargeModel([0.41, 0.82], 300.0, -0.32)
        assert two.half_density(0.5) > one.half_density(0.5)

    def test_negligible_when_far_above(self):
        one = ChargeModel([0.41], 300.0, -0.32)
        two = ChargeModel([0.41, 2.0], 300.0, -0.32)
        assert two.half_density(0.1) == pytest.approx(
            one.half_density(0.1), rel=1e-6
        )


class TestTemperature:
    def test_kt_controls_tail_sharpness(self):
        cold = ChargeModel([0.41], 150.0, -0.32)
        hot = ChargeModel([0.41], 450.0, -0.32)
        # Below the band edge the hot device holds far more charge.
        assert hot.half_density(-0.15) > 10.0 * cold.half_density(-0.15)

    def test_validation(self):
        with pytest.raises(ParameterError):
            ChargeModel([], 300.0, -0.32)
        with pytest.raises(ParameterError):
            ChargeModel([0.8, 0.4], 300.0, -0.32)
        with pytest.raises(ParameterError):
            ChargeModel([0.4], 300.0, -0.32, nodes=8)
        with pytest.raises(ParameterError):
            ChargeModel([0.4], 300.0, -0.32, tail_kt=5.0)
        with pytest.raises(ValueError):
            ChargeModel([0.4], -10.0, -0.32)
