"""Linear-solver backend layer: resolution, parity, fallbacks."""

import numpy as np
import pytest

from repro.circuit import (
    Capacitor,
    Circuit,
    CNFETElement,
    DenseBackend,
    NewtonOptions,
    Resistor,
    SparseBackend,
    VoltageSource,
    ac_analysis,
    dc_sweep,
    operating_point,
    resolve_backend,
    transient,
)
from repro.circuit.logic import (
    LogicFamily,
    build_inverter_chain,
    build_ripple_carry_adder,
)
from repro.circuit.mna import (
    CNFET_SLAB_MIN_DEVICES,
    TwoPhaseAssembler,
    robust_dc_solve,
)
from repro.circuit.solvers import SPARSE_AUTO_MIN_DIM
from repro.circuit.waveforms import Pulse
from repro.errors import AnalysisError, ParameterError

TIGHT = NewtonOptions(vtol=1e-12, reltol=1e-10)


@pytest.fixture(scope="module")
def family():
    return LogicFamily.default(vdd=0.6)


@pytest.fixture(scope="module")
def adder(family):
    """4-bit RCA with a carry-ripple pulse: 144 CNFETs (slab active),
    ~90 unknowns."""
    circuit, info = build_ripple_carry_adder(
        family, 4, a_value=0b1111, b_value=0,
        cin_wave=Pulse(0.0, 0.6, 2e-12, 5e-13, 5e-13, 2e-11, 4e-11))
    return circuit, info


class TestResolution:
    def test_explicit_names(self):
        assert isinstance(resolve_backend("dense", 10), DenseBackend)
        assert isinstance(resolve_backend("sparse", 10), SparseBackend)
        backend = DenseBackend()
        assert resolve_backend(backend, 10) is backend

    def test_auto_by_dimension(self):
        assert isinstance(
            resolve_backend("auto", SPARSE_AUTO_MIN_DIM - 1),
            DenseBackend)
        assert isinstance(
            resolve_backend("auto", SPARSE_AUTO_MIN_DIM),
            SparseBackend)
        assert isinstance(resolve_backend(None, None), DenseBackend)

    def test_unknown_name_rejected(self):
        with pytest.raises(ParameterError, match="backend"):
            resolve_backend("umfpack", 10)

    def test_auto_without_scipy_is_dense(self, monkeypatch):
        import repro.circuit.solvers as solvers

        monkeypatch.setattr(solvers, "HAVE_SCIPY", False)
        assert isinstance(
            solvers.resolve_backend("auto", 10_000), DenseBackend)


class TestLinearParity:
    def test_divider_sparse(self):
        circuit = Circuit("div")
        circuit.add(VoltageSource("v1", "in", "0", 12.0))
        circuit.add(Resistor("r1", "in", "mid", 2e3))
        circuit.add(Resistor("r2", "mid", "0", 1e3))
        op = operating_point(circuit, backend="sparse")
        assert op.voltage("mid") == pytest.approx(4.0)

    def test_rlc_transient_parity(self):
        from repro.circuit import Inductor

        def build():
            circuit = Circuit("rlc")
            circuit.add(VoltageSource(
                "v1", "in", "0",
                Pulse(0.0, 1.0, 1e-9, 1e-10, 1e-10, 5e-8, 1e-7)))
            circuit.add(Resistor("r1", "in", "a", 50.0))
            circuit.add(Inductor("l1", "a", "b", 1e-7))
            circuit.add(Capacitor("c1", "b", "0", 1e-11))
            return circuit

        kwargs = dict(tstop=2e-8, dt=1e-10, method="trap",
                      options=TIGHT)
        dense = transient(build(), backend="dense", **kwargs)
        sparse = transient(build(), backend="sparse", **kwargs)
        assert np.max(np.abs(dense.voltage("b")
                             - sparse.voltage("b"))) <= 1e-9

    def test_diode_dc_parity(self):
        from repro.circuit import Diode

        def build():
            circuit = Circuit("d")
            circuit.add(VoltageSource("v1", "in", "0", 5.0))
            circuit.add(Resistor("r1", "in", "a", 1e3))
            circuit.add(Diode("d1", "a", "0"))
            return circuit

        vd = robust_dc_solve(build(), None, TIGHT, backend="dense")
        vs = robust_dc_solve(build(), None, TIGHT, backend="sparse")
        assert np.max(np.abs(vd - vs)) <= 1e-9


class TestCnfetCircuitParity:
    def test_dc_parity(self, adder):
        circuit, _info = adder
        xd = robust_dc_solve(circuit, None, TIGHT, backend="dense")
        xs = robust_dc_solve(circuit, None, TIGHT, backend="sparse")
        n = len(circuit.node_index)
        assert np.max(np.abs(xd[:n] - xs[:n])) <= 1e-9

    def test_adaptive_transient_parity(self, adder):
        """Adaptive engine pinned to a shared grid through both
        backends: identical time points, node voltages <= 1e-9 V."""
        circuit, info = adder
        kwargs = dict(tstop=1e-11, method="trap", options=TIGHT,
                      adaptive=True, dt_min=2.5e-13, dt_max=2.5e-13,
                      record_currents=False)
        dense = transient(circuit, backend="dense", **kwargs)
        sparse = transient(circuit, backend="sparse", **kwargs)
        assert np.array_equal(dense.axis, sparse.axis)
        deviation = max(
            float(np.max(np.abs(dense.trace(f"v({node})")
                                - sparse.trace(f"v({node})"))))
            for node in circuit.nodes
        )
        assert deviation <= 1e-9

    def test_free_adaptive_transient_runs_sparse(self, adder):
        """The genuinely adaptive controller (no pinning) must run to
        completion on the sparse backend and settle to the DC-correct
        final state."""
        circuit, info = adder
        ds = transient(circuit, tstop=4e-12, method="trap",
                       backend="sparse", record_currents=False)
        assert ds.axis[-1] == pytest.approx(4e-12)

    def test_ac_parity_cnfet(self, family):
        from repro.circuit.logic import build_inverter

        circuit, _vin, _vout = build_inverter(family, vin_wave=0.3)
        freqs = [1e6, 1e9, 1e12]
        dense = ac_analysis(circuit, "vin_src", freqs, TIGHT,
                            backend="dense")
        sparse = ac_analysis(circuit, "vin_src", freqs, TIGHT,
                             backend="sparse")
        vm_d = np.asarray(dense.trace("vm(out)"))
        vm_s = np.asarray(sparse.trace("vm(out)"))
        # vm is a gain (tens of V per unit excitation); gate the
        # deviation relative to the magnitude, 1e-9 V per volt.
        assert np.max(np.abs(vm_d - vm_s)
                      / np.maximum(vm_d, 1.0)) <= 1e-9

    def test_dc_sweep_parity_chain(self, family):
        # Supply ramp with the input at a rail: every point keeps the
        # chain in well-conditioned saturated states.  (An input sweep
        # would cross the metastable threshold, where the gain^N
        # product exceeds what float64 can represent and no backend
        # converges.)
        options = NewtonOptions(vtol=1e-11, reltol=1e-9)
        circuit, out = build_inverter_chain(family, 17)
        values = np.linspace(0.0, family.vdd, 7)
        dense = dc_sweep(circuit, "vdd_src", values, options,
                         backend="dense")
        sparse = dc_sweep(circuit, "vdd_src", values, options,
                          backend="sparse")
        deviation = max(
            float(np.max(np.abs(dense.trace(f"v({node})")
                                - sparse.trace(f"v({node})"))))
            for node in circuit.nodes
        )
        assert deviation <= 1e-9


class TestSlab:
    def test_slab_activation_threshold(self, family, adder):
        circuit, _ = adder
        assembler = TwoPhaseAssembler(circuit, backend="dense")
        n_fast = sum(1 for el in circuit.elements
                     if isinstance(el, CNFETElement))
        assert n_fast >= CNFET_SLAB_MIN_DEVICES
        assert assembler.slab is not None
        assert len(assembler.slab.elements) == n_fast

    def test_small_circuits_keep_scalar_path(self, family):
        from repro.circuit.logic import build_inverter

        circuit, _, _ = build_inverter(family)
        assembler = TwoPhaseAssembler(circuit)
        assert assembler.slab is None

    def test_slab_vs_scalar_stamping_parity(self, adder):
        """Forcing the slab off must reproduce the slab waveforms to
        closed-form solver noise."""
        circuit, _ = adder
        x0 = robust_dc_solve(circuit, None, TIGHT, backend="dense")

        def run(cnfet_slab):
            assembler = TwoPhaseAssembler(circuit, backend="dense",
                                          cnfet_slab=cnfet_slab)
            from repro.circuit.mna import newton_solve

            circuit.reset_state()
            return newton_solve(circuit, x0.copy(), TIGHT,
                                analysis="dc", assembler=assembler)

        x_slab = run(True)
        x_scalar = run(False)
        assert np.max(np.abs(x_slab - x_scalar)) <= 1e-9


class TestSparseInternals:
    def test_pattern_reused_across_iterations(self, adder):
        circuit, _ = adder
        assembler = TwoPhaseAssembler(circuit, backend="sparse")
        assembler.begin_step(analysis="dc")
        x = np.zeros(assembler.n)
        assembler.iterate(x)
        assembler.solve()
        pattern = assembler._pattern_flat
        assembler.iterate(x + 1e-3)
        assembler.solve()
        assert assembler._pattern_flat is pattern  # no rebuild

    def test_pattern_rebuilds_on_mode_switch(self, adder):
        circuit, _ = adder
        assembler = TwoPhaseAssembler(circuit, backend="sparse")
        assembler.begin_step(analysis="dc")
        x = np.zeros(assembler.n)
        assembler.iterate(x)
        assembler.solve()
        dc_pattern = assembler._pattern_flat
        assembler.begin_step(analysis="tran", time=1e-12, dt=1e-12,
                             x_prev=x, method="be")
        assembler.iterate(x)
        assembler.solve()
        assert assembler._pattern_flat is not dc_pattern
        assert assembler._pattern_flat.size > dc_pattern.size

    def test_singular_matrix_diagnosed(self):
        circuit = Circuit("floating")
        circuit.add(VoltageSource("v1", "in", "0", 1.0))
        circuit.add(Resistor("r1", "in", "a", 1e3))
        circuit.add(Capacitor("c1", "b", "0", 1e-12))  # b floats in DC
        assembler = TwoPhaseAssembler(circuit, backend="sparse")
        assembler.begin_step(analysis="dc")
        assembler.iterate(np.zeros(assembler.n))
        with pytest.raises(AnalysisError, match="singular"):
            assembler.solve()

    def test_scipy_absent_fallback(self, adder, monkeypatch):
        """SparseBackend without scipy scatters dense and still
        solves correctly."""
        import repro.circuit.solvers as solvers

        circuit, _ = adder
        xs = robust_dc_solve(circuit, None, TIGHT, backend="sparse")
        monkeypatch.setattr(solvers, "HAVE_SCIPY", False)
        xf = robust_dc_solve(circuit, None, TIGHT, backend="sparse")
        n = len(circuit.node_index)
        assert np.max(np.abs(xs[:n] - xf[:n])) <= 1e-9


class TestBatchBackend:
    def test_batch_transient_sparse_parity(self, family):
        from repro.circuit.batch_sim import batch_transient
        from repro.circuit.logic import build_ring_oscillator
        from repro.circuit.transient import initial_conditions_from_op

        rings, nodes = [], ()
        for _ in range(3):
            ring, nodes = build_ring_oscillator(family, stages=3)
            rings.append(ring)
        x_lane = initial_conditions_from_op(
            rings[0], {nodes[0]: 0.0, nodes[1]: 0.6}, TIGHT)
        x0 = np.tile(x_lane, (3, 1))
        kwargs = dict(dt=2e-12, method="be", options=TIGHT, x0=x0,
                      record_currents=False)
        dense = batch_transient(rings, 3e-11, backend="dense",
                                **kwargs)
        sparse = batch_transient(rings, 3e-11, backend="sparse",
                                 **kwargs)
        deviation = max(
            float(np.max(np.abs(dense[lane].trace(f"v({n})")
                                - sparse[lane].trace(f"v({n})"))))
            for lane in range(3) for n in nodes
        )
        assert deviation <= 1e-9

    def test_stacked_singular_lane_nan(self):
        backend = SparseBackend()
        a = np.stack([np.eye(3), np.zeros((3, 3))])
        z = np.ones((2, 3))
        solved = backend.solve_stacked(a, z)
        assert np.allclose(solved[0], 1.0)
        assert np.isnan(solved[1]).all()
