"""Pre-fitted coefficient library over the (T, EF) grid."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.pwl.device import CNFET
from repro.pwl.tables import PrefittedLibrary
from repro.reference.fettoy import FETToyModel, FETToyParameters


@pytest.fixture(scope="module")
def small_library():
    """2x2 grid, unoptimised boundaries — fast to build, exact layout."""
    return PrefittedLibrary(
        temperatures_k=(200.0, 400.0),
        fermi_levels_ev=(-0.4, -0.2),
        optimize_boundaries=False,
    )


class TestBuild:
    def test_grid_size(self, small_library):
        assert len(small_library) == 4

    def test_duplicate_axes_rejected(self):
        with pytest.raises(ParameterError):
            PrefittedLibrary(temperatures_k=(300.0, 300.0), build=False)


class TestNearest:
    def test_nearest_exact_gridpoint(self, small_library):
        fitted = small_library.nearest(200.0, -0.4)
        assert fitted.temperature_k == 200.0
        assert fitted.fermi_level_ev == -0.4

    def test_nearest_snaps(self, small_library):
        fitted = small_library.nearest(210.0, -0.39)
        # Breakpoints re-anchored at the REQUESTED Fermi level.
        rel = [b - fitted.fermi_level_ev for b in fitted.curve.breakpoints]
        assert fitted.fermi_level_ev == -0.39
        assert min(rel) < 0 < max(rel)

    def test_nearest_device_usable(self, small_library):
        fitted = small_library.nearest(200.0, -0.4)
        device = CNFET(
            FETToyParameters(temperature_k=200.0, fermi_level_ev=-0.4),
            fitted=fitted,
        )
        reference = FETToyModel(
            FETToyParameters(temperature_k=200.0, fermi_level_ev=-0.4)
        )
        # Unoptimised-boundary fits carry ~10% worst-case IDS error.
        assert device.ids(0.5, 0.4) == pytest.approx(
            reference.ids(0.5, 0.4), rel=0.20
        )


class TestInterpolation:
    def test_midpoint_interpolation_usable(self, small_library):
        fitted = small_library.interpolated(300.0, -0.3)
        device = CNFET(
            FETToyParameters(temperature_k=300.0, fermi_level_ev=-0.3),
            fitted=fitted,
        )
        reference = FETToyModel(
            FETToyParameters(temperature_k=300.0, fermi_level_ev=-0.3)
        )
        # Interpolation across 200 K / 0.2 eV cells is coarse; require
        # the right magnitude and monotone behaviour rather than
        # percent-level accuracy.
        i_dev = device.ids(0.5, 0.4)
        i_ref = reference.ids(0.5, 0.4)
        assert i_dev == pytest.approx(i_ref, rel=0.5)
        assert device.ids(0.6, 0.4) > i_dev

    def test_corner_equals_grid_fit(self, small_library):
        direct = small_library.nearest(200.0, -0.4)
        interp = small_library.interpolated(200.0, -0.4)
        x = np.linspace(-0.7, -0.1, 20)
        np.testing.assert_allclose(
            interp.curve.value(x), direct.curve.value(x), rtol=1e-9,
            atol=1e-18,
        )

    def test_outside_grid_rejected(self, small_library):
        with pytest.raises(ParameterError):
            small_library.interpolated(100.0, -0.3)
        with pytest.raises(ParameterError):
            small_library.interpolated(300.0, -0.9)


class TestSerialisation:
    def test_json_roundtrip(self, small_library):
        text = small_library.to_json()
        loaded = PrefittedLibrary.from_json(text)
        assert len(loaded) == len(small_library)
        a = small_library.nearest(200.0, -0.4)
        b = loaded.nearest(200.0, -0.4)
        x = np.linspace(-0.7, -0.1, 10)
        np.testing.assert_allclose(
            a.curve.value(x), b.curve.value(x), rtol=1e-12, atol=1e-20
        )
