"""Job-service suite: fingerprints, cache, coalescing, HTTP lifecycle.

The contracts under test mirror ``docs/service.md``: semantically
equal submissions share one fingerprint (and therefore one cache
entry), concurrent same-topology jobs coalesce into a single engine
dispatch whose per-lane results match the scalar engine, a lane that
fails inside a batch falls back to scalar without failing the group,
and ``/metrics`` exposes the documented counter/histogram names.
"""

import dataclasses
import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

import repro.circuit.batch_sim as batch_sim
from repro import faults
from repro.circuit.parser import parse_netlist
from repro.circuit.transient import transient
from repro.errors import (
    ParameterError,
    ReproError,
    ServiceError,
    ServiceTransportError,
)
from repro.parallel import WORKERS_ENV, resolve_workers
from repro.service import (
    SERVICE_COUNTERS,
    SERVICE_HISTOGRAMS,
    JobServer,
    ResultCache,
    ServiceClient,
    circuit_fingerprint,
    manifest_fingerprint,
    parse_job_spec,
    shutdown_authorized,
    topology_fingerprint,
)
from repro.service.jobs import build_newton_options
from repro.service.metrics import Counter, Histogram, MetricsRegistry

#: served waveforms must match direct engine calls to this [V]
PARITY_TOL_V = 1e-9

# A linear RC deck keeps the HTTP-level tests independent of the CNFET
# fit cache (milliseconds per job instead of a cold-start fit).
RC_DECK = """* rc lowpass
V1 in 0 pulse(0 1 1e-9 1e-9 1e-9 1e-8 4e-8)
R1 in out {r}
C1 out 0 1e-12
.end
"""

# Different topology (extra RC stage) for mixed-traffic tests.
RC2_DECK = """* rc two-stage
V1 in 0 pulse(0 1 1e-9 1e-9 1e-9 1e-8 4e-8)
R1 in mid {r}
C1 mid 0 1e-12
R2 mid out 1e3
C2 out 0 1e-12
.end
"""


def rc_job(r="1e3", **overrides):
    spec = {"kind": "transient", "deck": RC_DECK.format(r=r),
            "tstop": 2e-8, "dt": 2e-10}
    spec.update(overrides)
    return spec


@pytest.fixture
def server():
    srv = JobServer(workers=1, batch_window=0.0, cache_size=32)
    host, port = srv.start()
    client = ServiceClient(f"http://{host}:{port}", timeout=60.0)
    yield srv, client
    srv.shutdown()


@pytest.fixture
def coalescing_server():
    srv = JobServer(workers=1, batch_window=0.6, cache_size=32)
    host, port = srv.start()
    client = ServiceClient(f"http://{host}:{port}", timeout=60.0)
    yield srv, client
    srv.shutdown()


class TestFingerprint:
    def test_formatting_and_comments_do_not_matter(self):
        a = parse_netlist(RC_DECK.format(r="1e3")).circuit
        b = parse_netlist("* different title\n* extra comment\n"
                          "V1 in 0 pulse(0 1 1e-9 1e-9 1e-9 1e-8 "
                          "4e-8)\nR1   in  out  1k\nC1 out 0 1p\n"
                          ".end\n").circuit
        assert circuit_fingerprint(a) == circuit_fingerprint(b)
        assert topology_fingerprint(a) == topology_fingerprint(b)

    def test_value_change_keeps_topology_changes_fingerprint(self):
        a = parse_netlist(RC_DECK.format(r="1e3")).circuit
        b = parse_netlist(RC_DECK.format(r="2e3")).circuit
        assert topology_fingerprint(a) == topology_fingerprint(b)
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_topology_sensitive_to_names_and_nodes(self):
        a = parse_netlist(RC_DECK.format(r="1e3")).circuit
        renamed = parse_netlist(
            RC_DECK.format(r="1e3").replace("R1", "Rload")).circuit
        assert topology_fingerprint(a) != topology_fingerprint(renamed)
        assert circuit_fingerprint(a) != circuit_fingerprint(renamed)

    def test_quantization_absorbs_float_noise(self):
        a = parse_netlist("* a\nV1 in 0 1\nR1 in out 1000\n"
                          "C1 out 0 1e-12\n.end").circuit
        b = parse_netlist("* b\nV1 in 0 1\nR1 in out "
                          "1000.0000000000001\nC1 out 0 1e-12\n"
                          ".end").circuit
        c = parse_netlist("* c\nV1 in 0 1\nR1 in out 1000.1\n"
                          "C1 out 0 1e-12\n.end").circuit
        assert circuit_fingerprint(a) == circuit_fingerprint(b)
        assert circuit_fingerprint(a) != circuit_fingerprint(c)

    def test_cnfet_device_params_fingerprinted(self):
        deck = ("* q\n.model m1 cnfet diameter_nm=1.2\n"
                ".model m2 cnfet diameter_nm=1.4\n"
                "Vd d 0 0.5\nVg g 0 0.5\nQ1 d g 0 {m}\n.end")
        a = parse_netlist(deck.format(m="m1")).circuit
        b = parse_netlist(deck.format(m="m2")).circuit
        assert topology_fingerprint(a) == topology_fingerprint(b)
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_campaign_fingerprint_parity(self):
        """Campaign.fingerprint must stay byte-identical to the
        historical inline sha256(json.dumps(manifest, sort_keys=True))
        so existing run directories remain resumable."""
        import hashlib

        from repro.experiments.workloads import variability_workload
        from repro.variability.campaign import Campaign, CampaignConfig

        space, evaluator = variability_workload("device")
        campaign = Campaign(CampaignConfig(name="parity", n_samples=4),
                            space, evaluator)
        manifest = campaign.manifest()
        legacy = hashlib.sha256(
            json.dumps(manifest, sort_keys=True).encode()).hexdigest()
        assert campaign.fingerprint() == legacy
        assert campaign.fingerprint() == manifest_fingerprint(manifest)


class TestResolveWorkersEnv:
    """Satellite: bad REPRO_WORKERS values fail fast with the
    offending value in a ParameterError, not a naked ValueError."""

    @pytest.mark.parametrize("env", ["abc", "2.5", "", " "])
    def test_non_integer_env(self, monkeypatch, env):
        monkeypatch.setenv(WORKERS_ENV, env)
        with pytest.raises(ParameterError) as err:
            resolve_workers(None)
        assert repr(env) in str(err.value)
        assert WORKERS_ENV in str(err.value)

    @pytest.mark.parametrize("env", ["0", "-3"])
    def test_non_positive_env(self, monkeypatch, env):
        monkeypatch.setenv(WORKERS_ENV, env)
        with pytest.raises(ParameterError) as err:
            resolve_workers("auto")
        assert repr(env) in str(err.value)

    def test_bool_is_not_a_worker_count(self):
        with pytest.raises(ParameterError):
            resolve_workers(True)

    def test_explicit_count_ignores_bad_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "nonsense")
        assert resolve_workers(3) == 3


class TestJobSpecValidation:
    def test_unknown_kind(self):
        with pytest.raises(ParameterError, match="kind"):
            parse_job_spec({"kind": "spice"})

    def test_missing_required_field(self):
        with pytest.raises(ParameterError, match="tstop"):
            parse_job_spec({"kind": "transient",
                            "deck": RC_DECK.format(r="1e3")})

    def test_unknown_field_rejected(self):
        with pytest.raises(ParameterError, match="bogus"):
            parse_job_spec(rc_job(bogus=1))

    def test_unknown_newton_option(self):
        with pytest.raises(ParameterError, match="vtolerance"):
            parse_job_spec(rc_job(newton={"vtolerance": 1e-9}))

    def test_unknown_node(self):
        with pytest.raises(ParameterError, match="nope"):
            parse_job_spec(rc_job(nodes=["nope"]))

    def test_fixed_step_rejects_adaptive_options(self):
        with pytest.raises(ParameterError, match="adaptive"):
            parse_job_spec(rc_job(rtol=1e-4))

    def test_group_key_ignores_tstop_but_not_grid(self):
        a = parse_job_spec(rc_job())
        b = parse_job_spec(rc_job(tstop=1e-8))
        c = parse_job_spec(rc_job(dt=1e-10))
        assert a.group_key == b.group_key
        assert a.fingerprint != b.fingerprint
        assert a.group_key != c.group_key

    def test_solo_kinds_have_no_group_key(self):
        spec = parse_job_spec({"kind": "op",
                               "deck": RC_DECK.format(r="1e3")})
        assert spec.group_key is None

    def test_newton_overrides_applied(self):
        opts = build_newton_options({"vtol": 1e-12, "reltol": 1e-9})
        assert opts.vtol == 1e-12 and opts.reltol == 1e-9
        assert opts.max_iterations == \
            build_newton_options({}).max_iterations


@pytest.mark.slow
class TestJobLifecycle:
    def test_submit_poll_result(self, server):
        _, client = server
        doc = client.submit(rc_job())
        assert doc["state"] in ("pending", "running", "done")
        final = client.wait(doc["id"], timeout=60.0)
        assert final["state"] == "done"
        result = final["result"]
        assert result["axis_name"] == "time"
        assert len(result["axis"]) == len(result["traces"]["v(out)"])
        assert final["timings"]["total_s"] >= 0.0

    def test_served_matches_direct_engine(self, server):
        _, client = server
        final = client.run(rc_job())
        circuit = parse_netlist(RC_DECK.format(r="1e3")).circuit
        ref = transient(circuit, 2e-8, dt=2e-10,
                        record_currents="sources")
        served = np.asarray(final["result"]["traces"]["v(out)"])
        assert np.max(np.abs(served - ref.trace("v(out)"))) \
            < PARITY_TOL_V

    def test_health_and_unknown_routes(self, server):
        srv, client = server
        health = client.health()
        assert health["status"] == "ok"
        with pytest.raises(ServiceError, match="404"):
            client.status("not-a-job")
        with pytest.raises(ServiceError, match="404"):
            client._request("GET", "/nothing")

    def test_invalid_spec_is_400(self, server):
        _, client = server
        with pytest.raises(ServiceError, match="400"):
            client.submit({"kind": "transient", "deck": "* empty\n.end",
                           "tstop": 1e-9})

    def test_invalid_json_body_is_400(self, server):
        srv, client = server
        request = urllib.request.Request(
            f"{client.base_url}/jobs", data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10.0)
        assert err.value.code == 400

    def test_failed_job_reports_error(self, server):
        _, client = server
        # A floating node makes the operating point singular.
        doc = client.submit({"kind": "op",
                             "deck": "* bad\nC1 a 0 1e-12\n"
                                     "R1 b 0 1e3\nV1 b 0 1\n.end"})
        with pytest.raises(ServiceError, match="failed"):
            client.wait(doc["id"], timeout=60.0)

    def test_dc_and_op_jobs(self, server):
        _, client = server
        dc = client.run({"kind": "dc", "deck": RC_DECK.format(r="1e3"),
                         "source": "V1", "start": 0.0, "stop": 1.0,
                         "points": 5})
        assert dc["result"]["axis"] == [0.0, 0.25, 0.5, 0.75, 1.0]
        assert "i(v1)" in dc["result"]["traces"]
        op = client.run({"kind": "op", "deck": RC_DECK.format(r="1e3"),
                         "nodes": ["out"]})
        assert op["result"]["voltages"] == {"v(out)": pytest.approx(0.0)}


@pytest.mark.slow
class TestResultCache:
    def test_cache_hit_returns_identical_payload(self, server):
        _, client = server
        first = client.run(rc_job())
        assert first["cached"] is False
        second = client.run(rc_job())
        assert second["cached"] is True
        assert second["result"] == first["result"]
        assert client.metric_value("service_cache_hits_total") >= 1

    def test_semantically_equal_decks_share_cache(self, server):
        _, client = server
        client.run(rc_job())
        other_text = rc_job(
            deck=RC_DECK.format(r="1e3") + "* trailing comment\n")
        assert client.run(other_text)["cached"] is True

    def test_lru_unit_behaviour(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"x": 1})
        cache.put("b", {"x": 2})
        assert cache.get("a") == {"x": 1}  # refreshes 'a'
        cache.put("c", {"x": 3})           # evicts 'b'
        assert cache.get("b") is None
        assert cache.get("a") == {"x": 1}
        got = cache.get("c")
        got["x"] = 99                      # copies are isolated
        assert cache.get("c") == {"x": 3}
        assert cache.hits == 4 and cache.misses == 1

    def test_zero_capacity_disables(self):
        cache = ResultCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        with pytest.raises(ParameterError):
            ResultCache(capacity=-1)


@pytest.mark.slow
class TestCoalescing:
    def test_concurrent_same_topology_jobs_share_one_dispatch(
            self, coalescing_server):
        """Two concurrent clients with same-topology circuits must be
        served by a single lane-batched engine call."""
        _, client = coalescing_server
        docs = {}

        def run(tag, r):
            docs[tag] = client.run(rc_job(r=r), timeout=60.0)

        threads = [threading.Thread(target=run, args=(i, r))
                   for i, r in enumerate(("1e3", "2e3", "3e3"))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(d["state"] == "done" for d in docs.values())
        assert all(d["coalesced"] == 3 for d in docs.values())
        assert client.metric_value(
            "service_engine_dispatches_total") == 1
        assert client.metric_value(
            "service_jobs_coalesced_total") == 3

    def test_coalesced_lanes_match_direct_engine(
            self, coalescing_server):
        _, client = coalescing_server
        docs = {}

        def run(tag, r):
            docs[tag] = client.run(rc_job(r=r), timeout=60.0)

        threads = [threading.Thread(target=run, args=(r, r))
                   for r in ("1e3", "5e3")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert {d["coalesced"] for d in docs.values()} == {2}
        for r, doc in docs.items():
            circuit = parse_netlist(RC_DECK.format(r=r)).circuit
            ref = transient(circuit, 2e-8, dt=2e-10,
                            record_currents="sources")
            served = np.asarray(doc["result"]["traces"]["v(out)"])
            assert np.max(np.abs(served - ref.trace("v(out)"))) \
                < PARITY_TOL_V

    def test_mixed_topologies_do_not_coalesce(self, coalescing_server):
        _, client = coalescing_server
        docs = {}

        def run(tag, spec):
            docs[tag] = client.run(spec, timeout=60.0)

        specs = {"a": rc_job(),
                 "b": rc_job(deck=RC2_DECK.format(r="1e3"))}
        threads = [threading.Thread(target=run, args=(t, s))
                   for t, s in specs.items()]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert docs["a"]["coalesced"] == 1
        assert docs["b"]["coalesced"] == 1
        assert client.metric_value(
            "service_engine_dispatches_total") == 2


@pytest.mark.slow
class TestLaneFallback:
    def test_failed_lane_falls_back_to_scalar(self, monkeypatch):
        """A lane whose lock-step Newton fails is re-run scalar by the
        engine: its job still succeeds, matches the direct scalar
        result, and the fallback is counted at /metrics."""
        original = batch_sim._lockstep_newton

        def sabotage(batch, x, lanes, options, **kwargs):
            x_new, failed = original(batch, x, lanes, options,
                                     **kwargs)
            if kwargs.get("analysis") == "tran" and 1 in lanes:
                failed = sorted(set(list(failed) + [1]))
                x_new[1] = x[1]
            return x_new, failed

        monkeypatch.setattr(batch_sim, "_lockstep_newton", sabotage)
        srv = JobServer(workers=1, batch_window=0.6, cache_size=8)
        try:
            host, port = srv.start()
            client = ServiceClient(f"http://{host}:{port}",
                                   timeout=60.0)
            docs = {}

            def run(tag, r):
                docs[tag] = client.run(rc_job(r=r), timeout=60.0)

            threads = [threading.Thread(target=run, args=(i, r))
                       for i, r in enumerate(("1e3", "2e3", "3e3"))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert all(d["state"] == "done" for d in docs.values())
            assert client.metric_value(
                "service_engine_dispatches_total") == 1
            assert client.metric_value(
                "service_lane_fallbacks_total") >= 1
        finally:
            srv.shutdown()
        monkeypatch.setattr(batch_sim, "_lockstep_newton", original)
        # The job that rode lane 1 was replayed through the plain
        # scalar engine: its grid and waveform must match a direct
        # scalar run exactly.  (The surviving lanes picked up extra
        # halved steps from the injected Newton failures, so only the
        # fallback lane shares the reference grid.)
        fallback_docs = []
        for i, r in enumerate(("1e3", "2e3", "3e3")):
            circuit = parse_netlist(RC_DECK.format(r=r)).circuit
            ref = transient(circuit, 2e-8, dt=2e-10,
                            record_currents="sources")
            axis = np.asarray(docs[i]["result"]["axis"])
            if axis.shape != ref.axis.shape or \
                    not np.allclose(axis, ref.axis):
                continue
            served = np.asarray(docs[i]["result"]["traces"]["v(out)"])
            assert np.max(np.abs(served - ref.trace("v(out)"))) \
                < PARITY_TOL_V
            fallback_docs.append(i)
        assert fallback_docs, "no lane replayed the scalar grid"


@pytest.mark.slow
class TestMetrics:
    def test_documented_names_exposed(self, server):
        _, client = server
        client.run(rc_job())
        text = client.metrics_text()
        for name in SERVICE_COUNTERS:
            assert f"# TYPE {name} counter" in text
            assert f"\n{name} " in text
        for name in SERVICE_HISTOGRAMS:
            assert f"# TYPE {name} histogram" in text
            assert f"{name}_bucket{{le=\"+Inf\"}}" in text
            assert f"\n{name}_sum " in text
            assert f"\n{name}_count " in text

    def test_counter_and_histogram_units(self):
        counter = Counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ParameterError):
            counter.inc(-1)
        hist = Histogram("h_seconds", "help", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            hist.observe(v)
        assert hist.count == 3
        assert hist.total == pytest.approx(5.55)
        assert hist.quantile(0.5) == 1.0
        rendered = hist.render()
        assert 'h_seconds_bucket{le="0.1"} 1' in rendered
        assert 'h_seconds_bucket{le="+Inf"} 3' in rendered

    def test_registry_get_or_create_and_conflicts(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total")
        assert registry.counter("x_total") is a
        with pytest.raises(ParameterError):
            registry.histogram("x_total")
        with pytest.raises(ParameterError):
            registry.get("missing")


@pytest.mark.slow
class TestNodesFilterCaching:
    """The cache stores the node-filtered payload, so the ``nodes``
    response filter must be part of the result-cache fingerprint — a
    restricted submission must never answer an unrestricted one."""

    def test_nodes_changes_fingerprint_not_group_key(self):
        full = parse_job_spec(rc_job())
        filtered = parse_job_spec(rc_job(nodes=["out"]))
        assert full.fingerprint != filtered.fingerprint
        # Coalescing ignores the response filter: same stacked solve.
        assert full.group_key == filtered.group_key

    def test_dc_and_op_nodes_in_fingerprint(self):
        dc = {"kind": "dc", "deck": RC_DECK.format(r="1e3"),
              "source": "V1", "start": 0.0, "stop": 1.0, "points": 3}
        assert parse_job_spec(dc).fingerprint != \
            parse_job_spec(dict(dc, nodes=["out"])).fingerprint
        op = {"kind": "op", "deck": RC_DECK.format(r="1e3")}
        assert parse_job_spec(op).fingerprint != \
            parse_job_spec(dict(op, nodes=["out"])).fingerprint

    def test_filtered_result_does_not_poison_cache(self, server):
        _, client = server
        filtered = client.run(rc_job(nodes=["out"]))
        assert set(filtered["result"]["traces"]) == {"v(out)"}
        full = client.run(rc_job())
        assert full["cached"] is False
        assert "v(in)" in full["result"]["traces"]
        # Each variant hits its own entry on resubmission.
        assert client.run(rc_job(nodes=["out"]))["cached"] is True
        assert client.run(rc_job())["cached"] is True


@pytest.mark.slow
class TestShutdownAuth:
    def test_loopback_trusted_without_token(self):
        assert shutdown_authorized("127.0.0.1", "", "secret")
        assert shutdown_authorized("::1", "", "secret")

    def test_remote_requires_matching_token(self):
        assert not shutdown_authorized("10.0.0.7", "", "secret")
        assert not shutdown_authorized("10.0.0.7", "wrong", "secret")
        assert not shutdown_authorized("not-an-ip", "", "secret")
        assert shutdown_authorized("10.0.0.7", "secret", "secret")

    def test_token_header_accepted_over_http(self):
        srv = JobServer(workers=1, batch_window=0.0, cache_size=4)
        try:
            host, port = srv.start()
            client = ServiceClient(f"http://{host}:{port}",
                                   timeout=30.0,
                                   shutdown_token=srv.shutdown_token)
            assert client.shutdown() == {"ok": True}
            deadline = time.monotonic() + 10.0
            while srv._httpd is not None \
                    and time.monotonic() < deadline:
                time.sleep(0.02)
            assert srv._httpd is None
        finally:
            srv.shutdown()


# A genuinely slow transient (40k fixed steps) used to occupy a
# worker while cancel/backpressure behaviour is observed.
SLOW_JOB_OVERRIDES = {"tstop": 4e-8, "dt": 1e-12}


@pytest.mark.slow
class TestCancelRoute:
    def test_cancel_queued_job_fails_immediately(self, server):
        srv, client = server
        # Occupy the single worker, then cancel a queued job.
        blocker = client.submit(rc_job(r="7e3", **SLOW_JOB_OVERRIDES))
        queued = client.submit(rc_job(r="8e3", **SLOW_JOB_OVERRIDES))
        doc = client.cancel(queued["id"])
        assert doc["state"] == "failed"
        assert doc["error_kind"] == "cancelled"
        client.cancel(blocker["id"])  # release the worker quickly

    def test_cancel_running_job_unwinds_engine(self, server):
        srv, client = server
        doc = client.submit(rc_job(r="9e3", **SLOW_JOB_OVERRIDES))
        deadline = time.monotonic() + 10.0
        while client.status(doc["id"])["state"] == "pending" \
                and time.monotonic() < deadline:
            time.sleep(0.01)
        final = client.cancel(doc["id"])
        deadline = time.monotonic() + 10.0
        while final["state"] not in ("failed", "done") \
                and time.monotonic() < deadline:
            time.sleep(0.02)
            final = client.status(doc["id"])
        assert final["state"] == "failed"
        assert final["error_kind"] == "cancelled"

    def test_cancel_finished_job_is_noop(self, server):
        _, client = server
        done = client.run(rc_job())
        doc = client.cancel(done["id"])
        assert doc["state"] == "done"
        assert doc["result"] == done["result"]

    def test_cancel_unknown_job_is_404(self, server):
        _, client = server
        with pytest.raises(ServiceError, match="404"):
            client.cancel("not-a-job")


@pytest.mark.slow
class TestBackpressure:
    def test_full_queue_returns_503_with_retry_after(self):
        srv = JobServer(workers=1, batch_window=0.0, cache_size=8,
                        max_queue=1)
        try:
            host, port = srv.start()
            client = ServiceClient(f"http://{host}:{port}",
                                   timeout=30.0)
            blocker = client.submit(
                rc_job(r="1e3", **SLOW_JOB_OVERRIDES))
            deadline = time.monotonic() + 10.0
            while client.status(blocker["id"])["state"] == "pending" \
                    and time.monotonic() < deadline:
                time.sleep(0.01)
            queued = client.submit(
                rc_job(r="2e3", **SLOW_JOB_OVERRIDES))
            # Queue is now at max_queue: the next submission must be
            # refused with 503 + Retry-After, not silently enqueued.
            request = urllib.request.Request(
                f"{client.base_url}/jobs",
                data=json.dumps(
                    rc_job(r="3e3", **SLOW_JOB_OVERRIDES)).encode(),
                headers={"Content-Type": "application/json"},
                method="POST")
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=10.0)
            assert err.value.code == 503
            assert int(err.value.headers["Retry-After"]) >= 1
            body = json.loads(err.value.read())
            assert "queue is full" in body["error"]
            with pytest.raises(ServiceError, match="503"):
                client.submit(rc_job(r="4e3", **SLOW_JOB_OVERRIDES))
            client.cancel(queued["id"])
            client.cancel(blocker["id"])
        finally:
            srv.shutdown()


class TestClientTransportRetry:
    def test_submit_retries_transport_faults(self, server):
        srv, client = server
        plan = faults.FaultPlan(
            seed=9, schedule={"service.transport": [1]})
        with faults.activate(plan):
            doc = client.submit(rc_job(r="11e3"))
        assert doc["state"] in ("pending", "running", "done")
        assert plan.fired == [("service.transport", 1)]
        # The injected firing is visible at /metrics via the server's
        # fault listener (chaos accounting).
        assert client.metric_value(
            "service_faults_injected_total") >= 1

    def test_exhausted_retries_surface_transport_error(self, server):
        _, client = server
        impatient = ServiceClient(client.base_url, timeout=10.0,
                                  retries=1, backoff=0.01)
        plan = faults.FaultPlan(
            seed=9, schedule={"service.transport": [1, 2]})
        with faults.activate(plan):
            with pytest.raises(ServiceTransportError):
                impatient.submit(rc_job(r="12e3"))

    def test_http_error_replies_are_not_retried(self, server):
        _, client = server
        calls = []
        original = client._request

        def counting(method, path, *args, **kwargs):
            calls.append((method, path))
            return original(method, path, *args, **kwargs)

        client._request = counting
        with pytest.raises(ServiceError, match="400"):
            client.submit({"kind": "nope"})
        assert calls == [("POST", "/jobs")]


class TestSchedulerShutdownWedged:
    """Satellite: shutdown(wait=True, timeout=...) with a wedged job
    reports the worker threads that failed to join instead of hanging
    or silently leaking them."""

    def test_wedged_worker_reported_by_name(self, monkeypatch):
        import repro.service.scheduler as scheduler_mod

        release = threading.Event()

        def wedge(specs, **kwargs):
            release.wait(30.0)
            return [None for _ in specs]

        monkeypatch.setattr(scheduler_mod, "execute_group", wedge)
        scheduler = scheduler_mod.CoalescingScheduler(
            workers=2, batch_window=0.0)
        try:
            job = scheduler_mod.Job(parse_job_spec(rc_job()))
            scheduler.submit(job)
            deadline = time.monotonic() + 5.0
            while job.state == "pending" \
                    and time.monotonic() < deadline:
                time.sleep(0.01)
            stuck = scheduler.shutdown(wait=True, timeout=0.2)
            # Exactly one worker holds the wedged job (either may
            # have claimed it); the idle one joins cleanly.
            assert len(stuck) == 1
            assert stuck[0].startswith("repro-service-worker-")
        finally:
            release.set()
        # The idle worker joined; only the wedged one was reported.
        assert scheduler.shutdown(wait=True, timeout=5.0) == []

    def test_clean_shutdown_reports_nothing(self):
        from repro.service.scheduler import CoalescingScheduler

        scheduler = CoalescingScheduler(workers=2, batch_window=0.0)
        assert scheduler.shutdown(wait=True, timeout=5.0) == []


class TestSchedulerDemuxGuard:
    def test_short_result_list_fails_unmatched_jobs(self, monkeypatch):
        """If a dispatch ever returns fewer results than jobs, the
        unmatched jobs must fail loudly instead of hanging clients in
        the running state forever."""
        import repro.service.scheduler as scheduler_mod

        monkeypatch.setattr(scheduler_mod, "execute_group",
                            lambda specs, **kwargs: [])
        srv = JobServer(workers=1, batch_window=0.0, cache_size=4)
        try:
            job = srv.submit(rc_job())
            assert job.wait(timeout=10.0)
            assert job.state == "failed"
            assert "0 results for 1 jobs" in job.error
        finally:
            srv.shutdown()
