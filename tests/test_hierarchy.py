"""SubCircuit/Instance hierarchy: flattening, naming, collisions."""

import numpy as np
import pytest

from repro.circuit import (
    Capacitor,
    Circuit,
    Instance,
    NewtonOptions,
    Resistor,
    SubCircuit,
    VoltageSource,
    operating_point,
    transient,
)
from repro.circuit.logic import (
    LogicFamily,
    add_inverter,
    add_nand2,
    build_inverter_chain,
    build_ripple_carry_adder,
    full_adder_subcircuit,
    inverter_chain_subcircuit,
    inverter_subcircuit,
    mux_tree_subcircuit,
    nand2_subcircuit,
    ripple_carry_adder_subcircuit,
    sram_cell_subcircuit,
)
from repro.errors import NetlistError, ParameterError


@pytest.fixture(scope="module")
def family():
    return LogicFamily.default(vdd=0.6)


TIGHT = NewtonOptions(vtol=1e-12, reltol=1e-10)


class TestSubCircuitDefinition:
    def test_ports_validated(self):
        with pytest.raises(ParameterError):
            SubCircuit("s", ())
        with pytest.raises(ParameterError):
            SubCircuit("s", ("a", "a"))
        with pytest.raises(ParameterError):
            SubCircuit("s", ("a", "0"))
        with pytest.raises(ParameterError):
            SubCircuit("", ("a",))

    def test_duplicate_element_names_rejected(self):
        sub = SubCircuit("s", ("a",))
        sub.add(Resistor("R1", "a", "0", 1e3))
        with pytest.raises(NetlistError, match="duplicate"):
            sub.add(Resistor("r1", "a", "0", 2e3))

    def test_duplicate_instance_names_rejected(self):
        inner = SubCircuit("i", ("a",))
        inner.add(Resistor("R1", "a", "0", 1e3))
        sub = SubCircuit("s", ("a",))
        sub.add_instance(Instance("X1", inner, ("a",)))
        with pytest.raises(NetlistError, match="duplicate"):
            sub.add_instance(Instance("x1", inner, ("a",)))

    def test_connection_count_mismatch(self):
        sub = SubCircuit("s", ("a", "b"))
        with pytest.raises(ParameterError, match="ports"):
            Instance("X1", sub, ("a",))

    def test_instance_name_must_not_contain_separator(self):
        sub = SubCircuit("s", ("a",))
        with pytest.raises(ParameterError, match="separator"):
            Instance("X.1", sub, ("n",))


class TestFlattening:
    def test_hierarchical_names(self, family):
        inv = inverter_subcircuit(family)
        buf = SubCircuit("buf", ("a", "y", "vdd"))
        buf.add_instance(Instance("X1", inv, ("a", "w", "vdd")))
        buf.add_instance(Instance("X2", inv, ("w", "y", "vdd")))
        circuit = Circuit("t")
        circuit.add(VoltageSource("vdd_src", "vdd", "0", 0.6))
        circuit.add(VoltageSource("vin", "in", "0", 0.0))
        buf.instantiate(circuit, "Xb", ("in", "out", "vdd"))
        names = [el.name for el in circuit.elements]
        assert "Xb.X1.m_p" in names and "Xb.X2.m_n" in names
        assert "Xb.w" in circuit.nodes          # internal net prefixed
        assert "out" in circuit.nodes           # port bound to parent

    def test_ground_stays_global(self, family):
        inv = inverter_subcircuit(family)
        circuit = Circuit("t")
        circuit.add(VoltageSource("vdd_src", "vdd", "0", 0.6))
        circuit.add(VoltageSource("vin", "in", "0", 0.0))
        inv.instantiate(circuit, "Xi", ("in", "out", "vdd"))
        # the pull-down source terminal must still be ground, not a
        # prefixed net
        pulldown = circuit.element("Xi.m_n")
        assert pulldown.nodes[2] == "0"

    def test_port_bound_to_ground(self):
        sub = SubCircuit("s", ("a", "b"))
        sub.add(Resistor("R1", "a", "b", 1e3))
        circuit = Circuit("t")
        circuit.add(VoltageSource("v1", "top", "0", 1.0))
        sub.instantiate(circuit, "Xs", ("top", "0"))
        op = operating_point(circuit)
        assert op.element_current("Xs.R1") == pytest.approx(1e-3)

    def test_net_collision_raises(self, family):
        inv = inverter_subcircuit(family)
        circuit = Circuit("t")
        circuit.add(VoltageSource("vdd_src", "vdd", "0", 0.6))
        # Pre-existing net that matches the instance's internal
        # element naming is fine; a *net* named like a would-be
        # internal net must refuse to merge.  The inverter has no
        # internal nets, so use a NAND (internal "m_mid").
        nand = nand2_subcircuit(family)
        circuit.add(Resistor("rx", "Xg.m_mid", "0", 1e3))
        with pytest.raises(ParameterError, match="collides"):
            nand.instantiate(circuit, "Xg", ("a", "b", "y", "vdd"))

    def test_duplicate_flat_element_name_raises(self, family):
        inv = inverter_subcircuit(family)
        circuit = Circuit("t")
        circuit.add(VoltageSource("vdd_src", "vdd", "0", 0.6))
        circuit.add(Resistor("Xi.m_p", "a", "0", 1e3))
        with pytest.raises(NetlistError, match="duplicate"):
            inv.instantiate(circuit, "Xi", ("a", "y", "vdd"))

    def test_recursion_detected(self):
        a = SubCircuit("a", ("p",))
        b = SubCircuit("b", ("p",))
        a.add_instance(Instance("Xb", b, ("p",)))
        b.add_instance(Instance("Xa", a, ("p",)))
        circuit = Circuit("t")
        circuit.add(VoltageSource("v1", "n", "0", 1.0))
        with pytest.raises(ParameterError, match="recursive"):
            a.instantiate(circuit, "Xtop", ("n",))

    def test_clone_state_is_per_instance(self):
        sub = SubCircuit("s", ("a",))
        sub.add(Capacitor("C1", "a", "0", 1e-15))
        circuit = Circuit("t")
        circuit.add(VoltageSource("v1", "n1", "0", 1.0))
        circuit.add(Resistor("r1", "n1", "n2", 1e3))
        circuit.add(Resistor("r2", "n1", "n3", 1e3))
        sub.instantiate(circuit, "X1", ("n2",))
        sub.instantiate(circuit, "X2", ("n3",))
        c1, c2 = circuit.element("X1.C1"), circuit.element("X2.C1")
        assert c1 is not c2
        c1._i_prev = 42.0
        assert c2._i_prev == 0.0
        # prototype untouched
        assert sub.elements[0]._i_prev == 0.0


class TestFlattenParity:
    def test_hierarchical_adder_matches_manual_flat(self, family):
        """A 2-bit hierarchical RCA vs the same circuit hand-built
        flat with identical names: identical solutions (the sorted
        node mapping makes the systems bit-comparable)."""
        bits, a_val, b_val = 2, 0b01, 0b11
        hier, info = build_ripple_carry_adder(
            family, bits, a_value=a_val, b_value=b_val)

        flat = Circuit("manual")
        flat.add(VoltageSource("vdd_src", "vdd", "0", family.vdd))
        for i in range(bits):
            flat.add(VoltageSource(
                f"va{i}", f"a{i}", "0",
                family.vdd if (a_val >> i) & 1 else 0.0))
            flat.add(VoltageSource(
                f"vb{i}", f"b{i}", "0",
                family.vdd if (b_val >> i) & 1 else 0.0))
        flat.add(VoltageSource("vcin", "cin", "0", 0.0))
        wires = [
            ("Xn1", "a", "b", "n1"),
            ("Xn2", "a", "n1", "n2"),
            ("Xn3", "b", "n1", "n3"),
            ("Xn4", "n2", "n3", "h"),
            ("Xn5", "h", "cin", "n4"),
            ("Xn6", "h", "n4", "n5"),
            ("Xn7", "cin", "n4", "n6"),
            ("Xn8", "n5", "n6", "sum"),
            ("Xn9", "n1", "n4", "cout"),
        ]
        for i in range(bits):
            fa = f"Xrca.Xfa{i}"
            bind = {"a": f"a{i}", "b": f"b{i}",
                    "cin": "cin" if i == 0 else f"Xrca.c{i}",
                    "sum": f"s{i}",
                    "cout": "cout" if i == bits - 1
                    else f"Xrca.c{i + 1}",
                    "vdd": "vdd"}
            for inst, in_a, in_b, out in wires:
                gate = f"{fa}.{inst}"
                nets = {
                    "a": bind.get(in_a, f"{fa}.{in_a}"),
                    "b": bind.get(in_b, f"{fa}.{in_b}"),
                    "y": bind.get(out, f"{fa}.{out}"),
                }
                add_nand2(flat, family, f"{gate}.m", nets["a"],
                          nets["b"], nets["y"], "vdd")
        for i in range(bits):
            flat.add(Capacitor(f"cs{i}", f"s{i}", "0", family.load_f))
        flat.add(Capacitor("ccout", "cout", "0", family.load_f))

        assert hier.node_index == flat.node_index
        op_h = operating_point(hier, TIGHT)
        op_f = operating_point(flat, TIGHT)
        deviation = max(
            abs(op_h.voltage(n) - op_f.voltage(n)) for n in hier.nodes
        )
        assert deviation <= 1e-12

    def test_adder_truth_table_dc(self, family):
        bits = 3
        for a_val, b_val, cin in ((0b101, 0b011, 0), (0b111, 0b001, 1)):
            circuit, info = build_ripple_carry_adder(
                family, bits, a_value=a_val, b_value=b_val,
                cin_wave=family.vdd if cin else 0.0)
            op = operating_point(circuit)
            total = a_val + b_val + cin
            got = sum(
                (1 if op.voltage(n) > family.vdd / 2 else 0) << i
                for i, n in enumerate(info["sum_nodes"])
            )
            got |= (1 if op.voltage(info["cout"]) > family.vdd / 2
                    else 0) << bits
            assert got == total


class TestBlocks:
    def test_full_adder_ports(self, family):
        fa = full_adder_subcircuit(family)
        assert fa.ports == ("a", "b", "cin", "sum", "cout", "vdd")
        assert len(fa.instances) == 9

    def test_shared_prototype_reused(self, family):
        nand = nand2_subcircuit(family)
        fa = full_adder_subcircuit(family, nand2=nand)
        assert all(inst.subcircuit is nand for inst in fa.instances)

    def test_rca_validation(self, family):
        with pytest.raises(ParameterError):
            ripple_carry_adder_subcircuit(family, 0)

    def test_inverter_chain_logic(self, family):
        # even chain: buffer; odd chain: inverter
        for stages, expect_high in ((4, False), (5, True)):
            circuit, out = build_inverter_chain(
                family, stages, vin_wave=0.0)
            op = operating_point(circuit)
            assert (op.voltage(out) > family.vdd / 2) == expect_high

    def test_chain_subcircuit_internal_nodes(self, family):
        chain = inverter_chain_subcircuit(family, 3)
        assert len(chain.instances) == 3

    def test_mux_tree_selects(self, family):
        mux = mux_tree_subcircuit(family, 2)
        assert mux.ports[:4] == ("d0", "d1", "d2", "d3")
        vdd = family.vdd
        for select, want in ((0, 0.0), (1, vdd), (2, vdd), (3, 0.0)):
            circuit = Circuit("mux bench")
            circuit.add(VoltageSource("vdd_src", "vdd", "0", vdd))
            data = (0.0, vdd, vdd, 0.0)
            for i, v in enumerate(data):
                circuit.add(VoltageSource(f"vd{i}", f"d{i}", "0", v))
            circuit.add(VoltageSource(
                "vs0", "s0", "0", vdd if select & 1 else 0.0))
            circuit.add(VoltageSource(
                "vs1", "s1", "0", vdd if select & 2 else 0.0))
            mux.instantiate(circuit, "Xm", ("d0", "d1", "d2", "d3",
                                            "s0", "s1", "y", "vdd"))
            circuit.add(Capacitor("cl", "y", "0", 1e-17))
            op = operating_point(circuit)
            assert op.voltage("y") == pytest.approx(want, abs=0.05)

    def test_sram_cell_holds_state(self, family):
        sram = sram_cell_subcircuit(family)
        vdd = family.vdd
        circuit = Circuit("sram bench")
        circuit.add(VoltageSource("vdd_src", "vdd", "0", vdd))
        circuit.add(VoltageSource("vbl", "bl", "0", vdd))
        circuit.add(VoltageSource("vblb", "blb", "0", 0.0))
        circuit.add(VoltageSource("vwl", "wl", "0", vdd))
        sram.instantiate(circuit, "Xc", ("bl", "blb", "wl", "q", "qb",
                                         "vdd"))
        # wordline high, bitlines driven: the cell is written to q=1
        op = operating_point(circuit)
        assert op.voltage("q") > 0.8 * vdd
        assert op.voltage("qb") < 0.2 * vdd


class TestHierarchicalTransient(object):
    def test_chain_propagates_edge(self, family):
        from repro.circuit.waveforms import Pulse

        circuit, out = build_inverter_chain(
            family, 4, vin_wave=Pulse(0.0, family.vdd, 2e-12, 5e-13,
                                      5e-13, 2e-11, 4e-11))
        ds = transient(circuit, tstop=1.5e-11, record_currents=False)
        v_out = ds.voltage(out)
        # buffer chain: output follows input high after 4 gate delays
        assert v_out[0] < 0.1 * family.vdd
        assert v_out[-1] > 0.9 * family.vdd


class TestCollisionEdgeCases:
    """Regression coverage for review findings on the collision and
    recursion checks."""

    def test_connection_net_colliding_with_internal_raises(self):
        """A port bound to a net named like a generated hierarchical
        name must raise, even when that net does not exist in the
        circuit yet (it would otherwise silently short the two)."""
        sub = SubCircuit("s", ("a",))
        sub.add(Resistor("r1", "a", "n1", 1e3))
        sub.add(Resistor("r2", "n1", "0", 1e3))
        circuit = Circuit("t")
        circuit.add(VoltageSource("v1", "drive", "0", 1.0))
        with pytest.raises(ParameterError, match="collides"):
            sub.instantiate(circuit, "X1", ("X1.n1",))

    def test_distinct_same_named_definitions_allowed(self):
        """Two different definitions sharing a name along one
        instantiation path are not recursion."""
        inner_inv = SubCircuit("inv", ("p",))
        inner_inv.add(Resistor("r1", "p", "0", 1e3))
        mid = SubCircuit("mid", ("p",))
        mid.add_instance(Instance("Xi", inner_inv, ("p",)))
        outer = SubCircuit("inv", ("p",))  # same name, distinct object
        outer.add_instance(Instance("Xm", mid, ("p",)))
        circuit = Circuit("t")
        circuit.add(VoltageSource("v1", "n", "0", 1.0))
        outer.instantiate(circuit, "Xtop", ("n",))
        assert "Xtop.Xm.Xi.r1" in [el.name for el in circuit.elements]
