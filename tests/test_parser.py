"""SPICE-flavoured netlist parser."""

import numpy as np
import pytest

from repro.circuit import operating_point
from repro.circuit.elements import (
    Capacitor,
    CNFETElement,
    Diode,
    Resistor,
    VoltageSource,
)
from repro.circuit.parser import parse_netlist
from repro.circuit.waveforms import DC, Pulse, PWLWaveform, Sine
from repro.errors import ParseError


class TestBasicElements:
    def test_divider_deck(self):
        deck = parse_netlist("""
        * a comment line
        V1 in 0 DC 12
        R1 in mid 2k
        R2 mid 0 1k   ; trailing comment
        .end
        """)
        op = operating_point(deck.circuit)
        assert op.voltage("mid") == pytest.approx(4.0)

    def test_engineering_suffixes(self):
        deck = parse_netlist("R1 a 0 4.7meg\nV1 a 0 1\n")
        r = deck.circuit.element("r1")
        assert r.resistance == pytest.approx(4.7e6)

    def test_capacitor_with_ic(self):
        deck = parse_netlist("C1 a 0 10p ic=0.5\nV1 a 0 1\n")
        cap = deck.circuit.element("c1")
        assert isinstance(cap, Capacitor)
        assert cap.capacitance == pytest.approx(10e-12)
        assert cap.initial_voltage == pytest.approx(0.5)

    def test_diode_parameters(self):
        deck = parse_netlist("D1 a 0 is=1e-12 n=1.5\nV1 a 0 1\n")
        d = deck.circuit.element("d1")
        assert isinstance(d, Diode)
        assert d.saturation_current == pytest.approx(1e-12)

    def test_continuation_lines(self):
        deck = parse_netlist("""
        V1 in 0
        + DC 3
        R1 in 0 1k
        """)
        assert deck.circuit.element("v1").waveform.dc_value() == 3.0


class TestWaveforms:
    def test_pulse(self):
        deck = parse_netlist(
            "V1 in 0 PULSE(0 1 1n 0.1n 0.1n 5n 10n)\nR1 in 0 1k\n"
        )
        w = deck.circuit.element("v1").waveform
        assert isinstance(w, Pulse)
        assert w.v2 == 1.0
        assert w.period == pytest.approx(10e-9)

    def test_sin(self):
        deck = parse_netlist("V1 in 0 SIN(0.3 0.1 1meg)\nR1 in 0 1k\n")
        w = deck.circuit.element("v1").waveform
        assert isinstance(w, Sine)
        assert w.frequency == pytest.approx(1e6)

    def test_pwl(self):
        deck = parse_netlist("V1 in 0 PWL(0 0 1n 1 2n 0)\nR1 in 0 1k\n")
        w = deck.circuit.element("v1").waveform
        assert isinstance(w, PWLWaveform)
        assert w.value(0.5e-9) == pytest.approx(0.5)

    def test_bare_value_is_dc(self):
        deck = parse_netlist("I1 0 out 2m\nR1 out 0 1k\n")
        w = deck.circuit.element("i1").waveform
        assert isinstance(w, DC)
        assert w.level == pytest.approx(2e-3)


class TestCnfetCards:
    DECK = """
    .model fast cnfet model=model2 temperature_k=300 fermi_level_ev=-0.32
    Vd d 0 0.4
    Vg g 0 0.5
    Q1 d g 0 fast l=25n
    """

    def test_model_and_instance(self):
        deck = parse_netlist(self.DECK)
        q = deck.circuit.element("q1")
        assert isinstance(q, CNFETElement)
        assert q.length_m == pytest.approx(25e-9)
        assert "fast" in deck.models

    def test_instance_current_matches_device(self):
        deck = parse_netlist(self.DECK)
        op = operating_point(deck.circuit)
        device = deck.models["fast"]
        assert op.element_current("q1") == pytest.approx(
            device.ids(0.5, 0.4), rel=1e-6
        )

    def test_unknown_model_rejected(self):
        with pytest.raises(ParseError):
            parse_netlist("Q1 d g 0 ghost\nV1 d 0 1\n")

    def test_unknown_model_parameter_rejected(self):
        with pytest.raises(ParseError):
            parse_netlist(".model m cnfet bogus_param=1\n")

    def test_duplicate_model_rejected(self):
        with pytest.raises(ParseError):
            parse_netlist(
                ".model m cnfet\n.model m cnfet\n"
            )


class TestDirectives:
    def test_dc_directive(self):
        deck = parse_netlist("""
        V1 in 0 0
        R1 in 0 1k
        .dc V1 0 0.6 13
        """)
        assert len(deck.analyses) == 1
        a = deck.analyses[0]
        assert a.kind == "dc" and a.source == "V1"
        assert a.params["points"] == 13

    def test_tran_directive(self):
        deck = parse_netlist("""
        V1 in 0 1
        R1 in 0 1k
        .tran 1p 2n be
        """)
        a = deck.analyses[0]
        assert a.kind == "tran"
        assert a.method == "be"
        assert a.params["tstop"] == pytest.approx(2e-9)

    def test_end_stops_parsing(self):
        deck = parse_netlist("""
        V1 in 0 1
        R1 in 0 1k
        .end
        R2 bogus syntax not parsed
        """)
        assert "r2" not in deck.circuit


class TestErrors:
    @pytest.mark.parametrize("deck", [
        "Z1 a b 1k\n",                      # unknown element letter
        ".dc V1 0 1\n",                     # wrong arity
        ".tran 1p\n",                       # wrong arity
        ".options reltol=1\n",              # unsupported directive
        "+ continuation first\n",           # leading continuation
        "Q1 d g 0\nV1 d 0 1\n",             # cnfet missing model
        ".model m bjt\n",                   # unsupported model type
        "R1 a 0\n",                         # missing value
    ])
    def test_parse_errors(self, deck):
        with pytest.raises(ParseError):
            parse_netlist(deck)

    def test_error_carries_line_number(self):
        try:
            parse_netlist("V1 in 0 1\nZZZ\n")
        except ParseError as exc:
            assert exc.line_number == 2
        else:  # pragma: no cover
            pytest.fail("expected ParseError")


NAND2_DEF = """
.model fast cnfet model=model2 fermi_level_ev=-0.32
.subckt nand2 a b y vdd
Qpa y a vdd fast polarity=p
Qpb y b vdd fast polarity=p
Qna y a mid fast
Qnb mid b 0 fast
.ends nand2
"""


class TestSubcircuits:
    def test_two_level_round_trip(self):
        """Definitions nested two levels deep flatten with
        dot-separated hierarchical names and simulate correctly."""
        deck = parse_netlist(NAND2_DEF + """
        .subckt and2 a b y vdd
        Xn a b w vdd nand2
        Xinvp y w vdd fast polarity=p
        Xinvn y w 0 fast
        .ends and2
        Vdd vdd 0 0.6
        Va a 0 0.6
        Vb b 0 0.6
        Xg a b out vdd and2
        Cl out 0 1e-17
        .end
        """)
        assert sorted(deck.subcircuits) == ["and2", "nand2"]
        names = [el.name for el in deck.circuit.elements]
        assert "Xg.Xn.Qna" in names          # two-level prefix
        assert "Xg.Xinvp" in names           # one-level prefix
        assert "Xg.Xn.mid" in deck.circuit.nodes
        assert "Xg.w" in deck.circuit.nodes
        op = operating_point(deck.circuit)
        assert op.voltage("out") > 0.5       # AND(1, 1) = 1

    def test_forward_reference_between_definitions(self):
        """A subckt body may instance a subckt defined later."""
        deck = parse_netlist("""
        .subckt outer a
        X1 a inner
        .ends
        .subckt inner a
        R1 a 0 1k
        .ends
        V1 n 0 1
        Xo n outer
        .end
        """)
        assert "Xo.X1.R1" in [el.name for el in deck.circuit.elements]

    def test_x_prefers_subckt_over_model(self):
        """An X card whose last token names both resolves as an
        instance (documented precedence)."""
        deck = parse_netlist("""
        .model fast cnfet
        .subckt fast a
        R1 a 0 1k
        .ends
        V1 n 0 1
        X1 n fast
        .end
        """)
        assert "X1.R1" in [el.name for el in deck.circuit.elements]

    def test_subckt_error_cards(self):
        cases = {
            ".subckt\n": "needs",
            ".subckt s a\n.subckt t b\n.ends\n.ends\n": "nested",
            ".ends\n": "without",
            ".subckt s a\nR1 a 0 1k\n.ends t\n": "match",
            ".subckt s a\nR1 a 0 1k\n.end\n": "unterminated",
            ".subckt s a\n.model m cnfet\n.ends\n": "global",
            ".subckt s a\n.dc V1 0 1 5\n.ends\n": "inside",
            ".subckt s a\n.ends\n.subckt s a\n.ends\nV1 a 0 1\n":
                "duplicate subcircuit",
            "V1 a 0 1\nX1 a b nosuch\n": "no .subckt",
        }
        for deck, needle in cases.items():
            with pytest.raises(ParseError, match=needle):
                parse_netlist(deck)

    def test_instance_params_rejected(self):
        with pytest.raises(ParseError, match="parameters"):
            parse_netlist("""
            .subckt s a
            R1 a 0 1k
            .ends
            V1 n 0 1
            X1 n s l=30n
            .end
            """)

    def test_port_count_mismatch_carries_line(self):
        try:
            parse_netlist("""
            .subckt s a b
            R1 a b 1k
            .ends
            V1 n 0 1
            X1 n s
            .end
            """)
        except ParseError as exc:
            assert exc.line_number == 6
            assert "ports" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected ParseError")

    def test_flatten_collision_carries_line(self):
        """Errors raised while expanding a top-level instance report
        the X card's source line."""
        try:
            parse_netlist("""
            .subckt s a
            R1 a w 1k
            R2 w 0 1k
            .ends
            V1 n 0 1
            Rpre Xs.w 0 1k
            Xs n s
            .end
            """)
        except ParseError as exc:
            assert exc.line_number == 8
            assert "collides" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected ParseError")


class TestDuplicateNames:
    def test_duplicate_reports_both_lines(self):
        try:
            parse_netlist("R1 a 0 1k\nV1 a 0 1\nr1 a 0 2k\n")
        except ParseError as exc:
            assert exc.line_number == 3
            assert "line 1" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected ParseError")

    def test_duplicate_across_continuation_join(self):
        """A card assembled from continuation lines reports the line
        it started on."""
        try:
            parse_netlist("R1 a 0\n+ 1k\nR1 b 0 1k\n")
        except ParseError as exc:
            assert exc.line_number == 3
            assert "line 1" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected ParseError")

    def test_duplicate_cnfet_instances(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse_netlist("""
            .model m cnfet
            Q1 d g 0 m
            Q1 d g 0 m
            .end
            """)

    def test_same_name_in_different_scopes_allowed(self):
        deck = parse_netlist("""
        .subckt s a
        R1 a 0 1k
        .ends
        R1 n 0 1k
        V1 n 0 1
        Xs n s
        .end
        """)
        names = [el.name for el in deck.circuit.elements]
        assert "R1" in names and "Xs.R1" in names
