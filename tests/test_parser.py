"""SPICE-flavoured netlist parser."""

import numpy as np
import pytest

from repro.circuit import operating_point
from repro.circuit.elements import (
    Capacitor,
    CNFETElement,
    Diode,
    Resistor,
    VoltageSource,
)
from repro.circuit.parser import parse_netlist
from repro.circuit.waveforms import DC, Pulse, PWLWaveform, Sine
from repro.errors import ParseError


class TestBasicElements:
    def test_divider_deck(self):
        deck = parse_netlist("""
        * a comment line
        V1 in 0 DC 12
        R1 in mid 2k
        R2 mid 0 1k   ; trailing comment
        .end
        """)
        op = operating_point(deck.circuit)
        assert op.voltage("mid") == pytest.approx(4.0)

    def test_engineering_suffixes(self):
        deck = parse_netlist("R1 a 0 4.7meg\nV1 a 0 1\n")
        r = deck.circuit.element("r1")
        assert r.resistance == pytest.approx(4.7e6)

    def test_capacitor_with_ic(self):
        deck = parse_netlist("C1 a 0 10p ic=0.5\nV1 a 0 1\n")
        cap = deck.circuit.element("c1")
        assert isinstance(cap, Capacitor)
        assert cap.capacitance == pytest.approx(10e-12)
        assert cap.initial_voltage == pytest.approx(0.5)

    def test_diode_parameters(self):
        deck = parse_netlist("D1 a 0 is=1e-12 n=1.5\nV1 a 0 1\n")
        d = deck.circuit.element("d1")
        assert isinstance(d, Diode)
        assert d.saturation_current == pytest.approx(1e-12)

    def test_continuation_lines(self):
        deck = parse_netlist("""
        V1 in 0
        + DC 3
        R1 in 0 1k
        """)
        assert deck.circuit.element("v1").waveform.dc_value() == 3.0


class TestWaveforms:
    def test_pulse(self):
        deck = parse_netlist(
            "V1 in 0 PULSE(0 1 1n 0.1n 0.1n 5n 10n)\nR1 in 0 1k\n"
        )
        w = deck.circuit.element("v1").waveform
        assert isinstance(w, Pulse)
        assert w.v2 == 1.0
        assert w.period == pytest.approx(10e-9)

    def test_sin(self):
        deck = parse_netlist("V1 in 0 SIN(0.3 0.1 1meg)\nR1 in 0 1k\n")
        w = deck.circuit.element("v1").waveform
        assert isinstance(w, Sine)
        assert w.frequency == pytest.approx(1e6)

    def test_pwl(self):
        deck = parse_netlist("V1 in 0 PWL(0 0 1n 1 2n 0)\nR1 in 0 1k\n")
        w = deck.circuit.element("v1").waveform
        assert isinstance(w, PWLWaveform)
        assert w.value(0.5e-9) == pytest.approx(0.5)

    def test_bare_value_is_dc(self):
        deck = parse_netlist("I1 0 out 2m\nR1 out 0 1k\n")
        w = deck.circuit.element("i1").waveform
        assert isinstance(w, DC)
        assert w.level == pytest.approx(2e-3)


class TestCnfetCards:
    DECK = """
    .model fast cnfet model=model2 temperature_k=300 fermi_level_ev=-0.32
    Vd d 0 0.4
    Vg g 0 0.5
    Q1 d g 0 fast l=25n
    """

    def test_model_and_instance(self):
        deck = parse_netlist(self.DECK)
        q = deck.circuit.element("q1")
        assert isinstance(q, CNFETElement)
        assert q.length_m == pytest.approx(25e-9)
        assert "fast" in deck.models

    def test_instance_current_matches_device(self):
        deck = parse_netlist(self.DECK)
        op = operating_point(deck.circuit)
        device = deck.models["fast"]
        assert op.element_current("q1") == pytest.approx(
            device.ids(0.5, 0.4), rel=1e-6
        )

    def test_unknown_model_rejected(self):
        with pytest.raises(ParseError):
            parse_netlist("Q1 d g 0 ghost\nV1 d 0 1\n")

    def test_unknown_model_parameter_rejected(self):
        with pytest.raises(ParseError):
            parse_netlist(".model m cnfet bogus_param=1\n")

    def test_duplicate_model_rejected(self):
        with pytest.raises(ParseError):
            parse_netlist(
                ".model m cnfet\n.model m cnfet\n"
            )


class TestDirectives:
    def test_dc_directive(self):
        deck = parse_netlist("""
        V1 in 0 0
        R1 in 0 1k
        .dc V1 0 0.6 13
        """)
        assert len(deck.analyses) == 1
        a = deck.analyses[0]
        assert a.kind == "dc" and a.source == "V1"
        assert a.params["points"] == 13

    def test_tran_directive(self):
        deck = parse_netlist("""
        V1 in 0 1
        R1 in 0 1k
        .tran 1p 2n be
        """)
        a = deck.analyses[0]
        assert a.kind == "tran"
        assert a.method == "be"
        assert a.params["tstop"] == pytest.approx(2e-9)

    def test_end_stops_parsing(self):
        deck = parse_netlist("""
        V1 in 0 1
        R1 in 0 1k
        .end
        R2 bogus syntax not parsed
        """)
        assert "r2" not in deck.circuit


class TestErrors:
    @pytest.mark.parametrize("deck", [
        "Z1 a b 1k\n",                      # unknown element letter
        ".dc V1 0 1\n",                     # wrong arity
        ".tran 1p\n",                       # wrong arity
        ".options reltol=1\n",              # unsupported directive
        "+ continuation first\n",           # leading continuation
        "Q1 d g 0\nV1 d 0 1\n",             # cnfet missing model
        ".model m bjt\n",                   # unsupported model type
        "R1 a 0\n",                         # missing value
    ])
    def test_parse_errors(self, deck):
        with pytest.raises(ParseError):
            parse_netlist(deck)

    def test_error_carries_line_number(self):
        try:
            parse_netlist("V1 in 0 1\nZZZ\n")
        except ParseError as exc:
            assert exc.line_number == 2
        else:  # pragma: no cover
            pytest.fail("expected ParseError")
