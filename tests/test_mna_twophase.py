"""Two-phase assembly must reproduce the one-phase companion system.

The static/dynamic split is an implementation detail of the Newton
loop: for any circuit and any iterate, copying the static stamps and
re-stamping only the nonlinear elements must produce the same matrix
and right-hand side as stamping everything from scratch (up to
summation-order rounding).
"""

import numpy as np
import pytest

from repro.circuit import (
    Capacitor,
    Circuit,
    CNFETElement,
    Diode,
    Resistor,
    VoltageSource,
    dc_sweep,
    transient,
)
from repro.circuit.logic import LogicFamily, build_ring_oscillator
from repro.circuit.mna import TwoPhaseAssembler, assemble
from repro.circuit.transient import initial_conditions_from_op
from repro.errors import AnalysisError
from repro.experiments.workloads import default_device_parameters
from repro.pwl.device import CNFET


def _mixed_circuit() -> Circuit:
    c = Circuit("mixed linear/nonlinear")
    c.add(VoltageSource("vdd", "vdd", "0", 0.6))
    c.add(VoltageSource("vin", "in", "0", 0.25))
    c.add(Resistor("r1", "vdd", "out", 2e5))
    c.add(Capacitor("cl", "out", "0", 1e-15))
    c.add(Diode("d1", "out", "0"))
    c.add(CNFETElement("q1", "out", "in", "0",
                       device=CNFET(default_device_parameters())))
    return c


class TestAssemblyEquivalence:
    @pytest.mark.parametrize("analysis,kwargs", [
        ("dc", {}),
        ("tran", {"time": 1e-12, "dt": 1e-12, "method": "be"}),
        ("tran", {"time": 1e-12, "dt": 1e-12, "method": "trap"}),
    ])
    def test_matches_one_phase(self, analysis, kwargs):
        c = _mixed_circuit()
        n = c.dimension()
        rng = np.random.default_rng(7)
        x = 0.3 * rng.standard_normal(n)
        x_prev = 0.3 * rng.standard_normal(n) if analysis == "tran" \
            else None
        ref = assemble(c, x, analysis=analysis, x_prev=x_prev, **kwargs)
        asm = TwoPhaseAssembler(c)
        asm.begin_step(analysis=analysis, x_prev=x_prev, **kwargs)
        got = asm.iterate(x)
        np.testing.assert_allclose(got.matrix, ref.matrix, rtol=1e-12,
                                   atol=1e-30)
        np.testing.assert_allclose(got.rhs, ref.rhs, rtol=1e-12,
                                   atol=1e-30)

    def test_iterate_is_repeatable(self):
        """Re-iterating at the same x must not accumulate stamps."""
        c = _mixed_circuit()
        x = np.zeros(c.dimension())
        asm = TwoPhaseAssembler(c)
        asm.begin_step()
        first = asm.iterate(x)
        m1 = first.matrix.copy()
        z1 = first.rhs.copy()
        second = asm.iterate(x)
        np.testing.assert_array_equal(second.matrix, m1)
        np.testing.assert_array_equal(second.rhs, z1)

    def test_iterate_before_begin_rejected(self):
        c = _mixed_circuit()
        with pytest.raises(AnalysisError):
            TwoPhaseAssembler(c).iterate(np.zeros(c.dimension()))

    def test_source_scale_applies_to_static_phase(self):
        c = _mixed_circuit()
        asm = TwoPhaseAssembler(c)
        asm.begin_step(source_scale=0.5)
        half = asm.iterate(np.zeros(c.dimension())).rhs.copy()
        asm.begin_step(source_scale=1.0)
        full = asm.iterate(np.zeros(c.dimension())).rhs.copy()
        vdd = c.element("vdd")
        assert half[vdd.aux_index] == pytest.approx(
            0.5 * full[vdd.aux_index])


class TestEndToEndConsistency:
    def test_dc_sweep_reuses_buffers(self):
        """A sweep with the shared assembler equals fresh solves."""
        c = _mixed_circuit()
        values = np.linspace(0.0, 0.6, 7)
        ds = dc_sweep(c, "vin", values)
        from repro.circuit import operating_point
        from repro.circuit.waveforms import DC as DCWave

        vin = c.element("vin")
        original = vin.waveform
        try:
            for k, v in enumerate(values):
                vin.waveform = DCWave(float(v))
                op = operating_point(c)
                assert ds.voltage("out")[k] == pytest.approx(
                    op.voltage("out"), abs=1e-9)
        finally:
            vin.waveform = original

    def test_ring_oscillator_waveforms_stable(self):
        """The two-phase engine + analytic charge partials keep the
        ring-oscillator waveform (regression guard for the perf PR)."""
        family = LogicFamily.default(vdd=0.6)
        ring, _ = build_ring_oscillator(family, stages=3)
        x0 = initial_conditions_from_op(ring, {"n0": 0.0, "n1": 0.6})
        ds = transient(ring, tstop=6e-11, dt=2e-12, x0=x0, method="be")
        swing = ds.swing("v(n0)")
        assert swing > 0.2
        # Current traces exist and are finite (vectorized post-pass).
        for name in ds.names:
            assert np.all(np.isfinite(ds.trace(name)))
