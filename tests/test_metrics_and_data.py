"""Experiment metrics, synthetic experimental data, report rendering."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.experiments.experimental_data import generate_experimental_data
from repro.experiments.metrics import (
    average_rms_error_percent,
    error_table,
    rms_error_percent,
)
from repro.experiments.report import ascii_table, series_block, sparkline


class TestRmsError:
    def test_identical_is_zero(self):
        r = np.array([1.0, 2.0, 3.0])
        assert rms_error_percent(r, r) == 0.0

    def test_peak_normalisation(self):
        ref = np.array([0.0, 1.0, 2.0])
        model = ref + 0.2
        expected = 100.0 * 0.2 / 2.0
        assert rms_error_percent(model, ref) == pytest.approx(expected)

    def test_mean_vs_peak_ordering(self):
        ref = np.array([0.1, 0.5, 2.0])
        model = ref * 1.1
        peak = rms_error_percent(model, ref, "peak")
        mean = rms_error_percent(model, ref, "mean")
        assert mean > peak  # mean |ref| < max |ref|

    def test_pointwise_excludes_near_zero(self):
        ref = np.array([1e-12, 1.0, 2.0])
        model = np.array([5e-12, 1.1, 2.2])
        err = rms_error_percent(model, ref, "pointwise")
        assert err == pytest.approx(10.0, rel=0.01)

    @pytest.mark.parametrize("bad", [
        (np.ones(3), np.ones(4)),
        (np.array([]), np.array([])),
    ])
    def test_shape_validation(self, bad):
        with pytest.raises(ParameterError):
            rms_error_percent(*bad)

    def test_unknown_normalisation(self):
        with pytest.raises(ParameterError):
            rms_error_percent(np.ones(2), np.ones(2), "median")

    def test_zero_reference_rejected(self):
        with pytest.raises(ParameterError):
            rms_error_percent(np.ones(2), np.zeros(2))


class TestFamilyMetrics:
    def test_average_over_rows(self):
        ref = np.array([[1.0, 2.0], [2.0, 4.0]])
        model = ref * 1.1
        avg = average_rms_error_percent(model, ref)
        assert avg == pytest.approx(
            np.mean([rms_error_percent(model[i], ref[i]) for i in range(2)])
        )

    def test_error_table_keys(self):
        ref = np.array([[1.0, 2.0], [2.0, 4.0]])
        table = error_table(ref * 1.05, ref, [0.3, 0.6])
        assert set(table) == {0.3, 0.6}

    def test_error_table_length_check(self):
        with pytest.raises(ParameterError):
            error_table(np.ones((2, 2)), np.ones((2, 2)), [0.3])

    def test_dimension_check(self):
        with pytest.raises(ParameterError):
            average_rms_error_percent(np.ones(3), np.ones(3))


class TestExperimentalData:
    def test_deterministic(self):
        a = generate_experimental_data([0.4], [0.0, 0.2, 0.4])
        b = generate_experimental_data([0.4], [0.0, 0.2, 0.4])
        np.testing.assert_array_equal(a.ids, b.ids)

    def test_zero_vds_zero_current(self):
        data = generate_experimental_data([0.4], [0.0, 0.2])
        assert data.ids[0, 0] == 0.0

    def test_degraded_below_ballistic(self):
        from repro.experiments.workloads import javey_device_parameters
        from repro.reference.fettoy import FETToyModel

        model = FETToyModel(javey_device_parameters())
        data = generate_experimental_data([0.6], [0.4],
                                          ripple_amplitude=0.0)
        assert data.ids[0, 0] < model.ids(0.6, 0.4)

    def test_validation(self):
        with pytest.raises(ParameterError):
            generate_experimental_data([0.4], [0.2], transmission=0.0)
        with pytest.raises(ParameterError):
            generate_experimental_data([0.4], [0.2],
                                       series_resistance_ohm=-1.0)

    def test_curve_lookup(self):
        data = generate_experimental_data([0.2, 0.4], [0.0, 0.2])
        np.testing.assert_array_equal(data.curve(0.41), data.ids[1])


class TestReport:
    def test_ascii_table_alignment(self):
        text = ascii_table(("a", "bb"), [(1, 2.5), (3, 4.0)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "---" in lines[2]
        assert len(lines) == 5

    def test_series_block_downsamples(self):
        x = np.linspace(0, 1, 100)
        text = series_block("S", "x", x, {"y": x**2}, max_points=5)
        # Header + separator + 5 rows + title.
        assert len(text.splitlines()) == 8

    def test_sparkline(self):
        s = sparkline([0.0, 0.5, 1.0])
        assert len(s) == 3
        assert s[0] == "▁" and s[-1] == "█"

    def test_sparkline_flat_and_empty(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0]) == "--"
