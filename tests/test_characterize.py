"""Gate-characterization subsystem: gates, engine, tables, MC bridge."""

import json
import math

import pytest

from repro.characterize import (
    GATES,
    GateDelayEvaluator,
    characterize_gate,
    gate_spec,
)
from repro.circuit.dc import operating_point
from repro.circuit.logic import (
    LogicFamily,
    build_nand3,
    build_nor2,
    build_tgate_buffer,
)
from repro.errors import ParameterError
from repro.variability.params import default_device_space
from repro.variability.sampling import monte_carlo


@pytest.fixture(scope="module")
def family():
    return LogicFamily.default(vdd=0.6)


class TestNewGateBuilders:
    def _dc_out(self, circuit, out):
        return operating_point(circuit).voltage(out)

    @pytest.mark.parametrize("a,b,expected", [
        (0.0, 0.0, 1.0), (0.6, 0.0, 0.0), (0.0, 0.6, 0.0),
        (0.6, 0.6, 0.0),
    ])
    def test_nor2_truth_table(self, family, a, b, expected):
        circuit, out = build_nor2(family, wave_a=a, wave_b=b)
        level = self._dc_out(circuit, out)
        assert level == pytest.approx(0.6 * expected, abs=0.1)

    @pytest.mark.parametrize("a,b,c,expected", [
        (0.0, 0.6, 0.6, 1.0), (0.6, 0.6, 0.6, 0.0), (0.6, 0.0, 0.6, 1.0),
    ])
    def test_nand3_truth_table(self, family, a, b, c, expected):
        circuit, out = build_nand3(family, wave_a=a, wave_b=b, wave_c=c)
        level = self._dc_out(circuit, out)
        assert level == pytest.approx(0.6 * expected, abs=0.1)

    @pytest.mark.parametrize("vin", [0.0, 0.6])
    def test_tgate_passes_both_levels(self, family, vin):
        circuit, out = build_tgate_buffer(family, vin_wave=vin)
        level = self._dc_out(circuit, out)
        assert level == pytest.approx(vin, abs=0.1)


class TestGateRegistry:
    def test_known_gates(self):
        assert set(GATES) == {"inverter", "nand2", "nor2", "nand3",
                              "tgate"}

    def test_unknown_gate_raises(self):
        with pytest.raises(ParameterError, match="unknown gate"):
            gate_spec("xor9")

    def test_specs_are_consistent(self):
        for spec in GATES.values():
            assert spec.n_inputs >= 1
            assert 0.0 <= spec.non_controlling <= 1.0


class TestCharacterizeEngine:
    @pytest.fixture(scope="class")
    def nand2_table(self, family):
        return characterize_gate(family, "nand2",
                                 loads=(1e-17, 4e-17),
                                 slews=(1e-12, 4e-12))

    def test_grid_shape(self, nand2_table):
        assert nand2_table.slews == (1e-12, 4e-12)
        assert nand2_table.loads == (1e-17, 4e-17)
        for arc in nand2_table.arcs.values():
            assert len(arc.delay) == 2
            assert all(len(row) == 2 for row in arc.delay)

    def test_delays_finite_positive(self, nand2_table):
        for arc in nand2_table.arcs.values():
            for row in arc.delay:
                for value in row:
                    assert math.isfinite(value) and value > 0.0

    def test_delay_monotone_in_load(self, nand2_table):
        for arc in nand2_table.arcs.values():
            for row in arc.delay:
                assert row[1] > row[0]

    def test_rise_energy_tracks_cv2(self, nand2_table):
        # The output-rise arc charges the load: E ~ C * VDD^2 plus
        # internal charge, minus input-edge charge coupled back into
        # the rail through the pull-up gate capacitances — at the
        # femto-farad logic loads the gate coupling is comparable to
        # the load itself, so the lower bound is loose (the batched
        # engine's denser grid resolves that displacement current;
        # the old 0.8 floor was calibrated to the scalar engine's
        # coarser edge sampling, which under-integrated it).
        for j, load in enumerate(nand2_table.loads):
            cv2 = load * 0.6 ** 2
            energy = nand2_table.arcs["rise"].energy[0][j]
            assert cv2 * 0.5 < energy < cv2 * 30.0

    def test_stacked_gate_slower_than_inverter(self, family):
        inv = characterize_gate(family, "inverter", loads=(4e-17,),
                                slews=(4e-12,))
        nand3 = characterize_gate(family, "nand3", loads=(4e-17,),
                                  slews=(4e-12,))
        assert (nand3.arcs["fall"].delay[0][0]
                > inv.arcs["fall"].delay[0][0])

    def test_tgate_characterizes(self, family):
        table = characterize_gate(family, "tgate", loads=(2e-17,),
                                  slews=(2e-12,))
        for arc in table.arcs.values():
            assert math.isfinite(arc.delay[0][0])

    def test_input_validation(self, family):
        with pytest.raises(ParameterError):
            characterize_gate(family, "nand2", loads=())
        with pytest.raises(ParameterError):
            characterize_gate(family, "nand2", slews=(-1e-12,))


class TestCharTableExports:
    @pytest.fixture(scope="class")
    def table(self, family):
        return characterize_gate(family, "inverter", loads=(1e-17,),
                                 slews=(1e-12, 4e-12))

    def test_json_round_trip(self, table):
        payload = json.loads(json.dumps(table.to_json_dict()))
        assert payload["gate"] == "inverter"
        assert len(payload["arcs"]["rise"]["delay"]) == 2

    def test_csv_shape(self, table):
        lines = table.to_csv().strip().split("\n")
        # header + arcs * slews * loads
        assert len(lines) == 1 + 2 * 2 * 1
        assert lines[0].startswith("arc,slew_s,load_f")

    def test_liberty_block(self, table):
        text = table.to_liberty()
        assert text.startswith("cell (inverter)")
        assert "cell_rise" in text and "cell_fall" in text

    def test_render_ascii(self, table):
        text = table.render()
        assert "inverter output-rise delay [ps]" in text


class TestGateDelayEvaluator:
    def test_metrics_and_dedup(self):
        space = default_device_space()
        evaluator = GateDelayEvaluator(space, gate="inverter")
        samples = monte_carlo(space, 3, seed=11)
        rows = evaluator.evaluate(samples)
        assert len(rows) == 3
        for row in rows:
            assert set(row) == set(GateDelayEvaluator.METRICS)
            assert math.isfinite(row["delay_rise"])
        # Memoised keys are reused on re-evaluation.
        memo_size = len(evaluator._memo)
        evaluator.evaluate(samples)
        assert len(evaluator._memo) == memo_size

    def test_describe_fingerprintable(self):
        space = default_device_space()
        evaluator = GateDelayEvaluator(space, gate="nand2")
        desc = evaluator.describe()
        assert desc["kind"] == "gate-delay"
        json.dumps(desc)

    def test_validation(self):
        space = default_device_space()
        with pytest.raises(ParameterError):
            GateDelayEvaluator(space, gate="nope")
        with pytest.raises(ParameterError):
            GateDelayEvaluator(space, slew=-1.0)


class TestCharacterizeCLI:
    def test_json_payload(self, capsys):
        from repro.cli import main

        assert main(["characterize", "--gate", "nand2", "--loads",
                     "0.01", "--slews", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["gate"] == "nand2"
        assert payload["command"] == "characterize"
        delay = payload["arcs"]["rise"]["delay"][0][0]
        assert 0.0 < delay < 1e-9

    def test_csv_format(self, capsys):
        from repro.cli import main

        assert main(["characterize", "--gate", "inverter", "--loads",
                     "0.01", "--slews", "1", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("arc,slew_s,load_f")

    def test_mc_gate_workload(self, capsys):
        from repro.cli import main

        assert main(["mc", "--workload", "gate", "--gate", "inverter",
                     "--samples", "2", "--seed", "5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "delay_rise" in payload["aggregate"]
