"""Batch-vs-scalar parity: the vectorized evaluation path must be a
drop-in replacement for point-by-point scalar calls.

The contract (ISSUE 1): ``ids_batch`` matches scalar ``ids`` to within
1e-12 *relative* across the Fig. 6/7 bias grids, for model1, model2 and
the p-type polarity.  In practice the two paths agree to a few ulp
because the batched closed forms mirror the scalar arithmetic operation
for operation.
"""

import numpy as np
import pytest

from repro.experiments.workloads import (
    FIG67_VG_VALUES,
    PAPER_VDS_SWEEP,
    default_device_parameters,
)
from repro.pwl.batch import real_roots_batch
from repro.pwl.device import CNFET
from repro.pwl.polynomials import real_roots
from repro.reference.sweep import sweep_iv_family

REL_TOL = 1e-12
#: absolute floor [A] for near-zero currents (VDS = 0 rows are exact
#: zeros in both paths; the floor only guards denormal-level noise)
ABS_TOL = 1e-25


def _grid():
    vg = np.asarray(FIG67_VG_VALUES, dtype=float)
    vd = np.asarray(PAPER_VDS_SWEEP, dtype=float)
    return np.repeat(vg, vd.size), np.tile(vd, vg.size)


def _scalar_reference(device, vg_grid, vd_grid):
    return np.asarray([
        device.ids(float(g), float(d)) for g, d in zip(vg_grid, vd_grid)
    ])


@pytest.mark.parametrize("model", ["model1", "model2"])
@pytest.mark.parametrize("polarity", ["n", "p"])
class TestIdsBatchParity:
    def test_matches_scalar_on_fig67_grid(self, model, polarity):
        device = CNFET(default_device_parameters(), model=model,
                       polarity=polarity)
        vg_grid, vd_grid = _grid()
        if polarity == "p":
            vg_grid, vd_grid = -vg_grid, -vd_grid
        batch = device.ids_batch(vg_grid, vd_grid)
        scalar = _scalar_reference(device, vg_grid, vd_grid)
        np.testing.assert_allclose(batch, scalar, rtol=REL_TOL,
                                   atol=ABS_TOL)

    def test_vsc_batch_matches_scalar(self, model, polarity):
        device = CNFET(default_device_parameters(), model=model,
                       polarity=polarity)
        vg_grid, vd_grid = _grid()
        if polarity == "p":
            vg_grid, vd_grid = -vg_grid, -vd_grid
        batch = device.vsc_batch(vg_grid, vd_grid)
        scalar = np.asarray([
            device.vsc(float(g), float(d))
            for g, d in zip(vg_grid, vd_grid)
        ])
        np.testing.assert_allclose(batch, scalar, rtol=0, atol=1e-13)


class TestDerivedBatchEvaluations:
    @pytest.fixture(scope="class")
    def device(self):
        return CNFET(default_device_parameters())

    # The central differences subtract nearly-equal currents, so a
    # 1-ulp ids difference is amplified by ~1/(2 delta); the conductance
    # contract is correspondingly looser than the ids one.
    DERIV_REL = 1e-9

    def test_gm_batch(self, device):
        vg = np.asarray([0.3, 0.45, 0.6])
        got = device.gm_batch(vg, 0.4)
        want = [device.gm(float(v), 0.4) for v in vg]
        np.testing.assert_allclose(got, want, rtol=self.DERIV_REL,
                                   atol=ABS_TOL)

    def test_gds_batch(self, device):
        vd = np.asarray([0.1, 0.3, 0.6])
        got = device.gds_batch(0.5, vd)
        want = [device.gds(0.5, float(v)) for v in vd]
        np.testing.assert_allclose(got, want, rtol=self.DERIV_REL,
                                   atol=ABS_TOL)

    def test_terminal_charges_batch(self, device):
        vg = np.asarray([0.2, 0.4, 0.6])
        qg, qd, qs = device.terminal_charges_batch(vg, 0.35)
        for i, v in enumerate(vg):
            sg, sd, ss = device.terminal_charges(float(v), 0.35)
            assert qg[i] == pytest.approx(sg, rel=REL_TOL)
            assert qd[i] == pytest.approx(sd, rel=REL_TOL)
            assert qs[i] == pytest.approx(ss, rel=REL_TOL)
        # Charge conservation survives vectorization.
        np.testing.assert_allclose(qg + qd + qs, 0.0, atol=1e-25)

    def test_broadcasting_grid(self, device):
        vg = np.asarray([0.3, 0.5])[:, None]
        vd = np.asarray([0.1, 0.3, 0.6])[None, :]
        out = device.ids_batch(vg, vd)
        assert out.shape == (2, 3)
        assert out[1, 2] == pytest.approx(device.ids(0.5, 0.6),
                                          rel=REL_TOL)

    def test_source_shift(self, device):
        got = device.ids_batch([0.7], [0.6], vs=0.2)
        assert got[0] == pytest.approx(device.ids(0.7, 0.6, 0.2),
                                       rel=REL_TOL)

    def test_empty_input(self, device):
        assert device.ids_batch([], []).shape == (0,)


class TestSweepDriversBatch:
    def test_sweep_uses_batch_and_matches_scalar_loop(self):
        device = CNFET(default_device_parameters())
        vg = [0.3, 0.45, 0.6]
        vd = [0.1, 0.3, 0.6]
        fam_batch = sweep_iv_family(device, vg, vd, use_batch=True)
        fam_scalar = sweep_iv_family(device, vg, vd, use_batch=False)
        np.testing.assert_allclose(fam_batch.ids, fam_scalar.ids,
                                   rtol=REL_TOL, atol=ABS_TOL)

    def test_force_batch_on_scalar_model_rejected(self):
        from repro.errors import ParameterError

        class Scalar:
            def ids(self, vg, vd, vs=0.0):
                return vg * vd

        with pytest.raises(ParameterError):
            sweep_iv_family(Scalar(), [0.1], [0.1], use_batch=True)


class TestRootsBatchMirror:
    """The generic vectorized root finder mirrors the scalar one."""

    @pytest.mark.parametrize("coeffs", [
        (1.0, -2.0, 0.0, 0.0),            # linear
        (-2.0, 0.0, 1.0, 0.0),            # quadratic, two roots
        (1.0, 2.0, 1.0, 0.0),             # quadratic, double root
        (5.0, 1.0, 0.0, 0.0),             # negative-root linear
        (-6.0, 11.0, -6.0, 1.0),          # cubic, roots 1, 2, 3
        (1.0, 3.0, 3.0, 1.0),             # cubic, triple root -1
        (-1.0, 0.0, 0.0, 1.0),            # cubic, single real root
        (0.0, -1e-20, 0.0, 1.0),          # near-degenerate cubic
    ])
    def test_matches_scalar_real_roots(self, coeffs):
        got = real_roots_batch(*[np.asarray([c]) for c in coeffs])[0]
        got = sorted(float(r) for r in got if np.isfinite(r))
        want = real_roots(list(coeffs))
        assert len(got) == len(want)
        for g, w in zip(got, want):
            assert g == pytest.approx(w, rel=1e-9, abs=1e-12)
