"""CNFET circuit element: DC stamps, backends, polarity, transient."""

import numpy as np
import pytest

from repro.circuit import Circuit, Resistor, VoltageSource, operating_point
from repro.circuit.elements import CNFETElement
from repro.circuit.transient import transient
from repro.circuit.waveforms import Pulse
from repro.errors import ParameterError
from repro.pwl.device import CNFET
from repro.reference.fettoy import FETToyModel, FETToyParameters


def bias_circuit(device, vg=0.5, vd=0.4) -> Circuit:
    c = Circuit("bias")
    c.add(VoltageSource("vg", "g", "0", vg))
    c.add(VoltageSource("vd", "d", "0", vd))
    c.add(CNFETElement("q1", "d", "g", "0", device=device))
    return c


class TestDCStamping:
    def test_element_current_matches_device(self, device_m2):
        op = operating_point(bias_circuit(device_m2))
        assert op.element_current("q1") == pytest.approx(
            device_m2.ids(0.5, 0.4), rel=1e-6
        )

    def test_drain_source_kcl(self, device_m2):
        """Drain supply sinks exactly what the source node returns."""
        op = operating_point(bias_circuit(device_m2))
        i_vd = op.source_current("vd")
        assert -i_vd == pytest.approx(device_m2.ids(0.5, 0.4), rel=1e-6)
        # Gate is purely capacitive: zero DC gate current.
        assert op.source_current("vg") == pytest.approx(0.0, abs=1e-12)

    def test_reference_backend_agrees(self, ref300, device_m2):
        op_ref = operating_point(bias_circuit(ref300))
        op_pwl = operating_point(bias_circuit(device_m2))
        assert op_ref.element_current("q1") == pytest.approx(
            op_pwl.element_current("q1"), rel=0.08
        )

    def test_unsupported_backend_rejected(self):
        with pytest.raises(ParameterError):
            CNFETElement("q1", "d", "g", "s", device=object())

    def test_length_validation(self, device_m2):
        with pytest.raises(ParameterError):
            CNFETElement("q1", "d", "g", "s", device=device_m2,
                         length_nm=0.0)

    def test_polarity_validation(self, device_m2):
        with pytest.raises(ParameterError):
            CNFETElement("q1", "d", "g", "s", device=device_m2,
                         polarity="z")


class TestSelfBiasedLoad:
    def test_resistor_load_operating_point(self, device_m2):
        """CNFET with resistive load: output settles between rails and
        KCL holds through the load."""
        c = Circuit("load")
        c.add(VoltageSource("vdd", "vdd", "0", 0.6))
        c.add(VoltageSource("vg", "g", "0", 0.5))
        c.add(Resistor("rl", "vdd", "out", 1e5))
        c.add(CNFETElement("q1", "out", "g", "0", device=device_m2))
        op = operating_point(c)
        v_out = op.voltage("out")
        assert 0.0 < v_out < 0.6
        i_load = (0.6 - v_out) / 1e5
        assert op.element_current("q1") == pytest.approx(i_load, rel=1e-4)


class TestPolarity:
    def test_p_device_pulls_up(self, device_p):
        c = Circuit("pullup")
        c.add(VoltageSource("vdd", "vdd", "0", 0.6))
        c.add(VoltageSource("vg", "g", "0", 0.0))  # gate low -> p on
        c.add(Resistor("rl", "out", "0", 1e5))
        c.add(CNFETElement("q1", "out", "g", "vdd", device=device_p))
        op = operating_point(c)
        assert op.voltage("out") > 0.4

    def test_p_device_off_when_gate_high(self, device_p):
        c = Circuit("pullup-off")
        c.add(VoltageSource("vdd", "vdd", "0", 0.6))
        c.add(VoltageSource("vg", "g", "0", 0.6))
        c.add(Resistor("rl", "out", "0", 1e5))
        c.add(CNFETElement("q1", "out", "g", "vdd", device=device_p))
        op = operating_point(c)
        assert op.voltage("out") < 0.25


class TestTransient:
    def test_gate_step_charges_output(self, device_m2):
        """Inverter-like stage: output falls after the input steps up."""
        from repro.circuit import Capacitor

        c = Circuit("step")
        c.add(VoltageSource("vdd", "vdd", "0", 0.6))
        c.add(VoltageSource("vin", "g", "0",
                            Pulse(0.0, 0.6, delay=5e-12, rise=1e-12,
                                  width=1e-9, period=2e-9)))
        c.add(Resistor("rl", "vdd", "out", 2e5))
        c.add(CNFETElement("q1", "out", "g", "0", device=device_m2))
        c.add(Capacitor("cl", "out", "0", 1e-17))
        ds = transient(c, tstop=1e-10, dt=5e-13)
        v0 = ds.voltage("out")[0]
        v_end = ds.voltage("out")[-1]
        assert v0 > 0.5          # input low, device off, output high
        assert v_end < 0.15      # input high, device on, output pulled low

    def test_charges_sum_to_zero(self, device_m2):
        element = CNFETElement("q1", "d", "g", "s", device=device_m2)
        qg, qd, qs = element.backend.charges(0.5, 0.4, element.length_m)
        assert qg + qd + qs == pytest.approx(0.0, abs=1e-25)
