"""Tests for ``repro.exprunner``: config, plan, executor, report.

Most tests drive a registered toy workload (cheap, deterministic,
controllable failure) so they exercise the orchestration machinery
without engine cost; two end-of-file tests run a real (tiny) engine
workload to pin the integration.
"""

from __future__ import annotations

import json
import math
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import CampaignError, ParameterError
from repro.exprunner import (
    ExperimentRunner,
    ExperimentSuite,
    RunnerConfig,
    Workload,
    expand_plan,
    load_config,
    read_run_table,
    register_workload,
    render_report,
    robust_time,
)
from repro.exprunner.plan import baseline_index


def _toy(point, params, seed):
    """Deterministic toy workload: the parity signature derives from
    the offset factor alone (per-cell seeds differ across cells, so a
    comparable signature must not depend on them — real workloads take
    sampling seeds from fixed ``params`` for the same reason), while
    the checksum metric folds the seed in to pin seed plumbing."""
    if point.get("mode") == "explode":
        raise ValueError("toy workload asked to fail")
    offset = float(point.get("offset", 0.0))
    return {
        "wall_s": 0.001,
        "newton_iterations": 7.0,
        "metrics": {"checksum": float(seed % 97) + 3.0 + offset},
        "signature": {"trace": [1.0 + offset, 2.0]},
    }


register_workload(Workload(name="toy_test", run=_toy,
                           description="unit-test workload"))


def toy_config(**overrides):
    spec = {
        "name": "toy",
        "workload": "toy_test",
        "factors": {"mode": ["a", "b"], "offset": [0.0, 0.5]},
        "repetitions": 2,
        "baseline": {"offset": 0.0},
    }
    spec.update(overrides)
    return RunnerConfig.from_dict(spec)


# ---------------------------------------------------------------------
# config
# ---------------------------------------------------------------------

class TestRunnerConfig:
    def test_from_dict_roundtrip(self):
        config = toy_config()
        assert config.factor_names == ["mode", "offset"]
        assert RunnerConfig.from_dict(config.describe()) == config

    def test_scalar_level_coerces_to_single_level_list(self):
        config = RunnerConfig.from_dict(
            {"name": "x", "workload": "toy_test",
             "factors": {"mode": "a"}})
        assert config.factors == (("mode", ("a",)),)

    def test_unknown_key_rejected(self):
        with pytest.raises(ParameterError, match="unknown"):
            RunnerConfig.from_dict(
                {"name": "x", "workload": "toy_test",
                 "factors": {"mode": ["a"]}, "bogus": 1})

    def test_baseline_must_name_declared_levels(self):
        with pytest.raises(ParameterError, match="baseline"):
            toy_config(baseline={"offset": 9.0})
        with pytest.raises(ParameterError, match="baseline"):
            toy_config(baseline={"nope": 0.0})

    def test_duplicate_factor_rejected(self):
        with pytest.raises(ParameterError, match="duplicate"):
            RunnerConfig(name="x", workload="toy_test",
                         factors=(("m", ("a",)), ("m", ("b",))))

    def test_fingerprint_tracks_content(self):
        assert toy_config().fingerprint() == toy_config().fingerprint()
        assert (toy_config(seed=5).fingerprint()
                != toy_config().fingerprint())

    def test_with_factor_prunes_levels_and_baseline(self):
        pruned = toy_config().with_factor("offset", (0.5,))
        assert dict(pruned.factors)["offset"] == (0.5,)
        assert pruned.baseline_dict is None  # baseline level dropped

    def test_suite_rejects_duplicate_names(self):
        with pytest.raises(ParameterError, match="duplicate"):
            ExperimentSuite(name="s",
                            experiments=(toy_config(), toy_config()))


# ---------------------------------------------------------------------
# plan
# ---------------------------------------------------------------------

class TestPlan:
    def test_repetition_major_order(self):
        plan = expand_plan(toy_config())
        assert [s.repetition for s in plan] == [0, 0, 0, 0, 1, 1, 1, 1]
        assert [s.cell for s in plan] == [0, 1, 2, 3, 0, 1, 2, 3]
        assert [s.run_id for s in plan[:2]] == ["r0000", "r0001"]

    def test_seeds_shared_across_repetitions_distinct_across_cells(self):
        plan = expand_plan(toy_config())
        by_cell = {}
        for spec in plan:
            by_cell.setdefault(spec.cell, set()).add(spec.seed)
        assert all(len(seeds) == 1 for seeds in by_cell.values())
        assert len({next(iter(s)) for s in by_cell.values()}) == 4

    def test_baseline_index_same_repetition(self):
        config = toy_config()
        plan = expand_plan(config)
        spec = next(s for s in plan
                    if s.point_dict["offset"] == 0.5
                    and s.repetition == 1)
        base = plan[baseline_index(plan, config, spec)]
        assert base.repetition == 1
        assert base.point_dict == {"mode": spec.point_dict["mode"],
                                   "offset": 0.0}

    def test_baseline_cell_is_its_own_baseline(self):
        config = toy_config()
        plan = expand_plan(config)
        spec = next(s for s in plan if s.point_dict["offset"] == 0.0)
        assert baseline_index(plan, config, spec) is None


# ---------------------------------------------------------------------
# executor
# ---------------------------------------------------------------------

class TestExecutor:
    def test_run_and_parity(self, tmp_path):
        result = ExperimentRunner(toy_config(), tmp_path).run()
        assert result.complete and result.computed == 8
        for rec in result.records:
            if rec["point"]["offset"] == 0.0:
                assert rec["parity"] == 0.0
            else:  # |(1.0+0.5) - 1.0| from the toy signature
                assert rec["parity"] == pytest.approx(0.5)
            assert rec["status"] == "ok"
            assert rec["peak_rss_kib"] > 0

    def test_error_runs_recorded_not_raised(self, tmp_path):
        config = toy_config(factors={"mode": ["a", "explode"],
                                     "offset": [0.0]},
                            baseline=None, repetitions=1)
        result = ExperimentRunner(config, tmp_path).run()
        by_mode = {r["point"]["mode"]: r for r in result.records}
        assert by_mode["a"]["status"] == "ok"
        assert by_mode["explode"]["status"] == "error"
        assert "toy workload asked to fail" in by_mode["explode"]["error"]
        assert math.isnan(by_mode["explode"]["newton_iterations"])

    def test_resume_completes_only_missing_runs(self, tmp_path):
        config = toy_config()
        ExperimentRunner(config, tmp_path).run()
        for run_id in ("r0001", "r0005", "r0006"):
            shutil.rmtree(tmp_path / "runs" / run_id)
        result = ExperimentRunner(config, tmp_path).run()
        assert result.resumed == 5 and result.computed == 3
        assert result.complete

    def test_resume_refuses_mismatched_manifest(self, tmp_path):
        ExperimentRunner(toy_config(), tmp_path).run()
        with pytest.raises(CampaignError, match="different experiment"):
            ExperimentRunner(toy_config(seed=99), tmp_path).run()

    def test_no_resume_overwrites_mismatched_manifest(self, tmp_path):
        ExperimentRunner(toy_config(), tmp_path).run()
        changed = toy_config(seed=99)
        result = ExperimentRunner(changed, tmp_path).run(resume=False)
        assert result.computed == 8
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["fingerprint"] == changed.fingerprint()

    def test_corrupt_record_recomputed(self, tmp_path):
        config = toy_config()
        ExperimentRunner(config, tmp_path).run()
        (tmp_path / "runs" / "r0002" / "record.json").write_text("{oops")
        result = ExperimentRunner(config, tmp_path).run()
        assert result.computed == 1 and result.complete

    def test_max_runs_interrupt_then_finish(self, tmp_path):
        config = toy_config()
        partial = ExperimentRunner(config, tmp_path).run(max_runs=3)
        assert partial.computed == 3 and partial.pending == 5
        assert not partial.complete
        rest = ExperimentRunner(config, tmp_path).run()
        assert rest.resumed == 3 and rest.computed == 5
        assert rest.complete

    def test_run_table_columns_and_determinism(self, tmp_path):
        config = toy_config()
        ExperimentRunner(config, tmp_path).run()
        table_path = tmp_path / "run_table.csv"
        first = table_path.read_text()
        rows = read_run_table(table_path)
        assert len(rows) == 8
        assert set(rows[0]) >= {"run_id", "cell", "repetition", "seed",
                                "status", "wall_s", "newton_iterations",
                                "peak_rss_kib", "parity", "mode",
                                "offset", "checksum"}
        # regenerating from the persisted records is byte-identical
        ExperimentRunner(config, tmp_path).load()
        assert table_path.read_text() == first

    def test_unknown_workload_rejected(self):
        with pytest.raises(ParameterError, match="unknown workload"):
            ExperimentRunner(toy_config(workload="nope"))


# ---------------------------------------------------------------------
# report
# ---------------------------------------------------------------------

class TestReport:
    def test_cells_aggregate_min_and_median(self, tmp_path):
        result = ExperimentRunner(toy_config(), tmp_path).run()
        cells = result.cells()
        assert len(cells) == 4
        for cell in cells:
            assert cell["n"] == cell["n_ok"] == 2
            assert cell["wall_s_min"] == min(cell["wall_s_all"])
            assert cell["newton_iterations"] == 7.0
            assert cell["metrics"]["checksum"] == pytest.approx(
                cell["point"]["offset"] + 3.0
                + (next(r["seed"] for r in result.records
                        if r["cell"] == cell["cell"]) % 97))

    def test_report_deterministic_and_timestamp_free(self, tmp_path):
        config = toy_config()
        result = ExperimentRunner(config, tmp_path).run()
        one = render_report(config, result.records, pending=0)
        two = render_report(
            config, ExperimentRunner(config, tmp_path).load().records,
            pending=0)
        assert json.dumps(one, sort_keys=True) == \
            json.dumps(two, sort_keys=True)
        assert one["complete"] is True
        assert "created" not in json.dumps(one)

    def test_cell_lookup_requires_unique_match(self, tmp_path):
        result = ExperimentRunner(toy_config(), tmp_path).run()
        assert result.cell(mode="a",
                           offset=0.5)["point"]["offset"] == 0.5
        with pytest.raises(ParameterError, match="matched 2"):
            result.cell(mode="a")


# ---------------------------------------------------------------------
# timing helper
# ---------------------------------------------------------------------

class TestRobustTime:
    def test_returns_min_median_and_spread(self):
        calls = []
        out = robust_time(lambda: calls.append(1), repeats=3, warmup=2)
        assert len(calls) == 5
        assert out["best_s"] == min(out["times_s"])
        assert len(out["times_s"]) == 3
        assert out["best_s"] <= out["median_s"]

    def test_validates_arguments(self):
        with pytest.raises(ParameterError):
            robust_time(lambda: None, repeats=0)
        with pytest.raises(ParameterError):
            robust_time(lambda: None, warmup=-1)


# ---------------------------------------------------------------------
# suite loading + CLI
# ---------------------------------------------------------------------

class TestSuiteAndCli:
    def test_load_config_single_becomes_suite(self, tmp_path):
        path = tmp_path / "one.json"
        path.write_text(json.dumps(
            {"name": "solo", "workload": "toy_test",
             "factors": {"mode": ["a"]}}))
        suite = load_config(path)
        assert [c.name for c in suite] == ["solo"]

    def test_bench_configs_parse(self):
        configs = Path(__file__).parent.parent / "benchmarks" / "configs"
        names = {}
        for path in sorted(configs.glob("*.json")):
            suite = load_config(path)
            names[path.stem] = [c.name for c in suite]
        assert names["batch_transient"] == ["char_grid", "mc_ring",
                                            "ring_lanes"]
        assert names["compiled_hot_path"] == ["rca32", "vsc_parity"]
        assert names["smoke"] == ["ring_smoke"]

    def test_cli_run_resume_report(self, tmp_path):
        config_path = tmp_path / "exp.json"
        config_path.write_text(json.dumps(
            {"name": "cli_toy", "workload": "circuit_transient",
             "factors": {"chord": ["off", "on"]},
             "repetitions": 1,
             "baseline": {"chord": "off"},
             "params": {"circuit": "ring", "size": 3,
                        "kernels": "numpy", "backend": "dense",
                        "tstop": 1e-11}}))
        run_dir = tmp_path / "runs"
        env_cmd = [sys.executable, "-m", "repro", "experiments",
                   "--config", str(config_path),
                   "--run-dir", str(run_dir), "--report", "--json"]
        out = subprocess.run(env_cmd, capture_output=True, text=True,
                             check=True)
        payload = json.loads(out.stdout)
        report = payload["experiments"][0]
        assert report["complete"] is True
        assert report["parity_max"] < 1e-9
        table = (run_dir / "cli_toy" / "run_table.csv").read_text()
        # second invocation resumes everything and regenerates the
        # identical table + report
        report_path = run_dir / "cli_toy" / "report.json"
        first_report = report_path.read_text()
        out2 = subprocess.run(env_cmd, capture_output=True, text=True,
                              check=True)
        assert json.loads(out2.stdout) == payload
        assert (run_dir / "cli_toy" / "run_table.csv").read_text() \
            == table
        assert report_path.read_text() == first_report


# ---------------------------------------------------------------------
# real workloads (tiny)
# ---------------------------------------------------------------------

class TestEngineWorkloads:
    def test_circuit_transient_chord_parity(self, tmp_path):
        config = RunnerConfig.from_dict({
            "name": "ring_tiny", "workload": "circuit_transient",
            "factors": {"backend": ["dense", "sparse"]},
            "repetitions": 1,
            "baseline": {"backend": "dense"},
            "params": {"circuit": "ring", "size": 3,
                       "kernels": "numpy", "chord": "on",
                       "tstop": 1e-11},
        })
        result = ExperimentRunner(config, tmp_path).run()
        assert result.complete
        sparse = result.cell(backend="sparse")
        assert sparse["parity_max"] < 1e-9  # dense/sparse parity gate
        assert sparse["newton_iterations"] > 0

    @pytest.mark.slow
    def test_vsc_sweep_signature_deterministic(self, tmp_path):
        config = RunnerConfig.from_dict({
            "name": "vsc_tiny", "workload": "vsc_sweep",
            "factors": {"kernels": ["numpy"]},
            "repetitions": 2,
            "params": {"grid_points": 5},
        })
        result = ExperimentRunner(config, tmp_path).run()
        sigs = [r["signature"]["vsc_v"] for r in result.records]
        assert sigs[0] == sigs[1]  # repetitions share the cell seed
