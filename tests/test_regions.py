"""Piecewise charge-curve container."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.pwl.regions import PiecewiseCharge


@pytest.fixture
def simple_curve():
    """Hand-built C1 curve: quadratic (x+1)^2 for x <= 0... actually:
    regions: linear for x <= -1, quadratic on (-1, 0], zero above 0.
    Quadratic q(x) = x^2 (value 0, slope 0 at x = 0); linear continues
    value 1, slope -2 at x = -1: l(x) = 1 - 2(x+1)."""
    return PiecewiseCharge(
        breakpoints=(-1.0, 0.0),
        coefficients=((-1.0, -2.0), (0.0, 0.0, 1.0), (0.0,)),
    )


class TestEvaluation:
    def test_region_index(self, simple_curve):
        assert simple_curve.region_index(-2.0) == 0
        assert simple_curve.region_index(-1.0) == 0  # right-closed
        assert simple_curve.region_index(-0.5) == 1
        assert simple_curve.region_index(0.5) == 2

    def test_values(self, simple_curve):
        assert simple_curve.value(-0.5) == pytest.approx(0.25)
        assert simple_curve.value(-2.0) == pytest.approx(3.0)
        assert simple_curve.value(1.0) == 0.0

    def test_vectorised_matches_scalar(self, simple_curve):
        x = np.linspace(-3.0, 1.0, 41)
        vec = simple_curve.value(x)
        scalars = [simple_curve.value(float(v)) for v in x]
        np.testing.assert_allclose(vec, scalars, rtol=1e-14)

    def test_derivative(self, simple_curve):
        assert simple_curve.derivative(-0.5) == pytest.approx(-1.0)
        assert simple_curve.derivative(-2.0) == pytest.approx(-2.0)
        assert simple_curve.derivative(0.5) == 0.0

    def test_derivative_vectorised(self, simple_curve):
        x = np.array([-2.0, -0.5, 0.5])
        np.testing.assert_allclose(
            simple_curve.derivative(x), [-2.0, -1.0, 0.0], atol=1e-14
        )


class TestContinuity:
    def test_c1_curve_has_no_defects(self, simple_curve):
        for dv, ds in simple_curve.continuity_defects():
            assert dv < 1e-14
            assert ds < 1e-14

    def test_detects_value_jump(self):
        broken = PiecewiseCharge(
            breakpoints=(0.0,), coefficients=((1.0,), (0.0,)),
        )
        dv, _ds = broken.continuity_defects()[0]
        assert dv == pytest.approx(1.0)


class TestShift:
    def test_shifted_value_identity(self, simple_curve):
        shifted = simple_curve.shifted(0.3)
        x = np.linspace(-3.0, 1.0, 17)
        np.testing.assert_allclose(
            shifted.value(x), simple_curve.value(x + 0.3), rtol=1e-12,
            atol=1e-15,
        )

    def test_shifted_breakpoints_move_opposite(self, simple_curve):
        shifted = simple_curve.shifted(0.3)
        np.testing.assert_allclose(
            shifted.breakpoints, [-1.3, -0.3], rtol=1e-12
        )

    def test_double_shift_roundtrip(self, simple_curve):
        back = simple_curve.shifted(0.4).shifted(-0.4)
        x = np.linspace(-2.0, 1.0, 9)
        np.testing.assert_allclose(
            back.value(x), simple_curve.value(x), rtol=1e-12, atol=1e-16
        )


class TestValidation:
    def test_breakpoints_must_ascend(self):
        with pytest.raises(ParameterError):
            PiecewiseCharge((1.0, 0.0), ((0.0,), (0.0,), (0.0,)))

    def test_region_count(self):
        with pytest.raises(ParameterError):
            PiecewiseCharge((0.0,), ((0.0,),))

    def test_coefficient_arity(self):
        with pytest.raises(ParameterError):
            PiecewiseCharge((0.0,), ((), (0.0,)))
        with pytest.raises(ParameterError):
            PiecewiseCharge((0.0,), ((1, 2, 3, 4, 5), (0.0,)))

    def test_max_order(self, simple_curve):
        assert simple_curve.max_order == 2

    def test_describe_mentions_regions(self, simple_curve):
        text = simple_curve.describe()
        assert "region 0" in text and "region 2" in text
