"""Direct unit coverage for ``repro.parallel``.

The serial-fallback branches of :func:`fork_map` are the correctness
backbone of every sharded entry point: on a platform without ``fork``,
inside a nested call, or at one worker/one item, results must be the
serial loop's — and the process pool must never even be constructed
(a poisoned ``ProcessPoolExecutor`` proves the branch, not just the
result).  The memo-noise test pins the documented sharding contract
(docs/kernels.md): forked chunks rebuild the evaluator memo
per-worker, so identical devices may converge from different warm
starts — float noise within ~1e-13 relative on device metrics, never
a numerics change.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback

import pytest

import repro.parallel as parallel
from repro import faults
from repro.errors import ParallelError, ParameterError
from repro.parallel import WORKERS_ENV, fork_map, resolve_workers


def _require_fork():
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("no fork on this platform")


def _notes(exc: BaseException) -> str:
    """Exception text incl. PEP 678 notes (pre-3.11: folded into args)."""
    return "".join(traceback.format_exception_only(type(exc), exc))


class _PoisonedPool:
    """Stands in for ProcessPoolExecutor on paths that must stay
    serial."""

    def __init__(self, *args, **kwargs):
        raise AssertionError(
            "ProcessPoolExecutor constructed on a serial-fallback path")


@pytest.fixture
def poisoned_pool(monkeypatch):
    monkeypatch.setattr(parallel, "ProcessPoolExecutor", _PoisonedPool)


class TestResolveWorkers:
    def test_explicit_counts_pass_through(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7
        assert resolve_workers("3") == 3

    def test_auto_without_env_uses_cpu_count(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        import os

        expected = os.cpu_count() or 1
        assert resolve_workers(None) == expected
        assert resolve_workers(0) == expected
        assert resolve_workers("auto") == expected
        assert resolve_workers(" AUTO ") == expected

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(None) == 5
        assert resolve_workers(0) == 5
        assert resolve_workers(6) == 6  # explicit beats env

    def test_invalid_env_rejected(self, monkeypatch):
        for bad in ("zero", "0", "-2"):
            monkeypatch.setenv(WORKERS_ENV, bad)
            with pytest.raises(ParameterError):
                resolve_workers(None)

    def test_invalid_specs_rejected(self):
        for bad in (-1, 1.5, "none", True, False):
            with pytest.raises(ParameterError):
                resolve_workers(bad)


class TestForkMapSerialFallbacks:
    def test_one_worker_never_builds_pool(self, poisoned_pool):
        assert fork_map(lambda x: x * 2, [1, 2, 3], workers=1) == \
            [2, 4, 6]

    def test_single_item_never_builds_pool(self, poisoned_pool):
        assert fork_map(lambda x: x + 1, [41], workers=8) == [42]

    def test_empty_items_never_build_pool(self, poisoned_pool):
        assert fork_map(lambda x: x, [], workers=8) == []

    def test_nested_call_never_builds_pool(self, poisoned_pool,
                                           monkeypatch):
        # Simulate "we are inside a forked worker": _WORK is published
        # before the pool spawns and inherited by children, so a
        # non-None _WORK is the nested-call sentinel.
        monkeypatch.setattr(parallel, "_WORK",
                            (lambda x: x, [0]))
        assert fork_map(lambda x: x * 10, [1, 2], workers=4) == \
            [10, 20]

    def test_no_fork_platform_never_builds_pool(self, poisoned_pool,
                                                monkeypatch):
        monkeypatch.setattr(parallel, "_can_fork", lambda: False)
        assert fork_map(lambda x: -x, [1, 2, 3], workers=4) == \
            [-1, -2, -3]

    def test_serial_fallback_preserves_order_and_exceptions(
            self, poisoned_pool, monkeypatch):
        monkeypatch.setattr(parallel, "_can_fork", lambda: False)
        calls = []

        def fn(x):
            calls.append(x)
            if x == 3:
                raise ValueError("boom")
            return x

        with pytest.raises(ValueError, match="boom"):
            fork_map(fn, [1, 2, 3, 4], workers=4)
        assert calls == [1, 2, 3]  # serial loop, submission order

    def test_work_global_cleared_after_pooled_run(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("no fork on this platform")
        assert fork_map(lambda x: x, [1, 2, 3], workers=2) == [1, 2, 3]
        assert parallel._WORK is None

    def test_work_global_cleared_after_pooled_exception(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("no fork on this platform")

        def fn(x):
            if x == 2:
                raise RuntimeError("worker failure")
            return x

        with pytest.raises(RuntimeError):
            fork_map(fn, [1, 2, 3], workers=2)
        assert parallel._WORK is None


class TestCrashRecovery:
    """docs/robustness.md: a worker killed mid-run costs time, never
    results — the parent re-runs the unfinished items serially."""

    def test_killed_worker_recovered_serially(self, caplog):
        _require_fork()
        plan = faults.FaultPlan(
            seed=3, schedule={"parallel.worker_kill": [2]})
        # The seam fires in the forked child (the plan is inherited
        # copy-on-write), so the parent's plan.fired log stays empty —
        # the observable recovery is the parent's serial re-run.
        with caplog.at_level("WARNING", logger="repro.parallel"):
            with faults.activate(plan):
                out = fork_map(lambda x: x * x, list(range(8)),
                               workers=2)
        assert out == [x * x for x in range(8)]
        assert "re-running" in caplog.text

    def test_killed_worker_recovered_with_chunks(self):
        _require_fork()
        plan = faults.FaultPlan(
            seed=3, schedule={"parallel.worker_kill": [5]})
        with faults.activate(plan):
            out = fork_map(lambda x: x + 1, list(range(9)), workers=3,
                           chunksize=3)
        assert out == [x + 1 for x in range(9)]

    def test_serial_rerun_failure_names_item(self):
        _require_fork()

        def fn(x):
            if x == 4:
                raise ValueError("bad item")
            return x

        plan = faults.FaultPlan(
            seed=3, schedule={"parallel.worker_kill": [4]})
        # Item 4 kills its worker; the serial re-run then hits the
        # real failure, which must carry the item attribution.
        with faults.activate(plan):
            with pytest.raises(ValueError, match="bad item") as err:
                fork_map(fn, list(range(8)), workers=2)
        assert "item 4" in _notes(err.value)
        assert "serial re-run" in _notes(err.value)


class TestItemAttribution:
    def test_worker_exception_names_item(self):
        _require_fork()

        def fn(x):
            if x == 5:
                raise KeyError("boom")
            return x

        with pytest.raises(KeyError) as err:
            fork_map(fn, list(range(8)), workers=2)
        assert "item 5" in _notes(err.value)

    def test_chunked_worker_exception_names_item(self):
        """Regression: with chunksize > 1 the failing *item* index is
        reported, not just the chunk."""
        _require_fork()

        def fn(x):
            if x == 7:
                raise RuntimeError("chunk victim")
            return x

        with pytest.raises(RuntimeError, match="chunk victim") as err:
            fork_map(fn, list(range(12)), workers=2, chunksize=4)
        assert "item 7" in _notes(err.value)

    def test_lowest_failing_index_wins(self):
        """Mirrors the serial loop: the first (lowest-index) failure
        is the one reported."""
        _require_fork()

        def fn(x):
            if x in (2, 9):
                raise ValueError(f"fail {x}")
            return x

        with pytest.raises(ValueError, match="fail 2") as err:
            fork_map(fn, list(range(12)), workers=2, chunksize=2)
        assert "item 2" in _notes(err.value)


class TestTimeout:
    def test_timeout_raises_parallel_error_with_indices(self):
        _require_fork()

        def fn(x):
            if x == 3:
                time.sleep(30.0)  # wedged item
            return x

        start = time.monotonic()
        with pytest.raises(ParallelError) as err:
            fork_map(fn, list(range(4)), workers=4, timeout=0.5)
        assert time.monotonic() - start < 10.0  # no 30 s hang
        assert 3 in err.value.indices
        assert "timed out" in str(err.value)
        assert parallel._WORK is None  # nested calls work afterwards
        assert fork_map(lambda x: x, [1, 2], workers=2) == [1, 2]

    def test_invalid_timeout_and_chunksize_rejected(self):
        with pytest.raises(ParameterError, match="timeout"):
            fork_map(lambda x: x, [1, 2], workers=2, timeout=0.0)
        with pytest.raises(ParameterError, match="chunksize"):
            fork_map(lambda x: x, [1, 2], workers=2, chunksize=0)


class TestWorkerMemoNoise:
    def test_sharded_campaign_within_documented_bound(self):
        """docs/kernels.md: chunk sharding never changes what is
        computed; only the evaluator memo becomes per-worker, so
        duplicate devices re-converge from different warm starts —
        ~1e-13 relative on device metrics."""
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("no fork on this platform")
        from repro.variability.campaign import (
            Campaign,
            CampaignConfig,
            DeviceMetricsEvaluator,
        )
        from repro.variability.params import default_device_space

        space = default_device_space()
        config = CampaignConfig(name="memo-noise", n_samples=32,
                                seed=5, sampler="mc", chunk_size=8)
        serial = Campaign(config, space,
                          DeviceMetricsEvaluator(space)).run(workers=1)
        sharded = Campaign(config, space,
                           DeviceMetricsEvaluator(space)).run(workers=2)
        assert len(serial.records) == len(sharded.records) == 32
        worst = 0.0
        for a, b in zip(serial.records, sharded.records):
            assert a["params"] == b["params"]
            for metric, value in a["metrics"].items():
                other = b["metrics"][metric]
                if value == other:
                    continue
                worst = max(worst,
                            abs(value - other) / max(abs(value), 1e-300))
        assert worst <= 5e-13, (
            f"memo noise {worst:.2e} above the documented ~1e-13 "
            f"relative bound — a numerics change, not warm-start noise")
