"""Non-ballistic transmission extension."""

import pytest

from repro.errors import ParameterError
from repro.physics.scattering import (
    MeanFreePathModel,
    quasi_ballistic_factor,
    transmission,
)


def test_ballistic_limit():
    assert transmission(0.0, 300.0) == 1.0


def test_half_transmission_at_mfp():
    assert transmission(300.0, 300.0) == pytest.approx(0.5)


def test_long_channel_limit():
    assert transmission(3e6, 300.0) < 1e-3


def test_transmission_validation():
    with pytest.raises(ParameterError):
        transmission(-1.0, 300.0)
    with pytest.raises(ParameterError):
        transmission(100.0, 0.0)


def test_mfp_scales_inverse_temperature():
    model = MeanFreePathModel(300.0)
    assert model.mean_free_path_nm(150.0) == pytest.approx(600.0)
    assert model.mean_free_path_nm(600.0) == pytest.approx(150.0)


def test_mfp_validation():
    with pytest.raises(ParameterError):
        MeanFreePathModel(0.0)
    with pytest.raises(ParameterError):
        MeanFreePathModel(300.0).mean_free_path_nm(-1.0)


def test_quasi_ballistic_factor_default_model():
    t = quasi_ballistic_factor(100.0, 300.0)
    assert t == pytest.approx(300.0 / 400.0)


def test_transmission_scales_reference_current():
    """The FETToy parameter hook: IDS scales linearly with transmission."""
    from repro.reference.fettoy import FETToyModel, FETToyParameters

    full = FETToyModel(FETToyParameters())
    half = FETToyModel(FETToyParameters(transmission=0.5))
    assert half.ids(0.5, 0.5) == pytest.approx(
        0.5 * full.ids(0.5, 0.5), rel=1e-9
    )
