"""Sampler determinism and Latin-hypercube stratification."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.variability.params import (
    Choice,
    Fixed,
    Normal,
    ParameterSpace,
    Uniform,
)
from repro.variability.sampling import (
    latin_hypercube,
    monte_carlo,
    sample_space,
    unit_matrix,
)


def small_space() -> ParameterSpace:
    return ParameterSpace.from_dict({
        "diameter_nm": Normal(1.0, 0.06, low=0.6, high=2.0),
        "tox_nm": Uniform(1.2, 1.8),
        "kappa": Fixed(3.9),
        "fermi_level_ev": Normal(-0.32, 0.01),
    })


class TestDeterminism:
    def test_same_seed_identical_run_table(self):
        space = small_space()
        assert monte_carlo(space, 50, seed=42) == monte_carlo(
            space, 50, seed=42)
        assert latin_hypercube(space, 50, seed=42) == latin_hypercube(
            space, 50, seed=42)

    def test_different_seed_differs(self):
        space = small_space()
        assert monte_carlo(space, 50, seed=1) != monte_carlo(
            space, 50, seed=2)
        assert latin_hypercube(space, 50, seed=1) != latin_hypercube(
            space, 50, seed=2)

    def test_mc_and_lhs_streams_differ(self):
        space = small_space()
        assert monte_carlo(space, 50, seed=3) != latin_hypercube(
            space, 50, seed=3)

    def test_chunking_invariance(self):
        """The run table is generated up-front, so chunked consumption
        can never change the samples."""
        space = small_space()
        full = monte_carlo(space, 40, seed=9)
        again = monte_carlo(space, 40, seed=9)
        assert full[13:29] == again[13:29]

    def test_discrete_choice_deterministic(self):
        space = ParameterSpace.from_dict({
            "chirality": Choice(((10, 0), (13, 0), (14, 0)),
                                weights=(0.2, 0.6, 0.2)),
        })
        a = sample_space(space, 30, seed=5)
        b = sample_space(space, 30, seed=5)
        assert a == b
        assert {s["chirality"] for s in a} <= {(10, 0), (13, 0), (14, 0)}


class TestLatinHypercube:
    def test_one_point_per_stratum_every_dimension(self):
        n, dims = 64, 3
        u = unit_matrix("lhs", n, dims, seed=11)
        for j in range(dims):
            strata = np.floor(u[:, j] * n).astype(int)
            assert sorted(strata) == list(range(n))

    def test_values_in_open_unit_interval(self):
        u = unit_matrix("lhs", 200, 4, seed=0)
        assert np.all(u > 0.0) and np.all(u < 1.0)

    def test_mapped_samples_respect_distribution_bounds(self):
        space = small_space()
        for sample in latin_hypercube(space, 100, seed=2):
            assert 0.6 <= sample["diameter_nm"] <= 2.0
            assert 1.2 <= sample["tox_nm"] <= 1.8
            assert sample["kappa"] == 3.9

    def test_lhs_covers_tails_better_than_its_strata_promise(self):
        """With n strata the extreme bins are always populated."""
        n = 50
        u = unit_matrix("lhs", n, 1, seed=4)
        assert np.min(u) < 1.0 / n
        assert np.max(u) > 1.0 - 1.0 / n


class TestValidation:
    def test_unknown_sampler(self):
        with pytest.raises(ParameterError):
            unit_matrix("sobol", 10, 2, seed=0)

    def test_bad_counts(self):
        with pytest.raises(ParameterError):
            unit_matrix("mc", 0, 2, seed=0)
        with pytest.raises(ParameterError):
            unit_matrix("mc", 10, 0, seed=0)
