"""Shared fixtures.

Expensive objects (reference model, fitted devices) are session-scoped;
they are immutable after construction, so sharing them across tests is
safe and keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro.pwl.device import CNFET
from repro.reference.fettoy import FETToyModel, FETToyParameters


@pytest.fixture(scope="session")
def ref300() -> FETToyModel:
    """Reference model, stock device (T=300K, EF=-0.32 eV)."""
    return FETToyModel(FETToyParameters())


@pytest.fixture(scope="session")
def charge300(ref300):
    return ref300.charge


@pytest.fixture(scope="session")
def device_m1() -> CNFET:
    return CNFET(FETToyParameters(), model="model1")


@pytest.fixture(scope="session")
def device_m2() -> CNFET:
    return CNFET(FETToyParameters(), model="model2")


@pytest.fixture(scope="session")
def device_p() -> CNFET:
    return CNFET(FETToyParameters(), model="model2", polarity="p")
