"""Circuit-level Monte-Carlo evaluators (inverter VTC, ring osc)."""

import math

import pytest

from repro.errors import ParameterError
from repro.variability.circuits import (
    InverterVTCEvaluator,
    RingOscillatorEvaluator,
)
from repro.variability.params import (
    Fixed,
    Normal,
    ParameterSpace,
)
from repro.variability.sampling import monte_carlo


def tiny_space() -> ParameterSpace:
    return ParameterSpace.from_dict({
        "diameter_nm": Normal(1.0, 0.06, low=0.6, high=2.0),
        "tox_nm": Normal(1.5, 0.075, low=0.8, high=3.0),
        "kappa": Fixed(3.9),
        "fermi_level_ev": Normal(-0.32, 0.01, low=-0.5, high=-0.1),
    })


class TestInverter:
    def test_nominal_metrics(self):
        space = tiny_space()
        ev = InverterVTCEvaluator(space, points=31)
        out = ev.evaluate([space.nominal_sample()])[0]
        # n and p share the sampled parameters, so the pair is matched
        # and VM sits at VDD/2.
        assert out["vm"] == pytest.approx(0.3, abs=0.02)
        assert out["gain"] > 5.0
        assert out["nml"] > 0.05
        assert out["nmh"] > 0.05

    def test_dedup_memo(self):
        space = tiny_space()
        calls = []
        ev = InverterVTCEvaluator(space, points=21)
        original = ev._evaluate_key

        def counting(key):
            calls.append(key)
            return original(key)

        ev._evaluate_key = counting
        sample = space.nominal_sample()
        results = ev.evaluate([sample, dict(sample), dict(sample)])
        assert len(calls) == 1
        assert results[0] == results[1] == results[2]
        # second evaluate() round reuses the cross-chunk memo
        ev.evaluate([sample])
        assert len(calls) == 1

    def test_variation_moves_metrics(self):
        space = tiny_space()
        ev = InverterVTCEvaluator(space, points=21)
        samples = monte_carlo(space, 3, seed=5)
        rows = ev.evaluate(samples)
        gains = {round(r["gain"], 6) for r in rows}
        assert len(gains) >= 2

    def test_validation(self):
        with pytest.raises(ParameterError):
            InverterVTCEvaluator(tiny_space(), points=5)
        with pytest.raises(ParameterError):
            InverterVTCEvaluator(tiny_space(), workers=0)


class TestRingOscillator:
    def test_nominal_period(self):
        space = tiny_space()
        ev = RingOscillatorEvaluator(space, stages=3)
        out = ev.evaluate([space.nominal_sample()])[0]
        assert out["period"] > 0.0
        assert out["frequency"] == pytest.approx(1.0 / out["period"])
        assert out["stage_delay"] == pytest.approx(out["period"] / 6.0)

    def test_workers_pool_matches_serial(self):
        space = tiny_space()
        samples = monte_carlo(space, 3, seed=2)
        serial = RingOscillatorEvaluator(space, stages=3).evaluate(samples)
        pooled = RingOscillatorEvaluator(space, stages=3,
                                         workers=2).evaluate(samples)
        for s, p in zip(serial, pooled):
            for name in s:
                assert s[name] == pytest.approx(p[name], rel=1e-9)

    def test_failed_run_yields_nan(self):
        space = tiny_space()
        # Far too short a window to see two rising crossings.
        ev = RingOscillatorEvaluator(space, stages=3, tstop=8e-12,
                                     dt=2e-12)
        out = ev.evaluate([space.nominal_sample()])[0]
        assert all(math.isnan(v) for v in out.values())

    def test_validation(self):
        with pytest.raises(ParameterError):
            RingOscillatorEvaluator(tiny_space(), stages=4)
        with pytest.raises(ParameterError):
            RingOscillatorEvaluator(tiny_space(), tstop=1e-12, dt=2e-12)
