"""HDL emitters: structural checks on generated source."""

import re

import pytest

from repro.errors import CodegenError
from repro.pwl.codegen import (
    generate_spice_subcircuit,
    generate_verilog_a,
    generate_vhdl_ams,
)
from repro.pwl.device import CNFET
from repro.reference.fettoy import FETToyParameters


class TestVhdlAms:
    def test_structure(self, device_m2):
        code = generate_vhdl_ams(device_m2)
        assert "entity cnfet is" in code
        assert "architecture pwl of cnfet" in code
        assert "function q_mobile" in code
        assert code.count("elsif") >= 2  # 4 regions -> if/elsif/elsif/else
        assert "end architecture" in code

    def test_custom_entity_name(self, device_m2):
        code = generate_vhdl_ams(device_m2, entity_name="my_tube")
        assert "entity my_tube is" in code

    def test_constants_embedded(self, device_m2):
        code = generate_vhdl_ams(device_m2)
        csum = device_m2.capacitances.csum
        assert f"{csum:.10e}" in code

    def test_header_provenance(self, device_m2):
        code = generate_vhdl_ams(device_m2)
        assert "DATE 2008" in code
        assert "model2" in code

    def test_model1_has_fewer_branches(self, device_m1, device_m2):
        code1 = generate_vhdl_ams(device_m1)
        code2 = generate_vhdl_ams(device_m2)
        assert code1.count("elsif") < code2.count("elsif")


class TestVerilogA:
    def test_structure(self, device_m2):
        code = generate_verilog_a(device_m2)
        assert "module cnfet(d, g, s);" in code
        assert "electrical sigma" in code
        assert "analog begin" in code
        assert "I(d, s) <+" in code
        assert "endmodule" in code

    def test_region_selection_present(self, device_m2):
        code = generate_verilog_a(device_m2)
        assert code.count("else if") >= 4  # two charge blocks


class TestSpice:
    def test_structure(self, device_m2):
        code = generate_spice_subcircuit(device_m2)
        assert ".subckt cnfet d g s" in code
        assert ".ends cnfet" in code
        assert "Bids d s" in code

    def test_nested_ternaries(self, device_m2):
        code = generate_spice_subcircuit(device_m2)
        assert code.count("?") >= 6  # 3 breakpoints x 2 charge terms


class TestGuards:
    def test_p_type_rejected(self):
        device = CNFET(FETToyParameters(), polarity="p")
        with pytest.raises(CodegenError):
            generate_vhdl_ams(device)

    def test_numeric_literals_parse(self, device_m2):
        """Every emitted numeric literal must be a valid float."""
        code = generate_spice_subcircuit(device_m2)
        for token in re.findall(r"-?\d+\.\d+e[+-]\d+", code):
            float(token)
