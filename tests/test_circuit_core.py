"""Netlist container, MNA assembly and DC analyses on linear circuits."""

import numpy as np
import pytest

from repro.circuit import (
    Capacitor,
    Circuit,
    CurrentSource,
    Diode,
    Inductor,
    Resistor,
    VoltageSource,
    dc_sweep,
    operating_point,
)
from repro.circuit.mna import NewtonOptions, assemble
from repro.errors import AnalysisError, NetlistError, ParameterError


def divider() -> Circuit:
    c = Circuit("divider")
    c.add(VoltageSource("v1", "in", "0", 12.0))
    c.add(Resistor("r1", "in", "mid", 2000.0))
    c.add(Resistor("r2", "mid", "0", 1000.0))
    return c


class TestCircuit:
    def test_nodes_in_order(self):
        c = divider()
        assert c.nodes == ["in", "mid"]

    def test_duplicate_names_rejected(self):
        c = divider()
        with pytest.raises(NetlistError):
            c.add(Resistor("R1", "a", "0", 1.0))  # case-insensitive clash

    def test_element_lookup(self):
        c = divider()
        assert c.element("V1").name == "v1"
        with pytest.raises(NetlistError):
            c.element("nope")
        assert "r1" in c and "zz" not in c

    def test_requires_ground(self):
        c = Circuit()
        c.add(Resistor("r1", "a", "b", 1.0))
        with pytest.raises(NetlistError):
            c.dimension()

    def test_requires_nodes(self):
        with pytest.raises(NetlistError):
            Circuit().dimension()

    def test_dimension_counts_aux(self):
        c = divider()
        assert c.dimension() == 3  # 2 nodes + 1 source current


class TestElements:
    def test_resistor_validation(self):
        with pytest.raises(ParameterError):
            Resistor("r", "a", "b", 0.0)
        with pytest.raises(ParameterError):
            Resistor("r", "a", "b", float("inf"))

    def test_capacitor_validation(self):
        with pytest.raises(ParameterError):
            Capacitor("c", "a", "b", -1e-12)

    def test_inductor_validation(self):
        with pytest.raises(ParameterError):
            Inductor("l", "a", "b", 0.0)

    def test_diode_validation(self):
        with pytest.raises(ParameterError):
            Diode("d", "a", "b", saturation_current=0.0)

    def test_unknown_node_raises_at_stamp(self):
        c = divider()
        c.dimension()
        ctx = assemble(c, np.zeros(3))
        with pytest.raises(NetlistError):
            ctx.idx("ghost")


class TestOperatingPoint:
    def test_divider(self):
        op = operating_point(divider())
        assert op.voltage("mid") == pytest.approx(4.0)
        assert op.voltage("in") == pytest.approx(12.0)
        assert op.voltage("0") == 0.0

    def test_source_current_sign(self):
        op = operating_point(divider())
        # SPICE convention: current into the + terminal (negative for a
        # sourcing supply).
        assert op.source_current("v1") == pytest.approx(-4e-3)

    def test_element_current(self):
        op = operating_point(divider())
        assert op.element_current("r1") == pytest.approx(4e-3)

    def test_current_source(self):
        c = Circuit()
        c.add(CurrentSource("i1", "0", "out", 1e-3))
        c.add(Resistor("r1", "out", "0", 1000.0))
        op = operating_point(c)
        assert op.voltage("out") == pytest.approx(1.0)

    def test_capacitor_open_in_dc(self):
        c = divider()
        c.add(Capacitor("c1", "mid", "0", 1e-9))
        op = operating_point(c)
        assert op.voltage("mid") == pytest.approx(4.0)

    def test_inductor_short_in_dc(self):
        c = Circuit()
        c.add(VoltageSource("v1", "in", "0", 5.0))
        c.add(Resistor("r1", "in", "a", 1000.0))
        c.add(Inductor("l1", "a", "out", 1e-6))
        c.add(Resistor("r2", "out", "0", 1000.0))
        op = operating_point(c)
        assert op.voltage("a") == pytest.approx(op.voltage("out"))
        assert op.voltage("out") == pytest.approx(2.5)

    def test_diode_forward_drop(self):
        c = Circuit()
        c.add(VoltageSource("v1", "in", "0", 5.0))
        c.add(Resistor("r1", "in", "a", 1000.0))
        c.add(Diode("d1", "a", "0"))
        op = operating_point(c)
        assert 0.5 < op.voltage("a") < 0.8

    def test_diode_reverse_blocks(self):
        c = Circuit()
        c.add(VoltageSource("v1", "in", "0", -5.0))
        c.add(Resistor("r1", "in", "a", 1000.0))
        c.add(Diode("d1", "a", "0"))
        op = operating_point(c)
        # Almost the full negative supply appears across the diode.
        assert op.voltage("a") == pytest.approx(-5.0, abs=0.05)

    def test_floating_node_is_singular(self):
        c = Circuit()
        c.add(VoltageSource("v1", "in", "0", 1.0))
        c.add(Resistor("r1", "float_a", "float_b", 1.0))
        with pytest.raises(AnalysisError):
            operating_point(
                c, NewtonOptions(gmin_stepping=False,
                                 source_stepping=False),
            )

    def test_as_dict(self):
        op = operating_point(divider())
        d = op.as_dict()
        assert d["v(mid)"] == pytest.approx(4.0)


class TestDcSweep:
    def test_sweep_traces(self):
        c = divider()
        ds = dc_sweep(c, "v1", [0.0, 6.0, 12.0])
        np.testing.assert_allclose(ds.voltage("mid"), [0.0, 2.0, 4.0])

    def test_sweep_restores_source(self):
        c = divider()
        dc_sweep(c, "v1", [1.0, 2.0])
        op = operating_point(c)
        assert op.voltage("in") == pytest.approx(12.0)

    def test_sweep_rejects_non_source(self):
        c = divider()
        with pytest.raises(NetlistError):
            dc_sweep(c, "r1", [1.0])

    def test_sweep_current_source(self):
        c = Circuit()
        c.add(CurrentSource("i1", "0", "out", 0.0))
        c.add(Resistor("r1", "out", "0", 100.0))
        ds = dc_sweep(c, "i1", [0.0, 1e-2])
        np.testing.assert_allclose(ds.voltage("out"), [0.0, 1.0])
