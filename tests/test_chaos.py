"""Chaos suite: seeded fault plans over real workloads.

Every test follows the same shape (docs/robustness.md): run a
workload fault-free, replay it under a seeded :class:`FaultPlan`
that kills workers, truncates records, fails transports or injects
latency, and assert the recovered results are *identical* — byte-for-
byte where the path is deterministic, within the documented ~1e-13
memo-noise bound where multi-worker evaluator memos are involved.
Faults must cost time, never results.
"""

from __future__ import annotations

import json
import multiprocessing
import time

import numpy as np
import pytest

from repro import faults
from repro.cancel import CancelToken
from repro.errors import CancelledError, ParameterError, ServiceError
from repro.service import JobServer, ServiceClient


def _require_fork():
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("no fork on this platform")


# ---------------------------------------------------------------------
# FaultPlan unit behaviour
# ---------------------------------------------------------------------

class TestFaultPlan:
    def test_unknown_seam_rejected(self):
        with pytest.raises(ParameterError, match="unknown fault seam"):
            faults.FaultPlan(schedule={"disk.on_fire": [1]})
        with pytest.raises(ParameterError, match="latency_s"):
            faults.FaultPlan(latency_s=-1.0)

    def test_unkeyed_seam_counts_calls(self):
        plan = faults.FaultPlan(schedule={"persist.truncate": [2, 4]})
        with faults.activate(plan):
            fires = [faults.fire("persist.truncate") for _ in range(5)]
        assert fires == [False, True, False, True, False]
        assert plan.fired == [("persist.truncate", 2),
                              ("persist.truncate", 4)]

    def test_keyed_seam_matches_keys_not_counts(self):
        plan = faults.FaultPlan(
            schedule={"parallel.worker_kill": [7]})
        with faults.activate(plan):
            assert not faults.fire("parallel.worker_kill", key=3)
            assert faults.fire("parallel.worker_kill", key=7)
            # Keyed firing is by key, not call order: key 7 fires
            # whenever it is presented, regardless of position.
            assert faults.fire("parallel.worker_kill", key=7)

    def test_inactive_seams_never_fire(self):
        assert faults.active_plan() is None
        assert not faults.fire("persist.truncate")
        plan = faults.FaultPlan(schedule={"persist.truncate": [1]})
        with faults.activate(plan):
            assert faults.fire("solver.singular") is False

    def test_activation_nests_and_restores(self):
        outer = faults.FaultPlan(seed=1)
        inner = faults.FaultPlan(seed=2)
        with faults.activate(outer):
            assert faults.active_plan() is outer
            with faults.activate(inner):
                assert faults.active_plan() is inner
            assert faults.active_plan() is outer
        assert faults.active_plan() is None

    def test_random_plans_are_replayable(self):
        rates = {"persist.truncate": 0.3, "service.transport": 0.5}
        a = faults.FaultPlan.random(42, rates, horizon=32)
        b = faults.FaultPlan.random(42, rates, horizon=32)
        assert a.describe() == b.describe()
        assert a.describe()["seed"] == 42
        other = faults.FaultPlan.random(43, rates, horizon=32)
        assert other.describe() != a.describe()
        with pytest.raises(ParameterError, match="rate"):
            faults.FaultPlan.random(1, {"persist.truncate": 1.5})

    def test_describe_is_the_documented_schema(self):
        plan = faults.FaultPlan(seed=7,
                                schedule={"persist.truncate": [3, 1]},
                                latency_s=0.25)
        assert plan.describe() == {
            "seed": 7,
            "latency_s": 0.25,
            "schedule": {"persist.truncate": [1, 3]},
        }
        # The schema round-trips into an identically-firing plan.
        clone = faults.FaultPlan(**plan.describe())
        assert clone.describe() == plan.describe()

    def test_mangle_text_truncates_to_half(self):
        plan = faults.FaultPlan(schedule={"persist.truncate": [1]})
        with faults.activate(plan):
            assert faults.mangle_text("persist.truncate",
                                      "0123456789") == "01234"
            assert faults.mangle_text("persist.truncate",
                                      "0123456789") == "0123456789"

    def test_listeners_observe_firings(self):
        seen = []

        def listener(seam, key):
            seen.append((seam, key))

        faults.add_listener(listener)
        try:
            plan = faults.FaultPlan(
                schedule={"persist.truncate": [1],
                          "parallel.worker_kill": [4]})
            with faults.activate(plan):
                faults.fire("persist.truncate")
                faults.fire("parallel.worker_kill", key=4)
        finally:
            faults.remove_listener(listener)
        assert seen == [("persist.truncate", None),
                        ("parallel.worker_kill", 4)]
        faults.remove_listener(listener)  # idempotent


class TestCancelToken:
    def test_explicit_cancel(self):
        token = CancelToken()
        token.check()  # no deadline, not cancelled: passes
        assert token.remaining() is None
        token.cancel("stop now")
        assert token.cancelled
        with pytest.raises(CancelledError, match="stop now") as err:
            token.check()
        assert err.value.kind == "cancelled"

    def test_deadline_expiry(self):
        token = CancelToken(0.01)
        time.sleep(0.03)
        assert token.expired
        assert token.remaining() == 0.0
        with pytest.raises(CancelledError) as err:
            token.check()
        assert err.value.kind == "timeout"

    def test_invalid_deadline_rejected(self):
        with pytest.raises(ParameterError):
            CancelToken(-1.0)


# ---------------------------------------------------------------------
# Kernel-backend seam
# ---------------------------------------------------------------------

class TestKernelBackendSeam:
    def test_auto_resolution_degrades_to_numpy(self, monkeypatch):
        from repro.pwl import kernels

        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        reference = kernels.resolve_kernel_backend("numpy")
        plan = faults.FaultPlan(schedule={"kernel.backend": [1]})
        with faults.activate(plan):
            degraded = kernels.resolve_kernel_backend("auto")
        assert type(degraded) is type(reference)
        assert plan.fired == [("kernel.backend", 1)]

    def test_explicit_compiled_request_still_errors(self, monkeypatch):
        """The seam only affects *auto* resolution — an explicit
        backend request keeps its normal semantics under chaos."""
        from repro.pwl import kernels

        plan = faults.FaultPlan(
            schedule={"kernel.backend": list(range(1, 10))})
        with faults.activate(plan):
            reference = kernels.resolve_kernel_backend("numpy")
        assert type(reference).__module__.endswith("numpy_backend") \
            or "umpy" in type(reference).__name__


# ---------------------------------------------------------------------
# Campaign chaos: worker kill + truncated record over 64-sample MC
# ---------------------------------------------------------------------

@pytest.mark.slow
class TestCampaignChaos:
    def _campaign(self, run_dir):
        from repro.variability.campaign import (
            Campaign,
            CampaignConfig,
            DeviceMetricsEvaluator,
        )
        from repro.variability.params import default_device_space

        space = default_device_space()
        config = CampaignConfig(name="chaos-mc", n_samples=64, seed=7,
                                sampler="mc", chunk_size=16)
        return Campaign(config, space, DeviceMetricsEvaluator(space),
                        run_dir=run_dir)

    @staticmethod
    def _assert_parity(chaos_records, baseline_records, bound=5e-13):
        assert len(chaos_records) == len(baseline_records) == 64
        worst = 0.0
        for a, b in zip(chaos_records, baseline_records):
            assert a["params"] == b["params"]
            for metric, value in b["metrics"].items():
                other = a["metrics"][metric]
                if value == other:
                    continue
                worst = max(worst, abs(value - other)
                            / max(abs(value), 1e-300))
        assert worst <= bound, (
            f"chaos run diverged by {worst:.2e} relative — faults "
            f"changed results, not just timing")

    def test_worker_kill_and_truncation_cost_time_not_results(
            self, tmp_path):
        _require_fork()
        baseline = self._campaign(tmp_path / "baseline").run(workers=1)

        # Chaos pass: chunk 1's worker is OOM-killed (keyed seam) and
        # the third atomic record write (manifest is #1, chunks follow)
        # is truncated as a crash mid-write would.
        plan = faults.FaultPlan(
            seed=11,
            schedule={"parallel.worker_kill": [1],
                      "persist.truncate": [3]})
        chaos_dir = tmp_path / "chaos"
        with faults.activate(plan):
            chaos = self._campaign(chaos_dir).run(workers=2)
        # Parity within the documented multi-worker memo-noise bound.
        self._assert_parity(chaos.records, baseline.records)
        assert ("persist.truncate", 3) in plan.fired

        # Recovery pass: resume finds the truncated chunk file,
        # quarantines it and recomputes — identical records again.
        resumed = self._campaign(chaos_dir).run(workers=1)
        assert resumed.quarantined == 1
        assert resumed.computed_chunks == 1
        assert resumed.resumed_chunks == 3
        quarantine = sorted(
            (chaos_dir / "chunks" / "quarantine").glob("*.json"))
        assert len(quarantine) == 1
        self._assert_parity(resumed.records, baseline.records)

    def test_corrupt_manifest_quarantines_everything(self, tmp_path):
        run_dir = tmp_path / "run"
        first = self._campaign(run_dir).run(workers=1)
        (run_dir / "manifest.json").write_text("{truncated")
        resumed = self._campaign(run_dir).run(workers=1)
        # Manifest + all 4 chunk files were unverifiable.
        assert resumed.quarantined == 5
        assert resumed.computed_chunks == 4
        assert (run_dir / "quarantine" / "manifest.json").exists()
        self._assert_parity(resumed.records, first.records, bound=0.0)


# ---------------------------------------------------------------------
# Experiment-runner chaos: truncated record.json, quarantined + redone
# ---------------------------------------------------------------------

class TestExprunnerChaos:
    @staticmethod
    def _config():
        from repro.exprunner import (WORKLOADS, RunnerConfig, Workload,
                                     register_workload)

        if "chaos_toy" not in WORKLOADS:
            register_workload(Workload(
                name="chaos_toy",
                run=lambda point, params, seed: {
                    "wall_s": 0.0, "newton_iterations": 1.0,
                    "metrics": {"value": float(seed % 13)
                                + float(point["offset"])},
                    "signature": {"trace": [float(point["offset"])]},
                },
                description="chaos-suite toy workload"))
        return RunnerConfig.from_dict({
            "name": "chaos", "workload": "chaos_toy",
            "factors": {"offset": [0.0, 1.0]}, "repetitions": 2})

    @staticmethod
    def _comparable(records):
        """The deterministic slice of the records (timings excluded)."""
        return json.dumps(
            [{k: r[k] for k in ("run_id", "seed", "point", "status",
                                "metrics", "parity")}
             for r in records], sort_keys=True)

    def test_truncated_record_quarantined_and_recomputed(
            self, tmp_path):
        from repro.exprunner import ExperimentRunner

        config = self._config()
        baseline = ExperimentRunner(config,
                                    tmp_path / "baseline").run()

        # Chaos pass: one record.json lands truncated on disk.
        chaos_dir = tmp_path / "chaos"
        plan = faults.FaultPlan(seed=5,
                                schedule={"persist.truncate": [3]})
        with faults.activate(plan):
            chaos = ExperimentRunner(config, chaos_dir).run()
        assert self._comparable(chaos.records) \
            == self._comparable(baseline.records)
        assert ("persist.truncate", 3) in plan.fired

        resumed = ExperimentRunner(config, chaos_dir).run()
        assert resumed.quarantined == 1
        assert resumed.computed == 1 and resumed.complete
        quarantined = list(
            (chaos_dir / "runs" / "quarantine").glob("*.record.json"))
        assert len(quarantined) == 1
        assert self._comparable(resumed.records) \
            == self._comparable(baseline.records)

    def test_corrupt_manifest_recomputes_fresh(self, tmp_path):
        from repro.exprunner import ExperimentRunner

        config = self._config()
        run_dir = tmp_path / "run"
        first = ExperimentRunner(config, run_dir).run()
        (run_dir / "manifest.json").write_text('{"finger')
        resumed = ExperimentRunner(config, run_dir).run()
        # Manifest + every record were unverifiable -> quarantined.
        assert resumed.quarantined == 1 + len(first.records)
        assert resumed.computed == len(first.records)
        assert resumed.complete
        assert self._comparable(resumed.records) \
            == self._comparable(first.records)

    def test_mismatched_fingerprint_still_refuses(self, tmp_path):
        """Corruption recovery must not swallow the 'different
        experiment' guard — a readable manifest that disagrees is an
        operator error, not a crash artefact."""
        from repro.errors import CampaignError
        from repro.exprunner import ExperimentRunner, RunnerConfig

        config = self._config()
        ExperimentRunner(config, tmp_path).run()
        changed = RunnerConfig.from_dict(
            dict(config.describe(), seed=99))
        with pytest.raises(CampaignError, match="different experiment"):
            ExperimentRunner(changed, tmp_path).run()


# ---------------------------------------------------------------------
# Waveform-store chaos: truncated chunk quarantined, recompute rebuilds
# ---------------------------------------------------------------------

class TestStoreTruncateSeam:
    @staticmethod
    def _run(store_dir):
        from repro.circuit import (Capacitor, Circuit, Resistor,
                                   VoltageSource, transient)
        from repro.circuit.waveforms import Pulse

        c = Circuit("rc")
        c.add(VoltageSource("v1", "in", "0",
                            Pulse(0.0, 1.0, delay=0.0, rise=1e-15,
                                  width=1e-6, period=2e-6)))
        c.add(Resistor("r1", "in", "out", 1000.0))
        c.add(Capacitor("c1", "out", "0", 1e-12))
        return transient(c, tstop=5e-9, dt=1e-11,
                         record_currents=False,
                         store=str(store_dir), store_chunk_rows=64)

    def test_truncated_chunk_quarantined_then_recomputed(self, tmp_path):
        from repro.circuit import WaveformStore
        from repro.circuit.results import Dataset

        baseline = self._run(tmp_path / "baseline")

        # Chaos pass: the third chunk write lands truncated, as a crash
        # between write and rename would leave it.  The writer itself
        # does not notice; the run "crashes" when result assembly first
        # reads the store back (a StoreError, not a raw numpy error).
        from repro.errors import StoreError

        plan = faults.FaultPlan(seed=3,
                                schedule={"persist.truncate": [3]})
        chaos_dir = tmp_path / "chaos"
        with faults.activate(plan):
            with pytest.raises(StoreError, match="chunk_00002"):
                self._run(chaos_dir)
        assert ("persist.truncate", 3) in plan.fired

        # Reopen: chunk 2 fails validation; it and every later chunk
        # (their rows would shift) are quarantined, the survivors stay
        # readable and equal to the baseline prefix.
        store = WaveformStore.open(chaos_dir)
        assert store.quarantined > 0
        assert (chaos_dir / "quarantine" / "chunk_00002.npy").exists()
        surviving = Dataset.from_store(store)
        n = surviving.axis.shape[0]
        assert n == 128  # two intact 64-row chunks
        for name in surviving.names:
            assert np.array_equal(surviving.trace(name),
                                  baseline.trace(name)[:n])

        # Recompute: rerunning into the same directory resets the store
        # and rebuilds the full run, identical to the fault-free one.
        recomputed = self._run(chaos_dir)
        for name in baseline.names:
            assert np.array_equal(recomputed.trace(name),
                                  baseline.trace(name))
        reopened = WaveformStore.open(chaos_dir)
        assert reopened.quarantined == 0
        assert reopened.n_rows == baseline.axis.shape[0]


# ---------------------------------------------------------------------
# Service chaos: 8-job burst under transport faults + latency
# ---------------------------------------------------------------------

RC_DECK = """* rc lowpass
V1 in 0 pulse(0 1 1e-9 1e-9 1e-9 1e-8 4e-8)
R1 in out {r}
C1 out 0 1e-12
.end
"""

BURST_R = ["1e3", "2e3", "3e3", "4e3", "5e3", "6e3", "7e3", "8e3"]


def rc_job(r, **overrides):
    spec = {"kind": "transient", "deck": RC_DECK.format(r=r),
            "tstop": 2e-8, "dt": 2e-10}
    spec.update(overrides)
    return spec


def _run_burst(client):
    docs = [client.submit(rc_job(r)) for r in BURST_R]
    return [client.wait(doc["id"], timeout=60.0)["result"]
            for doc in docs]


@pytest.mark.slow
class TestServiceChaos:
    def test_burst_is_byte_identical_under_faults(self):
        with JobServer(workers=2, batch_window=0.05,
                       cache_size=64) as srv:
            host, port = srv.start()
            client = ServiceClient(f"http://{host}:{port}",
                                   timeout=60.0)
            baseline = _run_burst(client)

        plan = faults.FaultPlan(
            seed=3,
            # Requests 2 and 5 are job submissions (the burst submits
            # sequentially before polling) -> both retried; the first
            # request also eats 50 ms of injected latency.
            schedule={"service.transport": [2, 5],
                      "service.latency": [1]},
            latency_s=0.05)
        with JobServer(workers=2, batch_window=0.05,
                       cache_size=64) as srv:
            host, port = srv.start()
            client = ServiceClient(f"http://{host}:{port}",
                                   timeout=60.0)
            with faults.activate(plan):
                chaos = _run_burst(client)
            fired = client.metric_value(
                "service_faults_injected_total")
            assert fired >= 3
        assert [json.dumps(r, sort_keys=True) for r in chaos] == \
            [json.dumps(r, sort_keys=True) for r in baseline]
        assert ("service.transport", 2) in plan.fired
        assert ("service.transport", 5) in plan.fired

    def test_scheduler_latency_seam_changes_timing_only(self):
        plan = faults.FaultPlan(
            seed=4, schedule={"service.latency": [1, 2]},
            latency_s=0.05)
        with JobServer(workers=1, batch_window=0.0,
                       cache_size=8) as srv:
            job_direct = srv.submit(rc_job("9e3"))
            assert job_direct.wait(timeout=60.0)
            reference = job_direct.result
            with faults.activate(plan):
                job_slow = srv.submit(rc_job("9e3", nodes=["out"]))
                assert job_slow.wait(timeout=60.0)
        assert job_slow.state == "done"
        assert json.dumps(job_slow.result["traces"]["v(out)"]) == \
            json.dumps(reference["traces"]["v(out)"])


# ---------------------------------------------------------------------
# Deadlines: structured timeouts that keep the worker reusable
# ---------------------------------------------------------------------

@pytest.mark.slow
class TestDeadlines:
    def test_deadline_job_times_out_structured_and_fast(self):
        deadline_s = 0.5
        with JobServer(workers=1, batch_window=0.0,
                       cache_size=8) as srv:
            host, port = srv.start()
            client = ServiceClient(f"http://{host}:{port}",
                                   timeout=30.0)
            start = time.monotonic()
            doc = client.submit(rc_job("1e3", tstop=4e-8, dt=1e-12,
                                       deadline_s=deadline_s))
            assert doc["deadline_s"] == deadline_s
            final = client.status(doc["id"])
            while final["state"] not in ("done", "failed"):
                time.sleep(0.02)
                final = client.status(doc["id"])
            elapsed = time.monotonic() - start
            assert final["state"] == "failed"
            assert final["error_kind"] == "timeout"
            assert "deadline" in final["error"] \
                or "timed out" in final["error"]
            # The budget is enforced promptly: well within 2x.
            assert elapsed <= 2.0 * deadline_s, (
                f"timeout surfaced after {elapsed:.2f}s for a "
                f"{deadline_s:g}s deadline")
            assert client.metric_value(
                "service_jobs_timeout_total") >= 1
            # The worker thread survived the cancellation and is
            # immediately reusable.
            again = client.run(rc_job("2e3"), timeout=60.0)
            assert again["state"] == "done"

    def test_deadline_excluded_from_cache_fingerprint(self):
        from repro.service import parse_job_spec

        plain = parse_job_spec(rc_job("1e3"))
        bounded = parse_job_spec(rc_job("1e3", deadline_s=30.0))
        # deadline_s is execution policy, not physics: same result,
        # same cache entry — but deadline jobs never coalesce.
        assert bounded.fingerprint == plain.fingerprint
        assert bounded.group_key is None
        assert plain.group_key is not None

    def test_generous_deadline_job_completes(self):
        with JobServer(workers=1, batch_window=0.0,
                       cache_size=8) as srv:
            job = srv.submit(rc_job("3e3", deadline_s=60.0))
            assert job.wait(timeout=60.0)
            assert job.state == "done"

    def test_run_cancels_server_side_on_wait_timeout(self):
        with JobServer(workers=1, batch_window=0.0,
                       cache_size=8) as srv:
            host, port = srv.start()
            client = ServiceClient(f"http://{host}:{port}",
                                   timeout=30.0)
            with pytest.raises(ServiceError, match="still"):
                client.run(rc_job("4e3", tstop=4e-8, dt=1e-12),
                           timeout=0.3)
            # run() cancelled the abandoned job server-side; it must
            # settle as cancelled instead of burning the worker.
            deadline = time.monotonic() + 10.0
            counts = srv.registry.counts()
            while counts["running"] + counts["pending"] > 0 \
                    and time.monotonic() < deadline:
                time.sleep(0.02)
                counts = srv.registry.counts()
            assert counts["failed"] == 1
