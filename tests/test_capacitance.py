"""Gate electrostatics and terminal partitioning."""

import pytest

from repro.errors import ParameterError
from repro.physics.capacitance import (
    TerminalCapacitances,
    backgate_capacitance,
    coaxial_gate_capacitance,
)


class TestGeometries:
    def test_coaxial_magnitude(self):
        # FETToy stock stack: d=1 nm, tox=1.5 nm, kappa=3.9 -> ~0.16 nF/m.
        c = coaxial_gate_capacitance(1.0, 1.5, 3.9)
        assert c == pytest.approx(1.57e-10, rel=0.05)

    def test_coaxial_grows_with_kappa(self):
        assert coaxial_gate_capacitance(1.0, 1.5, 16.0) > \
            coaxial_gate_capacitance(1.0, 1.5, 3.9)

    def test_coaxial_shrinks_with_tox(self):
        assert coaxial_gate_capacitance(1.0, 10.0) < \
            coaxial_gate_capacitance(1.0, 1.5)

    def test_backgate_much_smaller_for_thick_oxide(self):
        # The Javey device: 50 nm back oxide.
        c_back = backgate_capacitance(1.6, 50.0, 3.9)
        c_coax = coaxial_gate_capacitance(1.6, 1.5, 3.9)
        assert c_back < 0.3 * c_coax

    @pytest.mark.parametrize("args", [
        (0.0, 1.5, 3.9), (1.0, 0.0, 3.9), (1.0, 1.5, 0.0),
    ])
    def test_geometry_validation(self, args):
        with pytest.raises(ParameterError):
            coaxial_gate_capacitance(*args)
        with pytest.raises(ParameterError):
            backgate_capacitance(*args)


class TestTerminalCapacitances:
    def test_from_alphas_fettoy_defaults(self):
        c_ins = 1.58e-10
        caps = TerminalCapacitances.from_alphas(c_ins)
        assert caps.cg == pytest.approx(c_ins)
        assert caps.alpha_g == pytest.approx(0.88)
        assert caps.alpha_d == pytest.approx(0.035)
        assert caps.csum == pytest.approx(c_ins / 0.88)

    def test_alphas_sum_to_one(self):
        caps = TerminalCapacitances.from_alphas(1e-10, 0.8, 0.1)
        assert caps.alpha_g + caps.alpha_d + caps.alpha_s == \
            pytest.approx(1.0)

    def test_terminal_charge_eq8(self):
        caps = TerminalCapacitances(cg=2e-10, cd=1e-11, cs=2e-11)
        qt = caps.terminal_charge(0.5, 0.3, 0.1)
        assert qt == pytest.approx(0.5 * 2e-10 + 0.3 * 1e-11 + 0.1 * 2e-11)

    def test_coaxial_constructor(self):
        caps = TerminalCapacitances.coaxial(1.0, 1.5)
        assert caps.cg == pytest.approx(
            coaxial_gate_capacitance(1.0, 1.5), rel=1e-12
        )

    def test_backgate_constructor(self):
        caps = TerminalCapacitances.backgate(1.6, 50.0)
        assert caps.cg == pytest.approx(
            backgate_capacitance(1.6, 50.0), rel=1e-12
        )

    @pytest.mark.parametrize("kwargs", [
        dict(c_ins=-1e-10),
        dict(c_ins=1e-10, alpha_g=0.0),
        dict(c_ins=1e-10, alpha_g=1.2),
        dict(c_ins=1e-10, alpha_d=-0.1),
        dict(c_ins=1e-10, alpha_g=0.9, alpha_d=0.2),
    ])
    def test_from_alphas_validation(self, kwargs):
        with pytest.raises(ParameterError):
            TerminalCapacitances.from_alphas(**kwargs)

    def test_direct_validation(self):
        with pytest.raises(ParameterError):
            TerminalCapacitances(cg=-1e-10, cd=0.0, cs=0.0)
        with pytest.raises(ParameterError):
            TerminalCapacitances(cg=0.0, cd=0.0, cs=0.0)
