"""Documentation coverage gate for the public API.

Every name exported from the public surfaces (``repro.circuit``,
``repro.pwl.device``, ``repro.variability``, ``repro.characterize``,
``repro.service``, ``repro.exprunner``) must carry a nonempty docstring, and classes must
document their public methods too.  This keeps the ISSUE 3 docstring pass from rotting:
adding an undocumented export fails CI.
"""

import inspect

import pytest

import repro.characterize
import repro.circuit
import repro.exprunner
import repro.pwl.device
import repro.service
import repro.variability

#: module -> names whose docstrings are checked.  ``repro.pwl.device``
#: has no __all__; its public surface is the documented trio.
PUBLIC_SURFACES = {
    repro.circuit: repro.circuit.__all__,
    repro.variability: [
        "Campaign", "CampaignConfig", "CampaignResult",
        "DeviceMetricsEvaluator", "InverterVTCEvaluator",
        "RingOscillatorEvaluator", "ParameterSpace", "Distribution",
        "Normal", "Uniform", "Choice", "Fixed", "corner_sample",
        "default_device_space", "chirality_device_space",
        "latin_hypercube", "monte_carlo", "sample_space",
        "histogram_ascii", "summarize", "yield_fraction",
    ],
    repro.pwl.device: ["CNFET", "fit_cache_info", "clear_fit_cache"],
    repro.characterize: [
        "GateSpec", "GATES", "gate_spec", "characterize_gate",
        "ArcTable", "CharTable", "GateDelayEvaluator",
    ],
    repro.service: repro.service.__all__,
    repro.exprunner: repro.exprunner.__all__,
}


def _public_members():
    for module, names in PUBLIC_SURFACES.items():
        for name in names:
            obj = getattr(module, name)
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue  # constants (GATES, DEFAULT_*) carry no doc
            yield pytest.param(module, name, obj,
                               id=f"{module.__name__}.{name}")


def _param_list():
    return list(_public_members())


@pytest.mark.parametrize("module,name,obj", _param_list())
def test_public_name_documented(module, name, obj):
    doc = inspect.getdoc(obj)
    assert doc and doc.strip(), (
        f"{module.__name__}.{name} is public but has no docstring"
    )


@pytest.mark.parametrize("module,name,obj", _param_list())
def test_public_class_methods_documented(module, name, obj):
    if not inspect.isclass(obj):
        pytest.skip("not a class")
    undocumented = []
    for meth_name, meth in inspect.getmembers(obj):
        if meth_name.startswith("_"):
            continue
        if not (inspect.isfunction(meth) or isinstance(
                meth, property)):
            continue
        target = meth.fget if isinstance(meth, property) else meth
        if target is None or target.__qualname__.split(".")[0] != \
                obj.__name__:
            continue  # inherited (documented on the base)
        doc = inspect.getdoc(target)
        if not (doc and doc.strip()):
            undocumented.append(meth_name)
    assert not undocumented, (
        f"{module.__name__}.{name} has undocumented public methods: "
        f"{undocumented}"
    )


def test_all_modules_have_docstrings():
    for module in PUBLIC_SURFACES:
        assert module.__doc__ and module.__doc__.strip()
