"""CNFET module-level fit cache: reuse, EF re-anchoring, laziness."""

import numpy as np
import pytest

from repro.pwl.device import CNFET, clear_fit_cache, fit_cache_info
from repro.reference.fettoy import FETToyParameters


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_fit_cache()
    yield
    clear_fit_cache()


class TestReuse:
    def test_same_device_twice_never_refits(self):
        params = FETToyParameters()
        CNFET(params)
        misses = fit_cache_info()["misses"]
        second = CNFET(params)
        info = fit_cache_info()
        assert info["misses"] == misses
        assert info["hits"] >= 1
        assert second.fitted is not None

    def test_identical_fits_share_the_object(self):
        params = FETToyParameters()
        a, b = CNFET(params), CNFET(params)
        assert a.fitted is b.fitted

    def test_models_cached_separately(self):
        params = FETToyParameters()
        CNFET(params, model="model1")
        CNFET(params, model="model2")
        assert fit_cache_info()["misses"] == 2
        CNFET(params, model="model1")
        assert fit_cache_info()["misses"] == 2

    def test_bypass_flag(self):
        params = FETToyParameters()
        CNFET(params)
        CNFET(params, use_fit_cache=False)
        info = fit_cache_info()
        assert info["misses"] == 2
        assert info["size"] == 1

    def test_clear_resets(self):
        CNFET(FETToyParameters())
        clear_fit_cache()
        assert fit_cache_info() == {"hits": 0, "misses": 0, "size": 0}


class TestEFCovariance:
    """One fit serves every Fermi level of a tube/temperature combo —
    the cached fit is re-anchored by a VSC shift plus the equilibrium
    charge constant, which is exact."""

    @pytest.mark.parametrize("ef", [-0.5, -0.32, -0.1, -0.05, 0.0])
    def test_derived_fit_matches_direct_fit(self, ef):
        # Anchor the cache far from the probe point.
        CNFET(FETToyParameters(fermi_level_ev=-0.4))
        params = FETToyParameters(fermi_level_ev=ef)
        derived = CNFET(params)                       # via shared fit
        direct = CNFET(params, use_fit_cache=False)   # its own fit
        vg = np.linspace(0.1, 0.6, 6)
        vd = np.linspace(0.0, 0.6, 7)
        a = derived.iv_family(vg, vd)
        b = direct.iv_family(vg, vd)
        assert np.allclose(a, b, rtol=1e-9, atol=1e-18)

    def test_fermi_levels_share_one_fit(self):
        for ef in (-0.5, -0.32, 0.0):
            CNFET(FETToyParameters(fermi_level_ev=ef))
        info = fit_cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 2

    def test_temperatures_fitted_separately(self):
        for t in (150.0, 300.0, 450.0):
            CNFET(FETToyParameters(temperature_k=t))
        assert fit_cache_info()["misses"] == 3

    def test_chiralities_fitted_separately(self):
        CNFET(FETToyParameters(diameter_nm=1.0))    # (13, 0)
        CNFET(FETToyParameters(diameter_nm=1.3))    # (17, 0)
        assert fit_cache_info()["misses"] == 2

    def test_oxide_knobs_do_not_refit(self):
        """t_ox/kappa only enter the capacitances — same fit, different
        device."""
        a = CNFET(FETToyParameters(tox_nm=1.5))
        b = CNFET(FETToyParameters(tox_nm=2.0, kappa=6.0))
        assert fit_cache_info()["misses"] == 1
        # and the devices still differ where they should
        assert a.capacitances.cg != b.capacitances.cg
        assert a.ids(0.6, 0.6) != b.ids(0.6, 0.6)


class TestLazyReference:
    def test_cache_hit_skips_reference_model(self):
        params = FETToyParameters()
        CNFET(params)
        second = CNFET(params)
        assert second._reference is None
        # first access builds it on demand
        assert second.reference.capacitances.csum == pytest.approx(
            second.capacitances.csum)
        assert second._reference is not None

    def test_polarity_shares_fit(self):
        params = FETToyParameters()
        n = CNFET(params, polarity="n")
        p = CNFET(params, polarity="p")
        assert fit_cache_info()["misses"] == 1
        assert p.ids(-0.6, -0.6) == pytest.approx(-n.ids(0.6, 0.6))
