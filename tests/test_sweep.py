"""IV sweep drivers and containers."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.reference.sweep import (
    IVFamily,
    linspace_sweep,
    sweep_iv_family,
    sweep_transfer,
)


class StubModel:
    """ids = vg * vd, enough to check plumbing."""

    def ids(self, vg, vd, vs=0.0):
        return vg * vd


class TestSweepDrivers:
    def test_family_values(self):
        fam = sweep_iv_family(StubModel(), [1.0, 2.0], [0.5, 1.0])
        np.testing.assert_allclose(fam.ids, [[0.5, 1.0], [1.0, 2.0]])

    def test_empty_grid_rejected(self):
        with pytest.raises(ParameterError):
            sweep_iv_family(StubModel(), [], [1.0])

    def test_transfer(self):
        out = sweep_transfer(StubModel(), [1.0, 2.0, 3.0], vd=2.0)
        np.testing.assert_allclose(out, [2.0, 4.0, 6.0])

    def test_linspace_sweep(self):
        values = linspace_sweep(0.0, 0.6, 13)
        assert len(values) == 13
        assert values[0] == 0.0 and values[-1] == pytest.approx(0.6)
        with pytest.raises(ParameterError):
            linspace_sweep(0.0, 1.0, 1)


class TestIVFamily:
    def test_shape_validation(self):
        with pytest.raises(ParameterError):
            IVFamily(np.array([1.0]), np.array([1.0, 2.0]),
                     np.zeros((2, 2)))

    def test_curve_selects_nearest_vg(self):
        fam = sweep_iv_family(StubModel(), [0.3, 0.6], [1.0])
        np.testing.assert_allclose(fam.curve(0.58), [0.6])

    def test_max_current(self):
        fam = sweep_iv_family(StubModel(), [1.0, 2.0], [3.0])
        assert fam.max_current == 6.0

    def test_csv_roundtrip(self):
        fam = sweep_iv_family(StubModel(), [0.3, 0.6], [0.1, 0.2],
                              label="stub")
        text = fam.to_csv()
        loaded = IVFamily.from_csv(text, label="stub")
        np.testing.assert_allclose(loaded.ids, fam.ids)
        np.testing.assert_allclose(loaded.vg_values, fam.vg_values)

    def test_csv_header_required(self):
        with pytest.raises(ParameterError):
            IVFamily.from_csv("x,y,z\n1,2,3\n")

    def test_csv_rectangularity_check(self):
        text = "vg,vds,ids\n0.3,0.1,1e-6\n0.6,0.2,2e-6\n"
        with pytest.raises(ParameterError):
            IVFamily.from_csv(text)

    def test_real_device_family(self, device_m2):
        fam = sweep_iv_family(device_m2, [0.4, 0.6], [0.0, 0.3],
                              label="m2")
        assert fam.ids[1, 1] > fam.ids[0, 1] > 0.0
