"""Campaign engine: device metrics, chunked persistence and resume."""

import json
import math

import numpy as np
import pytest

from repro.errors import CampaignError, ParameterError
from repro.variability.campaign import (
    Campaign,
    CampaignConfig,
    DeviceMetricsEvaluator,
    _constant_current_vth,
    quantize_sample,
)
from repro.variability.params import (
    Fixed,
    Normal,
    ParameterSpace,
    default_device_space,
)
from repro.variability.stats import (
    aggregate_metrics,
    histogram_ascii,
    summarize,
    yield_fraction,
)


def tiny_space() -> ParameterSpace:
    return ParameterSpace.from_dict({
        "diameter_nm": Normal(1.0, 0.06, low=0.6, high=2.0),
        "tox_nm": Normal(1.5, 0.075, low=0.8, high=3.0),
        "kappa": Fixed(3.9),
        "fermi_level_ev": Normal(-0.32, 0.01, low=-0.5, high=-0.1),
    })


class CountingEvaluator(DeviceMetricsEvaluator):
    """Counts how many samples are (re)computed — for resume tests."""

    def __init__(self, space, **kwargs):
        super().__init__(space, **kwargs)
        self.evaluated_chunks = 0

    def evaluate(self, samples):
        self.evaluated_chunks += 1
        return super().evaluate(samples)


class TestQuantize:
    def test_diameter_snaps_to_chirality(self):
        a = quantize_sample({"diameter_nm": 1.00, "tox_nm": 1.5})
        b = quantize_sample({"diameter_nm": 1.03, "tox_nm": 1.5})
        assert a == b
        assert a[0] == ("chirality", (13, 0))

    def test_chirality_wins_over_diameter(self):
        key = quantize_sample({"diameter_nm": 1.0, "chirality": (16, 0)})
        assert key == (("chirality", (16, 0)),)

    def test_analog_knob_rounding(self):
        a = quantize_sample({"tox_nm": 1.5004})
        b = quantize_sample({"tox_nm": 1.4996})
        assert a == b == (("tox_nm", 1.5),)

    def test_custom_decimals(self):
        a = quantize_sample({"fermi_level_ev": -0.324},
                            {"fermi_level_ev": 2})
        b = quantize_sample({"fermi_level_ev": -0.316},
                            {"fermi_level_ev": 2})
        assert a == b


class TestVthExtraction:
    def test_interpolates_crossing(self):
        vg = np.linspace(0.0, 0.6, 13)
        ids = 1e-9 * np.exp((vg - 0.3) / 0.03)
        vth = _constant_current_vth(vg, ids, 1e-7)
        # analytic crossing: 0.3 + 0.03 * ln(100)
        assert vth == pytest.approx(0.3 + 0.03 * math.log(100), abs=2e-3)

    def test_no_crossing_is_nan(self):
        vg = np.linspace(0.0, 0.6, 5)
        assert math.isnan(_constant_current_vth(vg, np.full(5, 1e-12),
                                                1e-7))
        assert math.isnan(_constant_current_vth(vg, np.full(5, 1e-3),
                                                1e-7))


class TestDeviceMetrics:
    def test_batch_matches_naive_scalar_loop(self):
        space = tiny_space()
        from repro.variability.sampling import monte_carlo

        samples = monte_carlo(space, 8, seed=1)
        ev = DeviceMetricsEvaluator(space)
        fast = ev.evaluate(samples)
        naive = ev.evaluate_naive(samples, use_fit_cache=True)
        for f, n in zip(fast, naive):
            for name in f:
                if math.isnan(f[name]):
                    assert math.isnan(n[name])
                else:
                    # fast path evaluates the quantised device; the bound
                    # is the documented quantisation tolerance
                    assert f[name] == pytest.approx(n[name], rel=0.05)

    def test_metric_subset(self):
        space = tiny_space()
        ev = DeviceMetricsEvaluator(space, metrics=("ion", "vth"))
        out = ev.evaluate([space.nominal_sample()])
        assert sorted(out[0]) == ["ion", "vth"]

    def test_unknown_metric_rejected(self):
        with pytest.raises(ParameterError):
            DeviceMetricsEvaluator(tiny_space(), metrics=("beta",))

    def test_physical_sanity(self):
        space = tiny_space()
        out = DeviceMetricsEvaluator(space).evaluate(
            [space.nominal_sample()])[0]
        assert out["ion"] > 1e-6
        assert 0.0 < out["ioff"] < 1e-9
        assert 0.2 < out["vth"] < 0.5
        assert out["gm"] > 0.0


class TestCampaignEngine:
    def make(self, tmp_path=None, n=24, chunk=8, seed=11):
        space = tiny_space()
        ev = CountingEvaluator(space)
        cfg = CampaignConfig(name="t", n_samples=n, seed=seed,
                             chunk_size=chunk)
        return Campaign(cfg, space, ev,
                        run_dir=tmp_path), ev

    def test_deterministic_records(self, tmp_path):
        r1 = self.make(tmp_path / "a")[0].run()
        r2 = self.make(tmp_path / "b")[0].run()
        assert r1.records == r2.records
        assert r1.aggregate == r2.aggregate

    def test_memoryless_equals_persistent(self, tmp_path):
        in_memory = self.make(None)[0].run()
        on_disk = self.make(tmp_path / "c")[0].run()
        assert in_memory.records == on_disk.records

    def test_run_dir_layout(self, tmp_path):
        d = tmp_path / "run"
        result = self.make(d)[0].run()
        assert (d / "manifest.json").exists()
        assert (d / "aggregate.json").exists()
        chunks = sorted(p.name for p in (d / "chunks").iterdir())
        assert chunks == ["chunk_0000.json", "chunk_0001.json",
                          "chunk_0002.json"]
        table = (d / "run_table.csv").read_text().strip().splitlines()
        assert len(table) == 1 + 24
        assert table[0].startswith("run,diameter_nm,tox_nm")
        assert result.computed_chunks == 3

    def test_resume_from_partial_run_directory(self, tmp_path):
        d = tmp_path / "run"
        campaign, ev = self.make(d)
        full = campaign.run()
        assert ev.evaluated_chunks == 3

        # Simulate an interrupted campaign: drop the middle chunk.
        (d / "chunks" / "chunk_0001.json").unlink()
        campaign2, ev2 = self.make(d)
        resumed = campaign2.run()
        assert ev2.evaluated_chunks == 1          # only the missing chunk
        assert resumed.resumed_chunks == 2
        assert resumed.computed_chunks == 1
        assert resumed.records == full.records

    def test_resume_rejects_different_campaign(self, tmp_path):
        d = tmp_path / "run"
        self.make(d, seed=11)[0].run()
        other, _ = self.make(d, seed=12)
        with pytest.raises(CampaignError):
            other.run()

    def test_no_resume_recomputes(self, tmp_path):
        d = tmp_path / "run"
        self.make(d)[0].run()
        campaign, ev = self.make(d)
        campaign.run(resume=False)
        assert ev.evaluated_chunks == 3

    def test_corrupt_chunk_recomputed(self, tmp_path):
        d = tmp_path / "run"
        campaign, _ = self.make(d)
        full = campaign.run()
        (d / "chunks" / "chunk_0002.json").write_text("{not json")
        campaign2, ev2 = self.make(d)
        resumed = campaign2.run()
        assert ev2.evaluated_chunks == 1
        assert resumed.records == full.records

    def test_render_and_json(self, tmp_path):
        result = self.make(tmp_path / "r", n=8, chunk=8)[0].run()
        text = result.render()
        assert "ion" in text and "p95" in text
        payload = result.to_json_dict()
        assert payload["config"]["n_samples"] == 8
        assert len(payload["records"]) == 8

    def test_config_validation(self):
        with pytest.raises(ParameterError):
            CampaignConfig(n_samples=0)
        with pytest.raises(ParameterError):
            CampaignConfig(chunk_size=0)
        with pytest.raises(ParameterError):
            CampaignConfig(sampler="sobol")


class TestStats:
    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, float("nan")])
        assert s["n"] == 5 and s["n_failed"] == 1
        assert s["mean"] == pytest.approx(2.5)
        assert s["p50"] == pytest.approx(2.5)
        assert s["min"] == 1.0 and s["max"] == 4.0

    def test_summarize_all_failed(self):
        s = summarize([float("nan")] * 3)
        assert s["n_failed"] == 3 and math.isnan(s["mean"])

    def test_yield_fraction(self):
        values = [0.1, 0.2, 0.3, float("nan")]
        assert yield_fraction(values, low=0.15) == pytest.approx(0.5)
        assert yield_fraction(values, low=0.0, high=1.0) == pytest.approx(
            0.75)
        with pytest.raises(ParameterError):
            yield_fraction(values)

    def test_aggregate_with_spec_limits(self):
        records = [{"metrics": {"ion": 1.0}}, {"metrics": {"ion": 3.0}}]
        agg = aggregate_metrics(records, {"ion": (2.0, None)})
        assert agg["ion"]["yield"] == pytest.approx(0.5)
        assert agg["ion"]["spec_low"] == 2.0

    def test_histogram(self):
        text = histogram_ascii(np.linspace(0, 1, 100), bins=5,
                               title="demo")
        assert text.startswith("demo")
        assert text.count("\n") == 5

    def test_histogram_empty(self):
        assert "no finite samples" in histogram_ascii([float("nan")])


class TestManifestRoundTrip:
    def test_manifest_written_and_fingerprint_stable(self, tmp_path):
        d = tmp_path / "m"
        campaign, _ = TestCampaignEngine().make(d, n=8, chunk=8)
        campaign.run()
        manifest = json.loads((d / "manifest.json").read_text())
        assert manifest["fingerprint"] == campaign.fingerprint()
        assert manifest["config"]["n_samples"] == 8
        assert manifest["space"]["knobs"][0]["name"] == "diameter_nm"
