"""Jacobian-reuse fast path and Newton stats accounting."""

import numpy as np
import pytest

from repro.circuit.logic import LogicFamily, build_inverter
from repro.circuit.mna import NewtonOptions, newton_solve
from repro.circuit.netlist import Circuit
from repro.circuit.elements import Capacitor, Resistor, VoltageSource
from repro.circuit.transient import transient
from repro.circuit.waveforms import Pulse
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def family():
    return LogicFamily.default(vdd=0.6)


def _inverter_pulse(family):
    wave = Pulse(0.0, 0.6, delay=2e-12, rise=1e-12, fall=1e-12,
                 width=1e-11, period=1e-9)
    circuit, _vin, _vout = build_inverter(family, wave)
    return circuit


def _count_evals(circuit):
    """Instrument every CNFET backend; returns the counter cell."""
    cell = [0]
    for el in circuit.elements:
        if not hasattr(el, "backend"):
            continue
        original = el.backend.evaluate_full

        def counting(vgs, vds, with_charge=False, _orig=original):
            cell[0] += 1
            return _orig(vgs, vds, with_charge)

        el.backend.evaluate_full = counting
    return cell


class TestJacobianReuse:
    def test_reuse_skips_evaluations_and_stays_accurate(self, family):
        # Reuse is the tuned default now; the exact/baseline runs
        # request the legacy every-iteration assembly explicitly.
        legacy = NewtonOptions(jacobian_reuse_tol=0.0)
        exact_circuit = _inverter_pulse(family)
        exact = transient(exact_circuit, tstop=3e-11, dt=2e-13,
                          method="trap", options=legacy)

        baseline_circuit = _inverter_pulse(family)
        baseline_count = _count_evals(baseline_circuit)
        transient(baseline_circuit, tstop=3e-11, dt=2e-13,
                  method="trap", options=legacy)

        reuse_circuit = _inverter_pulse(family)
        reuse_count = _count_evals(reuse_circuit)
        reused = transient(
            reuse_circuit, tstop=3e-11, dt=2e-13, method="trap",
            options=NewtonOptions(jacobian_reuse_tol=1e-6),
        )

        # The plateaus barely move the iterate, so a healthy fraction
        # of the per-iteration device evaluations is skipped...
        assert reuse_count[0] < 0.8 * baseline_count[0]
        # ... at a waveform cost far below the reuse tolerance's
        # frozen-linearisation error bound.
        dv = np.abs(reused.trace("v(out)") - exact.trace("v(out)"))
        assert float(np.max(dv)) < 1e-6

    def test_zero_tol_is_exact_legacy_path(self, family):
        # jacobian_reuse_tol=0.0 recovers the exact legacy iteration:
        # two runs are bit-identical (no chord, no frozen stamps).
        legacy = NewtonOptions(jacobian_reuse_tol=0.0)
        a = transient(_inverter_pulse(family), tstop=1e-11, dt=2e-13,
                      method="trap", options=legacy)
        b = transient(_inverter_pulse(family), tstop=1e-11, dt=2e-13,
                      method="trap", options=legacy)
        assert np.array_equal(a.trace("v(out)"), b.trace("v(out)"))

    def test_default_reuse_matches_legacy_waveforms(self, family):
        # The tuned default (reuse on) stays within the frozen-
        # linearisation error bound of the legacy iteration.
        a = transient(_inverter_pulse(family), tstop=1e-11, dt=2e-13,
                      method="trap")
        b = transient(_inverter_pulse(family), tstop=1e-11, dt=2e-13,
                      method="trap",
                      options=NewtonOptions(jacobian_reuse_tol=0.0))
        dv = np.abs(a.trace("v(out)") - b.trace("v(out)"))
        assert float(np.max(dv)) < 1e-6


class TestNewtonStatsFlush:
    def _rc(self):
        c = Circuit("rc")
        c.add(VoltageSource("v1", "in", "0", 1.0))
        c.add(Resistor("r1", "in", "out", 1e3))
        c.add(Capacitor("c1", "out", "0", 1e-12))
        return c

    def test_counters_accumulate_once_per_solve(self):
        circuit = self._rc()
        circuit.dimension()
        stats = {}
        x = newton_solve(circuit, np.zeros(circuit.dimension()),
                         stats=stats)
        assert stats["solves"] == 1
        assert stats["iterations"] >= 1
        newton_solve(circuit, x, stats=stats)
        assert stats["solves"] == 2

    def test_counters_flushed_on_failure(self, family):
        # Force a failure by starving the iteration budget on a
        # nonlinear solve (a cold CNFET inverter needs more than two
        # damped iterations); the counters must still be flushed.
        circuit, _vin, _vout = build_inverter(family, 0.3)
        circuit.dimension()
        stats = {}
        options = NewtonOptions(max_iterations=2, vtol=1e-15,
                                reltol=1e-15)
        with pytest.raises(AnalysisError):
            newton_solve(circuit, np.zeros(circuit.dimension()),
                         options, stats=stats)
        assert stats["solves"] == 1
        assert stats["iterations"] == 2
