"""End-to-end integration: paper pipeline and cross-module properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments import metrics
from repro.experiments.runners import (
    build_models,
    run_fig2_3,
    run_rms_table,
)
from repro.experiments.workloads import default_device_parameters


class TestPaperPipeline:
    """The full headline claim in one test path per stage."""

    def test_model2_beats_model1_everywhere_on_average(self):
        result = run_rms_table(-0.32, temperatures_k=(300.0,))
        m1 = np.mean(result.errors[(300.0, "model1")])
        m2 = np.mean(result.errors[(300.0, "model2")])
        assert m2 < m1

    def test_fast_model_is_much_faster(self, ref300, device_m2):
        import time

        vgs, vds = [0.4, 0.6], np.linspace(0.0, 0.6, 7)
        start = time.perf_counter()
        ref300.iv_family(vgs, vds)
        t_ref = time.perf_counter() - start
        device_m2.iv_family(vgs, vds)  # warm cache
        start = time.perf_counter()
        for _ in range(5):
            device_m2.iv_family(vgs, vds)
        t_fast = (time.perf_counter() - start) / 5.0
        assert t_ref / t_fast > 20.0

    def test_no_newton_iterations_in_fast_path(self, device_m2):
        """The paper's point: closed form means the reference Newton
        counter never moves when evaluating the fast device."""
        before = device_m2.reference.newton_iterations
        device_m2.iv_family([0.4, 0.6], [0.1, 0.3, 0.6])
        assert device_m2.reference.newton_iterations == before

    def test_charge_figures_consistent_with_device(self):
        fig = run_fig2_3("model2")
        _, _, model2 = build_models(default_device_parameters())
        probe = fig.vsc_axis[50]
        assert fig.fitted_qs[50] == pytest.approx(
            float(model2.fitted.curve.value(probe)), rel=1e-12
        )


class TestCrossModelProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=0.05, max_value=0.7),
           st.floats(min_value=0.05, max_value=0.7))
    def test_fast_vs_reference_current_everywhere(self, ref300, device_m2,
                                                  vg, vd):
        """Property: the fast model tracks theory within a bounded
        relative envelope over the whole bias box."""
        i_ref = ref300.ids(vg, vd)
        i_fast = device_m2.ids(vg, vd)
        scale = max(abs(i_ref), 1e-9)  # absolute floor in deep off-state
        assert abs(i_fast - i_ref) <= 0.15 * scale

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=0.0, max_value=0.7),
           st.floats(min_value=0.0, max_value=0.7))
    def test_fast_current_nonnegative_forward(self, device_m2, vg, vd):
        assert device_m2.ids(vg, vd) >= -1e-15

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.1, max_value=0.6),
           st.floats(min_value=0.05, max_value=0.6),
           st.floats(min_value=0.01, max_value=0.1))
    def test_monotone_in_gate_voltage(self, device_m2, vg, vd, dv):
        assert device_m2.ids(vg + dv, vd) >= device_m2.ids(vg, vd) - 1e-15


class TestCircuitIntegration:
    def test_netlist_to_vtc(self):
        """Netlist text -> parser -> MNA -> inverter-style transfer."""
        from repro.circuit.dc import dc_sweep
        from repro.circuit.parser import parse_netlist

        deck = parse_netlist("""
        * resistive-load cnfet stage
        .model m2 cnfet model=model2
        Vdd vdd 0 0.6
        Vin in 0 0
        Rl vdd out 200k
        Q1 out in 0 m2
        .dc Vin 0 0.6 7
        """)
        directive = deck.analyses[0]
        values = np.linspace(
            directive.params["start"], directive.params["stop"],
            int(directive.params["points"]),
        )
        ds = dc_sweep(deck.circuit, directive.source, values)
        v_out = ds.voltage("out")
        assert v_out[0] > 0.55       # off -> pulled up
        assert v_out[-1] < 0.15      # on -> pulled down
        assert np.all(np.diff(v_out) <= 1e-9)

    def test_codegen_matches_python_charge(self, device_m2):
        """The VHDL-AMS polynomial literals evaluate to the Python
        curve (Horner form is shared)."""
        import re

        from repro.pwl.codegen import generate_vhdl_ams

        code = generate_vhdl_ams(device_m2)
        # Evaluate the curve at the leftmost region via its linear form:
        # extract the first "v <= X" breakpoint and compare values.
        match = re.search(r"if v <= (-?\d\.\d+e[+-]\d+) then", code)
        assert match is not None
        b1 = float(match.group(1))
        assert b1 == pytest.approx(device_m2.fitted.curve.breakpoints[0],
                                   rel=1e-9)


class TestNumericalRobustness:
    def test_extreme_gate_overdrive(self, device_m2, ref300):
        """Far outside the fit window the linear extrapolation still
        produces finite, ordered currents."""
        i1 = device_m2.ids(1.5, 0.5)
        i2 = device_m2.ids(2.5, 0.5)
        assert np.isfinite(i1) and np.isfinite(i2)
        assert i2 > i1 > 0.0

    def test_deep_negative_gate(self, device_m2):
        i = device_m2.ids(-1.0, 0.5)
        assert abs(i) < 1e-9

    def test_tiny_vds(self, device_m2, ref300):
        i_fast = device_m2.ids(0.5, 1e-6)
        i_ref = ref300.ids(0.5, 1e-6)
        assert i_fast == pytest.approx(i_ref, rel=0.2)

    def test_reference_solver_low_vds_regression(self, ref300):
        """Regression: VSC at VDS -> 0 must be continuous (the original
        Newton safeguard bug produced a ~0.2 V jump)."""
        v_at_0 = ref300.solve_vsc(0.6, 0.0)
        v_at_eps = ref300.solve_vsc(0.6, 0.01)
        assert abs(v_at_0 - v_at_eps) < 0.02
