"""Transient integration and the Dataset measurement helpers."""

import math

import numpy as np
import pytest

from repro.circuit import (
    Capacitor,
    Circuit,
    Inductor,
    Resistor,
    VoltageSource,
    transient,
)
from repro.circuit.results import Dataset
from repro.circuit.waveforms import DC, Pulse, Sine
from repro.errors import AnalysisError, ParameterError


def rc_circuit(tau_r=1000.0, tau_c=1e-12) -> Circuit:
    c = Circuit("rc")
    c.add(VoltageSource("v1", "in", "0",
                        Pulse(0.0, 1.0, delay=0.0, rise=1e-15,
                              width=1e-6, period=2e-6)))
    c.add(Resistor("r1", "in", "out", tau_r))
    c.add(Capacitor("c1", "out", "0", tau_c))
    return c


class TestTransientRC:
    @pytest.mark.parametrize("method", ["be", "trap"])
    def test_exponential_charge(self, method):
        ds = transient(rc_circuit(), tstop=5e-9, dt=1e-11, method=method)
        tau = 1e-9
        for t_probe in (1e-9, 2e-9, 3e-9):
            expected = 1.0 - math.exp(-t_probe / tau)
            assert ds.at("v(out)", t_probe) == pytest.approx(
                expected, abs=0.02
            )

    def test_trap_more_accurate_than_be(self):
        tau = 1e-9
        errs = {}
        for method in ("be", "trap"):
            ds = transient(rc_circuit(), tstop=3e-9, dt=5e-11,
                           method=method)
            expected = 1.0 - math.exp(-2e-9 / tau)
            errs[method] = abs(ds.at("v(out)", 2e-9) - expected)
        assert errs["trap"] < errs["be"]

    def test_source_current_recorded(self):
        ds = transient(rc_circuit(), tstop=1e-9, dt=1e-11)
        assert "i(v1)" in ds
        # Initial inrush ~ 1 V / 1 kOhm = 1 mA (sink convention).
        assert abs(ds.current("v1")[1]) == pytest.approx(1e-3, rel=0.2)


class TestTransientRL:
    def test_rl_rise(self):
        c = Circuit("rl")
        c.add(VoltageSource("v1", "in", "0",
                            Pulse(0.0, 1.0, rise=1e-15, width=1e-3,
                                  period=2e-3)))
        c.add(Resistor("r1", "in", "mid", 1000.0))
        c.add(Inductor("l1", "mid", "0", 1e-6))
        ds = transient(c, tstop=5e-9, dt=2e-11)
        tau = 1e-6 / 1000.0  # L/R = 1 ns
        i_expected = (1.0 / 1000.0) * (1.0 - math.exp(-2e-9 / tau))
        v_mid = ds.at("v(mid)", 2e-9)
        # v_mid = V - i R
        i_actual = (1.0 - v_mid) / 1000.0
        assert i_actual == pytest.approx(i_expected, rel=0.10)


class TestTransientSine:
    def test_amplitude_preserved_through_follower(self):
        c = Circuit("sine")
        c.add(VoltageSource("v1", "in", "0", Sine(0.0, 0.5, 1e9)))
        c.add(Resistor("r1", "in", "0", 1000.0))
        ds = transient(c, tstop=2e-9, dt=1e-11)
        assert ds.swing("v(in)") == pytest.approx(1.0, rel=0.02)


class TestValidation:
    def test_bad_arguments(self):
        c = rc_circuit()
        with pytest.raises(ParameterError):
            transient(c, tstop=0.0, dt=1e-12)
        with pytest.raises(ParameterError):
            transient(c, tstop=1e-9, dt=0.0)
        with pytest.raises(ParameterError):
            transient(c, tstop=1e-9, dt=1e-11, method="euler")

    def test_x0_shape_checked(self):
        c = rc_circuit()
        with pytest.raises(ParameterError):
            transient(c, tstop=1e-9, dt=1e-11, x0=np.zeros(99))


class TestDataset:
    def setup_method(self):
        t = np.linspace(0.0, 1.0, 101)
        self.ds = Dataset("time", t)
        self.ds.add_trace("v(a)", np.sin(2 * np.pi * 2.0 * t))

    def test_trace_lookup_case_insensitive(self):
        assert self.ds.trace("V(A)") is not None

    def test_missing_trace(self):
        with pytest.raises(AnalysisError):
            self.ds.trace("v(b)")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            self.ds.add_trace("bad", [1.0, 2.0])

    def test_crossings_count(self):
        ups = self.ds.crossings("v(a)", 0.0, rising=True)
        downs = self.ds.crossings("v(a)", 0.0, rising=False)
        assert len(ups) == 2
        assert len(downs) == 2

    def test_period_estimate(self):
        period = self.ds.period_estimate("v(a)", 0.0)
        assert period == pytest.approx(0.5, rel=0.02)

    def test_period_estimate_needs_two_crossings(self):
        flat = Dataset("time", [0.0, 1.0])
        flat.add_trace("v(x)", [0.0, 0.0])
        with pytest.raises(AnalysisError):
            flat.period_estimate("v(x)", 0.5)

    def test_swing_and_at(self):
        assert self.ds.swing("v(a)") == pytest.approx(2.0, rel=0.01)
        assert self.ds.at("v(a)", 0.125) == pytest.approx(1.0, abs=0.01)


class TestPeriodEstimateMedian:
    def _grazing_dataset(self):
        # Regular 0.5 s rising crossings plus one grazing wiggle that
        # injects a spurious crossing pair around t = 1.6.
        t = np.linspace(0.0, 3.0, 3001)
        v = np.sin(2 * np.pi * 2.0 * t)
        wiggle = 1.2 * np.exp(-((t - 1.55) / 0.008) ** 2)
        ds = Dataset("time", t)
        ds.add_trace("v(a)", v - wiggle)
        return ds

    def test_median_ignores_grazing_pair(self):
        ds = self._grazing_dataset()
        mean = ds.period_estimate("v(a)", 0.0, method="mean")
        median = ds.period_estimate("v(a)", 0.0, method="median")
        assert median == pytest.approx(0.5, rel=0.02)
        # The spurious pair shifts the mean-of-diffs noticeably.
        assert abs(mean - 0.5) > abs(median - 0.5)

    def test_unknown_method_rejected(self):
        ds = self._grazing_dataset()
        with pytest.raises(ParameterError):
            ds.period_estimate("v(a)", 0.0, method="mode")
