"""CNT chirality and subband structure."""

import math

import pytest

from repro.errors import ParameterError
from repro.physics.bandstructure import (
    Chirality,
    NanotubeBands,
    band_gap_approx_ev,
)


class TestChirality:
    def test_diameter_13_0(self):
        assert Chirality(13, 0).diameter_nm == pytest.approx(1.018, abs=0.01)

    def test_diameter_armchair(self):
        # (10,10): d = a*sqrt(300)/pi ~ 1.356 nm
        assert Chirality(10, 10).diameter_nm == pytest.approx(1.356,
                                                              abs=0.01)

    @pytest.mark.parametrize("n,m,metallic", [
        (13, 0, False), (12, 0, True), (10, 10, True), (17, 0, False),
        (9, 3, True), (9, 4, False),
    ])
    def test_metallicity_rule(self, n, m, metallic):
        assert Chirality(n, m).is_metallic is metallic

    def test_from_diameter_picks_semiconducting_zigzag(self):
        ch = Chirality.from_diameter(1.0)
        assert ch.m == 0
        assert not ch.is_metallic
        assert abs(ch.diameter_nm - 1.0) < 0.1

    def test_from_diameter_16nm(self):
        ch = Chirality.from_diameter(1.6)
        assert abs(ch.diameter_nm - 1.6) < 0.08
        assert not ch.is_metallic

    @pytest.mark.parametrize("bad", [(0, 0), (-1, 0), (3, 5), (2, -1)])
    def test_invalid_indices(self, bad):
        with pytest.raises(ParameterError):
            Chirality(*bad)

    def test_from_diameter_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            Chirality.from_diameter(-1.0)

    def test_flags(self):
        assert Chirality(13, 0).is_zigzag
        assert Chirality(8, 8).is_armchair


class TestNanotubeBands:
    def test_band_gap_13_0(self):
        bands = NanotubeBands(Chirality(13, 0))
        # Eg ~ 0.8/d[nm] eV for semiconducting tubes.
        assert bands.band_gap_ev == pytest.approx(0.82, abs=0.05)

    def test_gap_scales_inverse_diameter(self):
        g13 = NanotubeBands(Chirality(13, 0)).band_gap_ev
        g25 = NanotubeBands(Chirality(25, 0)).band_gap_ev
        ratio = g13 / g25
        d_ratio = (Chirality(25, 0).diameter_nm
                   / Chirality(13, 0).diameter_nm)
        assert ratio == pytest.approx(d_ratio, rel=0.10)

    def test_metallic_zigzag_has_zero_gap(self):
        bands = NanotubeBands(Chirality(12, 0))
        assert bands.band_gap_ev == 0.0
        assert bands.subband_minima_ev[0] == 0.0

    def test_subband_minima_ascend(self):
        minima = NanotubeBands(Chirality(13, 0)).subband_minima_ev
        assert list(minima) == sorted(minima)
        assert all(m > 0 for m in minima)

    def test_second_subband_roughly_double(self):
        minima = NanotubeBands(Chirality(13, 0)).subband_minima_ev
        assert minima[1] / minima[0] == pytest.approx(2.0, rel=0.15)

    def test_chiral_tube_uses_pattern(self):
        bands = NanotubeBands(Chirality(9, 4))
        approx = band_gap_approx_ev(Chirality(9, 4).diameter_nm)
        assert bands.band_gap_ev == pytest.approx(approx, rel=1e-9)

    def test_half_gaps_validation(self):
        bands = NanotubeBands(Chirality(13, 0))
        assert len(bands.half_gaps(2)) == 2
        with pytest.raises(ParameterError):
            bands.half_gaps(0)
        with pytest.raises(ParameterError):
            bands.half_gaps(100)

    def test_invalid_construction(self):
        with pytest.raises(ParameterError):
            NanotubeBands(Chirality(13, 0), hopping_ev=-1.0)
        with pytest.raises(ParameterError):
            NanotubeBands(Chirality(13, 0), max_subbands=0)


def test_band_gap_approx_formula():
    # 2 * 0.142 nm * 3 eV / 1 nm = 0.852 eV
    assert band_gap_approx_ev(1.0) == pytest.approx(0.852, abs=1e-3)
    with pytest.raises(ParameterError):
        band_gap_approx_ev(0.0)
