"""Experiment runners: light smoke coverage (full runs live in
benchmarks/)."""

import numpy as np
import pytest

from repro.experiments.runners import (
    build_models,
    run_fig2_3,
    run_table1,
)
from repro.experiments.workloads import (
    default_device_parameters,
    javey_device_parameters,
)


class TestBuildModels:
    def test_cache_returns_same_objects(self):
        a = build_models(default_device_parameters())
        b = build_models(default_device_parameters())
        assert a[0] is b[0] and a[2] is b[2]

    def test_distinct_configurations_not_shared(self):
        a = build_models(default_device_parameters())
        b = build_models(default_device_parameters(temperature_k=150.0))
        assert a[0] is not b[0]

    def test_javey_device_is_backgate(self):
        params = javey_device_parameters()
        assert params.gate_geometry == "backgate"
        assert params.diameter_nm == pytest.approx(1.6)


class TestTable1Runner:
    def test_timing_rows_positive_and_ordered(self):
        result = run_table1(loops=(1, 2))
        assert all(t > 0 for t in result.fettoy_s)
        assert all(t > 0 for t in result.model1_s)
        assert result.speedup_model1 > 1.0
        assert result.speedup_model2 > 1.0

    def test_render_contains_paper_reference(self):
        result = run_table1(loops=(1,))
        text = result.render()
        assert "Table I" in text
        assert "speed-up" in text


class TestChargeFigureRunner:
    def test_axes_match_paper_windows(self):
        r2 = run_fig2_3("model1")
        assert r2.vsc_axis[0] == pytest.approx(-0.5)
        assert r2.vsc_axis[-1] == pytest.approx(0.0)
        r3 = run_fig2_3("model2")
        assert r3.vsc_axis[0] == pytest.approx(-0.8)

    def test_render_reports_rms(self):
        text = run_fig2_3("model2").render()
        assert "charge-fit RMS" in text
        assert "QS theory" in text
