"""Newton-loop robustness aids: damping, gmin stepping, source stepping."""

import numpy as np
import pytest

from repro.circuit import Circuit, Diode, Resistor, VoltageSource
from repro.circuit.mna import (
    NewtonOptions,
    assemble,
    newton_solve,
    robust_dc_solve,
)
from repro.errors import AnalysisError


def stiff_diode_chain() -> Circuit:
    """Series diode string across a hard supply — a classic Newton
    torture case (steep exponentials, poor zero-state guess)."""
    c = Circuit("diode chain")
    c.add(VoltageSource("v1", "n0", "0", 3.0))
    for i in range(4):
        c.add(Diode(f"d{i}", f"n{i}", f"n{i+1}"))
    c.add(Resistor("r1", "n4", "0", 10.0))
    return c


class TestNewtonLoop:
    def test_stiff_chain_converges(self):
        c = stiff_diode_chain()
        x = robust_dc_solve(c)
        # Each junction drops ~0.7 V; the resistor takes the remainder.
        v4 = x[c.node_index["n4"]]
        assert 0.0 < v4 < 1.0

    def test_damping_limits_step(self):
        """With a huge max_step the loop may overshoot; the default
        0.5 V clip must still converge on the diode chain."""
        c = stiff_diode_chain()
        x = newton_solve(c, np.zeros(c.dimension()),
                         NewtonOptions(max_step=0.5))
        assert np.all(np.isfinite(x))

    def test_iteration_budget_respected(self):
        c = stiff_diode_chain()
        with pytest.raises(AnalysisError):
            newton_solve(c, np.zeros(c.dimension()),
                         NewtonOptions(max_iterations=2))

    def test_gmin_changes_offstate_leakage(self):
        c = Circuit("leak")
        c.add(VoltageSource("v1", "in", "0", -1.0))
        c.add(Resistor("r1", "in", "a", 1e3))
        c.add(Diode("d1", "a", "0"))
        x_small = newton_solve(c, np.zeros(c.dimension()),
                               NewtonOptions(), gmin=1e-12)
        x_large = newton_solve(c, np.zeros(c.dimension()),
                               NewtonOptions(), gmin=1e-3)
        va_small = x_small[c.node_index["a"]]
        va_large = x_large[c.node_index["a"]]
        # A large gmin shunt pulls the reverse-biased node toward 0.
        assert abs(va_large) < abs(va_small)

    def test_source_scale_scales_solution(self):
        c = Circuit("lin")
        c.add(VoltageSource("v1", "in", "0", 10.0))
        c.add(Resistor("r1", "in", "0", 1e3))
        x_half = newton_solve(c, np.zeros(c.dimension()),
                              NewtonOptions(), source_scale=0.5)
        assert x_half[c.node_index["in"]] == pytest.approx(5.0)

    def test_fallbacks_disabled_raise(self):
        c = Circuit("float")
        c.add(VoltageSource("v1", "in", "0", 1.0))
        c.add(Resistor("r1", "a", "b", 1.0))  # floating island
        with pytest.raises(AnalysisError):
            robust_dc_solve(c, None, NewtonOptions(
                gmin_stepping=False, source_stepping=False,
            ))


class TestAssembly:
    def test_matrix_shape(self):
        c = stiff_diode_chain()
        n = c.dimension()
        ctx = assemble(c, np.zeros(n))
        assert ctx.matrix.shape == (n, n)
        assert ctx.rhs.shape == (n,)

    def test_ground_rows_skipped(self):
        c = Circuit("gnd")
        c.add(VoltageSource("v1", "in", "0", 1.0))
        c.add(Resistor("r1", "in", "0", 1e3))
        n = c.dimension()
        ctx = assemble(c, np.zeros(n))
        # Conductance to ground appears only on the diagonal.
        idx = c.node_index["in"]
        assert ctx.matrix[idx, idx] >= 1e-3

    def test_reporting_voltage_of_ground(self):
        c = stiff_diode_chain()
        n = c.dimension()
        ctx = assemble(c, np.zeros(n))
        assert ctx.voltage("0") == 0.0
        assert ctx.previous_voltage("n1") == 0.0  # no x_prev
