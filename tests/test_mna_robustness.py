"""Newton-loop robustness aids: damping, gmin stepping, source stepping."""

import numpy as np
import pytest

import repro.circuit.mna as mna
from repro import faults
from repro.circuit import Circuit, Diode, Resistor, VoltageSource
from repro.circuit.mna import (
    NewtonOptions,
    assemble,
    newton_solve,
    robust_dc_solve,
)
from repro.errors import AnalysisError


def stiff_diode_chain() -> Circuit:
    """Series diode string across a hard supply — a classic Newton
    torture case (steep exponentials, poor zero-state guess)."""
    c = Circuit("diode chain")
    c.add(VoltageSource("v1", "n0", "0", 3.0))
    for i in range(4):
        c.add(Diode(f"d{i}", f"n{i}", f"n{i+1}"))
    c.add(Resistor("r1", "n4", "0", 10.0))
    return c


class TestNewtonLoop:
    def test_stiff_chain_converges(self):
        c = stiff_diode_chain()
        x = robust_dc_solve(c)
        # Each junction drops ~0.7 V; the resistor takes the remainder.
        v4 = x[c.node_index["n4"]]
        assert 0.0 < v4 < 1.0

    def test_damping_limits_step(self):
        """With a huge max_step the loop may overshoot; the default
        0.5 V clip must still converge on the diode chain."""
        c = stiff_diode_chain()
        x = newton_solve(c, np.zeros(c.dimension()),
                         NewtonOptions(max_step=0.5))
        assert np.all(np.isfinite(x))

    def test_iteration_budget_respected(self):
        c = stiff_diode_chain()
        with pytest.raises(AnalysisError):
            newton_solve(c, np.zeros(c.dimension()),
                         NewtonOptions(max_iterations=2))

    def test_gmin_changes_offstate_leakage(self):
        c = Circuit("leak")
        c.add(VoltageSource("v1", "in", "0", -1.0))
        c.add(Resistor("r1", "in", "a", 1e3))
        c.add(Diode("d1", "a", "0"))
        x_small = newton_solve(c, np.zeros(c.dimension()),
                               NewtonOptions(), gmin=1e-12)
        x_large = newton_solve(c, np.zeros(c.dimension()),
                               NewtonOptions(), gmin=1e-3)
        va_small = x_small[c.node_index["a"]]
        va_large = x_large[c.node_index["a"]]
        # A large gmin shunt pulls the reverse-biased node toward 0.
        assert abs(va_large) < abs(va_small)

    def test_source_scale_scales_solution(self):
        c = Circuit("lin")
        c.add(VoltageSource("v1", "in", "0", 10.0))
        c.add(Resistor("r1", "in", "0", 1e3))
        x_half = newton_solve(c, np.zeros(c.dimension()),
                              NewtonOptions(), source_scale=0.5)
        assert x_half[c.node_index["in"]] == pytest.approx(5.0)

    def test_fallbacks_disabled_raise(self):
        c = Circuit("float")
        c.add(VoltageSource("v1", "in", "0", 1.0))
        c.add(Resistor("r1", "a", "b", 1.0))  # floating island
        with pytest.raises(AnalysisError):
            robust_dc_solve(c, None, NewtonOptions(
                gmin_stepping=False, source_stepping=False,
            ))


class TestFailureDiagnostics:
    """robust_dc_solve's final AnalysisError names every strategy
    tried and the best residual with its worst node, and source
    stepping ramps from the last gmin iterate instead of zeros."""

    def test_total_failure_lists_all_strategies(self):
        c = Circuit("float")
        c.add(VoltageSource("v1", "in", "0", 1.0))
        c.add(Resistor("r1", "a", "b", 1.0))  # floating island
        with pytest.raises(AnalysisError) as err:
            robust_dc_solve(c)
        assert err.value.strategies == (
            "newton", "gmin-stepping", "source-stepping")
        assert "newton, gmin-stepping, source-stepping" in str(err.value)

    def test_best_residual_and_node_reported(self, monkeypatch):
        failures = iter([
            AnalysisError("n", residual=0.5, node="n1"),
            AnalysisError("g", residual=0.02, node="n4"),
            AnalysisError("s", residual=0.9, node="n2"),
        ])
        monkeypatch.setattr(
            mna, "newton_solve",
            lambda *args, **kwargs: (_ for _ in ()).throw(
                next(failures)))
        with pytest.raises(AnalysisError) as err:
            robust_dc_solve(stiff_diode_chain())
        # The smallest (most converged) residual wins the diagnosis.
        assert err.value.residual == pytest.approx(0.02)
        assert err.value.node == "n4"
        assert "best residual 0.02" in str(err.value)
        assert "'n4'" in str(err.value)

    def test_newton_failure_reports_worst_node(self):
        c = stiff_diode_chain()
        with pytest.raises(AnalysisError) as err:
            newton_solve(c, np.zeros(c.dimension()),
                         NewtonOptions(max_iterations=2))
        assert err.value.residual is not None
        assert err.value.node in c.node_index

    def test_source_stepping_starts_from_last_gmin_iterate(
            self, monkeypatch):
        c = stiff_diode_chain()
        original = mna.newton_solve
        seen = {"gmin_out": None, "source_start": None}

        def wrapper(circuit, x0, options, **kwargs):
            if not kwargs.get("gmin") and not kwargs.get("source_scale"):
                # Plain Newton (initial attempt and the post-gmin
                # finisher) is forced to fail so the handoff runs.
                raise AnalysisError("forced plain-newton failure")
            x = original(circuit, x0, options, **kwargs)
            if kwargs.get("gmin"):
                seen["gmin_out"] = x.copy()
            elif seen["source_start"] is None:
                seen["source_start"] = np.asarray(x0).copy()
            return x

        monkeypatch.setattr(mna, "newton_solve", wrapper)
        x = robust_dc_solve(c)
        assert seen["gmin_out"] is not None
        np.testing.assert_array_equal(seen["source_start"],
                                      seen["gmin_out"])
        v4 = x[c.node_index["n4"]]
        assert 0.0 < v4 < 1.0

    def test_singular_injection_recovered_by_gmin(self):
        c = Circuit("lin")
        c.add(VoltageSource("v1", "in", "0", 1.0))
        c.add(Resistor("r1", "in", "out", 1e3))
        c.add(Resistor("r2", "out", "0", 1e3))
        reference = robust_dc_solve(c)
        plan = faults.FaultPlan(seed=1,
                                schedule={"solver.singular": [1]})
        with faults.activate(plan):
            recovered = robust_dc_solve(c)
        assert plan.fired == [("solver.singular", 1)]
        np.testing.assert_allclose(recovered, reference,
                                   rtol=0, atol=1e-12)


class TestAssembly:
    def test_matrix_shape(self):
        c = stiff_diode_chain()
        n = c.dimension()
        ctx = assemble(c, np.zeros(n))
        assert ctx.matrix.shape == (n, n)
        assert ctx.rhs.shape == (n,)

    def test_ground_rows_skipped(self):
        c = Circuit("gnd")
        c.add(VoltageSource("v1", "in", "0", 1.0))
        c.add(Resistor("r1", "in", "0", 1e3))
        n = c.dimension()
        ctx = assemble(c, np.zeros(n))
        # Conductance to ground appears only on the diagonal.
        idx = c.node_index["in"]
        assert ctx.matrix[idx, idx] >= 1e-3

    def test_reporting_voltage_of_ground(self):
        c = stiff_diode_chain()
        n = c.dimension()
        ctx = assemble(c, np.zeros(n))
        assert ctx.voltage("0") == 0.0
        assert ctx.previous_voltage("n1") == 0.0  # no x_prev
