"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_iv_defaults(self):
        args = build_parser().parse_args(["iv"])
        assert args.model == "model2"
        assert args.vg_stop == 0.6


class TestCommands:
    def test_iv_prints_table(self, capsys):
        rc = main(["iv", "--vg-start", "0.5", "--vg-stop", "0.6",
                   "--vd-points", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "VDS [V]" in out
        assert "VG=0.60" in out

    def test_iv_reference_model(self, capsys):
        rc = main(["iv", "--model", "reference", "--vg-start", "0.6",
                   "--vg-stop", "0.6", "--vd-points", "2"])
        assert rc == 0
        assert "IDS" in capsys.readouterr().out

    def test_fit_describes_regions(self, capsys):
        rc = main(["fit", "--model", "model1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "region 0" in out
        assert "charge-fit RMS" in out

    def test_fit_rejects_reference(self, capsys):
        rc = main(["fit", "--model", "reference"])
        assert rc == 2

    def test_codegen_vhdl(self, capsys):
        rc = main(["codegen", "--language", "vhdl-ams"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "entity cnfet is" in out

    def test_codegen_spice(self, capsys):
        rc = main(["codegen", "--language", "spice"])
        assert rc == 0
        assert ".subckt" in capsys.readouterr().out

    def test_figure_2(self, capsys):
        rc = main(["figure", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "model1" in out

    def test_invalid_table_number(self):
        with pytest.raises(SystemExit):
            main(["table", "7"])
