"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_iv_defaults(self):
        args = build_parser().parse_args(["iv"])
        assert args.model == "model2"
        assert args.vg_stop == 0.6


class TestCommands:
    def test_iv_prints_table(self, capsys):
        rc = main(["iv", "--vg-start", "0.5", "--vg-stop", "0.6",
                   "--vd-points", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "VDS [V]" in out
        assert "VG=0.60" in out

    def test_iv_reference_model(self, capsys):
        rc = main(["iv", "--model", "reference", "--vg-start", "0.6",
                   "--vg-stop", "0.6", "--vd-points", "2"])
        assert rc == 0
        assert "IDS" in capsys.readouterr().out

    def test_fit_describes_regions(self, capsys):
        rc = main(["fit", "--model", "model1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "region 0" in out
        assert "charge-fit RMS" in out

    def test_fit_rejects_reference(self, capsys):
        rc = main(["fit", "--model", "reference"])
        assert rc == 2

    def test_codegen_vhdl(self, capsys):
        rc = main(["codegen", "--language", "vhdl-ams"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "entity cnfet is" in out

    def test_codegen_spice(self, capsys):
        rc = main(["codegen", "--language", "spice"])
        assert rc == 0
        assert ".subckt" in capsys.readouterr().out

    def test_figure_2(self, capsys):
        rc = main(["figure", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "model1" in out

    def test_invalid_table_number(self):
        with pytest.raises(SystemExit):
            main(["table", "7"])


class TestScriptableFlags:
    def test_iv_json(self, capsys):
        rc = main(["iv", "--vg-start", "0.6", "--vg-stop", "0.6",
                   "--vd-points", "3", "--json", "--seed", "5"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "iv"
        assert payload["seed"] == 5
        assert len(payload["ids"]) == 1
        assert len(payload["ids"][0]) == 3

    def test_table5_json_seed_changes_experiment(self, capsys):
        rc = main(["table", "5", "--json", "--seed", "1"])
        assert rc == 0
        first = json.loads(capsys.readouterr().out)
        rc = main(["table", "5", "--json", "--seed", "2"])
        assert rc == 0
        second = json.loads(capsys.readouterr().out)
        assert first["result"]["model2_err"] != second["result"]["model2_err"]


class TestMonteCarlo:
    def test_device_campaign_table(self, capsys):
        rc = main(["mc", "--samples", "12", "--seed", "3",
                   "--chunk-size", "6"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "12 samples" in out
        for metric in ("ion", "ioff", "vth", "gm"):
            assert metric in out

    def test_json_and_metric_filter(self, capsys):
        rc = main(["mc", "--samples", "6", "--seed", "3",
                   "--metric", "ion", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["config"]["n_samples"] == 6
        assert list(payload["aggregate"]) == ["ion"]
        assert len(payload["records"]) == 6

    def test_seeded_runs_reproduce(self, capsys):
        main(["mc", "--samples", "6", "--seed", "9", "--json"])
        a = json.loads(capsys.readouterr().out)
        main(["mc", "--samples", "6", "--seed", "9", "--json"])
        b = json.loads(capsys.readouterr().out)
        assert a["records"] == b["records"]

    def test_corners(self, capsys):
        rc = main(["mc", "--samples", "4", "--seed", "1", "--corners"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Process corners" in out
        for corner in ("TT", "FF", "SS"):
            assert corner in out

    def test_run_dir_resume_message(self, capsys, tmp_path):
        d = str(tmp_path / "mcrun")
        main(["mc", "--samples", "8", "--seed", "2", "--chunk-size", "4",
              "--run-dir", d])
        capsys.readouterr()
        rc = main(["mc", "--samples", "8", "--seed", "2",
                   "--chunk-size", "4", "--run-dir", d])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 chunks resumed" in out

    def test_lhs_sampler(self, capsys):
        rc = main(["mc", "--samples", "6", "--seed", "4",
                   "--sampler", "lhs"])
        assert rc == 0
        assert "sampler=lhs" in capsys.readouterr().out

    def test_metric_filter_rejected_for_circuit_workload(self, capsys):
        rc = main(["mc", "--samples", "4", "--workload", "inverter",
                   "--metric", "ion"])
        assert rc == 2
        assert "--metric" in capsys.readouterr().err

    def test_workers_shard_device_workload_chunks(self, capsys):
        # Device workloads used to reject --workers outright; they now
        # shard at the chunk level (the in-process batching stays, so
        # the workload factory itself still gets workers=1).
        rc = main(["mc", "--samples", "8", "--chunk-size", "4",
                   "--workers", "2", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["records"]) == 8

    def test_workers_spec_must_parse(self, capsys):
        rc = main(["mc", "--samples", "4", "--workers", "lots"])
        assert rc == 2
        assert "workers" in capsys.readouterr().err

    def test_json_output_is_strict_rfc8259(self, capsys):
        """Failed runs report NaN metrics; the JSON surface must emit
        null, not bare NaN tokens."""
        from repro.cli import _dump_json

        text = _dump_json({"metrics": {"vth": float("nan"),
                                       "ion": 1.0},
                           "rows": [float("inf"), 2.0]})
        assert "NaN" not in text and "Infinity" not in text
        payload = json.loads(text)
        assert payload["metrics"]["vth"] is None
        assert payload["rows"] == [None, 2.0]


NETLIST_DECK = """
.model fast cnfet model=model2 fermi_level_ev=-0.32
.subckt inv a y vdd
Qp y a vdd fast polarity=p
Qn y a 0 fast
.ends inv
Vdd vdd 0 0.6
Vin in 0 PULSE(0 0.6 2p 0.5p 0.5p 10p 20p)
X1 in out vdd inv
Cl out 0 1e-17
.dc Vin 0 0.6 5
.tran 0.5p 10p be
.end
"""


class TestNetlistCommand:
    def _deck(self, tmp_path):
        path = tmp_path / "deck.cir"
        path.write_text(NETLIST_DECK)
        return str(path)

    def test_runs_analyses(self, capsys, tmp_path):
        rc = main(["netlist", self._deck(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1 subcircuit definitions" in out
        assert ".dc sweep" in out and ".tran" in out

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_backend_flag_json(self, capsys, tmp_path, backend):
        rc = main(["netlist", self._deck(tmp_path), "--backend",
                   backend, "--nodes", "out", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == backend
        kinds = [a["kind"] for a in payload["analyses"]]
        assert kinds == ["dc", "tran"]
        # input high at t=10p -> inverter output low
        assert payload["analyses"][1]["final"]["v(out)"] < 0.1

    def test_operating_point_fallback(self, capsys, tmp_path):
        path = tmp_path / "op.cir"
        path.write_text("V1 in 0 2\nR1 in mid 1k\nR2 mid 0 1k\n.end\n")
        rc = main(["netlist", str(path), "--nodes", "mid"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "operating point" in out and "v(mid) = 1" in out

    def test_parse_error_reported(self, capsys, tmp_path):
        path = tmp_path / "bad.cir"
        path.write_text("R1 a 0 1k\nR1 a 0 2k\n")
        rc = main(["netlist", str(path)])
        assert rc == 2
        assert "duplicate" in capsys.readouterr().err

    def test_backend_flag_on_characterize(self, capsys):
        rc = main(["characterize", "--gate", "inverter", "--loads",
                   "0.01", "--slews", "2", "--backend", "dense",
                   "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["gate"] == "inverter"

    def test_backend_flag_on_mc(self, capsys):
        rc = main(["mc", "--samples", "4", "--seed", "3",
                   "--workload", "inverter", "--backend", "dense"])
        assert rc == 0

PARTITION_DECK = """
.model fast cnfet model=model2 fermi_level_ev=-0.32
.subckt inv a y vdd
Qp y a vdd fast polarity=p
Qn y a 0 fast
.ends inv
Vdd vdd 0 0.6
Vin in 0 PULSE(0 0.6 2p 0.5p 0.5p 10p 40p)
X1 in n1 vdd inv
X2 n1 n2 vdd inv
X3 n2 out vdd inv
Cl out 0 1e-17
.tran 0.5p 10p be
.end
"""


class TestPartitionReportCommand:
    def _deck(self, tmp_path):
        path = tmp_path / "chain.cir"
        path.write_text(PARTITION_DECK)
        return str(path)

    def test_prints_blocks_and_histogram(self, capsys, tmp_path):
        rc = main(["partition-report", self._deck(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "blocks" in out and "boundary nodes" in out
        assert "|" in out  # the size histogram

    def test_json_payload(self, capsys, tmp_path):
        rc = main(["partition-report", self._deck(tmp_path), "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "partition-report"
        assert payload["n_blocks"] >= 2
        assert payload["boundary_nodes"] > 0
        assert sum(payload["block_unknowns"]) \
            + payload["interface_unknowns"] == payload["total_unknowns"]

    def test_max_block_flag(self, capsys, tmp_path):
        rc = main(["partition-report", self._deck(tmp_path),
                   "--max-block", "1", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "partition-report"


class TestTransientCommand:
    def _deck(self, tmp_path):
        path = tmp_path / "chain.cir"
        path.write_text(PARTITION_DECK)
        return str(path)

    def test_uses_deck_tran_directive(self, capsys, tmp_path):
        rc = main(["transient", self._deck(tmp_path), "--nodes", "out"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "time points" in out and "v(out)" in out

    def test_partition_auto_reports_block_steps(self, capsys, tmp_path):
        rc = main(["transient", self._deck(tmp_path),
                   "--partition", "auto", "--nodes", "out", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["partition"] == "auto"
        assert payload["partition_stats"]["partition_steps"] > 0
        assert "v(out)" in payload["final"]

    def test_partition_matches_monolithic_final_state(
            self, capsys, tmp_path):
        rc = main(["transient", self._deck(tmp_path), "--json"])
        mono = json.loads(capsys.readouterr().out)
        assert rc == 0
        rc = main(["transient", self._deck(tmp_path),
                   "--partition", "auto", "--json"])
        part = json.loads(capsys.readouterr().out)
        assert rc == 0
        for key, value in mono["final"].items():
            assert abs(part["final"][key] - value) < 5e-6

    def test_store_flag_writes_chunked_store(self, capsys, tmp_path):
        store_dir = tmp_path / "waves"
        rc = main(["transient", self._deck(tmp_path),
                   "--store", str(store_dir), "--nodes", "out"])
        out = capsys.readouterr().out
        assert rc == 0
        assert f"waveforms stored in {store_dir}" in out
        assert (store_dir / "meta.json").exists()
        assert list(store_dir.glob("chunk_*.npy"))

    def test_bypass_tol_requires_partition(self, capsys, tmp_path):
        rc = main(["transient", self._deck(tmp_path),
                   "--bypass-tol", "1e-6"])
        assert rc == 2
        assert "bypass_tol" in capsys.readouterr().err

    def test_missing_tstop_reported(self, capsys, tmp_path):
        path = tmp_path / "no_tran.cir"
        path.write_text("V1 in 0 1\nR1 in out 1k\nC1 out 0 1p\n.end\n")
        rc = main(["transient", str(path)])
        assert rc == 2
        assert "tstop" in capsys.readouterr().err
