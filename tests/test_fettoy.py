"""Reference (FETToy-equivalent) model behaviour."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.reference.fettoy import FETToyModel, FETToyParameters


class TestParameters:
    def test_defaults_match_fettoy(self):
        p = FETToyParameters()
        assert p.temperature_k == 300.0
        assert p.fermi_level_ev == -0.32
        assert p.alpha_g == 0.88
        assert p.alpha_d == 0.035

    def test_with_updates(self):
        p = FETToyParameters().with_updates(temperature_k=150.0)
        assert p.temperature_k == 150.0
        assert p.fermi_level_ev == -0.32

    def test_validation(self):
        with pytest.raises(ParameterError):
            FETToyParameters(gate_geometry="planar")
        with pytest.raises(ParameterError):
            FETToyParameters(transmission=0.0)
        with pytest.raises(ParameterError):
            FETToyParameters(n_subbands=0)

    def test_explicit_chirality_overrides_diameter(self):
        p = FETToyParameters(diameter_nm=2.0, chirality=(13, 0))
        model = FETToyModel(p)
        assert model.bands.diameter_nm == pytest.approx(1.018, abs=0.01)


class TestSelfConsistency:
    def test_residual_zero_at_solution(self, ref300):
        vsc = ref300.solve_vsc(0.5, 0.4)
        assert abs(ref300.vsc_residual(vsc, 0.5, 0.4)) < 1e-21

    def test_residual_monotone(self, ref300):
        v = np.linspace(-0.6, 0.1, 40)
        g = [ref300.vsc_residual(x, 0.5, 0.4) for x in v]
        assert all(b > a for a, b in zip(g, g[1:]))

    def test_derivative_positive(self, ref300):
        for v in (-0.5, -0.3, 0.0):
            assert ref300.vsc_residual_derivative(v, 0.5, 0.4) > 0.0

    def test_vsc_zero_bias(self, ref300):
        assert ref300.solve_vsc(0.0, 0.0) == pytest.approx(0.0, abs=1e-6)

    def test_vsc_negative_under_positive_gate(self, ref300):
        assert ref300.solve_vsc(0.6, 0.3) < -0.1

    def test_vsc_source_referenced(self, ref300):
        """Shifting all terminals together must not change VSC or IDS."""
        v1 = ref300.solve_vsc(0.5, 0.4, 0.0)
        v2 = ref300.solve_vsc(0.8, 0.7, 0.3)
        assert v1 == pytest.approx(v2, abs=1e-9)
        assert ref300.ids(0.5, 0.4, 0.0) == pytest.approx(
            ref300.ids(0.8, 0.7, 0.3), rel=1e-9
        )

    def test_charge_feedback_reduces_barrier_shift(self, ref300):
        """|VSC| < |Qt|/CSum: mobile charge opposes the gate."""
        qt = ref300.capacitances.terminal_charge(0.6, 0.6, 0.0)
        vsc = ref300.solve_vsc(0.6, 0.6)
        assert abs(vsc) < qt / ref300.capacitances.csum


class TestCurrent:
    def test_zero_at_zero_vds(self, ref300):
        assert ref300.ids(0.5, 0.0) == pytest.approx(0.0, abs=1e-15)

    def test_positive_and_increasing_with_vg(self, ref300):
        i1 = ref300.ids(0.3, 0.5)
        i2 = ref300.ids(0.5, 0.5)
        assert 0.0 < i1 < i2

    def test_saturates_with_vds(self, ref300):
        i_mid = ref300.ids(0.5, 0.3)
        i_high = ref300.ids(0.5, 0.6)
        assert i_high > i_mid
        assert (i_high - i_mid) < 0.5 * i_mid

    def test_antisymmetric_in_vds_sign(self, ref300):
        """Swapping drain and source reverses the current direction
        (same magnitude by the model's source/drain symmetry)."""
        forward = ref300.ids(0.5, 0.3)
        reverse = ref300.ids_at_vsc(ref300.solve_vsc(0.5, 0.3), -0.3)
        assert reverse < 0.0

    def test_magnitude_matches_paper_fig6(self, ref300):
        """~9 uA at VG = VD = 0.6 V on the paper's Fig. 6 axis."""
        assert ref300.ids(0.6, 0.6) == pytest.approx(9e-6, rel=0.25)

    def test_subthreshold_swing_physical(self, ref300):
        """Near-ideal thermionic swing >= ~60 mV/dec at 300 K."""
        i1 = ref300.ids(0.05, 0.3)
        i2 = ref300.ids(0.15, 0.3)
        decades = np.log10(i2 / i1)
        swing = 100.0 / decades  # mV per decade
        assert 55.0 < swing < 120.0

    def test_iv_family_shape(self, ref300):
        fam = ref300.iv_family([0.3, 0.6], [0.0, 0.3, 0.6])
        assert fam.shape == (2, 3)
        assert fam[1, 2] > fam[0, 2]

    def test_operating_point_consistency(self, ref300):
        ids, vsc = ref300.operating_point(0.45, 0.5)
        assert ids == pytest.approx(ref300.ids_at_vsc(vsc, 0.5))


class TestChargeCurve:
    def test_curve_shapes(self, ref300):
        vsc = np.linspace(-0.5, 0.0, 11)
        qs, qd = ref300.charge_curve(vsc, vds=0.2)
        assert qs.shape == qd.shape == (11,)
        # QD is QS shifted right: smaller at equal VSC.
        assert np.all(qd <= qs + 1e-18)

    def test_newton_iteration_counter_increments(self):
        model = FETToyModel(FETToyParameters())
        before = model.newton_iterations
        model.ids(0.5, 0.5)
        assert model.newton_iterations > before


class TestTemperatureAndFermi:
    def test_higher_ef_gives_more_current(self):
        low = FETToyModel(FETToyParameters(fermi_level_ev=-0.5))
        high = FETToyModel(FETToyParameters(fermi_level_ev=0.0))
        assert high.ids(0.4, 0.4) > 5.0 * low.ids(0.4, 0.4)

    def test_subthreshold_current_grows_with_temperature(self):
        cold = FETToyModel(FETToyParameters(temperature_k=150.0))
        hot = FETToyModel(FETToyParameters(temperature_k=450.0))
        assert hot.ids(0.1, 0.3) > 10.0 * cold.ids(0.1, 0.3)

    def test_multi_subband_adds_current_at_high_bias(self):
        one = FETToyModel(FETToyParameters(n_subbands=1))
        # Second subband sits ~0.4 eV above the first: it only matters
        # for charge, but must not *reduce* the current.
        two = FETToyModel(FETToyParameters(n_subbands=2))
        assert two.ids(0.6, 0.6) >= 0.5 * one.ids(0.6, 0.6)
