"""Density of states: van Hove structure and limits."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.physics.dos import DensityOfStates, dos_prefactor


def test_prefactor_magnitude():
    # 8/(3 pi a_cc t) ~ 2e9 /(eV m) for t = 3 eV.
    assert dos_prefactor(3.0) == pytest.approx(1.99e9, rel=0.01)


def test_prefactor_rejects_bad_hopping():
    with pytest.raises(ParameterError):
        dos_prefactor(0.0)


class TestSingleSubband:
    dos = DensityOfStates([0.4])

    def test_zero_inside_gap(self):
        assert self.dos.conduction(0.2) == 0.0
        assert self.dos.conduction(0.39) == 0.0

    def test_diverges_at_edge(self):
        just_above = self.dos.conduction(0.4 + 1e-9)
        assert just_above > 100 * self.dos.prefactor

    def test_asymptotes_to_prefactor(self):
        far = self.dos.conduction(40.0)
        assert far == pytest.approx(self.dos.prefactor, rel=1e-3)

    def test_vectorised(self):
        e = np.array([0.0, 0.5, 1.0])
        out = self.dos.conduction(e)
        assert out.shape == (3,)
        assert out[0] == 0.0 and out[1] > out[2] > 0.0

    def test_monotone_decreasing_above_edge(self):
        e = np.linspace(0.401, 5.0, 200)
        d = self.dos.conduction(e)
        assert np.all(np.diff(d) < 0.0)


class TestRelativeToEdge:
    dos = DensityOfStates([0.4])

    def test_zero_for_negative(self):
        assert self.dos.relative_to_edge(-0.1, 0.4) == 0.0

    def test_matches_absolute(self):
        e_rel = 0.25
        rel = self.dos.relative_to_edge(e_rel, 0.4)
        absolute = self.dos.conduction(0.4 + e_rel)
        assert rel == pytest.approx(absolute, rel=1e-12)

    def test_metallic_is_flat(self):
        metal = DensityOfStates([0.0])
        assert metal.relative_to_edge(0.1, 0.0) == metal.prefactor
        assert metal.conduction(-3.0) == metal.prefactor

    def test_rejects_negative_delta(self):
        with pytest.raises(ParameterError):
            self.dos.relative_to_edge(0.1, -0.4)


class TestMultiSubband:
    def test_second_edge_adds_dos(self):
        dos = DensityOfStates([0.4, 0.8])
        below = dos.conduction(0.79)
        above = dos.conduction(0.81)
        assert above > 3.0 * below

    def test_validation(self):
        with pytest.raises(ParameterError):
            DensityOfStates([])
        with pytest.raises(ParameterError):
            DensityOfStates([0.8, 0.4])
        with pytest.raises(ParameterError):
            DensityOfStates([-0.1])
