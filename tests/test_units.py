"""SPICE number parsing and SI formatting."""

import pytest

from repro.units import (
    celsius_to_kelvin,
    ev_to_joule,
    format_si,
    joule_to_ev,
    parse_spice_number,
)


@pytest.mark.parametrize("text,expected", [
    ("1.5k", 1.5e3),
    ("10u", 10e-6),
    ("2meg", 2e6),
    ("3m", 3e-3),
    ("100n", 100e-9),
    ("4p", 4e-12),
    ("7f", 7e-15),
    ("1t", 1e12),
    ("2g", 2e9),
    ("5", 5.0),
    ("-2.5u", -2.5e-6),
    ("1e-3", 1e-3),
    ("1E3", 1e3),
])
def test_parse_suffixes(text, expected):
    assert parse_spice_number(text) == pytest.approx(expected)


def test_parse_unit_letters_after_suffix_ignored():
    assert parse_spice_number("10uF") == pytest.approx(10e-6)
    assert parse_spice_number("5kohm") == pytest.approx(5e3)


def test_parse_bare_unit_is_not_a_suffix():
    # 'v' is not a scale suffix; value passes through.
    assert parse_spice_number("5v") == pytest.approx(5.0)


def test_parse_mil():
    assert parse_spice_number("2mil") == pytest.approx(2 * 25.4e-6)


@pytest.mark.parametrize("bad", ["", "   ", "abc", "k1"])
def test_parse_rejects_garbage(bad):
    with pytest.raises(ValueError):
        parse_spice_number(bad)


def test_format_si_basic():
    assert format_si(1.5e-9, "A") == "1.5 nA"
    assert format_si(2.2e3, "Ohm") == "2.2 kOhm"


def test_format_si_zero_and_nonfinite():
    assert format_si(0.0, "V") == "0 V"
    assert "inf" in format_si(float("inf"), "V")


def test_energy_roundtrip():
    assert joule_to_ev(ev_to_joule(1.234)) == pytest.approx(1.234)


def test_celsius_conversion():
    assert celsius_to_kelvin(26.85) == pytest.approx(300.0)
    with pytest.raises(ValueError):
        celsius_to_kelvin(-300.0)
