"""Public CNFET device."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.pwl.device import CNFET
from repro.reference.fettoy import FETToyParameters


class TestConstruction:
    def test_named_models(self, device_m1, device_m2):
        assert device_m1.model_name == "model1"
        assert device_m2.model_name == "model2"

    def test_unknown_model_rejected(self):
        with pytest.raises(ParameterError):
            CNFET(model="model3")

    def test_invalid_polarity(self):
        with pytest.raises(ParameterError):
            CNFET(polarity="x")

    def test_prefitted_reuse(self, device_m2):
        clone = CNFET(device_m2.params, fitted=device_m2.fitted)
        assert clone.ids(0.5, 0.5) == pytest.approx(
            device_m2.ids(0.5, 0.5), rel=1e-12
        )


class TestAccuracy:
    def test_tracks_reference(self, device_m2, ref300):
        for vg, vd in [(0.3, 0.3), (0.5, 0.2), (0.6, 0.6)]:
            assert device_m2.ids(vg, vd) == pytest.approx(
                ref300.ids(vg, vd), rel=0.08
            )

    def test_iv_family_matches_scalar_calls(self, device_m2):
        fam = device_m2.iv_family([0.4, 0.6], [0.1, 0.3])
        assert fam[0, 1] == pytest.approx(device_m2.ids(0.4, 0.3))
        assert fam[1, 0] == pytest.approx(device_m2.ids(0.6, 0.1))

    def test_source_reference_invariance(self, device_m2):
        a = device_m2.ids(0.5, 0.4, 0.0)
        b = device_m2.ids(0.7, 0.6, 0.2)
        assert a == pytest.approx(b, rel=1e-10)

    def test_zero_vds_zero_current(self, device_m2):
        assert device_m2.ids(0.5, 0.0) == pytest.approx(0.0, abs=1e-12)

    def test_operating_point(self, device_m2):
        ids, vsc = device_m2.operating_point(0.5, 0.4)
        assert ids == pytest.approx(device_m2.ids(0.5, 0.4))
        assert vsc == pytest.approx(device_m2.vsc(0.5, 0.4))


class TestSmallSignal:
    def test_gm_positive_on_state(self, device_m2):
        assert device_m2.gm(0.5, 0.4) > 0.0

    def test_gds_nonnegative(self, device_m2):
        assert device_m2.gds(0.5, 0.4) >= 0.0

    def test_gm_matches_secant(self, device_m2):
        d = 5e-3
        secant = (device_m2.ids(0.5 + d, 0.4)
                  - device_m2.ids(0.5 - d, 0.4)) / (2 * d)
        assert device_m2.gm(0.5, 0.4) == pytest.approx(secant, rel=0.05)


class TestPolarity:
    def test_p_type_mirrors_n_type(self, device_m2, device_p):
        vg, vd = 0.5, 0.4
        assert device_p.ids(-vg, -vd) == pytest.approx(
            -device_m2.ids(vg, vd), rel=1e-10
        )

    def test_p_type_off_for_positive_gate(self, device_p):
        assert abs(device_p.ids(0.6, -0.4)) < abs(device_p.ids(-0.6, -0.4))

    def test_p_type_vsc_mirrored(self, device_m2, device_p):
        assert device_p.vsc(-0.5, -0.4) == pytest.approx(
            -device_m2.vsc(0.5, 0.4), rel=1e-9
        )


class TestCharges:
    def test_terminal_charges_sum(self, device_m2):
        qg, qd, qs = device_m2.terminal_charges(0.5, 0.4)
        # Gate charge positive under positive gate drive.
        assert qg > 0.0
        # All finite and of per-unit-length magnitude (C/m).
        for q in (qg, qd, qs):
            assert abs(q) < 1e-8

    def test_gate_charge_increases_with_vg(self, device_m2):
        qg1, _, _ = device_m2.terminal_charges(0.3, 0.4)
        qg2, _, _ = device_m2.terminal_charges(0.6, 0.4)
        assert qg2 > qg1


class TestTransmissionScaling:
    def test_quasi_ballistic_device(self):
        full = CNFET(FETToyParameters())
        scaled = CNFET(FETToyParameters(transmission=0.7))
        assert scaled.ids(0.5, 0.5) == pytest.approx(
            0.7 * full.ids(0.5, 0.5), rel=0.02
        )
