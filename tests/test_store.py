"""Chunked on-disk waveform store and the lazy Dataset mode."""

import json

import numpy as np
import pytest

from repro.circuit import (
    Capacitor,
    Circuit,
    Resistor,
    VoltageSource,
    WaveformStore,
    transient,
)
from repro.circuit.results import Dataset
from repro.circuit.store import STORE_VERSION
from repro.circuit.waveforms import Pulse
from repro.errors import ParameterError, StoreError


def rc_circuit() -> Circuit:
    c = Circuit("rc")
    c.add(VoltageSource("v1", "in", "0",
                        Pulse(0.0, 1.0, delay=0.0, rise=1e-15,
                              width=1e-6, period=2e-6)))
    c.add(Resistor("r1", "in", "out", 1000.0))
    c.add(Capacitor("c1", "out", "0", 1e-12))
    return c


def _filled_store(directory, rows=10, chunk_rows=4) -> np.ndarray:
    """Write ``rows`` deterministic rows; return the matrix written."""
    data = np.arange(rows * 3, dtype=float).reshape(rows, 3)
    with WaveformStore.create(directory, ["time", "v(a)", "v(b)"],
                              chunk_rows=chunk_rows) as store:
        for row in data:
            store.append(row)
    return data


class TestStoreRoundTrip:
    def test_round_trip_across_chunk_boundaries(self, tmp_path):
        data = _filled_store(tmp_path / "s", rows=10, chunk_rows=4)
        store = WaveformStore.open(tmp_path / "s")
        assert store.n_rows == 10
        assert store.axis_name == "time"
        assert store.quarantined == 0
        # three chunks: 4 + 4 + the 2-row tail flushed by close()
        assert len(list(tmp_path.glob("s/chunk_*.npy"))) == 3
        for j, name in enumerate(["time", "v(a)", "v(b)"]):
            np.testing.assert_array_equal(store.read_column(name),
                                          data[:, j])
        # slices that start/stop mid-chunk
        np.testing.assert_array_equal(
            store.read_column("v(a)", start=3, stop=9), data[3:9, 1])
        assert store.read_column("v(b)", start=7, stop=7).size == 0

    def test_column_and_write_errors(self, tmp_path):
        _filled_store(tmp_path / "s")
        store = WaveformStore.open(tmp_path / "s")
        with pytest.raises(ParameterError):
            store.column_index("v(nope)")
        with pytest.raises(StoreError):
            store.append(np.zeros(3))  # read-only after open
        writable = WaveformStore.create(tmp_path / "w", ["time", "x"])
        with pytest.raises(ParameterError):
            writable.append(np.zeros(5))  # wrong width
        writable.close()
        with pytest.raises(StoreError):
            writable.append(np.zeros(2))  # closed
        with pytest.raises(ParameterError):
            WaveformStore.create(tmp_path / "bad", ["time"],
                                 chunk_rows=0)

    def test_open_rejects_missing_and_foreign_stores(self, tmp_path):
        with pytest.raises(StoreError):
            WaveformStore.open(tmp_path / "nothing")
        _filled_store(tmp_path / "s")
        meta = tmp_path / "s" / "meta.json"
        payload = json.loads(meta.read_text())
        payload["version"] = STORE_VERSION + 1
        meta.write_text(json.dumps(payload))
        with pytest.raises(StoreError):
            WaveformStore.open(tmp_path / "s")

    def test_create_resets_previous_run(self, tmp_path):
        _filled_store(tmp_path / "s", rows=10)
        with WaveformStore.create(tmp_path / "s", ["time", "y"]) as store:
            store.append(np.array([0.0, 1.0]))
        reopened = WaveformStore.open(tmp_path / "s")
        assert reopened.n_rows == 1
        assert reopened.columns == ["time", "y"]
        # the old run's chunks are gone, not silently appended to
        assert len(list(tmp_path.glob("s/chunk_*.npy"))) == 1


class TestStoreValidation:
    def test_truncated_chunk_quarantined_with_successors(self, tmp_path):
        _filled_store(tmp_path / "s", rows=10, chunk_rows=4)
        victim = tmp_path / "s" / "chunk_00001.npy"
        victim.write_bytes(victim.read_bytes()[: victim.stat().st_size // 2])
        store = WaveformStore.open(tmp_path / "s")
        # chunk 1 is corrupt; chunk 2's rows would shift, so both go
        assert store.quarantined == 2
        assert store.n_rows == 4
        quarantine = tmp_path / "s" / "quarantine"
        assert (quarantine / "chunk_00001.npy").exists()
        assert (quarantine / "chunk_00002.npy").exists()
        # the surviving prefix stays readable
        assert store.read_column("time").tolist() == [0.0, 3.0, 6.0, 9.0]
        # validate=False trusts the table (and then fails on read)
        trusting = WaveformStore.open(tmp_path / "s", validate=False)
        assert trusting.n_rows == 10

    def test_deleted_chunk_quarantines_successors(self, tmp_path):
        _filled_store(tmp_path / "s", rows=10, chunk_rows=4)
        (tmp_path / "s" / "chunk_00000.npy").unlink()
        store = WaveformStore.open(tmp_path / "s")
        assert store.quarantined == 3
        assert store.n_rows == 0


class TestLazyDataset:
    def _pair(self, tmp_path):
        ds_mem = transient(rc_circuit(), tstop=5e-9, dt=1e-11,
                           record_currents=False)
        ds_disk = transient(rc_circuit(), tstop=5e-9, dt=1e-11,
                            record_currents=False,
                            store=str(tmp_path / "run"),
                            store_chunk_rows=64)
        return ds_mem, ds_disk

    def test_store_backed_run_matches_in_memory(self, tmp_path):
        ds_mem, ds_disk = self._pair(tmp_path)
        assert not ds_mem.is_lazy and ds_disk.is_lazy
        assert ds_mem.names == ds_disk.names
        for name in ds_mem.names:
            np.testing.assert_array_equal(ds_mem.trace(name),
                                          ds_disk.trace(name))

    def test_windowed_measurements_identical(self, tmp_path):
        ds_mem, ds_disk = self._pair(tmp_path)
        assert ds_disk.first_crossing("v(out)", 0.5) \
            == ds_mem.first_crossing("v(out)", 0.5)
        sum_mem = ds_mem.summary("v(out)")
        sum_disk = ds_disk.summary("v(out)")
        assert sum_mem.keys() == sum_disk.keys()
        for key in sum_mem:
            np.testing.assert_array_equal(sum_mem[key], sum_disk[key])
        t_mem, v_mem = ds_mem.window("v(out)", 1e-9, 3e-9)
        t_disk, v_disk = ds_disk.window("v(out)", 1e-9, 3e-9)
        np.testing.assert_array_equal(t_mem, t_disk)
        np.testing.assert_array_equal(v_mem, v_disk)

    def test_store_survives_reopen(self, tmp_path):
        _, ds_disk = self._pair(tmp_path)
        reloaded = Dataset.from_store(
            WaveformStore.open(tmp_path / "run"))
        np.testing.assert_array_equal(reloaded.trace("v(out)"),
                                      ds_disk.trace("v(out)"))

    def test_store_requires_reduced_current_recording(self, tmp_path):
        with pytest.raises(ParameterError):
            transient(rc_circuit(), tstop=1e-9, dt=1e-11,
                      store=str(tmp_path / "run"))  # record_currents=True
        with pytest.raises(ParameterError):
            transient(rc_circuit(), tstop=1e-9, dt=1e-11,
                      record_currents=False,
                      store=str(tmp_path / "run"), store_chunk_rows=0)

    def test_sources_mode_records_branch_currents(self, tmp_path):
        ds = transient(rc_circuit(), tstop=1e-9, dt=1e-11,
                       record_currents="sources",
                       store=str(tmp_path / "run"))
        assert "i(v1)" in ds.names
        assert ds.trace("i(v1)").shape == ds.axis.shape
