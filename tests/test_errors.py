"""Exception hierarchy contracts."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in ("ParameterError", "ConvergenceError", "FittingError",
                 "RootNotFoundError", "NetlistError", "ParseError",
                 "AnalysisError", "CodegenError"):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_parameter_error_is_value_error():
    assert issubclass(errors.ParameterError, ValueError)


def test_convergence_error_carries_diagnostics():
    exc = errors.ConvergenceError("nope", iterations=7, residual=1e-3)
    assert exc.iterations == 7
    assert exc.residual == 1e-3


def test_parse_error_formats_line_number():
    exc = errors.ParseError("bad token", line_number=12, line="R1 x")
    assert "line 12" in str(exc)
    assert exc.line == "R1 x"


def test_parse_error_is_netlist_error():
    with pytest.raises(errors.NetlistError):
        raise errors.ParseError("x")
