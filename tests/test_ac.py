"""AC small-signal analysis."""

import numpy as np
import pytest

from repro.circuit import Capacitor, Circuit, Resistor, VoltageSource
from repro.circuit.ac import ac_analysis, decade_frequencies
from repro.circuit.elements import CNFETElement
from repro.errors import NetlistError, ParameterError


def rc_lowpass(r=1000.0, c=1e-9) -> Circuit:
    ckt = Circuit("rc lowpass")
    ckt.add(VoltageSource("vin", "in", "0", 0.0))
    ckt.add(Resistor("r1", "in", "out", r))
    ckt.add(Capacitor("c1", "out", "0", c))
    return ckt


class TestRcLowpass:
    f3db = 1.0 / (2.0 * np.pi * 1000.0 * 1e-9)  # ~159 kHz

    def test_passband_unity(self):
        ds = ac_analysis(rc_lowpass(), "vin", [self.f3db / 1000.0])
        assert ds.trace("vm(out)")[0] == pytest.approx(1.0, abs=1e-5)

    def test_minus_3db_at_pole(self):
        ds = ac_analysis(rc_lowpass(), "vin", [self.f3db])
        assert ds.trace("vm(out)")[0] == pytest.approx(
            1.0 / np.sqrt(2.0), rel=1e-3
        )

    def test_phase_minus_45_at_pole(self):
        ds = ac_analysis(rc_lowpass(), "vin", [self.f3db])
        assert ds.trace("vp(out)")[0] == pytest.approx(-45.0, abs=0.5)

    def test_rolloff_20db_per_decade(self):
        ds = ac_analysis(rc_lowpass(), "vin",
                         [10 * self.f3db, 100 * self.f3db])
        vm = ds.trace("vm(out)")
        assert 20 * np.log10(vm[0] / vm[1]) == pytest.approx(20.0, abs=0.5)

    def test_input_node_pinned(self):
        ds = ac_analysis(rc_lowpass(), "vin", [1e3, 1e6])
        np.testing.assert_allclose(ds.trace("vm(in)"), 1.0, atol=1e-9)


class TestCnfetStage:
    def test_common_source_gain_and_pole(self, device_m2):
        """CNFET common-source amp: low-frequency gain gm*(Rl || rds),
        single pole from the load capacitor."""
        ckt = Circuit("cs amp")
        ckt.add(VoltageSource("vdd", "vdd", "0", 0.6))
        ckt.add(VoltageSource("vin", "g", "0", 0.45))
        ckt.add(Resistor("rl", "vdd", "out", 1e5))
        ckt.add(CNFETElement("q1", "out", "g", "0", device=device_m2))
        ckt.add(Capacitor("cl", "out", "0", 1e-15))
        low = ac_analysis(ckt, "vin", [1e3])
        gain_lf = low.trace("vm(out)")[0]
        assert gain_lf > 1.0  # an amplifier, not an attenuator
        # Beyond the output pole the gain must fall.
        f_pole = 1.0 / (2 * np.pi * 1e5 * 1e-15)
        high = ac_analysis(ckt, "vin", [100 * f_pole])
        assert high.trace("vm(out)")[0] < 0.1 * gain_lf


class TestValidation:
    def test_bad_source(self):
        with pytest.raises(NetlistError):
            ac_analysis(rc_lowpass(), "r1", [1e3])

    def test_bad_frequencies(self):
        with pytest.raises(ParameterError):
            ac_analysis(rc_lowpass(), "vin", [])
        with pytest.raises(ParameterError):
            ac_analysis(rc_lowpass(), "vin", [0.0])


class TestDecadeGrid:
    def test_endpoints(self):
        grid = decade_frequencies(1e2, 1e5, 10)
        assert grid[0] == pytest.approx(1e2)
        assert grid[-1] == pytest.approx(1e5)
        assert len(grid) == 31

    def test_validation(self):
        with pytest.raises(ParameterError):
            decade_frequencies(0.0, 1e3)
        with pytest.raises(ParameterError):
            decade_frequencies(1e3, 1e2)
        with pytest.raises(ParameterError):
            decade_frequencies(1e2, 1e3, 0)
