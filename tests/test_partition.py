"""Partitioned transient vs. the monolithic engine.

The partitioned assembler must be a drop-in: with latency bypass off
it reproduces the monolithic Newton trajectory to solver tolerance
(the only differences are summation order and the Schur elimination's
rounding); with bypass on, errors stay bounded by the bypass tolerance
semantics documented in ``docs/partitioning.md``.
"""

import numpy as np
import pytest

from repro.circuit import Circuit, NewtonOptions, transient
from repro.circuit.logic import (
    LogicFamily,
    build_inverter_chain,
    build_ring_oscillator,
    build_ripple_carry_adder,
)
from repro.circuit.mna import newton_solve, robust_dc_solve
from repro.circuit.partition import PartitionedAssembler, partition_circuit
from repro.circuit.waveforms import Pulse
from repro.errors import ParameterError

FAM = LogicFamily.default()


def _rca8(pulse: bool = True) -> Circuit:
    c, _ = build_ripple_carry_adder(FAM, 8, a_value=3, b_value=5)
    if pulse:
        for el in c.elements:
            if el.name == "va0":
                el.waveform = Pulse(v1=0.0, v2=FAM.vdd, delay=2e-12,
                                    rise=1e-12, fall=1e-12,
                                    width=6e-12, period=1.0)
    return c


def _max_trace_err(ds_a, ds_b) -> float:
    worst = 0.0
    for name in ds_a.names:
        if not name.startswith("v("):
            continue
        worst = max(worst, float(np.max(np.abs(
            ds_a.trace(name) - ds_b.trace(name)))))
    return worst


class TestPartitionStructure:
    def test_rca8_blocks_tile_the_unknowns(self):
        c = _rca8()
        part = partition_circuit(c)
        report = part.report()
        assert report.n_blocks >= 2
        assert report.total_unknowns == c.dimension()
        # Partition.__init__ already validates the tiling; double-check
        # the arithmetic from the report side.
        assert sum(report.block_unknowns) + report.interface_unknowns \
            == report.total_unknowns
        assert report.boundary_nodes > 0
        assert "|" in report.histogram()
        payload = report.as_dict()
        assert payload["n_blocks"] == report.n_blocks

    def test_absorption_keeps_interface_small(self):
        # Stimulus sources / load caps must be absorbed into the block
        # that owns their node, not inflate the boundary: the rca8
        # interface is the carry chain + supply, far below the naive
        # every-source-is-boundary cut.
        part = partition_circuit(_rca8())
        assert part.report().interface_unknowns < 20

    def test_connectivity_fallback_splits_flat_chain(self):
        c, _ = build_inverter_chain(FAM, 8)
        part = partition_circuit(c, max_block=6)
        assert len(part.blocks) >= 2

    def test_bad_arguments(self):
        c = _rca8()
        with pytest.raises(ParameterError):
            partition_circuit(c, max_block=0)
        with pytest.raises(ParameterError):
            PartitionedAssembler(c, coupling="jacobi")
        with pytest.raises(ParameterError):
            transient(c, tstop=1e-12, dt=1e-12, partition="maybe",
                      record_currents=False)
        with pytest.raises(ParameterError):
            # bypass_tol without a partitioned run is a user error
            transient(c, tstop=1e-12, dt=1e-12, bypass_tol=1e-6,
                      record_currents=False)


class TestTransientParity:
    def test_rca8_nobypass_matches_monolithic(self):
        c = _rca8()
        x0 = robust_dc_solve(c)
        ds_mono = transient(c, tstop=2e-11, dt=5e-13, x0=x0,
                            record_currents=False)
        c2 = _rca8()
        stats = {}
        ds_part = transient(c2, tstop=2e-11, dt=5e-13, x0=x0,
                            record_currents=False, partition="auto",
                            bypass_tol=0.0, stats=stats)
        assert stats["partition_steps"] > 0
        assert stats["partition_block_steps_bypassed"] == 0
        assert _max_trace_err(ds_mono, ds_part) < 1e-9

    def test_rca8_bypass_matches_within_tolerance(self):
        c = _rca8()
        x0 = robust_dc_solve(c)
        ds_mono = transient(c, tstop=2e-11, dt=5e-13, x0=x0,
                            record_currents=False)
        c2 = _rca8()
        stats = {}
        ds_part = transient(c2, tstop=2e-11, dt=5e-13, x0=x0,
                            record_currents=False, partition="auto",
                            stats=stats)
        # most blocks sit out the run: the pulse only exercises bit 0
        assert stats["partition_block_steps_bypassed"] > 0
        assert _max_trace_err(ds_mono, ds_part) < 5e-6

    def test_rca32_parity_bypass_on_and_off(self):
        # the acceptance-criteria circuit: 32-bit ripple-carry adder,
        # one input pulsing, against the monolithic engine
        c, _ = build_ripple_carry_adder(FAM, 32, a_value=3, b_value=5)
        for el in c.elements:
            if el.name == "va0":
                el.waveform = Pulse(v1=0.0, v2=FAM.vdd, delay=2e-12,
                                    rise=1e-12, fall=1e-12,
                                    width=6e-12, period=1.0)
        x0 = robust_dc_solve(c)
        ds_mono = transient(c, tstop=1e-11, dt=5e-13, x0=x0,
                            record_currents=False)

        def rerun(**kwargs):
            c2, _ = build_ripple_carry_adder(FAM, 32, a_value=3,
                                             b_value=5)
            for el in c2.elements:
                if el.name == "va0":
                    el.waveform = Pulse(v1=0.0, v2=FAM.vdd,
                                        delay=2e-12, rise=1e-12,
                                        fall=1e-12, width=6e-12,
                                        period=1.0)
            return transient(c2, tstop=1e-11, dt=5e-13, x0=x0,
                             record_currents=False, partition="auto",
                             **kwargs)

        stats = {}
        ds_byp = rerun(stats=stats)
        assert stats["partition_block_steps_bypassed"] > 0
        assert _max_trace_err(ds_mono, ds_byp) < 5e-6
        ds_exact = rerun(bypass_tol=0.0)
        assert _max_trace_err(ds_mono, ds_exact) < 1e-9

    def test_ring3_auto_degenerates_to_monolithic(self):
        # The 3-stage ring is one connectivity cluster with no private
        # nodes: "auto" must detect the degenerate partition and run
        # the monolithic engine, bit-identically.
        c, nodes = build_ring_oscillator(FAM, 3)
        x0 = np.zeros(c.dimension())
        x0[c.node_index[nodes[0]]] = FAM.vdd
        ds_mono = transient(c, tstop=2e-11, dt=2e-13, x0=x0,
                            record_currents=False)
        c2, _ = build_ring_oscillator(FAM, 3)
        ds_part = transient(c2, tstop=2e-11, dt=2e-13, x0=x0,
                            record_currents=False, partition="auto")
        assert _max_trace_err(ds_mono, ds_part) == 0.0

    def test_ring9_all_interface_partition_matches(self):
        # Forcing tiny blocks on a ring makes every node a boundary
        # node and every element an interface element — the Schur
        # system then IS the global system, and the partitioned solve
        # must track the monolithic one through a genuinely switching
        # (oscillating) transient.
        c, nodes = build_ring_oscillator(FAM, 9)
        part = partition_circuit(c, max_block=4)
        assert len(part.blocks) == 0
        assert part.gamma.size == c.dimension()
        x0 = np.zeros(c.dimension())
        x0[c.node_index[nodes[0]]] = FAM.vdd
        ds_mono = transient(c, tstop=2e-11, dt=2e-13, x0=x0,
                            record_currents=False)
        c2, _ = build_ring_oscillator(FAM, 9)
        part2 = partition_circuit(c2, max_block=4)
        ds_part = transient(c2, tstop=2e-11, dt=2e-13, x0=x0,
                            record_currents=False, partition=part2)
        assert _max_trace_err(ds_mono, ds_part) < 1e-8

    def test_partition_for_wrong_circuit_rejected(self):
        part = partition_circuit(_rca8())
        with pytest.raises(ParameterError):
            transient(_rca8(), tstop=1e-12, dt=1e-12, partition=part,
                      record_currents=False)


class TestCouplingModes:
    def _dc_parity(self, coupling: str) -> "PartitionedAssembler":
        c = _rca8(pulse=False)
        x_ref = robust_dc_solve(c)
        asm = PartitionedAssembler(c, coupling=coupling)
        # start a few mV off the operating point so Newton has real
        # work to do without needing the gmin-stepping scaffolding
        x = newton_solve(c, x_ref + 5e-3, NewtonOptions(),
                         assembler=asm)
        assert float(np.max(np.abs(x - x_ref))) < 1e-6
        return asm

    def test_schur_dc_parity(self):
        self._dc_parity("schur")

    def test_relax_dc_parity(self):
        asm = self._dc_parity("relax")
        # the sweeps actually ran (escalation would also be a converged
        # answer; the counter proves the relaxation route was taken)
        assert asm.stats["relax_sweeps"] > 0

    def test_relax_transient_parity(self):
        # transient() always builds a Schur assembler, so exercise the
        # relaxation coupling by stepping the Newton loop directly.
        # Quiescent stimulus keeps the fixed-step grid breakpoint-free,
        # so both runs integrate over the same time axis.
        c = _rca8(pulse=False)
        x0 = robust_dc_solve(c)
        ds_mono = transient(c, tstop=5e-12, dt=5e-13, x0=x0,
                            record_currents=False)
        c2 = _rca8(pulse=False)
        asm = PartitionedAssembler(c2, partition_circuit(c2),
                                   coupling="relax")
        x = x0.copy()
        t = 0.0
        for _ in range(10):
            t += 5e-13
            x = newton_solve(c2, x, NewtonOptions(), analysis="tran",
                             time=t, dt=5e-13, x_prev=x, method="trap",
                             assembler=asm)
        worst = 0.0
        for name, idx in c2.node_index.items():
            key = f"v({name})"
            if key in ds_mono:
                worst = max(worst, abs(x[idx] - ds_mono.trace(key)[10]))
        assert worst < 5e-4


class TestBypassSemantics:
    def test_quiescent_run_bypasses_and_matches(self):
        c = _rca8(pulse=False)
        x0 = robust_dc_solve(c)
        ds_mono = transient(c, tstop=2e-11, dt=5e-13, x0=x0,
                            record_currents=False)
        c2 = _rca8(pulse=False)
        stats = {}
        ds_part = transient(c2, tstop=2e-11, dt=5e-13, x0=x0,
                            record_currents=False, partition="auto",
                            stats=stats)
        total = stats["partition_block_steps_bypassed"] \
            + stats["partition_block_steps_active"]
        assert stats["partition_block_steps_bypassed"] > 0.8 * total
        assert stats["partition_interface_solve_reuses"] > 0
        assert _max_trace_err(ds_mono, ds_part) < 5e-6

    def test_negative_bypass_tol_rejected(self):
        c = _rca8()
        with pytest.raises(ParameterError):
            transient(c, tstop=1e-12, dt=1e-12, partition="auto",
                      bypass_tol=-1.0, record_currents=False)
