"""Markdown link checker for ``docs/`` and the README.

Keeps the documentation set from rotting: every relative link must
resolve to a real file (with an existing anchor-less target), every
page in ``docs/`` must be reachable from ``docs/index.md``, and the
README must link into the docs set.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _markdown_files():
    return sorted(DOCS.glob("*.md")) + [REPO / "README.md"]


def _links(path: Path):
    for match in _LINK.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        yield target.split("#", 1)[0]


@pytest.mark.parametrize("page", _markdown_files(),
                         ids=lambda p: str(p.relative_to(REPO)))
def test_relative_links_resolve(page):
    broken = []
    for target in _links(page):
        if not target:
            continue  # pure-anchor link
        if not (page.parent / target).exists():
            broken.append(target)
    assert not broken, f"{page.name}: broken links {broken}"


def test_every_docs_page_reachable_from_index():
    index = DOCS / "index.md"
    linked = {str((index.parent / t).resolve())
              for t in _links(index) if t}
    missing = [p.name for p in DOCS.glob("*.md")
               if p.name != "index.md" and str(p.resolve()) not in linked]
    assert not missing, (
        f"docs pages not linked from index.md: {missing}"
    )


def test_readme_links_into_docs():
    targets = set(_links(REPO / "README.md"))
    assert "docs/index.md" in targets, (
        "README must link to docs/index.md"
    )


def test_expected_docs_pages_exist():
    expected = {"index.md", "architecture.md", "transient.md",
                "characterization.md", "codegen.md", "variability.md"}
    present = {p.name for p in DOCS.glob("*.md")}
    assert expected <= present, expected - present
