"""Kernel-tier resolution, parity across tiers, and worker sharding.

The compiled tier (numba or the ctypes/C fallback) must be a pure
performance change: the numpy tier is the reference, the compiled
loops must agree with it to float noise at the kernel level
(``<= 1e-12`` V on the stacked-VSC solve — the same gate ``make
bench`` enforces) and to Newton-convergence noise at the engine
level.  The sharding helpers must be pure orchestration: same
results, any worker count.
"""

import os

import numpy as np
import pytest

from repro.circuit.logic import LogicFamily, build_ring_oscillator
from repro.circuit.mna import NewtonOptions, robust_dc_solve
from repro.circuit.transient import initial_conditions_from_op, transient
from repro.errors import ParameterError
from repro.experiments.workloads import default_device_parameters
from repro.parallel import WORKERS_ENV, fork_map, resolve_workers
from repro.pwl.device import CNFET
from repro.pwl.kernels import (
    active_kernel_backend,
    compiled_backend_available,
    resolve_kernel_backend,
    set_kernel_backend,
    using_kernels,
)

KERNEL_PARITY_TOL_V = 1e-12     # stacked-VSC solve, numpy vs compiled
WAVEFORM_PARITY_TOL_V = 1e-9    # engine level: Newton-convergence noise

TIGHT = NewtonOptions(vtol=1e-12, reltol=1e-10)

#: characterization metrics agree within the LTE tolerance of the
#: adaptive transients when the batch grouping changes (tiers flip
#: step-acceptance decisions, tiles change the shared pulse
#: envelope); the energy integral is the noisiest of the three.
_ARC_RTOL = {"delay": 5e-2, "out_slew": 5e-2, "energy": 0.35}


def _assert_arcs_close(got, ref):
    for key, arcs in ref["arcs"].items():
        for metric, rows in arcs.items():
            np.testing.assert_allclose(
                got["arcs"][key][metric], rows,
                rtol=_ARC_RTOL[metric], atol=1e-18,
                err_msg=f"{key}.{metric}")


def _require_compiled():
    if not compiled_backend_available():
        pytest.skip("no compiled kernel tier (numba absent and no "
                    "working C compiler)")


@pytest.fixture(params=["numpy", "compiled"])
def tier(request):
    """Run the decorated test under each kernel tier in turn."""
    if request.param == "compiled":
        _require_compiled()
    with using_kernels(request.param):
        yield request.param


@pytest.fixture(scope="module")
def family():
    return LogicFamily.default(vdd=0.6)


def _ring_waveforms(family, options=TIGHT):
    ring, nodes = build_ring_oscillator(family, stages=3)
    x0 = initial_conditions_from_op(ring, {"n0": 0.0, "n1": 0.6},
                                    options)
    ds = transient(ring, tstop=6e-11, dt=2e-12, x0=x0, method="be",
                   options=options, record_currents=False)
    return np.stack([ds.trace(f"v({n})") for n in nodes])


class TestResolution:
    def test_numpy_tier_resolves(self):
        backend = resolve_kernel_backend("numpy")
        assert type(backend).__name__ == "NumpyKernelBackend"
        # The reference tier is a process-wide singleton.
        assert resolve_kernel_backend("numpy") is backend

    def test_unknown_spec_raises(self):
        with pytest.raises(ParameterError):
            resolve_kernel_backend("fortran")
        with pytest.raises(ParameterError):
            resolve_kernel_backend(42)

    def test_instance_passes_through(self):
        backend = resolve_kernel_backend("numpy")
        assert resolve_kernel_backend(backend) is backend

    def test_env_forces_numpy_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        assert type(resolve_kernel_backend(None)).__name__ == \
            "NumpyKernelBackend"
        assert type(resolve_kernel_backend("auto")).__name__ == \
            "NumpyKernelBackend"

    def test_env_ignored_by_explicit_spec(self, monkeypatch):
        _require_compiled()
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        backend = resolve_kernel_backend("compiled")
        assert type(backend).__name__ != "NumpyKernelBackend"

    def test_using_kernels_restores_active(self):
        before = active_kernel_backend()
        with using_kernels("numpy") as backend:
            assert active_kernel_backend() is backend
        assert active_kernel_backend() is before

    def test_set_kernel_backend_returns_active(self):
        before = active_kernel_backend()
        try:
            assert set_kernel_backend("numpy") is \
                active_kernel_backend()
        finally:
            set_kernel_backend(before)


class TestKernelParity:
    """The compiled loops against the numpy reference, kernel level."""

    def test_stacked_vsc_dense_grid(self):
        _require_compiled()
        devices = [CNFET(default_device_parameters(), model=m)
                   for m in ("model1", "model2")]
        from repro.pwl.batch import StackedVscSolver

        def sweep(spec):
            stacked = StackedVscSolver([d.solver for d in devices])
            hint = np.zeros(stacked.n_lanes)
            rows = []
            with using_kernels(spec):
                for vg in np.linspace(0.0, 0.6, 13):
                    for vd in np.linspace(0.0, 0.6, 13):
                        rows.append(stacked.solve(
                            np.full(stacked.n_lanes, vg),
                            np.full(stacked.n_lanes, vd),
                            hint).copy())
            return np.stack(rows)

        dv = np.max(np.abs(sweep("numpy") - sweep("compiled")))
        assert dv <= KERNEL_PARITY_TOL_V

    def test_triplet_append_bitwise(self):
        _require_compiled()
        rng = np.random.default_rng(3)
        m_idx = rng.integers(0, 120, size=200)
        m_val = rng.standard_normal(200)
        results = []
        for spec in ("numpy", "compiled"):
            out_idx = np.zeros(256, dtype=m_idx.dtype)
            out_val = np.zeros(256)
            kept = resolve_kernel_backend(spec).triplet_append(
                m_idx, m_val, 100, out_idx, out_val, 7)
            results.append((kept, out_idx.copy(), out_val.copy()))
        assert results[0][0] == results[1][0]
        assert np.array_equal(results[0][1], results[1][1])
        assert np.array_equal(results[0][2], results[1][2])

    def test_scatter_accum_close(self):
        _require_compiled()
        rng = np.random.default_rng(4)
        base = rng.standard_normal(64)
        map_idx = rng.integers(0, 64, size=400)
        values = rng.standard_normal(400)
        outs = [np.asarray(resolve_kernel_backend(spec).scatter_accum(
            base, map_idx, values)) for spec in ("numpy", "compiled")]
        # Accumulation order may differ between the tiers; float noise
        # only.
        np.testing.assert_allclose(outs[0], outs[1], rtol=0, atol=1e-12)


@pytest.mark.slow
class TestEngineParity:
    """DC / transient / batch / characterize under both tiers."""

    def test_dc_parity(self, family, tier):
        ring, _nodes = build_ring_oscillator(family, stages=3)
        x = robust_dc_solve(ring, None, TIGHT, backend="sparse")
        with using_kernels("numpy"):
            ref = robust_dc_solve(ring, None, TIGHT, backend="sparse")
        if tier == "numpy":
            assert np.array_equal(x, ref)
        else:
            np.testing.assert_allclose(x, ref, rtol=0,
                                       atol=WAVEFORM_PARITY_TOL_V)

    def test_transient_parity(self, family, tier):
        waves = _ring_waveforms(family)
        with using_kernels("numpy"):
            ref = _ring_waveforms(family)
        if tier == "numpy":
            # The numpy tier is the historical code verbatim:
            # byte-identical waveforms, not merely close.
            assert np.array_equal(waves, ref)
        else:
            assert np.max(np.abs(waves - ref)) <= WAVEFORM_PARITY_TOL_V

    def test_batch_transient_parity(self, family, tier):
        from repro.circuit.batch_sim import batch_transient

        circuits, all_nodes = [], []
        for _ in range(3):
            ring, nodes = build_ring_oscillator(family, stages=3)
            circuits.append(ring)
            all_nodes.append(nodes)
        x0 = np.zeros((3, circuits[0].dimension()))
        for lane, ring in enumerate(circuits):
            ring.dimension()            # populates the node index
            x0[lane, ring.node_index[all_nodes[lane][1]]] = 0.6

        def run():
            result = batch_transient(circuits, 3e-11, dt=2e-12,
                                     method="be", options=TIGHT,
                                     x0=x0.copy(),
                                     record_currents=False)
            return np.stack([
                np.stack([result[lane].trace(f"v({n})")
                          for n in all_nodes[lane]])
                for lane in range(3)
            ])

        waves = run()
        with using_kernels("numpy"):
            ref = run()
        if tier == "numpy":
            assert np.array_equal(waves, ref)
        else:
            assert np.max(np.abs(waves - ref)) <= WAVEFORM_PARITY_TOL_V

    def test_characterize_parity(self, family, tier):
        from repro.characterize import characterize_gate

        def table():
            result = characterize_gate(
                family, "inverter", loads=(1e-17, 4e-17),
                slews=(1e-12, 4e-12))
            return result.to_json_dict()

        got = table()
        with using_kernels("numpy"):
            ref = table()
        if tier == "numpy":
            assert got == ref
        else:
            _assert_arcs_close(got, ref)


class TestRefactorLane:
    """The frozen-pivot LU refactorization behind ``factorize_csc``."""

    @staticmethod
    def _random_csc(n, rng):
        dense = np.eye(n) * (2.0 + rng.random(n))
        for _ in range(4 * n):
            i, j = rng.integers(0, n, size=2)
            dense[i, j] += rng.standard_normal() * 0.3
        from scipy.sparse import csc_matrix
        matrix = csc_matrix(dense)
        return (matrix.data.copy(), matrix.indices.astype(np.int64),
                matrix.indptr.astype(np.int64), dense)

    def test_replay_matches_direct_solve(self):
        _require_compiled()
        pytest.importorskip("scipy")
        from repro.circuit.solvers import SparseBackend

        rng = np.random.default_rng(11)
        n = 40
        data, indices, indptr, dense = self._random_csc(n, rng)
        rhs = rng.standard_normal(n)
        backend = SparseBackend()
        with using_kernels("compiled"):
            lu = backend.factorize_csc(n, data, indices, indptr)
            assert type(lu).__name__ == "_RefactorLU"
            x = lu.solve(rhs)
            np.testing.assert_allclose(dense @ x, rhs, rtol=0,
                                       atol=1e-9 * np.abs(rhs).max())
            # Same pattern, perturbed values: the numeric replay path
            # (no fresh symbolic factorization).
            refreshes = lu.sym.refreshes
            data2 = data * (1.0 + 1e-3 * rng.standard_normal(data.size))
            lu2 = backend.factorize_csc(n, data2, indices, indptr)
            assert lu2.sym.refreshes == refreshes
            x2 = lu2.solve(rhs)
            dense2 = np.zeros_like(dense)
            for col in range(n):
                dense2[indices[indptr[col]:indptr[col + 1]], col] = \
                    data2[indptr[col]:indptr[col + 1]]
            np.testing.assert_allclose(dense2 @ x2, rhs, rtol=0,
                                       atol=1e-9 * np.abs(rhs).max())

    def test_numpy_tier_takes_plain_superlu(self):
        pytest.importorskip("scipy")
        from repro.circuit.solvers import SparseBackend

        rng = np.random.default_rng(12)
        n = 20
        data, indices, indptr, dense = self._random_csc(n, rng)
        backend = SparseBackend()
        with using_kernels("numpy"):
            lu = backend.factorize_csc(n, data, indices, indptr)
        assert type(lu).__name__ != "_RefactorLU"
        rhs = rng.standard_normal(n)
        np.testing.assert_allclose(dense @ lu.solve(rhs), rhs, rtol=0,
                                   atol=1e-9 * np.abs(rhs).max())

    def test_singular_matrix_raises_analysis_error(self):
        _require_compiled()
        pytest.importorskip("scipy")
        from repro.circuit.solvers import SparseBackend
        from repro.errors import AnalysisError

        rng = np.random.default_rng(13)
        n = 10
        data, indices, indptr, _dense = self._random_csc(n, rng)
        backend = SparseBackend()
        with using_kernels("compiled"):
            with pytest.raises(AnalysisError):
                backend.factorize_csc(n, np.zeros_like(data), indices,
                                      indptr)


class TestWorkers:
    def test_resolve_workers_specs(self):
        assert resolve_workers(3) == 3
        assert resolve_workers("3") == 3
        auto = resolve_workers(None)
        assert auto == (os.cpu_count() or 1)
        assert resolve_workers(0) == auto
        assert resolve_workers("auto") == auto

    def test_resolve_workers_env_override(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(None) == 5
        assert resolve_workers("auto") == 5
        assert resolve_workers(2) == 2        # explicit beats env
        monkeypatch.setenv(WORKERS_ENV, "zero")
        with pytest.raises(ParameterError):
            resolve_workers(None)
        monkeypatch.setenv(WORKERS_ENV, "0")
        with pytest.raises(ParameterError):
            resolve_workers(None)

    def test_resolve_workers_rejects_bad_specs(self):
        for bad in (-1, "none", 1.5):
            with pytest.raises(ParameterError):
                resolve_workers(bad)

    def test_fork_map_matches_serial(self):
        items = list(range(23))
        assert fork_map(lambda x: x * x, items, workers=4) == \
            [x * x for x in items]

    def test_fork_map_serial_when_one_worker(self):
        calls = []

        def fn(x):
            calls.append(x)          # visible only when run in-process
            return -x

        assert fork_map(fn, [1, 2, 3], workers=1) == [-1, -2, -3]
        assert calls == [1, 2, 3]

    def test_fork_map_inherits_parent_state(self):
        if "fork" not in __import__("multiprocessing") \
                .get_all_start_methods():
            pytest.skip("no fork on this platform")
        big = np.arange(1000)

        def fn(i):
            return int(big[i])       # closure over parent memory

        assert fork_map(fn, [0, 500, 999], workers=2) == [0, 500, 999]

    def test_fork_map_propagates_exceptions(self):
        def fn(x):
            if x == 2:
                raise ValueError("boom")
            return x

        with pytest.raises(ValueError):
            fork_map(fn, [1, 2, 3], workers=2)

    def test_nested_fork_map_degrades_to_serial(self):
        def inner(x):
            return x + 1

        def outer(xs):
            return fork_map(inner, xs, workers=4)

        assert fork_map(outer, [[1, 2], [3]], workers=2) == \
            [[2, 3], [4]]


@pytest.mark.slow
class TestShardedCampaign:
    def test_campaign_workers_match_serial(self, tmp_path):
        from repro.variability.campaign import (
            Campaign,
            CampaignConfig,
            DeviceMetricsEvaluator,
        )
        from repro.variability.params import default_device_space

        space = default_device_space()
        config = CampaignConfig(name="t", n_samples=32, seed=5,
                                sampler="mc", chunk_size=8)

        serial = Campaign(config, space,
                          DeviceMetricsEvaluator(space)).run(workers=1)
        sharded_dir = tmp_path / "run"
        sharded = Campaign(config, space, DeviceMetricsEvaluator(space),
                           run_dir=sharded_dir).run(workers=2)
        assert len(serial.records) == len(sharded.records) == 32
        for a, b in zip(serial.records, sharded.records):
            for metric, value in a["metrics"].items():
                # Forked chunks build their own evaluator memo, so
                # identical devices may converge from different warm
                # starts — float noise, not a numerics change.
                assert value == pytest.approx(b["metrics"][metric],
                                              rel=1e-9)
        # The sharded run dir must stay resume-compatible.
        resumed = Campaign(config, space, DeviceMetricsEvaluator(space),
                           run_dir=sharded_dir).run(workers=2)
        assert resumed.resumed_chunks == 4
        assert resumed.computed_chunks == 0

    def test_characterize_tiles_match_single_batch(self, family):
        from repro.characterize import characterize_gate

        tables = [
            characterize_gate(family, "inverter", loads=(1e-17, 4e-17),
                              slews=(1e-12, 4e-12),
                              workers=workers).to_json_dict()
            for workers in (1, 2)
        ]
        # Each tile computes its own shared pulse envelope: agreement
        # is within the LTE tolerance of the transients, the
        # batch-vs-scalar contract.
        _assert_arcs_close(tables[1], tables[0])
