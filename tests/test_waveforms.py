"""Source waveforms (SPICE semantics)."""

import pytest

from repro.circuit.waveforms import DC, Pulse, PWLWaveform, Sine
from repro.errors import ParameterError


class TestDC:
    def test_constant(self):
        w = DC(1.5)
        assert w.value(0.0) == 1.5
        assert w.value(1e9) == 1.5
        assert w.dc_value() == 1.5


class TestPulse:
    w = Pulse(0.0, 1.0, delay=1e-9, rise=1e-10, fall=2e-10,
              width=1e-9, period=4e-9)

    def test_before_delay(self):
        assert self.w.value(0.5e-9) == 0.0

    def test_mid_rise(self):
        assert self.w.value(1e-9 + 0.5e-10) == pytest.approx(0.5)

    def test_flat_top(self):
        assert self.w.value(1e-9 + 1e-10 + 0.5e-9) == 1.0

    def test_mid_fall(self):
        t = 1e-9 + 1e-10 + 1e-9 + 1e-10
        assert self.w.value(t) == pytest.approx(0.5)

    def test_periodicity(self):
        t = 1e-9 + 0.5e-10
        assert self.w.value(t + 4e-9) == pytest.approx(self.w.value(t))

    def test_dc_value_is_v1(self):
        assert self.w.dc_value() == 0.0

    def test_zero_rise_is_step(self):
        w = Pulse(0.0, 1.0, rise=0.0, fall=0.0, width=1e-9, period=2e-9)
        assert w.value(1e-15) == 1.0

    @pytest.mark.parametrize("kwargs", [
        dict(rise=-1e-12), dict(period=0.0),
        dict(rise=1e-9, width=1e-9, fall=1e-9, period=2e-9),
    ])
    def test_validation(self, kwargs):
        base = dict(v1=0.0, v2=1.0)
        base.update(kwargs)
        with pytest.raises(ParameterError):
            Pulse(**base)


class TestSine:
    def test_offset_before_delay(self):
        w = Sine(0.5, 0.2, 1e6, delay=1e-6)
        assert w.value(0.0) == 0.5

    def test_quarter_period_peak(self):
        w = Sine(0.0, 1.0, 1e6)
        assert w.value(0.25e-6) == pytest.approx(1.0, abs=1e-9)

    def test_damping(self):
        w = Sine(0.0, 1.0, 1e6, damping=1e6)
        assert abs(w.value(2.25e-6)) < 1.0 * 0.2

    def test_validation(self):
        with pytest.raises(ParameterError):
            Sine(0.0, 1.0, 0.0)


class TestPWL:
    w = PWLWaveform(((0.0, 0.0), (1e-9, 1.0), (2e-9, 0.5)))

    def test_interpolation(self):
        assert self.w.value(0.5e-9) == pytest.approx(0.5)
        assert self.w.value(1.5e-9) == pytest.approx(0.75)

    def test_clamping(self):
        assert self.w.value(-1.0) == 0.0
        assert self.w.value(10.0) == 0.5

    def test_from_pairs(self):
        w = PWLWaveform.from_pairs([0.0, 0.0, 1e-9, 1.0])
        assert w.value(0.5e-9) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ParameterError):
            PWLWaveform(((0.0, 0.0),))
        with pytest.raises(ParameterError):
            PWLWaveform(((1.0, 0.0), (0.0, 1.0)))
        with pytest.raises(ParameterError):
            PWLWaveform.from_pairs([0.0, 1.0, 2.0])
