"""CNFET logic builders: inverter, NAND, ring oscillator."""

import numpy as np
import pytest

from repro.circuit import dc_sweep, operating_point
from repro.circuit.logic import (
    LogicFamily,
    build_inverter,
    build_nand2,
    build_ring_oscillator,
)
from repro.circuit.transient import initial_conditions_from_op, transient
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def family():
    return LogicFamily.default(vdd=0.6)


class TestInverter:
    def test_rails(self, family):
        circuit, _in, out = build_inverter(family)
        ds = dc_sweep(circuit, "vin_src", [0.0, 0.6])
        v = ds.voltage(out)
        assert v[0] == pytest.approx(0.6, abs=0.02)
        assert v[1] == pytest.approx(0.0, abs=0.02)

    def test_vtc_monotone_with_gain(self, family):
        circuit, _in, out = build_inverter(family)
        sweep = np.linspace(0.0, 0.6, 25)
        ds = dc_sweep(circuit, "vin_src", sweep)
        v = ds.voltage(out)
        assert np.all(np.diff(v) <= 1e-6)
        # Max small-signal gain well above 1 (regenerative logic).
        gain = np.max(-np.gradient(v, sweep))
        assert gain > 2.0

    def test_switching_threshold_near_mid_rail(self, family):
        circuit, _in, out = build_inverter(family)
        sweep = np.linspace(0.0, 0.6, 61)
        ds = dc_sweep(circuit, "vin_src", sweep)
        crossings = ds.crossings(f"v({out})", 0.3)
        assert len(crossings) == 1
        assert 0.15 < crossings[0] < 0.45


class TestNand:
    @pytest.mark.parametrize("a,b,expect_high", [
        (0.0, 0.0, True), (0.0, 0.6, True), (0.6, 0.0, True),
        (0.6, 0.6, False),
    ])
    def test_truth_table(self, family, a, b, expect_high):
        circuit, out = build_nand2(family, a, b)
        op = operating_point(circuit)
        v = op.voltage(out)
        if expect_high:
            assert v > 0.5
        else:
            assert v < 0.1


class TestRingOscillator:
    def test_stage_count_validation(self, family):
        with pytest.raises(ParameterError):
            build_ring_oscillator(family, stages=4)
        with pytest.raises(ParameterError):
            build_ring_oscillator(family, stages=1)

    def test_oscillation(self, family):
        ring, nodes = build_ring_oscillator(family, stages=3)
        x0 = initial_conditions_from_op(ring, {"n0": 0.0, "n1": 0.6})
        ds = transient(ring, tstop=1e-10, dt=2e-12, x0=x0, method="be")
        period = ds.period_estimate(f"v({nodes[0]})", 0.3)
        assert 1e-12 < period < 5e-11
        assert ds.swing(f"v({nodes[0]})") > 0.25

    def test_stage_outputs_phase_shifted(self, family):
        ring, nodes = build_ring_oscillator(family, stages=3)
        x0 = initial_conditions_from_op(ring, {"n0": 0.0, "n1": 0.6})
        ds = transient(ring, tstop=6e-11, dt=2e-12, x0=x0, method="be")
        v0 = ds.voltage(nodes[0])
        v1 = ds.voltage(nodes[1])
        # Distinct waveforms (not stuck at the metastable point).
        assert float(np.max(np.abs(v0 - v1))) > 0.2

    def test_overrides_validation(self, family):
        ring, _nodes = build_ring_oscillator(family, stages=3)
        with pytest.raises(ParameterError):
            initial_conditions_from_op(ring, {"ghost": 0.0})
