"""Adaptive transient engine: LTE control, breakpoints, mode rules."""

import math

import numpy as np
import pytest

from repro.circuit import (
    Capacitor,
    Circuit,
    NewtonOptions,
    Resistor,
    VoltageSource,
    transient,
)
from repro.circuit.waveforms import DC, Pulse, PWLWaveform, Sine
from repro.errors import ParameterError


def rc_pulse(delay=1e-9, rise=1e-12, tau_r=1000.0, tau_c=1e-12) -> Circuit:
    c = Circuit("rc")
    c.add(VoltageSource("v1", "in", "0",
                        Pulse(0.0, 1.0, delay=delay, rise=rise,
                              width=1e-6, period=2e-6)))
    c.add(Resistor("r1", "in", "out", tau_r))
    c.add(Capacitor("c1", "out", "0", tau_c))
    return c


class TestModeSelection:
    def test_dt_selects_fixed_mode(self):
        ds = transient(rc_pulse(delay=0.0), tstop=1e-9, dt=1e-11)
        # Uniform grid (plus the exact landing on the 1 ps edge end).
        assert ds.axis[-1] == pytest.approx(1e-9)

    def test_omitting_dt_selects_adaptive(self):
        stats = {}
        transient(rc_pulse(), tstop=2e-9, stats=stats)
        assert "dt_smallest" in stats and "dt_largest" in stats
        assert stats["dt_largest"] > stats["dt_smallest"]

    def test_adaptive_flag_overrides_dt(self):
        stats = {}
        transient(rc_pulse(), tstop=2e-9, dt=1e-11, adaptive=True,
                  stats=stats)
        # dt seeds the initial step but the controller takes over.
        assert "rejected_lte" in stats or stats["dt_largest"] > 1e-11

    def test_fixed_mode_requires_dt(self):
        with pytest.raises(ParameterError):
            transient(rc_pulse(), tstop=1e-9, adaptive=False)


class TestMaxHalvingsContract:
    """max_halvings is fixed-step-only; the adaptive controller owns
    rejection (the ISSUE 3 'silently ignored' fix)."""

    def test_max_halvings_rejected_in_adaptive_mode(self):
        with pytest.raises(ParameterError, match="max_halvings"):
            transient(rc_pulse(), tstop=1e-9, max_halvings=4)

    def test_adaptive_options_rejected_in_fixed_mode(self):
        for kwargs in ({"rtol": 1e-3}, {"atol": 1e-6},
                       {"dt_min": 1e-15}, {"dt_max": 1e-10}):
            with pytest.raises(ParameterError):
                transient(rc_pulse(), tstop=1e-9, dt=1e-11, **kwargs)

    def test_fixed_mode_halving_still_works(self):
        # The legacy path with explicit max_halvings stays available.
        ds = transient(rc_pulse(delay=0.0), tstop=1e-9, dt=1e-11,
                       max_halvings=2)
        assert ds.at("v(out)", 1e-9) == pytest.approx(
            1.0 - math.exp(-1.0), abs=0.02)

    def test_adaptive_tolerance_validation(self):
        with pytest.raises(ParameterError):
            transient(rc_pulse(), tstop=1e-9, rtol=0.0, atol=0.0)
        with pytest.raises(ParameterError):
            transient(rc_pulse(), tstop=1e-9, dt_min=1e-10, dt_max=1e-12)


class TestBreakpointLanding:
    """A PULSE edge strictly between two natural steps must be hit
    exactly — no edge smearing — in both stepping modes."""

    DELAY = 3.3e-12   # deliberately NOT a multiple of any natural step
    RISE = 0.7e-12

    def _edges(self):
        return (self.DELAY, self.DELAY + self.RISE)

    def test_fixed_mode_lands_on_pulse_edges(self):
        c = rc_pulse(delay=self.DELAY, rise=self.RISE)
        ds = transient(c, tstop=2e-11, dt=1e-12)
        for edge in self._edges():
            assert np.any(ds.axis == edge), f"edge {edge} missed"

    def test_adaptive_mode_lands_on_pulse_edges(self):
        c = rc_pulse(delay=self.DELAY, rise=self.RISE)
        stats = {}
        ds = transient(c, tstop=2e-11, stats=stats)
        for edge in self._edges():
            assert np.any(ds.axis == edge), f"edge {edge} missed"
        assert stats["breakpoints_hit"] >= 2

    def test_fixed_mode_resumes_cadence_after_edge(self):
        c = rc_pulse(delay=self.DELAY, rise=self.RISE)
        ds = transient(c, tstop=2e-11, dt=1e-12)
        # After the last edge the engine marches at dt again.
        after = ds.axis[ds.axis > self.DELAY + self.RISE]
        assert len(after) >= 2
        assert np.diff(after)[1:-1] == pytest.approx(1e-12)

    def test_edge_sharpness_not_smeared(self):
        # The input trace must show the exact pre-edge value at the
        # edge start (fixed mode used to interpolate across it).
        c = rc_pulse(delay=self.DELAY, rise=self.RISE)
        ds = transient(c, tstop=2e-11, dt=1e-12)
        i = int(np.where(ds.axis == self.DELAY)[0][0])
        assert ds.trace("v(in)")[i] == pytest.approx(0.0, abs=1e-12)
        j = int(np.where(ds.axis == self.DELAY + self.RISE)[0][0])
        assert ds.trace("v(in)")[j] == pytest.approx(1.0, abs=1e-12)

    def test_pwl_corners_landed(self):
        c = Circuit("pwl")
        c.add(VoltageSource("v1", "in", "0", PWLWaveform((
            (0.0, 0.0), (1.1e-12, 0.0), (2.3e-12, 1.0), (9e-12, 1.0)))))
        c.add(Resistor("r1", "in", "0", 1000.0))
        ds = transient(c, tstop=5e-12, dt=1e-12)
        for corner in (1.1e-12, 2.3e-12):
            assert np.any(ds.axis == corner)

    def test_sine_delay_landed(self):
        c = Circuit("sine")
        c.add(VoltageSource("v1", "in", "0",
                            Sine(0.0, 0.5, 1e9, delay=0.35e-9)))
        c.add(Resistor("r1", "in", "0", 1000.0))
        ds = transient(c, tstop=2e-9, dt=1e-10)
        assert np.any(ds.axis == 0.35e-9)

    def test_breakpoint_sliver_below_dt_min_still_lands(self):
        # An edge closer to the last accepted step than dt_min forces
        # an irreducible sliver step; the engine must accept it and
        # land exactly rather than stalling at the "floor".
        c = rc_pulse(delay=2.5e-12, rise=0.4e-12)
        ds = transient(c, tstop=1e-11, adaptive=True,
                       dt_min=1e-12, dt_max=1e-12)
        edges = c.element("v1").waveform.breakpoints(0.0, 1e-11)[:2]
        assert len(edges) == 2
        for edge in edges:
            assert np.any(ds.axis == edge), f"edge {edge} missed"
        assert ds.axis[-1] == pytest.approx(1e-11)

    def test_dc_sources_have_no_breakpoints(self):
        c = Circuit("dc")
        c.add(VoltageSource("v1", "in", "0", DC(1.0)))
        c.add(Resistor("r1", "in", "out", 1000.0))
        c.add(Capacitor("c1", "out", "0", 1e-12))
        stats = {}
        transient(c, tstop=1e-9, dt=1e-11, stats=stats)
        assert "breakpoints_hit" not in stats


class TestAdaptiveAccuracy:
    def test_rc_charge_accurate(self):
        ds = transient(rc_pulse(delay=1e-10, rise=1e-14), tstop=4e-9)
        tau = 1e-9
        for t_probe in (1e-9, 2e-9, 3e-9):
            expected = 1.0 - math.exp(-(t_probe - 1e-10) / tau)
            assert ds.at("v(out)", t_probe) == pytest.approx(
                expected, abs=0.01)

    def test_tighter_rtol_more_accurate(self):
        tau = 1e-9
        errs = {}
        for rtol in (3e-2, 1e-4):
            ds = transient(rc_pulse(delay=0.0, rise=1e-14), tstop=3e-9,
                           rtol=rtol, atol=1e-9)
            t = 2e-9
            errs[rtol] = abs(ds.at("v(out)", t)
                             - (1.0 - math.exp(-t / tau)))
        assert errs[1e-4] < errs[3e-2]

    def test_adaptive_beats_fixed_step_count_on_pulse(self):
        # Resolving the 1 ps edge with fixed steps needs ~tstop/1ps
        # steps; the adaptive engine refines near the edge only.
        c = rc_pulse(delay=1e-9, rise=1e-12)
        stats = {}
        transient(c, tstop=8e-9, stats=stats)
        fixed_equivalent = 8e-9 / 1e-12
        assert stats["steps"] < fixed_equivalent / 10

    def test_pinned_grid_matches_legacy_engine(self):
        """Forced onto the legacy grid, the adaptive engine reproduces
        the fixed-step waveform to Newton tolerance."""
        c1 = rc_pulse(delay=0.0)
        c2 = rc_pulse(delay=0.0)
        opts = NewtonOptions(vtol=1e-12, reltol=1e-10)
        fixed = transient(c1, tstop=1e-9, dt=1e-11, options=opts)
        pinned = transient(c2, tstop=1e-9, dt=1e-11, adaptive=True,
                           dt_min=1e-11, dt_max=1e-11, options=opts)
        assert np.array_equal(fixed.axis, pinned.axis)
        dv = np.abs(fixed.trace("v(out)") - pinned.trace("v(out)"))
        assert float(np.max(dv)) < 1e-9

    def test_be_method_supported(self):
        stats = {}
        ds = transient(rc_pulse(delay=0.0, rise=1e-14), tstop=3e-9,
                       method="be", stats=stats)
        assert ds.at("v(out)", 2e-9) == pytest.approx(
            1.0 - math.exp(-2.0), abs=0.02)

    def test_stats_accounting(self):
        stats = {}
        transient(rc_pulse(), tstop=4e-9, stats=stats)
        assert stats["steps"] > 0
        assert stats["solves"] >= stats["steps"]
        assert stats["iterations"] >= stats["solves"]
        assert stats["dt_smallest"] <= stats["dt_largest"] <= 4e-9 / 50


class TestExtraBreakpoints:
    def test_forced_points_are_landed_on(self):
        forced = [3.7e-10, 1.21e-9, 2.9e-9]
        ds = transient(rc_pulse(delay=0.0, rise=1e-12), tstop=4e-9,
                       extra_breakpoints=forced)
        for t in forced:
            assert np.min(np.abs(np.asarray(ds.axis) - t)) < 1e-20

    def test_fixed_mode_grid_gains_only_forced_points(self):
        forced = [3.3e-10]
        base = transient(rc_pulse(delay=0.0, rise=1e-12), tstop=1e-9,
                         dt=1e-10)
        ds = transient(rc_pulse(delay=0.0, rise=1e-12), tstop=1e-9,
                       dt=1e-10, extra_breakpoints=forced)
        assert len(ds.axis) == len(base.axis) + 1
        assert np.min(np.abs(np.asarray(ds.axis) - 3.3e-10)) < 1e-20

    def test_outside_range_ignored(self):
        ds = transient(rc_pulse(delay=0.0, rise=1e-12), tstop=1e-9,
                       dt=1e-10, extra_breakpoints=[-1e-10, 0.0, 5e-9])
        base = transient(rc_pulse(delay=0.0, rise=1e-12), tstop=1e-9,
                         dt=1e-10)
        assert len(ds.axis) == len(base.axis)
