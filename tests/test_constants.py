"""Physical-constant sanity and thermal-voltage helpers."""

import math

import pytest

from repro import constants


def test_thermal_voltage_300k():
    assert constants.thermal_voltage_ev(300.0) == pytest.approx(
        0.025852, rel=1e-3
    )


def test_thermal_voltage_scales_linearly():
    assert constants.thermal_voltage_ev(600.0) == pytest.approx(
        2.0 * constants.thermal_voltage_ev(300.0)
    )


@pytest.mark.parametrize("bad", [0.0, -1.0, -300.0])
def test_thermal_voltage_rejects_nonpositive(bad):
    with pytest.raises(ValueError):
        constants.thermal_voltage_ev(bad)


def test_thermal_voltage_v_matches_ev():
    assert constants.thermal_voltage_v(273.0) == pytest.approx(
        constants.thermal_voltage_ev(273.0)
    )


def test_conductance_quantum():
    # 2 q^2/h ~ 77.5 uS
    assert constants.CONDUCTANCE_QUANTUM == pytest.approx(77.48e-6, rel=1e-3)


def test_ballistic_prefactor_magnitude():
    # 2 q k / (pi hbar) * 300 K ~ 4e-6 A (per unit F0 difference).
    value = constants.BALLISTIC_CURRENT_PREFACTOR * 300.0
    assert value == pytest.approx(4.0e-6, rel=0.05)


def test_lattice_relationship():
    assert constants.GRAPHENE_LATTICE_CONSTANT == pytest.approx(
        constants.CC_BOND_LENGTH * math.sqrt(3.0)
    )


def test_hbar_from_planck():
    assert constants.HBAR == pytest.approx(
        constants.PLANCK / (2.0 * math.pi)
    )
