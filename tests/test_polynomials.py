"""Closed-form polynomial solvers — the engine of the paper's speed-up."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ParameterError
from repro.pwl.polynomials import (
    polyder,
    polyval,
    real_roots,
    shift_polynomial,
    solve_cubic,
    solve_linear,
    solve_quadratic,
)

finite = st.floats(min_value=-1e3, max_value=1e3,
                   allow_nan=False, allow_infinity=False)


def test_polyval_horner():
    assert polyval([1.0, 2.0, 3.0], 2.0) == 1 + 4 + 12


def test_polyder():
    assert polyder([5.0, 1.0, 2.0, 3.0]) == [1.0, 4.0, 9.0]
    assert polyder([42.0]) == []


class TestLinear:
    def test_simple(self):
        assert solve_linear(-6.0, 2.0) == [3.0]

    def test_degenerate(self):
        assert solve_linear(1.0, 0.0) == []


class TestQuadratic:
    def test_two_roots_sorted(self):
        roots = solve_quadratic(-6.0, 1.0, 1.0)  # x^2 + x - 6
        assert roots == pytest.approx([-3.0, 2.0])

    def test_double_root(self):
        roots = solve_quadratic(4.0, -4.0, 1.0)  # (x-2)^2
        assert roots == pytest.approx([2.0])

    def test_no_real_roots(self):
        assert solve_quadratic(1.0, 0.0, 1.0) == []

    def test_cancellation_hardened(self):
        """Classic catastrophic-cancellation case: tiny root next to a
        huge one."""
        # (x - 1e-8)(x - 1e8) = x^2 - (1e8 + 1e-8) x + 1
        roots = solve_quadratic(1.0, -(1e8 + 1e-8), 1.0)
        assert roots[0] == pytest.approx(1e-8, rel=1e-6)
        assert roots[1] == pytest.approx(1e8, rel=1e-12)

    @given(finite, finite)
    def test_roots_satisfy_equation(self, r1, r2):
        c0, c1, c2 = r1 * r2, -(r1 + r2), 1.0
        scale = max(abs(c0), abs(c1), 1.0)
        for root in solve_quadratic(c0, c1, c2):
            assert abs(polyval([c0, c1, c2], root)) < 1e-7 * scale * scale


class TestCubic:
    def test_three_real_roots(self):
        # (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6
        roots = solve_cubic(-6.0, 11.0, -6.0, 1.0)
        assert roots == pytest.approx([1.0, 2.0, 3.0])

    def test_single_real_root(self):
        # x^3 + x + 1: one real root near -0.6823
        roots = solve_cubic(1.0, 1.0, 0.0, 1.0)
        assert len(roots) == 1
        assert roots[0] == pytest.approx(-0.6823278, abs=1e-6)

    def test_triple_root(self):
        # (x-2)^3 = x^3 - 6x^2 + 12x - 8
        roots = solve_cubic(-8.0, 12.0, -6.0, 1.0)
        assert roots == pytest.approx([2.0], abs=1e-7)

    def test_double_plus_single(self):
        # (x-1)^2 (x+2) = x^3 - 3x + 2
        roots = solve_cubic(2.0, -3.0, 0.0, 1.0)
        assert sorted(roots) == pytest.approx([-2.0, 1.0], abs=1e-7)

    def test_falls_back_to_quadratic(self):
        assert solve_cubic(-6.0, 1.0, 1.0, 0.0) == pytest.approx(
            [-3.0, 2.0]
        )

    @given(st.floats(-50, 50), st.floats(-50, 50), st.floats(-50, 50))
    def test_constructed_roots_recovered(self, r1, r2, r3):
        # Build monic cubic from chosen roots; all must be recovered.
        c2 = -(r1 + r2 + r3)
        c1 = r1 * r2 + r1 * r3 + r2 * r3
        c0 = -r1 * r2 * r3
        roots = solve_cubic(c0, c1, c2, 1.0)
        targets = sorted({round(r, 6) for r in (r1, r2, r3)})
        assert len(roots) >= 1
        # Clustered roots are ill-conditioned (~sqrt(eps) of the
        # coefficient scale), so the tolerance is generous.
        for target in targets:
            assert min(abs(target - r) for r in roots) < 1e-2 + 1e-3 * abs(
                target
            )

    @given(finite, finite, finite,
           st.floats(min_value=0.1, max_value=10.0))
    def test_roots_satisfy_equation(self, c0, c1, c2, c3):
        coeffs = [c0, c1, c2, c3]
        scale = max(abs(c) for c in coeffs)
        dcoeffs = polyder(coeffs)
        for root in solve_cubic(*coeffs):
            # Residual small relative to local polynomial magnitude.
            local = max(abs(polyval(dcoeffs, root)) * max(1.0, abs(root)),
                        scale)
            assert abs(polyval(coeffs, root)) < 1e-6 * local


class TestRealRoots:
    def test_degree_reduction_tolerance(self):
        # Leading coefficient negligible relative to the rest.
        roots = real_roots([-6.0, 1.0, 1.0, 1e-30])
        assert roots == pytest.approx([-3.0, 2.0])

    def test_all_zero(self):
        assert real_roots([0.0, 0.0]) == []

    def test_rejects_higher_degree(self):
        with pytest.raises(ParameterError):
            real_roots([1.0, 0.0, 0.0, 0.0, 1.0])

    def test_pads_short_inputs(self):
        assert real_roots([-4.0, 2.0]) == [2.0]


class TestShift:
    @given(finite, finite, finite, finite, st.floats(-5, 5), st.floats(-5, 5))
    def test_shift_identity(self, c0, c1, c2, c3, dx, x):
        coeffs = [c0, c1, c2, c3]
        shifted = shift_polynomial(coeffs, dx)
        expected = polyval(coeffs, x + dx)
        scale = max(1.0, max(abs(c) for c in coeffs)) * max(
            1.0, abs(x) + abs(dx)
        ) ** 3
        assert abs(polyval(shifted, x) - expected) < 1e-9 * scale

    def test_shift_zero_is_identity(self):
        coeffs = [1.0, -2.0, 0.5, 0.25]
        assert shift_polynomial(coeffs, 0.0) == coeffs
