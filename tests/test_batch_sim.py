"""Lane-batched engine: batch-vs-sequential parity suite.

The contract under test: every lane of a lock-step batch reproduces
the scalar engine's waveforms on the same grid to well below 1e-9 V —
across fixed and adaptive stepping, heterogeneous lane parameters,
early lane retirement and the per-lane scalar fallback — and the
stacked device-evaluation layer matches the scalar closed forms.
"""

import dataclasses

import numpy as np
import pytest

import repro.circuit.batch_sim as batch_sim
from repro.circuit.batch_sim import (
    LaneBatch,
    batch_dc_sweep,
    batch_operating_points,
    batch_transient,
)
from repro.circuit.dc import dc_sweep
from repro.circuit.logic import (
    LogicFamily,
    build_inverter,
    build_ring_oscillator,
)
from repro.circuit.mna import NewtonOptions, robust_dc_solve
from repro.circuit.transient import (
    _collect_breakpoints,
    initial_conditions_from_op,
    transient,
)
from repro.circuit.waveforms import Pulse
from repro.errors import NetlistError, ParameterError
from repro.pwl.batch import StackedCurves, StackedVscSolver
from repro.pwl.device import CNFET
from repro.reference.fettoy import FETToyParameters

#: the suite's waveform-parity criterion [V]
PARITY_TOL_V = 1e-9

#: tight Newton options so parity measures the engines, not the
#: Newton stop criterion
TIGHT = NewtonOptions(vtol=1e-12, reltol=1e-10)


@pytest.fixture(scope="module")
def family():
    return LogicFamily.default(vdd=0.6)


@pytest.fixture(scope="module")
def families():
    """Four heterogeneous device families (distinct geometry)."""
    out = []
    for tox in (1.2, 1.5, 1.8, 2.1):
        params = FETToyParameters(tox_nm=tox)
        out.append(LogicFamily(
            n_device=CNFET(params, polarity="n"),
            p_device=CNFET(params, polarity="p"),
            vdd=0.6,
        ))
    return out


def _max_dv(ds_a, ds_b, nodes):
    return max(
        float(np.max(np.abs(ds_a.trace(f"v({n})")
                            - ds_b.trace(f"v({n})"))))
        for n in nodes
    )


class TestStackedDeviceLayer:
    def test_stacked_curves_match_piecewise(self, families):
        curves = [f.n_device.fitted.curve for f in families]
        bank = StackedCurves(curves)
        rng = np.random.default_rng(3)
        v = rng.uniform(-0.8, 0.8, len(curves))
        for lane, curve in enumerate(curves):
            assert bank.value(v)[lane] == pytest.approx(
                float(curve.value(float(v[lane]))), abs=1e-18)
            assert bank.derivative(v)[lane] == pytest.approx(
                float(curve.derivative(float(v[lane]))), abs=1e-12)

    def test_stacked_solver_matches_scalar(self, families):
        devices = [f.n_device for f in families] \
            + [f.p_device for f in families]
        solver = StackedVscSolver([d.solver for d in devices])
        rng = np.random.default_rng(5)
        hint = np.zeros(len(devices))
        for _round in range(4):
            vgs = rng.uniform(-0.1, 0.7, len(devices))
            vds = rng.uniform(0.0, 0.7, len(devices))
            out = solver.solve(vgs, vds, hint)
            for lane, dev in enumerate(devices):
                ref = dev.solver.solve(float(vgs[lane]),
                                       float(vds[lane]), 0.0)
                assert out[lane] == pytest.approx(ref, abs=1e-11)

    def test_stacked_solver_subset(self, families):
        devices = [f.n_device for f in families]
        solver = StackedVscSolver([d.solver for d in devices])
        hint = np.zeros(len(devices))
        idx = np.array([1, 3])
        vgs = np.array([0.3, 0.5])
        vds = np.array([0.2, 0.6])
        out = solver.solve(vgs, vds, hint, idx=idx)
        for k, lane in enumerate(idx):
            ref = devices[lane].solver.solve(float(vgs[k]),
                                             float(vds[k]), 0.0)
            assert out[k] == pytest.approx(ref, abs=1e-11)
        # Hints updated only at the solved lanes.
        assert hint[0] == 0.0 and hint[2] == 0.0
        assert hint[1] != 0.0 and hint[3] != 0.0


class TestLaneBatchValidation:
    def test_topology_mismatch_rejected(self, family):
        a, _, _ = build_inverter(family)
        b, _ = build_ring_oscillator(family)
        with pytest.raises(NetlistError):
            LaneBatch([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            LaneBatch([])

    def test_per_lane_tstop_shape_checked(self, family):
        a, _, _ = build_inverter(family)
        b, _, _ = build_inverter(family)
        with pytest.raises(ParameterError):
            batch_transient([a, b], [1e-12, 1e-12, 1e-12], dt=1e-13)


class TestDCParity:
    def test_operating_points_match_scalar(self, families):
        circuits = [build_inverter(f, 0.3)[0] for f in families]
        x = batch_operating_points(circuits, TIGHT)
        for lane, f in enumerate(families):
            circuit, _, _ = build_inverter(f, 0.3)
            ref = robust_dc_solve(circuit, None, TIGHT)
            assert np.max(np.abs(x[lane] - ref)) < PARITY_TOL_V

    def test_dc_sweep_matches_scalar(self, families):
        circuits = [build_inverter(f)[0] for f in families]
        sweep = np.linspace(0.0, 0.6, 13)
        datasets = batch_dc_sweep(circuits, "vin_src", sweep, TIGHT)
        for lane, f in enumerate(families):
            circuit, _, _ = build_inverter(f)
            ref = dc_sweep(circuit, "vin_src", sweep, TIGHT)
            assert float(np.max(np.abs(
                datasets[lane].voltage("out") - ref.voltage("out")
            ))) < PARITY_TOL_V
            # Source branch currents ride along for free.
            assert float(np.max(np.abs(
                datasets[lane].current("vdd_src")
                - ref.current("vdd_src")
            ))) < 1e-12


class TestFixedModeParity:
    def test_identical_ring_lanes(self, family):
        ring, nodes = build_ring_oscillator(family)
        x0 = initial_conditions_from_op(
            ring, {nodes[0]: 0.0, nodes[1]: 0.6}, TIGHT)
        ref = transient(ring, tstop=5e-11, dt=2e-12, x0=x0,
                        method="be", options=TIGHT)
        lanes = [build_ring_oscillator(family)[0] for _ in range(3)]
        result = batch_transient(lanes, 5e-11, dt=2e-12, method="be",
                                 options=TIGHT, x0=np.stack([x0] * 3))
        assert not result.errors and not result.fallback_lanes
        for lane in range(3):
            ds = result[lane]
            assert len(ds.axis) == len(ref.axis)
            assert _max_dv(ds, ref, nodes) < PARITY_TOL_V

    @pytest.mark.parametrize("method", ["be", "trap"])
    def test_heterogeneous_lanes_vs_scalar_replay(self, families,
                                                  method):
        """Different devices, loads AND pulse timings per lane: every
        lane must match the scalar engine replayed on the shared grid
        (the union of all lanes' waveform breakpoints)."""
        tstop = 4e-11
        specs = [(1e-12, 1e-17, 4e-12), (2e-12, 4e-17, 5e-12),
                 (1e-12, 8e-17, 6e-12), (4e-12, 2e-17, 7e-12)]
        circuits = []
        for fam, (slew, load, delay) in zip(families, specs):
            loaded = dataclasses.replace(fam, load_f=load)
            wave = Pulse(0.0, 0.6, delay=delay, rise=slew, fall=slew,
                         width=1.5e-11, period=1e-9)
            circuits.append(build_inverter(loaded, wave)[0])
        result = batch_transient(circuits, tstop, dt=1e-12,
                                 method=method, options=TIGHT)
        assert not result.errors and not result.fallback_lanes
        union = sorted(set().union(*(
            _collect_breakpoints(c, tstop) for c in circuits)))
        for lane, (fam, (slew, load, delay)) in enumerate(
                zip(families, specs)):
            loaded = dataclasses.replace(fam, load_f=load)
            wave = Pulse(0.0, 0.6, delay=delay, rise=slew, fall=slew,
                         width=1.5e-11, period=1e-9)
            circuit, _, _ = build_inverter(loaded, wave)
            ref = transient(circuit, tstop=tstop, dt=1e-12,
                            method=method, options=TIGHT,
                            extra_breakpoints=union)
            ds = result[lane]
            assert len(ds.axis) == len(ref.axis)
            assert _max_dv(ds, ref, ["in", "out"]) < PARITY_TOL_V
            assert float(np.max(np.abs(
                ds.current("vdd_src") - ref.current("vdd_src")
            ))) < 1e-9

    def test_early_retirement(self, family):
        """Per-lane stop times: short lanes end exactly at their
        tstop, long lanes keep integrating."""
        rings = [build_ring_oscillator(family)[0] for _ in range(3)]
        _ring, nodes = build_ring_oscillator(family)
        x0 = initial_conditions_from_op(
            rings[0], {nodes[0]: 0.0, nodes[1]: 0.6}, TIGHT)
        tstops = [2e-11, 4e-11, 1e-11]
        result = batch_transient(rings, tstops, dt=2e-12, method="be",
                                 options=TIGHT, x0=np.stack([x0] * 3))
        assert result.stats["retired_lanes"] == 3
        for lane, tstop in enumerate(tstops):
            ds = result[lane]
            assert ds.axis[-1] == pytest.approx(tstop, rel=1e-12)
            ref = transient(build_ring_oscillator(family)[0],
                            tstop=tstop, dt=2e-12, x0=x0.copy(),
                            method="be", options=TIGHT)
            assert len(ds.axis) == len(ref.axis)
            assert _max_dv(ds, ref, nodes) < PARITY_TOL_V


@pytest.mark.slow
class TestAdaptiveModeParity:
    def test_pinned_grid_matches_scalar(self, family):
        """dt_min == dt_max pins the controller, so the adaptive
        lock-step engine must reproduce the scalar adaptive engine's
        waveforms exactly (to Newton/closed-form noise)."""
        ring, nodes = build_ring_oscillator(family)
        x0 = initial_conditions_from_op(
            ring, {nodes[0]: 0.0, nodes[1]: 0.6}, TIGHT)
        ref = transient(ring, tstop=3e-11, x0=x0, method="trap",
                        options=TIGHT, adaptive=True, dt_min=1e-12,
                        dt_max=1e-12)
        lanes = [build_ring_oscillator(family)[0] for _ in range(2)]
        result = batch_transient(lanes, 3e-11, method="trap",
                                 options=TIGHT, x0=np.stack([x0] * 2),
                                 adaptive=True, dt_min=1e-12,
                                 dt_max=1e-12)
        for lane in range(2):
            ds = result[lane]
            assert len(ds.axis) == len(ref.axis)
            assert _max_dv(ds, ref, nodes) < PARITY_TOL_V

    def test_free_running_tracks_scalar_within_lte(self, family):
        """Unpinned, the shared controller takes its own step
        sequence; waveforms must still agree with the scalar adaptive
        run to LTE-tolerance order."""
        ring, nodes = build_ring_oscillator(family)
        x0 = initial_conditions_from_op(
            ring, {nodes[0]: 0.0, nodes[1]: 0.6})
        ref = transient(ring, tstop=3e-11, x0=x0, method="trap")
        lanes = [build_ring_oscillator(family)[0] for _ in range(2)]
        result = batch_transient(lanes, 3e-11, method="trap",
                                 x0=np.stack([x0] * 2))
        grid = np.linspace(0.0, 3e-11, 400)
        for lane in range(2):
            ds = result[lane]
            worst = max(
                float(np.max(np.abs(
                    np.interp(grid, ds.axis, ds.trace(f"v({n})"))
                    - np.interp(grid, ref.axis, ref.trace(f"v({n})"))
                )))
                for n in nodes
            )
            assert worst < 5e-3

    def test_heterogeneous_pulses_run_clean(self, families):
        """Adaptive mode with per-lane breakpoints: no lane drops out
        and every waveform settles to the right rails."""
        circuits = []
        for k, fam in enumerate(families):
            wave = Pulse(0.0, 0.6, delay=(k + 1) * 1e-12, rise=1e-12,
                         fall=1e-12, width=1e-11, period=1e-9)
            circuits.append(build_inverter(fam, wave)[0])
        result = batch_transient(circuits, 3e-11, method="trap")
        assert not result.errors and not result.fallback_lanes
        for lane in range(len(circuits)):
            ds = result[lane]
            # Input low at the end -> inverter output back at VDD.
            assert ds.trace("v(out)")[-1] == pytest.approx(0.6,
                                                           abs=0.05)


class TestScalarFallback:
    def test_failed_lane_reruns_scalar(self, family, monkeypatch):
        """A lane whose lock-step Newton fails irreducibly leaves the
        batch and is re-simulated by the scalar engine; its waveforms
        equal a direct scalar run."""
        original = batch_sim._lockstep_newton

        def sabotage(batch, x, lanes, options, **kwargs):
            x_new, failed = original(batch, x, lanes, options, **kwargs)
            if kwargs.get("analysis") == "tran" and 1 in lanes:
                failed = list(failed) + [1]
                x_new[1] = x[1]
            return x_new, failed

        monkeypatch.setattr(batch_sim, "_lockstep_newton", sabotage)
        lanes = [build_inverter(family, Pulse(
            0.0, 0.6, delay=2e-12, rise=1e-12, fall=1e-12,
            width=5e-12, period=1e-9))[0] for _ in range(3)]
        result = batch_transient(lanes, 1.5e-11, dt=1e-12,
                                 method="trap", options=TIGHT)
        assert result.fallback_lanes == (1,)
        assert not result.errors
        monkeypatch.setattr(batch_sim, "_lockstep_newton", original)
        ref = transient(lanes[1], tstop=1.5e-11, dt=1e-12,
                        method="trap", options=TIGHT)
        ds = result[1]
        assert len(ds.axis) == len(ref.axis)
        assert _max_dv(ds, ref, ["in", "out"]) < PARITY_TOL_V

    def test_fallback_disabled_reports_error(self, family,
                                             monkeypatch):
        original = batch_sim._lockstep_newton

        def sabotage(batch, x, lanes, options, **kwargs):
            x_new, failed = original(batch, x, lanes, options, **kwargs)
            if kwargs.get("analysis") == "tran" and 0 in lanes:
                failed = list(failed) + [0]
            return x_new, failed

        monkeypatch.setattr(batch_sim, "_lockstep_newton", sabotage)
        lanes = [build_inverter(family)[0] for _ in range(2)]
        result = batch_transient(lanes, 1e-11, dt=1e-12,
                                 scalar_fallback=False)
        assert 0 in result.errors
        assert result.datasets[0] is None
        with pytest.raises(Exception):
            result[0]


@pytest.mark.slow
class TestEvaluatorParity:
    def test_ring_evaluator_batch_matches_scalar(self):
        from repro.variability.circuits import RingOscillatorEvaluator
        from repro.variability.params import default_device_space
        from repro.variability.sampling import monte_carlo

        space = default_device_space()
        samples = monte_carlo(space, 12, seed=19)
        batch = RingOscillatorEvaluator(space, use_batch=True)
        scalar = RingOscillatorEvaluator(space, use_batch=False)
        rows_b = batch.evaluate(samples)
        rows_s = scalar.evaluate(samples)
        for rb, rs in zip(rows_b, rows_s):
            if np.isnan(rs["period"]):
                assert np.isnan(rb["period"])
                continue
            assert rb["period"] == pytest.approx(rs["period"],
                                                 rel=1e-9)

    def test_vtc_evaluator_batch_matches_scalar(self):
        from repro.variability.circuits import InverterVTCEvaluator
        from repro.variability.params import default_device_space
        from repro.variability.sampling import monte_carlo

        space = default_device_space()
        samples = monte_carlo(space, 10, seed=23)
        batch = InverterVTCEvaluator(space, use_batch=True)
        scalar = InverterVTCEvaluator(space, use_batch=False)
        rows_b = batch.evaluate(samples)
        rows_s = scalar.evaluate(samples)
        for rb, rs in zip(rows_b, rows_s):
            for metric in ("vm", "gain", "nml", "nmh"):
                if np.isnan(rs[metric]):
                    assert np.isnan(rb[metric])
                else:
                    assert rb[metric] == pytest.approx(rs[metric],
                                                       abs=1e-9)

    def test_characterize_batch_metrics_sane(self, family):
        from repro.characterize import characterize_gate

        table_b = characterize_gate(family, "inverter",
                                    loads=(1e-17, 4e-17),
                                    slews=(1e-12, 4e-12),
                                    use_batch=True)
        table_s = characterize_gate(family, "inverter",
                                    loads=(1e-17, 4e-17),
                                    slews=(1e-12, 4e-12),
                                    use_batch=False)
        assert table_b.meta["engine"] == "batch"
        assert table_s.meta["engine"] == "scalar"
        for arc in ("rise", "fall"):
            b = np.asarray(table_b.arcs[arc].delay)
            s = np.asarray(table_s.arcs[arc].delay)
            assert np.all(np.isfinite(b))
            # Delay *measurements* (50% crossings interpolated on an
            # adaptive grid) carry grid-realization noise in both
            # engines — especially for sub-slew delays — so the
            # engines are only required to agree to that noise; the
            # rigorous waveform-level parity lives in the fixed/pinned
            # grid tests above.
            assert np.max(np.abs(b - s) / np.abs(s)) < 0.6
            # Delay still grows with load in every row.
            assert np.all(b[:, 1] > b[:, 0])


class TestBatchStats:
    def test_lane_iterations_and_retirement_counters(self, family):
        rings = [build_ring_oscillator(family)[0] for _ in range(2)]
        _r, nodes = build_ring_oscillator(family)
        x0 = initial_conditions_from_op(
            rings[0], {nodes[0]: 0.0, nodes[1]: 0.6})
        stats = {}
        batch_transient(rings, 2e-11, dt=2e-12, method="be",
                        x0=np.stack([x0] * 2), stats=stats)
        assert stats["steps"] == 10
        assert stats["lane_iterations"] >= stats["iterations"]
        assert stats["retired_lanes"] == 2
        assert stats["stacked_solves"] == stats["iterations"]


class TestRecordCurrentsModes:
    def test_scalar_sources_mode_skips_cnfet_postpass(self, family):
        circuit, _vin, _vout = build_inverter(family, 0.3)
        full = transient(circuit, tstop=5e-12, dt=1e-12,
                         record_currents=True)
        circuit2, _vin, _vout = build_inverter(family, 0.3)
        sources = transient(circuit2, tstop=5e-12, dt=1e-12,
                            record_currents="sources")
        assert "i(vdd_src)" in sources and "i(vdd_src)" in full
        assert "i(inv_n)" in full and "i(inv_n)" not in sources
        assert np.array_equal(sources.current("vdd_src"),
                              full.current("vdd_src"))

    def test_batch_sources_mode(self, family):
        lanes = [build_inverter(family, 0.3)[0] for _ in range(2)]
        result = batch_transient(lanes, 5e-12, dt=1e-12,
                                 record_currents="sources")
        ds = result[0]
        assert "i(vdd_src)" in ds and "i(inv_n)" not in ds


class TestCharacterizeBatchFallback:
    def test_whole_batch_failure_falls_back_scalar(self, family,
                                                   monkeypatch):
        import repro.characterize.engine as engine
        from repro.characterize import characterize_gate
        from repro.errors import AnalysisError

        def explode(*args, **kwargs):
            raise AnalysisError("synthetic whole-batch failure")

        monkeypatch.setattr(engine, "batch_transient", explode)
        table = characterize_gate(family, "inverter",
                                  loads=(1e-17, 4e-17),
                                  slews=(1e-12, 4e-12), use_batch=True)
        # The per-point scalar loop served every cell.
        for arc in table.arcs.values():
            assert np.all(np.isfinite(np.asarray(arc.delay)))
