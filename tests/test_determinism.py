"""Determinism audit: every seeded API is byte-stable.

Each probe below computes a JSON-serializable payload from a seeded
entry point (sampling, campaign execution, batch lane ordering,
fingerprints, experiment plans).  Three properties are asserted per
probe:

1. two same-process runs are byte-identical (no hidden global state);
2. a fresh subprocess reproduces the same digest (no dependence on
   import order, hash randomization, or accumulated caches);
3. for the probes with committed goldens
   (``tests/golden_fingerprints.json``), the digest matches the
   committed value — cross-platform or cross-version drift in
   ``manifest_fingerprint`` (which keys campaign resume and the
   service result cache) fails loudly here instead of silently
   rotating every cache key in the field.

Regenerating the goldens is an intentional compatibility break::

    PYTHONPATH=src python tests/test_determinism.py --regenerate
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import sys
from pathlib import Path

import pytest

GOLDEN_PATH = Path(__file__).parent / "golden_fingerprints.json"


def _digest(payload) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()


# ---------------------------------------------------------------------
# probes: name -> nullary callable returning a JSON-able payload
# ---------------------------------------------------------------------

def probe_manifest_fingerprint_simple():
    from repro.service.fingerprint import manifest_fingerprint

    return manifest_fingerprint(
        {"b": [1, 2.5], "a": "x", "nested": {"k": True}})


def probe_manifest_fingerprint_campaign():
    from repro.service.fingerprint import manifest_fingerprint
    from repro.variability.campaign import CampaignConfig

    return manifest_fingerprint(
        CampaignConfig(name="golden", n_samples=16, seed=7,
                       sampler="mc", chunk_size=8).describe())


def probe_mc_samples():
    from repro.variability.params import default_device_space
    from repro.variability.sampling import monte_carlo

    return monte_carlo(default_device_space(), 8, seed=7)


def probe_lhs_samples():
    from repro.variability.params import default_device_space
    from repro.variability.sampling import latin_hypercube

    return latin_hypercube(default_device_space(), 8, seed=7)


def probe_quantized_keys():
    from repro.variability.campaign import quantize_sample
    from repro.variability.params import default_device_space
    from repro.variability.sampling import monte_carlo

    samples = monte_carlo(default_device_space(), 8, seed=7)
    return [list(quantize_sample(s, None)) for s in samples]


def probe_campaign_run():
    from repro.pwl.device import clear_fit_cache
    from repro.variability.campaign import (
        Campaign,
        CampaignConfig,
        DeviceMetricsEvaluator,
    )
    from repro.variability.params import default_device_space

    # Campaign.run is byte-deterministic *given* the process-wide fit
    # cache state: a warm cache serves fits produced under a different
    # construction sequence, shifting metrics at the ~1e-15 level.
    # Clearing it makes the probe hermetic, so the subprocess
    # comparison tests the seeded pipeline, not ambient cache history.
    clear_fit_cache()
    space = default_device_space()
    config = CampaignConfig(name="determinism", n_samples=8, seed=7,
                            sampler="mc", chunk_size=4)
    result = Campaign(config, space,
                      DeviceMetricsEvaluator(space)).run()
    return {"records": result.records, "aggregate": result.aggregate}


def probe_batch_lane_ordering():
    """Lane order of the batched engine: operating points per lane for
    three parametrically distinct rings must come back in submission
    order with identical bytes."""
    from repro.circuit.batch_sim import batch_operating_points
    from repro.circuit.logic import LogicFamily, build_ring_oscillator
    from repro.circuit.mna import NewtonOptions
    from repro.pwl.device import clear_fit_cache

    clear_fit_cache()  # hermetic: see probe_campaign_run
    circuits = []
    for vdd in (0.55, 0.6, 0.65):
        ring, _nodes = build_ring_oscillator(
            LogicFamily.default(vdd=vdd), stages=3)
        circuits.append(ring)
    x0 = batch_operating_points(
        circuits, NewtonOptions(vtol=1e-12, reltol=1e-10))
    return [[repr(float(v)) for v in lane] for lane in x0]


def probe_exprunner_config_fingerprint():
    from repro.exprunner import RunnerConfig

    return RunnerConfig.from_dict({
        "name": "golden", "workload": "circuit_transient",
        "factors": {"chord": ["off", "on"]}, "repetitions": 2,
        "seed": 3}).fingerprint()


def probe_exprunner_plan_seeds():
    from repro.exprunner import RunnerConfig, expand_plan

    config = RunnerConfig.from_dict({
        "name": "golden", "workload": "circuit_transient",
        "factors": {"chord": ["off", "on"]}, "repetitions": 2,
        "seed": 3})
    return [spec.seed for spec in expand_plan(config)]


PROBES = {
    "manifest_fingerprint_simple": probe_manifest_fingerprint_simple,
    "manifest_fingerprint_campaign": probe_manifest_fingerprint_campaign,
    "mc_samples": probe_mc_samples,
    "lhs_samples": probe_lhs_samples,
    "quantized_keys": probe_quantized_keys,
    "campaign_run": probe_campaign_run,
    "batch_lane_ordering": probe_batch_lane_ordering,
    "exprunner_config_fingerprint": probe_exprunner_config_fingerprint,
    "exprunner_plan_seeds": probe_exprunner_plan_seeds,
}

#: probe -> golden key; fingerprints are committed raw, bulky payloads
#: as sha256 digests.
GOLDEN_KEYS = {
    "manifest_fingerprint_simple": ("manifest_fingerprint_simple",
                                    "raw"),
    "manifest_fingerprint_campaign": ("manifest_fingerprint_campaign",
                                      "raw"),
    "mc_samples": ("mc_samples_sha256", "digest"),
    "lhs_samples": ("lhs_samples_sha256", "digest"),
    "quantized_keys": ("quantized_keys_sha256", "digest"),
    "exprunner_config_fingerprint": ("exprunner_config_fingerprint",
                                     "raw"),
    "exprunner_plan_seeds": ("exprunner_plan_seeds", "raw"),
}

_SUBPROCESS_SNIPPET = """\
import sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {tests!r})
from test_determinism import PROBES, _digest
print(_digest(PROBES[{name!r}]()))
"""


@pytest.mark.parametrize("name", sorted(PROBES))
def test_same_process_runs_identical(name):
    probe = PROBES[name]
    first = json.dumps(probe(), sort_keys=True)
    second = json.dumps(probe(), sort_keys=True)
    assert first == second


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(PROBES))
def test_subprocess_run_identical(name):
    here = Path(__file__).parent
    code = _SUBPROCESS_SNIPPET.format(
        src=str(here.parent / "src"), tests=str(here), name=name)
    out = subprocess.run([sys.executable, "-c", code],
                         capture_output=True, text=True, check=True)
    assert out.stdout.strip() == _digest(PROBES[name]())


@pytest.mark.parametrize("name", sorted(GOLDEN_KEYS))
def test_matches_committed_golden(name):
    goldens = json.loads(GOLDEN_PATH.read_text())
    key, form = GOLDEN_KEYS[name]
    value = PROBES[name]()
    observed = _digest(value) if form == "digest" else value
    assert observed == goldens[key], (
        f"{name} drifted from tests/golden_fingerprints.json — this "
        f"breaks campaign resume and service cache compatibility; "
        f"regenerate the goldens only for an intentional, documented "
        f"break")


def _regenerate() -> None:
    goldens = {"_comment": json.loads(
        GOLDEN_PATH.read_text())["_comment"]}
    for name in sorted(GOLDEN_KEYS):
        key, form = GOLDEN_KEYS[name]
        value = PROBES[name]()
        goldens[key] = _digest(value) if form == "digest" else value
    GOLDEN_PATH.write_text(json.dumps(goldens, indent=2) + "\n")
    print(f"regenerated {GOLDEN_PATH}")


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
