"""Scalar root solvers, including the bracket-tightening regression."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConvergenceError, ParameterError
from repro.reference.solver import (
    bisection,
    brent,
    expand_bracket,
    newton_raphson,
)


def test_newton_quadratic():
    root, iters = newton_raphson(lambda x: x * x - 2.0,
                                 lambda x: 2.0 * x, 1.0)
    assert root == pytest.approx(math.sqrt(2.0), rel=1e-12)
    assert iters < 10


def test_newton_with_bracket():
    root, _ = newton_raphson(
        lambda x: math.tanh(x) - 0.5, lambda x: 1.0 / math.cosh(x) ** 2,
        5.0, bracket=(-10.0, 10.0),
    )
    assert root == pytest.approx(math.atanh(0.5), rel=1e-10)


def test_newton_bracket_tightening_regression():
    """A Newton step leaving the bracket must still make progress.

    Regression for the bug where the bisection fallback returned the
    unchanged midpoint and falsely reported convergence (caught against
    the reference model's VSC solve at low VDS).
    """
    # Steep-then-flat residual: Newton from the flat side overshoots.
    def f(x):
        return x**3 - x - 2.0

    def df(x):
        return 3.0 * x**2 - 1.0

    # Start at the midpoint of a wide bracket where the first Newton
    # step exits it.
    root, _ = newton_raphson(f, df, 0.0, bracket=(-3.0, 3.0))
    assert f(root) == pytest.approx(0.0, abs=1e-9)


def test_newton_rejects_bad_bracket():
    with pytest.raises(ParameterError):
        newton_raphson(lambda x: x + 10.0, lambda x: 1.0, 0.0,
                       bracket=(1.0, 2.0))


def test_newton_zero_derivative_without_bracket():
    with pytest.raises(ConvergenceError):
        newton_raphson(lambda x: x * x + 1.0, lambda x: 0.0, 0.0,
                       max_iter=5)


def test_newton_max_iter_exhaustion():
    with pytest.raises(ConvergenceError) as info:
        newton_raphson(lambda x: math.exp(x), lambda x: math.exp(x),
                       0.0, max_iter=3)
    assert info.value.iterations == 3


def test_bisection_simple():
    root, _ = bisection(lambda x: x - 0.3, 0.0, 1.0)
    assert root == pytest.approx(0.3, abs=1e-10)


def test_bisection_endpoint_root():
    root, iters = bisection(lambda x: x, 0.0, 1.0)
    assert root == 0.0 and iters == 0


def test_bisection_no_sign_change():
    with pytest.raises(ParameterError):
        bisection(lambda x: x * x + 1.0, -1.0, 1.0)


def test_brent_polynomial():
    root, _ = brent(lambda x: (x - 1.5) * (x + 4.0), 0.0, 3.0)
    assert root == pytest.approx(1.5, abs=1e-10)


def test_brent_transcendental():
    root, _ = brent(lambda x: math.cos(x) - x, 0.0, 1.0)
    assert root == pytest.approx(0.7390851332, abs=1e-8)


def test_brent_rejects_bad_interval():
    with pytest.raises(ParameterError):
        brent(lambda x: x * x + 1.0, -1.0, 1.0)


@given(st.floats(min_value=-100.0, max_value=100.0),
       st.floats(min_value=0.1, max_value=10.0))
def test_brent_finds_known_root(root_target, scale):
    def f(x):
        return scale * (x - root_target)

    found, _ = brent(f, root_target - 7.3, root_target + 11.1)
    assert found == pytest.approx(root_target, abs=1e-7)


@given(st.floats(min_value=-50.0, max_value=50.0))
def test_expand_bracket_monotone(shift):
    def f(x):
        return math.tanh(x - shift) + 0.3 * (x - shift)

    lo, hi = expand_bracket(f, 0.0)
    if lo != hi:
        assert f(lo) * f(hi) < 0.0


def test_expand_bracket_failure():
    with pytest.raises(ConvergenceError):
        expand_bracket(lambda x: 1.0, 0.0, max_expansions=5)


def test_newton_invalid_max_iter():
    with pytest.raises(ParameterError):
        newton_raphson(lambda x: x, lambda x: 1.0, 0.0, max_iter=0)
