"""Piecewise charge fitting (paper §IV)."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.pwl.fitting import FitSpec, fit_piecewise_charge
from repro.pwl.model1 import MODEL1_SPEC, build_model1
from repro.pwl.model2 import MODEL2_SPEC, build_model2


class TestFitSpec:
    def test_free_parameter_counts_match_paper(self):
        assert MODEL1_SPEC.free_parameters == 1
        assert MODEL2_SPEC.free_parameters == 3

    @pytest.mark.parametrize("kwargs", [
        dict(orders=(1,), boundaries_rel=()),
        dict(orders=(1, 2, 1), boundaries_rel=(-0.1, 0.1)),  # last not 0
        dict(orders=(4, 0), boundaries_rel=(0.0,)),          # order > 3
        dict(orders=(1, 2, 0), boundaries_rel=(0.1, -0.1)),  # not ascending
        dict(orders=(1, 2, 0), boundaries_rel=(-0.1,)),      # wrong count
        dict(orders=(1, 2, 0), boundaries_rel=(-0.7, 0.1)),  # outside window
        dict(orders=(1, 2, 0), boundaries_rel=(-0.1, 0.1), samples=10),
        dict(orders=(1, 2, 0), boundaries_rel=(-0.1, 0.1),
             weighting="bogus"),
    ])
    def test_validation(self, kwargs):
        kwargs.setdefault("window_rel", (-0.6, 0.32))
        with pytest.raises(ParameterError):
            FitSpec(**kwargs)


class TestFitQuality:
    def test_model1_charge_rms(self, charge300):
        fitted = build_model1(charge300)
        assert fitted.rms_error_relative < 0.10

    def test_model2_charge_rms(self, charge300):
        fitted = build_model2(charge300)
        assert fitted.rms_error_relative < 0.02

    def test_model2_beats_model1(self, charge300):
        f1 = build_model1(charge300)
        f2 = build_model2(charge300)
        assert f2.rms_error < f1.rms_error

    def test_c1_continuity_exact(self, charge300):
        for fitted in (build_model1(charge300), build_model2(charge300)):
            peak = float(np.max(np.abs(
                fitted.curve.value(np.linspace(-0.7, 0.0, 50))
            )))
            for dv, ds in fitted.curve.continuity_defects():
                assert dv < 1e-12 * peak
                assert ds < 1e-10 * peak

    def test_boundaries_at_paper_positions_without_optimisation(
            self, charge300):
        fitted = fit_piecewise_charge(charge300, MODEL2_SPEC,
                                      optimize_boundaries=False)
        rel = [b - charge300.fermi_level_ev
               for b in fitted.boundaries_abs]
        np.testing.assert_allclose(rel, [-0.28, -0.03, 0.12], atol=1e-12)

    def test_optimisation_does_not_hurt(self, charge300):
        plain = fit_piecewise_charge(charge300, MODEL2_SPEC,
                                     optimize_boundaries=False)
        tuned = fit_piecewise_charge(charge300, MODEL2_SPEC,
                                     optimize_boundaries=True)
        assert tuned.rms_error <= plain.rms_error * 1.001

    def test_leftmost_region_is_linear(self, charge300):
        fitted = build_model2(charge300)
        assert len(fitted.curve.coefficients[0]) == 2

    def test_rightmost_region_is_saturation_constant(self, charge300):
        from repro.constants import ELEMENTARY_CHARGE

        fitted = build_model2(charge300)
        tail = fitted.curve.coefficients[-1]
        assert len(tail) == 1
        expected = -0.5 * ELEMENTARY_CHARGE * charge300.n_equilibrium()
        assert tail[0] == pytest.approx(expected, rel=1e-9)

    def test_zero_tail_option(self, charge300):
        fitted = fit_piecewise_charge(charge300, MODEL2_SPEC, tail="zero")
        assert fitted.curve.coefficients[-1] == (0.0,)

    def test_invalid_tail(self, charge300):
        with pytest.raises(ParameterError):
            fit_piecewise_charge(charge300, MODEL2_SPEC, tail="soft")


class TestSyntheticCurves:
    def test_exact_recovery_of_representable_curve(self, charge300):
        """Fitting a curve that IS a C1 piecewise quadratic of the same
        layout must recover it (near) exactly."""
        ef = charge300.fermi_level_ev
        b1, b2 = ef - 0.08, ef + 0.08

        def synthetic(x):
            x = np.asarray(x, dtype=float)
            quad = 2e-9 * (x - b2) ** 2
            line = (2e-9 * (b1 - b2) ** 2
                    + 2 * 2e-9 * (b1 - b2) * (x - b1))
            return np.where(x > b2, 0.0, np.where(x > b1, quad, line))

        spec = FitSpec(orders=(1, 2, 0), boundaries_rel=(-0.08, 0.08),
                       window_rel=(-0.3, 0.3), name="synthetic",
                       weighting="uniform")
        fitted = fit_piecewise_charge(charge300, spec,
                                      theoretical=synthetic, tail="zero")
        assert fitted.rms_error_relative < 1e-10

    def test_rejects_zero_curve(self, charge300):
        spec = FitSpec(orders=(1, 2, 0), boundaries_rel=(-0.08, 0.08),
                       window_rel=(-0.3, 0.3))
        from repro.errors import FittingError

        with pytest.raises(FittingError):
            fit_piecewise_charge(
                charge300, spec,
                theoretical=lambda x: np.zeros_like(np.asarray(x)),
            )

    def test_rejects_nonfinite_curve(self, charge300):
        spec = FitSpec(orders=(1, 2, 0), boundaries_rel=(-0.08, 0.08),
                       window_rel=(-0.3, 0.3))
        from repro.errors import FittingError

        with pytest.raises(FittingError):
            fit_piecewise_charge(
                charge300, spec,
                theoretical=lambda x: np.full_like(np.asarray(x), np.nan),
            )

    def test_all_linear_spec_has_no_free_parameters(self, charge300):
        from repro.errors import FittingError

        spec = FitSpec(orders=(1, 0), boundaries_rel=(0.0,),
                       window_rel=(-0.3, 0.3))
        with pytest.raises(FittingError):
            fit_piecewise_charge(charge300, spec)


class TestAcrossConditions:
    @pytest.mark.parametrize("temperature", [150.0, 450.0])
    @pytest.mark.parametrize("fermi", [-0.5, 0.0])
    def test_fit_succeeds_over_paper_ranges(self, temperature, fermi):
        """The paper fits over 150-450 K and -0.5..0 eV."""
        from repro.reference.fettoy import FETToyModel, FETToyParameters

        model = FETToyModel(FETToyParameters(
            temperature_k=temperature, fermi_level_ev=fermi,
        ))
        fitted = build_model2(model.charge)
        assert fitted.rms_error_relative < 0.05
