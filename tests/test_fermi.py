"""Fermi-Dirac statistics, including property-based stability checks."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ParameterError
from repro.physics.fermi import (
    fermi_dirac,
    fermi_dirac_derivative,
    fermi_dirac_integral,
    fermi_dirac_integral_0,
    fermi_dirac_integral_m1,
    inverse_fermi_dirac_integral_0,
)


class TestOccupation:
    def test_half_at_zero(self):
        assert fermi_dirac(0.0) == pytest.approx(0.5)

    def test_limits(self):
        assert fermi_dirac(800.0) == 0.0
        assert fermi_dirac(-800.0) == 1.0

    def test_symmetry(self):
        x = 1.7
        assert fermi_dirac(x) + fermi_dirac(-x) == pytest.approx(1.0)

    @given(st.floats(min_value=-1e6, max_value=1e6,
                     allow_nan=False, allow_infinity=False))
    def test_bounded_and_finite(self, x):
        f = fermi_dirac(x)
        assert 0.0 <= f <= 1.0
        assert math.isfinite(f)

    @given(st.floats(-50, 50), st.floats(1e-3, 10))
    def test_monotone_decreasing(self, x, dx):
        assert fermi_dirac(x + dx) <= fermi_dirac(x)

    def test_vectorised(self):
        out = fermi_dirac(np.array([-1.0, 0.0, 1.0]))
        assert out.shape == (3,)
        assert out[0] > out[1] > out[2]


class TestDerivative:
    def test_peak_at_zero(self):
        assert fermi_dirac_derivative(0.0) == pytest.approx(-0.25)

    @given(st.floats(-700, 700))
    def test_always_nonpositive(self, x):
        assert fermi_dirac_derivative(x) <= 0.0

    def test_matches_finite_difference(self):
        x, h = 0.7, 1e-6
        fd = (fermi_dirac(x + h) - fermi_dirac(x - h)) / (2 * h)
        assert fermi_dirac_derivative(x) == pytest.approx(fd, rel=1e-6)


class TestIntegral0:
    def test_degenerate_limit(self):
        assert fermi_dirac_integral_0(50.0) == pytest.approx(50.0, rel=1e-12)

    def test_nondegenerate_limit(self):
        eta = -30.0
        assert fermi_dirac_integral_0(eta) == pytest.approx(
            math.exp(eta), rel=1e-10
        )

    def test_at_zero(self):
        assert fermi_dirac_integral_0(0.0) == pytest.approx(math.log(2.0))

    @given(st.floats(-700, 700))
    def test_positive_finite(self, eta):
        v = fermi_dirac_integral_0(eta)
        assert v > 0.0 or eta < -700
        assert math.isfinite(v)

    @given(st.floats(-30, 30))
    def test_derivative_is_order_m1(self, eta):
        h = 1e-6
        fd = (fermi_dirac_integral_0(eta + h)
              - fermi_dirac_integral_0(eta - h)) / (2 * h)
        assert fermi_dirac_integral_m1(eta) == pytest.approx(fd, rel=1e-4,
                                                             abs=1e-10)

    @given(st.floats(min_value=0.05, max_value=50.0))
    def test_inverse_roundtrip(self, value):
        eta = inverse_fermi_dirac_integral_0(value)
        assert fermi_dirac_integral_0(eta) == pytest.approx(value, rel=1e-9)

    def test_inverse_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            inverse_fermi_dirac_integral_0(0.0)


class TestGenericIntegral:
    def test_order_zero_dispatches_to_closed_form(self):
        eta = 1.3
        assert fermi_dirac_integral(0, eta) == pytest.approx(
            fermi_dirac_integral_0(eta)
        )

    def test_half_order_nondegenerate_limit(self):
        # F_j(eta) -> exp(eta) for eta << 0, independent of order.
        eta = -15.0
        assert fermi_dirac_integral(0.5, eta) == pytest.approx(
            math.exp(eta), rel=1e-3
        )

    def test_half_order_degenerate_limit(self):
        # F_{1/2}(eta) -> eta^{3/2}/Gamma(5/2) for eta >> 0.
        eta = 80.0
        expected = eta**1.5 / math.gamma(2.5)
        assert fermi_dirac_integral(0.5, eta) == pytest.approx(
            expected, rel=0.01
        )

    def test_rejects_low_order_and_few_nodes(self):
        with pytest.raises(ParameterError):
            fermi_dirac_integral(-1.5, 0.0)
        with pytest.raises(ParameterError):
            fermi_dirac_integral(0.5, 0.0, nodes=4)

    def test_vectorised(self):
        etas = np.array([-5.0, 0.0, 5.0])
        out = fermi_dirac_integral(0.5, etas)
        assert out.shape == (3,)
        assert np.all(np.diff(out) > 0.0)
