"""Table III — average RMS errors in IDS at EF = -0.5 eV.

Paper values: Model 1 between 1.8 and 4.8, Model 2 between 0.7 and 2.8.
"""

from __future__ import annotations

from conftest import print_block

from repro.experiments.runners import run_rms_table


def test_table3_errors(benchmark):
    result = benchmark.pedantic(
        run_rms_table, args=(-0.5,), iterations=1, rounds=1
    )
    print_block(result.render())
    avg1 = result.average("model1")
    avg2 = result.average("model2")
    print_block(
        f"averages: Model 1 = {avg1:.2f}% (paper ~3.2%), "
        f"Model 2 = {avg2:.2f}% (paper ~1.5%)"
    )
    assert avg2 < avg1
    assert avg2 < 4.0
    assert avg1 < 12.0
