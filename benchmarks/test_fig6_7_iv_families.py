"""Figures 6 and 7 — IV families at T = 300 K, EF = -0.32 eV.

Shape targets from the paper's plots: ~9 uA at VG = 0.6/VDS = 0.6;
monotone saturating output curves; the fast models overlay FETToy with a
few-percent average deviation (Model 2 tighter).
"""

from __future__ import annotations

import numpy as np
from conftest import print_block

from repro.experiments.runners import run_fig6_7


def _check_family_shape(result) -> None:
    ref = result.reference
    # Currents increase with VG (rows ascend in gate voltage).
    top = ref[:, -1]
    assert np.all(np.diff(top) > 0.0)
    # Output curves are non-decreasing in VDS (ballistic saturation).
    assert np.all(np.diff(ref, axis=1) > -1e-12)
    # Peak current magnitude matches the paper's ~9e-6 A axis.
    assert 3e-6 < float(ref.max()) < 3e-5


def test_fig6_model1(benchmark):
    result = benchmark.pedantic(
        run_fig6_7, args=("model1",), iterations=1, rounds=1
    )
    print_block(result.render())
    _check_family_shape(result)
    assert result.average_error_percent < 10.0


def test_fig7_model2(benchmark):
    result = benchmark.pedantic(
        run_fig6_7, args=("model2",), iterations=1, rounds=1
    )
    print_block(result.render())
    _check_family_shape(result)
    assert result.average_error_percent < 3.0


def test_model2_overlays_tighter_than_model1():
    r1 = run_fig6_7("model1")
    r2 = run_fig6_7("model2")
    assert r2.average_error_percent < r1.average_error_percent
