"""Figures 2 and 3 — the piecewise approximations of QS(VSC).

Checks the published qualitative features: charge decreasing in VSC,
near-zero in the rightmost region, close tracking of theory, and the
Model 2 fit being tighter than Model 1's.
"""

from __future__ import annotations

import numpy as np
from conftest import print_block

from repro.experiments.report import sparkline
from repro.experiments.runners import run_fig2_3


def test_fig2_model1_charge(benchmark):
    result = benchmark.pedantic(
        run_fig2_3, args=("model1",), iterations=1, rounds=1
    )
    print_block(result.render())
    print_block("QS theory : " + sparkline(result.theory_qs)
                + "\nQS fitted : " + sparkline(result.fitted_qs))
    fitted = np.asarray(result.fitted_qs)
    # Monotone non-increasing along the VSC axis (within float noise).
    assert np.all(np.diff(fitted) <= 1e-13)
    # Tracks theory within a few percent of peak on this axis.
    peak = float(np.max(result.theory_qs))
    assert float(np.max(np.abs(fitted - result.theory_qs))) < 0.25 * peak


def test_fig3_model2_charge(benchmark):
    result = benchmark.pedantic(
        run_fig2_3, args=("model2",), iterations=1, rounds=1
    )
    print_block(result.render())
    fitted = np.asarray(result.fitted_qs)
    peak = float(np.max(result.theory_qs))
    assert float(np.max(np.abs(fitted - result.theory_qs))) < 0.1 * peak


def test_model2_fits_tighter_than_model1():
    r1 = run_fig2_3("model1")
    r2 = run_fig2_3("model2")
    assert r2.rms_relative < r1.rms_relative, (
        f"model2 fit ({r2.rms_relative:.4f}) should beat model1 "
        f"({r1.rms_relative:.4f})"
    )
