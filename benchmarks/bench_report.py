#!/usr/bin/env python
"""Dump a ``BENCH_<name>.json`` perf snapshot so the trajectory is
tracked across PRs.

Measures the headline workloads of the perf overhaul (ISSUE 1), the
Monte-Carlo campaign throughput of the variability subsystem (ISSUE 2),
the adaptive-transient engine gate (ISSUE 3), the lane-batched
transient engine (ISSUE 4), the hierarchy + sparse-backend layer
(ISSUE 5) and the simulation service (ISSUE 7):

* **Fig. 6/7 IV families** — the batched ``iv_family`` path against the
  seed-style scalar loop (``model.ids`` point by point), same run, same
  machine: points/sec and the speed-up ratio per model and combined.
* **Ring-oscillator transient** — wall time, steps, Newton
  iterations/step, and the number of closed-form solves consumed
  (machine-independent work metric; the seed engine spent ~5 scalar
  solves per CNFET per iteration plus one per CNFET per recorded row).
* **MC device metrics** — a 2000-sample Ion/Ioff/Vth/gm campaign
  through the grouped ``ids_batch`` fast path (cold: includes the
  handful of shared fits; warm: fit cache populated) against the
  seed-style naive loop (one freshly fitted device per sample, scalar
  bias evaluation).  Declared in ``configs/mc_device.json``.
* **Adaptive transient** — two gates on the ring oscillator: (a)
  *parity*: the adaptive engine pinned to the legacy grid
  (``dt_min == dt_max == dt``) must reproduce the fixed-step
  regression waveform within 1e-9 V (the residual is Newton
  convergence noise); (b) *work*: at matched waveform accuracy against
  a converged reference, the adaptive trapezoidal engine must need
  >= 2x fewer Newton iterations than the legacy fixed-step BE engine.
  Declared in ``configs/transient_adaptive.json``; every cell of the
  accuracy ladder reports its waveform on one shared grid, so the
  runner's parity column against the converged-reference baseline
  *is* the waveform error.
* **Batch transient** — the lane-batched engine against sequential
  per-instance loops: a 7x7 gate-characterization grid and a
  256-sample MC ring campaign must each run >= 3x faster, and the
  per-lane waveforms of a heterogeneous fixed-grid ring batch must
  match the scalar engine within 1e-9 V.  Declared in
  ``configs/batch_transient.json`` and executed through the
  ``repro.exprunner`` experiment runner (as is the compiled-hot-path
  matrix via ``configs/compiled_hot_path.json``); this script renders
  the run tables into the section keys.  Every gated timing in the
  report is best-of-3 (``docs/experiments.md`` documents the
  robust-timing protocol).
* **Large circuit** — hierarchical blocks through both linear-solver
  backends: a 32-bit ripple-carry adder (DC + carry-ripple transient,
  sparse >= 3x dense on the transient, node-voltage parity <= 1e-9 V)
  and a 101-stage inverter-chain DC sweep (parity-gated; documents
  the dense-favoured side of the crossover).  Declared in
  ``configs/large_circuit.json``.
* **Partitioned transient** — the ISSUE 10 latency-exploiting
  partitioned engine vs the monolithic solve on a 32-bit RCA
  (``configs/partitioned_transient.json``): a quiescent *hold* run
  where nearly every block sleeps (partitioned + bypass >= 2x
  monolithic, gated) and a 1-input *pulse* run (recorded; bypass
  wins little when the carry chain is active, documented not gated).
  Parity gates on both: <= 5e-6 V with bypass (the documented bypass
  tolerance envelope), <= 1e-9 V with bypass off.
* **Out-of-core store** — a transient whose raw trace exceeds the
  1 MiB peak cap runs once in-memory and once through the chunked
  ``WaveformStore``; ``tracemalloc`` peaks must show the store run
  bounded (< cap, and >= 4x under the in-memory peak) and the
  decimated ``Dataset.summary`` of the lazy run must be
  bit-identical to the in-memory one.
* **Compiled hot path** — the ISSUE 6 kernel tier and worker
  sharding: the rca32 carry-ripple transient with compiled kernels +
  the tuned chord default against the PR-5 configuration re-measured
  in-run (numpy tier, ``jacobian_reuse_tol=0``, >= 3x gated), the
  stacked-VSC kernel parity between the numpy and compiled tiers
  (<= 1e-12 V gated), and the parallel efficiency of a 4-worker
  2000-sample MC campaign (>= 0.6, gated on machines with >= 4
  cores, recorded otherwise).
* **Service load** — the ISSUE 7 ``repro.service`` job server under a
  burst of concurrent HTTP clients submitting same-topology transient
  jobs: the coalescing scheduler must fold the burst into fewer
  engine dispatches than jobs (coalesce ratio >= 2x gated), served
  waveforms must match a direct in-process ``transient`` call within
  1e-9 V, and jobs/s plus p50/p95 per-job latency are recorded for
  the trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_report.py [--name NAME]
        [--check]

``--check`` exits non-zero when any measured figure regresses below
its acceptance floor: the ISSUE 1 batch speed-up / transient work
reduction, the ISSUE 2 MC campaign throughput/speed-up, the ISSUE 3
adaptive-transient parity and iteration ratio, the ISSUE 4
lane-batched speed-ups and per-lane waveform parity, the ISSUE 5
sparse-backend speed-up and parity, the ISSUE 6 compiled-hot-path
speed-up, kernel parity and MC parallel efficiency, the ISSUE 7
service coalesce ratio and served-waveform parity, or the ISSUE 10
partitioned-transient speed-up/parity and out-of-core peak-memory
gates (the Table I speed-up assertions live in the pytest suite that
`make bench` runs first).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.circuit.logic import LogicFamily, build_ring_oscillator
from repro.circuit.transient import initial_conditions_from_op, transient
from repro.experiments.workloads import (
    FIG67_VG_VALUES,
    PAPER_VDS_SWEEP,
    default_device_parameters,
)
from repro.pwl.device import CNFET
from repro.reference.sweep import sweep_iv_family

#: acceptance floors from ISSUE 1.  The family floor was originally
#: 5.0 with the combined speedup measuring 5.0-5.1 — zero headroom, so
#: the gate flaked on loaded single-core machines and was widened to
#: 4.0.  With every timed section now on best-of-N interleaved
#: measurement (the ISSUE 8 robust-timing protocol) the flake source
#: is gone, so the floor re-tightens to 4.3: three back-to-back runs
#: of the section on an unchanged checkout measured 4.54 / 4.59 /
#: 4.72, putting the floor ~5% under the observed minimum while still
#: catching any real batch-path regression (those land at 1-2x).
FAMILY_SPEEDUP_FLOOR = 4.3
TRANSIENT_WORK_REDUCTION_FLOOR = 1.5

#: acceptance floors from ISSUE 2 (variability campaigns)
MC_SAMPLES = 2000
MC_SPEEDUP_FLOOR = 10.0          # campaign vs naive per-sample loop
MC_SAMPLES_PER_S_FLOOR = 300.0   # cold-campaign device-metric throughput

#: acceptance floors from ISSUE 3 (adaptive transient)
ADAPTIVE_PARITY_TOL_V = 1e-9     # pinned-grid waveform deviation
ADAPTIVE_ITER_RATIO_FLOOR = 2.0  # legacy iterations / adaptive iterations

#: acceptance floors from ISSUE 4 (lane-batched transient engine)
BATCH_CHAR_SPEEDUP_FLOOR = 3.0   # 7x7 characterization grid
BATCH_MC_SPEEDUP_FLOOR = 3.0     # 256-sample MC ring campaign
BATCH_PARITY_TOL_V = 1e-9        # per-lane waveform parity, shared grid

#: acceptance floors from ISSUE 5 (hierarchy + sparse backend)
LARGE_SPARSE_SPEEDUP_FLOOR = 3.0  # sparse vs dense, 32-bit RCA transient
LARGE_PARITY_TOL_V = 1e-9         # dense-vs-sparse node-voltage parity

#: acceptance floors from ISSUE 6 (compiled kernel tier + sharding)
HOT_SPEEDUP_FLOOR = 3.0        # compiled+chord vs PR-5 config, rca32 transient
HOT_PARITY_TOL_V = 1e-12       # stacked-VSC kernel parity, numpy vs compiled
HOT_MC_EFFICIENCY_FLOOR = 0.6  # 4-worker campaign (gated at >= 4 cores)
HOT_MC_WORKERS = 4

#: acceptance floors from ISSUE 7 (simulation-as-a-service layer)
SERVICE_JOBS = 16                   # concurrent same-topology jobs
SERVICE_COALESCE_RATIO_FLOOR = 2.0  # jobs per engine dispatch
SERVICE_PARITY_TOL_V = 1e-9         # served vs direct-engine waveforms

#: acceptance floors from ISSUE 10 (partitioned latency-exploiting
#: transient + out-of-core waveform store).  The hold-workload
#: speedup measured 3-4.2x across repeated runs; the floor sits at
#: the ISSUE's >= 2x acceptance line.  The bypass parity envelope is
#: the documented tolerance semantics (DEFAULT_BYPASS_TOL plateaus),
#: measured ~3e-7 V on this workload.
PARTITION_SPEEDUP_FLOOR = 2.0        # partitioned+bypass vs monolithic, hold
PARTITION_BYPASS_PARITY_TOL_V = 5e-6  # waveform envelope with bypass on
PARTITION_EXACT_PARITY_TOL_V = 1e-9   # bypass off: solver-tolerance parity
STORE_PEAK_CAP_BYTES = 1 << 20        # out-of-core run peak allocation cap
STORE_PEAK_RATIO_FLOOR = 4.0          # in-memory peak / store-backed peak


def _best_of(fn, repeats: int, inner: int) -> float:
    """Best per-call wall time over ``repeats`` blocks of ``inner``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


#: Declarative experiment configs the runner-backed sections execute.
CONFIG_DIR = Path(__file__).parent / "configs"
#: Run directories for the runner-backed sections — wiped per
#: invocation (timings must be re-measured every run; resume is for
#: the CLI and the CI smoke, not for benchmarks), kept on disk so a
#: failing gate can be diagnosed from the run tables.
EXP_ROOT = Path(__file__).parent.parent / ".benchmarks" / "exp"


def _run_suite(config_name: str, prune_compiled: bool = False) -> dict:
    """Execute ``configs/<config_name>.json`` into fresh run dirs.

    Returns ``{experiment_name: ExperimentResult}``.  The plan's
    repetition-major ordering is what interleaves the compared cells
    (the same protocol the hand-written timing loops used), and the
    rendered sections read best-of-repetitions from the cell
    aggregates.  ``prune_compiled`` drops the ``compiled`` kernel
    level when no compiled backend is available, mirroring the old
    sections' conditional measurement.
    """
    import shutil

    from repro.exprunner import ExperimentRunner, load_config
    from repro.pwl.kernels import compiled_backend_available

    suite = load_config(CONFIG_DIR / f"{config_name}.json")
    suite_root = EXP_ROOT / config_name
    if suite_root.exists():
        shutil.rmtree(suite_root)
    results = {}
    for config in suite:
        if (prune_compiled and not compiled_backend_available()
                and "kernels" in config.factor_names):
            kernel_levels = dict(config.factors)["kernels"]
            config = config.with_factor(
                "kernels",
                tuple(v for v in kernel_levels if v != "compiled"))
        runner = ExperimentRunner(config, suite_root / config.name)
        results[config.name] = runner.run(resume=False)
    return results


def bench_iv_family() -> dict:
    """Batched vs scalar-loop family on the Fig. 6/7 workload."""
    vg = list(FIG67_VG_VALUES)
    vd = list(PAPER_VDS_SWEEP)
    points = len(vg) * len(vd)
    out = {"workload": "fig6/7 output families",
           "points_per_family": points, "models": {}}
    total_batch = total_scalar = 0.0
    for model in ("model1", "model2"):
        device = CNFET(default_device_parameters(), model=model)
        sweep_iv_family(device, vg, vd, use_batch=True)    # warm caches
        # Interleave batch and scalar blocks so CPU-frequency noise and
        # noisy neighbours bias both paths alike; keep the best block.
        batch_s = scalar_s = float("inf")
        for _ in range(12):
            batch_s = min(batch_s, _best_of(
                lambda: sweep_iv_family(device, vg, vd, use_batch=True),
                repeats=1, inner=200))
            scalar_s = min(scalar_s, _best_of(
                lambda: sweep_iv_family(device, vg, vd, use_batch=False),
                repeats=1, inner=40))
        total_batch += batch_s
        total_scalar += scalar_s
        out["models"][model] = {
            "batch_s": batch_s,
            "scalar_loop_s": scalar_s,
            "speedup": scalar_s / batch_s,
            "points_per_s_batch": points / batch_s,
            "points_per_s_scalar": points / scalar_s,
        }
    out["combined_speedup"] = total_scalar / total_batch
    return out


def _count_closed_form_solves(device: CNFET) -> tuple:
    """Instrument a device's solver; returns ([count] cell, restore)."""
    cell = [0]
    solver = device.solver
    orig_solve, orig_many = solver.solve, solver.solve_many

    def solve(*args, **kwargs):
        cell[0] += 1
        return orig_solve(*args, **kwargs)

    def solve_many(vg, vd, vs=0.0):
        result = orig_many(vg, vd, vs)
        cell[0] += int(np.asarray(result).size)
        return result

    solver.solve, solver.solve_many = solve, solve_many

    def restore():
        solver.solve, solver.solve_many = orig_solve, orig_many

    return cell, restore


def bench_ring_transient() -> dict:
    """Ring-oscillator transient wall time and Newton work."""
    family = LogicFamily.default(vdd=0.6)
    ring, _ = build_ring_oscillator(family, stages=3)
    x0 = initial_conditions_from_op(ring, {"n0": 0.0, "n1": 0.6})

    def run(stats=None):
        return transient(ring, tstop=1.5e-10, dt=2e-12, x0=x0,
                         method="be", stats=stats)

    run()                                                  # warm caches
    wall = _best_of(run, repeats=7, inner=1)
    stats: dict = {}
    devices = {id(el.backend.device): el.backend.device
               for el in ring.elements if hasattr(el, "backend")}
    instrumented = [_count_closed_form_solves(dev)
                    for dev in devices.values()]
    try:
        run(stats)
    finally:
        for _cell, restore in instrumented:
            restore()
    solves = sum(cell[0] for cell, _restore in instrumented)
    steps = stats["steps"]
    iterations = stats["iterations"]
    n_cnfets = sum(1 for el in ring.elements if hasattr(el, "backend"))
    # Seed engine work for the same iteration count: 5 scalar solves per
    # CNFET per Newton iteration (evaluate + 4 charge solves) plus one
    # per CNFET per recorded row for the current traces.
    seed_equiv = iterations * n_cnfets * 5 + (steps + 1) * n_cnfets
    return {
        "workload": "3-stage CNFET ring oscillator, BE, 75 steps",
        "wall_s": wall,
        "steps": steps,
        "newton_iterations": iterations,
        "iterations_per_step": iterations / steps,
        "closed_form_solves": solves,
        "seed_equivalent_solves": seed_equiv,
        "work_reduction": seed_equiv / solves,
        "seed_wall_s_measured_pre_change": 0.0647,
    }


def bench_adaptive_transient() -> dict:
    """ISSUE 3 gates on the 3-stage ring oscillator.

    A thin driver over ``configs/transient_adaptive.json``:

    *Parity*: the ``pinned_parity`` experiment runs the adaptive
    engine pinned to the legacy fixed grid against the legacy engine;
    the runner's parity column (waveforms in the signature) must stay
    within ``ADAPTIVE_PARITY_TOL_V``.

    *Work*: the ``matched_accuracy`` experiment runs a converged
    trapezoidal reference (the baseline cell), the adaptive engine at
    default-ish tolerance, and a fixed-step BE dt ladder — all
    reporting their waveform on one shared grid, so each cell's
    parity column *is* its waveform error vs the reference.  The
    ladder is walked down until it matches the adaptive accuracy; the
    Newton-iteration ratio at the match point is the gated speed-up.
    """
    results = _run_suite("transient_adaptive")
    pinned = results["pinned_parity"].cell(engine="pinned")

    acc = results["matched_accuracy"]
    adaptive = acc.cell(mode="adaptive")
    err_adaptive = adaptive["parity_max"]

    ladder = [mode for mode in dict(acc.config.factors)["mode"]
              if mode.startswith("fixed_")]
    matched = False
    fixed_dt = fixed_iters = err_fixed = float("nan")
    for mode in ladder:             # config order: coarse -> fine
        cell = acc.cell(mode=mode)
        fixed_dt = float(mode[len("fixed_"):])
        fixed_iters = cell["newton_iterations"]
        err_fixed = cell["parity_max"]
        if err_fixed <= err_adaptive:
            matched = True
            break
    # If even the finest dt stays less accurate, the ratio at the
    # finest dt *understates* the true equal-accuracy ratio — still a
    # valid lower bound for the gate.
    ratio = fixed_iters / adaptive["newton_iterations"]
    reference = acc.cell(mode="reference")
    return {
        "workload": "3-stage CNFET ring oscillator (ISSUE 3 gates)",
        "run_dir": str(EXP_ROOT / "transient_adaptive"),
        "parity_pinned_grid_v": pinned["parity_max"],
        "parity_tol_v": ADAPTIVE_PARITY_TOL_V,
        "reference": {"method": "trap", "dt": 2.5e-15,
                      "iterations": reference["newton_iterations"]},
        "adaptive": {
            "method": "trap", "rtol": 3e-4,
            "steps": adaptive["metrics"]["steps"],
            "iterations": adaptive["newton_iterations"],
            "rejected_lte": adaptive["metrics"]["rejected_lte"],
            "waveform_error_v": err_adaptive,
        },
        "fixed_at_match": {
            "method": "be", "dt": fixed_dt,
            "iterations": fixed_iters,
            "waveform_error_v": err_fixed,
            "matched_accuracy": matched,
        },
        "iteration_ratio": ratio,
    }


def bench_mc_device() -> dict:
    """2000-sample device-metric MC campaign vs the naive loop.

    A thin driver over ``configs/mc_device.json`` — the cold/warm
    campaign and the seed-style naive loop run as an ``engine`` factor
    matrix through ``repro.exprunner`` (three interleaved repetitions,
    best-of-N).  The naive baseline is measured on a subset: its cost
    is strictly per-sample (every sample refits its own device — the
    pre-cache construction behaviour — then walks the bias grid with
    scalar ``ids`` calls), so the per-sample rate extrapolates without
    bias and the benchmark stays under a minute.  The campaign
    quantises devices, so its parity column vs the naive baseline
    records the documented quantisation envelope (informational, not
    a gate).
    """
    results = _run_suite("mc_device")
    result = results["mc_device"]
    cold = result.cell(engine="campaign_cold")
    warm = result.cell(engine="campaign_warm")
    naive = result.cell(engine="naive")
    cached = result.cell(engine="naive_cached")

    samples = int(cold["metrics"]["samples_evaluated"])
    naive_n = int(naive["metrics"]["samples_evaluated"])
    cold_s = cold["wall_s_min"]
    warm_s = warm["wall_s_min"]
    naive_per_sample_s = naive["wall_s_min"] / naive_n
    cached_scalar_per_sample_s = cached["wall_s_min"] / naive_n
    naive_total_s = naive_per_sample_s * samples
    return {
        "workload": f"{samples}-sample Ion/Ioff/Vth/gm campaign, "
                    f"default device space",
        "run_dir": str(EXP_ROOT / "mc_device"),
        "samples": samples,
        "fits": int(cold["metrics"]["fits"]),
        "distinct_devices": int(cold["metrics"]["distinct_devices"]),
        "campaign_cold_s": cold_s,
        "campaign_cold_s_all": cold["wall_s_all"],
        "campaign_warm_s": warm_s,
        "samples_per_s_cold": samples / cold_s,
        "samples_per_s_warm": samples / warm_s,
        "naive_per_sample_s": naive_per_sample_s,
        "naive_projected_s": naive_total_s,
        "naive_cached_scalar_per_sample_s": cached_scalar_per_sample_s,
        "speedup_vs_naive": naive_total_s / cold_s,
        "speedup_vs_cached_scalar":
            cached_scalar_per_sample_s * samples / warm_s,
        "quantization_rel_err": cold["parity_max"],
    }


def bench_batch_transient() -> dict:
    """ISSUE 4 gates: the lane-batched engine vs per-instance loops.

    A thin driver over ``configs/batch_transient.json`` — the
    characterization grid, MC ring campaign and lane-parity workloads
    are declared there and executed through ``repro.exprunner`` (three
    interleaved repetitions per timed cell, best-of-N aggregation);
    this function only renders the run tables into the section's
    historical keys.  The parity figures *are* the runner's parity
    columns: each cell's signature compared against its declared
    baseline cell (``BATCH_PARITY_TOL_V`` for the per-lane waveforms).
    """
    results = _run_suite("batch_transient")
    char, mc, lanes = (results["char_grid"], results["mc_ring"],
                       results["ring_lanes"])

    char_batch = char.cell(engine="batch")
    char_seq = char.cell(engine="sequential")
    mc_batch = mc.cell(engine="batch")
    mc_seq = mc.cell(engine="sequential")
    lanes_batch = lanes.cell(engine="batch")

    return {
        "run_dir": str(EXP_ROOT / "batch_transient"),
        "characterization_grid": {
            "workload": "nand2 7x7 load x slew grid, adaptive trap",
            "lanes": int(char_batch["metrics"]["lanes"]),
            "batch_s": char_batch["wall_s_min"],
            "sequential_s": char_seq["wall_s_min"],
            "batch_s_all": char_batch["wall_s_all"],
            "sequential_s_all": char_seq["wall_s_all"],
            "speedup": (char_seq["wall_s_min"]
                        / char_batch["wall_s_min"]),
        },
        "mc_ring": {
            "workload": "256-sample 3-stage ring MC "
                        "(RingOscillatorEvaluator)",
            "samples": int(mc_batch["metrics"]["samples"]),
            "distinct_keys": int(mc_batch["metrics"]["distinct_keys"]),
            "batch_s": mc_batch["wall_s_min"],
            "sequential_s": mc_seq["wall_s_min"],
            "batch_s_all": mc_batch["wall_s_all"],
            "sequential_s_all": mc_seq["wall_s_all"],
            "speedup": mc_seq["wall_s_min"] / mc_batch["wall_s_min"],
            "period_metric_max_rel_diff": mc_batch["parity_max"],
        },
        "parity": {
            "workload": "16 heterogeneous MC ring lanes, fixed grid, "
                        "tight Newton",
            "max_waveform_dv_v": lanes_batch["parity_max"],
            "tol_v": BATCH_PARITY_TOL_V,
        },
    }


def bench_large_circuit() -> dict:
    """ISSUE 5 gates: hierarchical blocks through both solver backends.

    A thin driver over ``configs/large_circuit.json``:

    * **32-bit ripple-carry adder** (1152 CNFETs, ~700 unknowns, built
      from NAND2 subcircuits three hierarchy levels deep): DC from
      zeros (``rca32_dc``) and a carry-ripple transient
      (``rca32_tran``: ``A = all ones, B = 0``, pulse on ``cin`` —
      the worst-case transition walks the carry through every stage)
      through the dense and sparse backends, three interleaved
      repetitions each.  The transient is the adaptive engine pinned
      to a shared grid (``dt_min == dt_max``) so both backends
      integrate the same time points and the parity column measures
      the backends, not interpolation.  Gates: sparse >=
      ``LARGE_SPARSE_SPEEDUP_FLOOR`` x dense on the transient (the
      largest bench circuit), DC and waveform parity <=
      ``LARGE_PARITY_TOL_V``.
    * **101-stage inverter chain DC sweep** (``chain101_sweep``, 202
      CNFETs, ~100 unknowns): 21-point supply-ramp sweep through both
      backends (a supply ramp keeps every stage saturated; an *input*
      sweep would cross the chain's metastable threshold).  Below the
      sparse crossover dimension dense is expected to win — the
      numbers document the crossover; only parity is gated.
    """
    results = _run_suite("large_circuit")
    dc_dense = results["rca32_dc"].cell(backend="dense")
    dc_sparse = results["rca32_dc"].cell(backend="sparse")
    tr_dense = results["rca32_tran"].cell(backend="dense")
    tr_sparse = results["rca32_tran"].cell(backend="sparse")
    ch_dense = results["chain101_sweep"].cell(backend="dense")
    ch_sparse = results["chain101_sweep"].cell(backend="sparse")

    bits = 32
    chain_points = int(ch_dense["metrics"]["points"])
    return {
        "run_dir": str(EXP_ROOT / "large_circuit"),
        "rca32": {
            "workload": "32-bit CNFET ripple-carry adder, carry "
                        "ripple transient (pinned adaptive grid)",
            "dimension": int(tr_dense["metrics"]["dimension"]),
            # 9 NAND2 per full adder x 4 transistors = 36 per bit
            "cnfets": 36 * bits,
            "dc": {
                "dense_s": dc_dense["wall_s_min"],
                "sparse_s": dc_sparse["wall_s_min"],
                "speedup": (dc_dense["wall_s_min"]
                            / dc_sparse["wall_s_min"]),
                "parity_v": dc_sparse["parity_max"],
            },
            "transient": {
                "steps": int(tr_dense["metrics"]["steps"]),
                "newton_iterations": int(
                    tr_dense["newton_iterations"]),
                "dense_s": tr_dense["wall_s_min"],
                "sparse_s": tr_sparse["wall_s_min"],
                "dense_s_all": tr_dense["wall_s_all"],
                "sparse_s_all": tr_sparse["wall_s_all"],
                "speedup": (tr_dense["wall_s_min"]
                            / tr_sparse["wall_s_min"]),
                "parity_v": tr_sparse["parity_max"],
            },
        },
        "inverter_chain101": {
            "workload": "101-stage CNFET inverter chain, 21-point DC "
                        "supply-ramp sweep",
            "dimension": int(ch_dense["metrics"]["dimension"]),
            "dense_s": ch_dense["wall_s_min"],
            "sparse_s": ch_sparse["wall_s_min"],
            "dense_points_per_s": (chain_points
                                   / ch_dense["wall_s_min"]),
            "sparse_points_per_s": (chain_points
                                    / ch_sparse["wall_s_min"]),
            "parity_v": ch_sparse["parity_max"],
            "note": "below the sparse crossover dimension; dense is "
                    "expected to win here (documented, not gated)",
        },
        # Sanity: with A=ones, B=0 the rising cin flips s0 from VDD to
        # 0 within a few ps, so the carry ripple genuinely launched.
        "carry_launched_ok": bool(
            tr_dense["metrics"]["probe_final_v"] < 0.3),
    }


def bench_partitioned_transient() -> dict:
    """ISSUE 10 gates: the partitioned latency-exploiting engine.

    A thin driver over ``configs/partitioned_transient.json`` — two
    ``solver`` factor matrices (monolithic | partitioned |
    partitioned_nobypass, three interleaved repetitions each) on a
    32-bit ripple-carry adder holding ``A=3, B=5``:

    * ``rca32_hold`` — quiescent stimulus: after the DC point nothing
      switches, so the latency bypass freezes nearly every block and
      the interface solve is reused step over step.  Gates:
      partitioned+bypass >= ``PARTITION_SPEEDUP_FLOOR`` x monolithic,
      bypass parity <= ``PARTITION_BYPASS_PARITY_TOL_V``, nobypass
      parity <= ``PARTITION_EXACT_PARITY_TOL_V``, and the bypass
      actually engaged (bypassed block-steps dominate, interface
      solves reused).
    * ``rca32_pulse`` — one input pulses, the carry chain wakes block
      after block: bypass wins little here by design (measured around
      break-even, 0.5-2x run to run), so the speedup is recorded, not
      gated; both parity gates still apply.
    """
    results = _run_suite("partitioned_transient")
    out: dict = {"run_dir": str(EXP_ROOT / "partitioned_transient")}
    for exp_name, label, gated in (
            ("rca32_hold", "hold", True),
            ("rca32_pulse", "pulse", False)):
        result = results[exp_name]
        mono = result.cell(solver="monolithic")
        part = result.cell(solver="partitioned")
        exact = result.cell(solver="partitioned_nobypass")
        active = part["metrics"]["block_steps_active"]
        bypassed = part["metrics"]["block_steps_bypassed"]
        out[label] = {
            "workload": f"32-bit RCA (A=3, B=5), {label} stimulus, "
                        f"fixed-step trap",
            "gated": gated,
            "monolithic_s": mono["wall_s_min"],
            "partitioned_s": part["wall_s_min"],
            "nobypass_s": exact["wall_s_min"],
            "monolithic_s_all": mono["wall_s_all"],
            "partitioned_s_all": part["wall_s_all"],
            "speedup": mono["wall_s_min"] / part["wall_s_min"],
            "speedup_nobypass": (mono["wall_s_min"]
                                 / exact["wall_s_min"]),
            "parity_bypass_v": part["parity_max"],
            "parity_nobypass_v": exact["parity_max"],
            "block_steps_active": int(active),
            "block_steps_bypassed": int(bypassed),
            "bypass_fraction": (bypassed / max(active + bypassed, 1)),
            "interface_solve_reuses": int(
                part["metrics"]["interface_solve_reuses"]),
            "relax_escalations": int(
                part["metrics"]["relax_escalations"]),
        }
    return out


def bench_out_of_core() -> dict:
    """ISSUE 10 gate: bounded peak memory for a store-backed transient.

    One transient whose raw trace matrix exceeds
    ``STORE_PEAK_CAP_BYTES`` runs twice — in-memory, then through the
    chunked on-disk :class:`~repro.circuit.store.WaveformStore` — each
    under ``tracemalloc``.  Hand-written (not a runner config): it
    measures allocation peaks, which a forked or instrumented runner
    would perturb.  Gates: the store-backed peak stays under the cap
    *and* at least ``STORE_PEAK_RATIO_FLOOR`` x below the in-memory
    peak, and the decimated ``Dataset.summary`` of the lazy run is
    bit-identical to the in-memory one (the lazy Dataset contract).
    The workload is a 16-branch RC star — wide enough rows that 10k
    fixed steps push the raw trace well past the cap while each step
    stays a cheap linear solve.
    """
    import shutil
    import tempfile
    import tracemalloc

    from repro.circuit import (
        Capacitor,
        Circuit,
        Resistor,
        VoltageSource,
    )
    from repro.circuit.waveforms import Pulse

    def star(n: int = 16) -> Circuit:
        c = Circuit("rc-star")
        c.add(VoltageSource("v1", "in", "0",
                            Pulse(0.0, 1.0, delay=0.0, rise=1e-15,
                                  width=1e-6, period=2e-6)))
        for i in range(n):
            c.add(Resistor(f"r{i}", "in", f"n{i}",
                           1000.0 * (1 + 0.1 * i)))
            c.add(Capacitor(f"c{i}", f"n{i}", "0", 1e-12))
        return c

    tstop, dt = 1e-7, 1e-11          # 10k fixed steps
    probe = "v(n0)"

    tracemalloc.start()
    ds_mem = transient(star(), tstop=tstop, dt=dt,
                       record_currents=False)
    summary_mem = ds_mem.summary(probe)
    peak_mem = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()

    store_dir = tempfile.mkdtemp(prefix="bench-store-")
    try:
        tracemalloc.start()
        ds_disk = transient(star(), tstop=tstop, dt=dt,
                            record_currents=False, store=store_dir,
                            store_chunk_rows=256)
        summary_disk = ds_disk.summary(probe)
        peak_disk = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()

        rows = int(ds_disk.axis.size)
        columns = star().dimension() + 1       # time + solution vector
        raw_bytes = rows * columns * 8
        summaries_identical = (
            summary_mem.keys() == summary_disk.keys()
            and all(np.array_equal(summary_mem[k], summary_disk[k])
                    for k in summary_mem))
        chunks = len(list(Path(store_dir).glob("chunk_*.npy")))
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    return {
        "workload": "16-branch RC star, 10k fixed steps, "
                    "in-memory vs chunked store (tracemalloc peaks)",
        "rows": rows,
        "columns": columns,
        "raw_trace_bytes": raw_bytes,
        "chunk_rows": 256,
        "chunks_written": chunks,
        "peak_in_memory_bytes": int(peak_mem),
        "peak_store_bytes": int(peak_disk),
        "peak_cap_bytes": STORE_PEAK_CAP_BYTES,
        "peak_ratio": peak_mem / max(peak_disk, 1),
        "summaries_identical": bool(summaries_identical),
    }


def bench_compiled_hot_path() -> dict:
    """ISSUE 6 gates: the compiled kernel tier and worker sharding.

    * **rca32 transient** and **kernel parity** — a thin driver over
      ``configs/compiled_hot_path.json``: the 32-bit RCA carry-ripple
      transient runs as a ``kernels x chord`` factor matrix (three
      interleaved repetitions; the PR-5 floor — numpy tier,
      ``jacobian_reuse_tol=0`` — is the in-run baseline cell, keeping
      the gate machine-load-independent), and the stacked-VSC bias
      sweep runs per kernel tier with its parity column as the
      ``HOT_PARITY_TOL_V`` gate (measured ~1e-16).  The rca32
      *waveform* deviation vs the floor cell is recorded for
      information only: Newton trajectories diverge chaotically from
      ulp-level differences, so waveform deltas measure trajectory
      divergence, not kernel accuracy.  When no compiled backend is
      available the ``compiled`` level is pruned from the matrix and
      only the floor cells are measured.
    * **MC scaling** — a 2000-sample device campaign through the
      fork-sharded chunk loop at 1 vs ``HOT_MC_WORKERS`` workers
      (fit cache pre-warmed so workers inherit it copy-on-write);
      parallel efficiency ``t1 / (w * tw)`` is gated on machines with
      at least that many cores and recorded otherwise.  Hand-written
      (not a runner config): it measures the sharding machinery
      itself, which the runner would perturb.
    """
    import os

    from repro.exprunner import robust_time
    from repro.pwl.kernels import compiled_backend_available
    from repro.variability.campaign import (
        Campaign,
        CampaignConfig,
        DeviceMetricsEvaluator,
    )
    from repro.variability.params import default_device_space

    compiled_ok = compiled_backend_available()

    # -- (a) + (b): runner-backed sections -----------------------------
    results = _run_suite("compiled_hot_path", prune_compiled=True)
    rca_result = results["rca32"]
    floor_cell = rca_result.cell(kernels="numpy", chord="off")

    rca32: dict = {
        "workload": "32-bit RCA carry-ripple transient, sparse "
                    "backend, pinned adaptive grid",
        "floor": "numpy kernel tier + jacobian_reuse_tol=0 "
                 "(the PR-5 configuration, re-measured in-run)",
        "run_dir": str(EXP_ROOT / "compiled_hot_path"),
        "numpy_reuse_off_s": floor_cell["wall_s_min"],
        "numpy_reuse_off_s_all": floor_cell["wall_s_all"],
        "floor_newton_iterations": int(
            floor_cell["newton_iterations"]),
    }
    if compiled_ok:
        tuned_cell = rca_result.cell(kernels="compiled", chord="on")
        rca32["compiled_tuned_s"] = tuned_cell["wall_s_min"]
        rca32["compiled_tuned_s_all"] = tuned_cell["wall_s_all"]
        rca32["tuned_newton_iterations"] = int(
            tuned_cell["newton_iterations"])
        rca32["speedup"] = (floor_cell["wall_s_min"]
                            / tuned_cell["wall_s_min"])
        rca32["waveform_dv_v_informational"] = \
            tuned_cell["parity_max"]

    parity: dict = {
        "workload": "stacked-VSC solve, model1+model2 lanes, "
                    "25x25 bias grid, fresh hints per tier",
        "tol_v": HOT_PARITY_TOL_V,
    }
    if compiled_ok:
        vsc_result = results["vsc_parity"]
        parity["max_dv_v"] = \
            vsc_result.cell(kernels="compiled")["parity_max"]

    # -- (c) MC scaling through the fork-sharded chunk loop ------------
    space = default_device_space()
    config = CampaignConfig(name="hot-path-mc", n_samples=MC_SAMPLES,
                            seed=11, sampler="mc", chunk_size=125)
    # Pre-warm the shared fit cache so forked workers inherit it
    # copy-on-write and the measurement times the chunk loop.  Both
    # arms best-of-3: the efficiency gate divides two wall times, so a
    # load spike in either single-shot measurement used to move it.
    Campaign(config, space, DeviceMetricsEvaluator(space)).run()
    serial_s = robust_time(
        lambda: Campaign(config, space,
                         DeviceMetricsEvaluator(space)).run(workers=1),
        repeats=3)["best_s"]
    sharded_s = robust_time(
        lambda: Campaign(config, space,
                         DeviceMetricsEvaluator(space)).run(
                             workers=HOT_MC_WORKERS),
        repeats=3)["best_s"]
    cores = os.cpu_count() or 1
    mc_scaling = {
        "workload": f"{MC_SAMPLES}-sample device campaign, "
                    f"{config.chunk_size}-sample chunks, fork-sharded",
        "workers": HOT_MC_WORKERS,
        "cores": cores,
        "serial_s": serial_s,
        "sharded_s": sharded_s,
        "parallel_efficiency": serial_s / (HOT_MC_WORKERS * sharded_s),
        "gated": cores >= HOT_MC_WORKERS,
    }

    return {
        "compiled_available": compiled_ok,
        "rca32_transient": rca32,
        "kernel_parity": parity,
        "mc_scaling": mc_scaling,
    }


def bench_service_load() -> dict:
    """ISSUE 7 gate: the ``repro.service`` job server under load.

    Starts an in-process :class:`~repro.service.JobServer` (two
    workers, 200 ms batching window) and fires ``SERVICE_JOBS``
    concurrent HTTP clients, each submitting a transient job over the
    same RC topology with a distinct resistor value.  Identical
    topology + identical analysis grid puts every job in one
    coalescing group, so the scheduler must fold the burst into fewer
    ``batch_transient`` dispatches than jobs (coalesce ratio
    ``jobs / engine dispatches`` >= 2x, gated).  Three served
    waveforms are replayed through a direct in-process ``transient``
    call on the same deck and must match within 1e-9 V (gated — a
    cache or demux bug that serves the wrong lane fails here, not in
    production).  Jobs/s and p50/p95 per-job latency are recorded for
    the trajectory; they are machine figures, not gates.
    """
    import threading

    from repro.circuit.parser import parse_netlist
    from repro.service import JobServer, ServiceClient

    tstop, dt = 2e-8, 2e-10

    def deck(r_ohm: float) -> str:
        return ("* service-load RC lowpass\n"
                "V1 in 0 pulse(0 1 1e-9 1e-9 1e-9 1e-8 4e-8)\n"
                f"R1 in out {r_ohm:.6g}\n"
                "C1 out 0 1e-12\n")

    specs = [{"kind": "transient", "deck": deck(1e3 + 37.0 * i),
              "tstop": tstop, "dt": dt}
             for i in range(SERVICE_JOBS)]

    results: list = [None] * len(specs)
    latencies = [float("nan")] * len(specs)

    with JobServer(workers=2, batch_window=0.2,
                   cache_size=0) as server:
        host, port = server.start()
        base_url = f"http://{host}:{port}"

        def drive(index: int) -> None:
            client = ServiceClient(base_url)
            start = time.perf_counter()
            results[index] = client.run(specs[index], timeout=120.0)
            latencies[index] = time.perf_counter() - start

        wall_start = time.perf_counter()
        threads = [threading.Thread(target=drive, args=(i,))
                   for i in range(len(specs))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_s = time.perf_counter() - wall_start

        probe = ServiceClient(base_url)
        dispatches = probe.metric_value(
            "service_engine_dispatches_total")
        coalesced = probe.metric_value(
            "service_jobs_coalesced_total")

    if any(r is None for r in results):
        raise RuntimeError("service benchmark: not all jobs completed")

    max_dv = 0.0
    for spec in (specs[0], specs[len(specs) // 2], specs[-1]):
        index = specs.index(spec)
        served = results[index]["result"]
        circuit = parse_netlist(spec["deck"]).circuit
        direct = transient(circuit, tstop, dt=dt, method="trap",
                           record_currents="sources")
        for name, values in served["traces"].items():
            dv = float(np.max(np.abs(
                np.asarray(values) - direct.trace(name))))
            max_dv = max(max_dv, dv)

    ordered = sorted(latencies)
    coalesce_ratio = len(specs) / max(dispatches, 1.0)
    return {
        "workload": f"{len(specs)} concurrent same-topology transient "
                    f"jobs over HTTP, 2 workers, 0.2 s batch window",
        "floor": f"coalesce ratio >= {SERVICE_COALESCE_RATIO_FLOOR}x, "
                 f"served-vs-direct parity <= "
                 f"{SERVICE_PARITY_TOL_V:.0e} V",
        "jobs": len(specs),
        "engine_dispatches": int(dispatches),
        "jobs_coalesced": int(coalesced),
        "coalesce_ratio": coalesce_ratio,
        "jobs_per_s": len(specs) / wall_s,
        "latency_p50_s": ordered[len(ordered) // 2],
        "latency_p95_s": ordered[int(len(ordered) * 0.95)],
        "parity_v": max_dv,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--name", default="perf",
                        help="suffix of the BENCH_<name>.json artifact")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero on acceptance regressions")
    parser.add_argument("--out-dir", default=str(Path(__file__).parent.parent),
                        help="directory for the JSON artifact")
    args = parser.parse_args(argv)

    report = {
        "name": args.name,
        "created_unix": time.time(),
        "machine": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
            "processor": platform.processor() or "unknown",
        },
        "iv_family": bench_iv_family(),
        "transient_ring": bench_ring_transient(),
        "transient_adaptive": bench_adaptive_transient(),
        "mc_device": bench_mc_device(),
        "batch_transient": bench_batch_transient(),
        "large_circuit": bench_large_circuit(),
        "partitioned_transient": bench_partitioned_transient(),
        "out_of_core_store": bench_out_of_core(),
        "compiled_hot_path": bench_compiled_hot_path(),
        "service_load": bench_service_load(),
    }

    path = Path(args.out_dir) / f"BENCH_{args.name}.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    fam = report["iv_family"]
    ring = report["transient_ring"]
    print(f"wrote {path}")
    for model, row in fam["models"].items():
        print(f"  {model}: {row['points_per_s_batch']:,.0f} pts/s batch "
              f"vs {row['points_per_s_scalar']:,.0f} scalar "
              f"({row['speedup']:.2f}x)")
    print(f"  combined family speedup: {fam['combined_speedup']:.2f}x")
    print(f"  ring transient: {ring['wall_s']*1e3:.1f} ms, "
          f"{ring['iterations_per_step']:.2f} Newton iters/step, "
          f"work reduction {ring['work_reduction']:.2f}x")
    ada = report["transient_adaptive"]
    print(f"  adaptive transient: pinned-grid parity "
          f"{ada['parity_pinned_grid_v']:.1e} V, "
          f"{ada['iteration_ratio']:.1f}x fewer Newton iterations than "
          f"legacy fixed-step at matched accuracy")
    mc = report["mc_device"]
    print(f"  MC device metrics: {mc['samples_per_s_cold']:,.0f} "
          f"samples/s cold ({mc['fits']} fits, "
          f"{mc['distinct_devices']} devices), "
          f"{mc['samples_per_s_warm']:,.0f} warm; "
          f"{mc['speedup_vs_naive']:.1f}x vs naive loop")
    bt = report["batch_transient"]
    print(f"  batch transient: characterization grid "
          f"{bt['characterization_grid']['speedup']:.1f}x, MC ring "
          f"{bt['mc_ring']['speedup']:.1f}x vs sequential; per-lane "
          f"parity {bt['parity']['max_waveform_dv_v']:.1e} V")
    lc = report["large_circuit"]
    rca = lc["rca32"]
    chain = lc["inverter_chain101"]
    print(f"  large circuit: rca32 (dim {rca['dimension']}) transient "
          f"sparse {rca['transient']['speedup']:.1f}x dense "
          f"(parity {rca['transient']['parity_v']:.1e} V), DC "
          f"{rca['dc']['speedup']:.1f}x; 101-chain sweep parity "
          f"{chain['parity_v']:.1e} V")
    pt = report["partitioned_transient"]
    print(f"  partitioned transient: hold {pt['hold']['speedup']:.1f}x "
          f"({pt['hold']['bypass_fraction']*100:.0f}% block-steps "
          f"bypassed, parity {pt['hold']['parity_bypass_v']:.1e} V "
          f"bypass / {pt['hold']['parity_nobypass_v']:.1e} V exact); "
          f"pulse {pt['pulse']['speedup']:.1f}x (recorded, not gated)")
    oc = report["out_of_core_store"]
    print(f"  out-of-core store: {oc['raw_trace_bytes']/2**20:.1f} MiB "
          f"raw trace, peak {oc['peak_store_bytes']/2**20:.2f} MiB "
          f"store-backed vs {oc['peak_in_memory_bytes']/2**20:.2f} MiB "
          f"in-memory ({oc['peak_ratio']:.1f}x), summaries "
          f"{'identical' if oc['summaries_identical'] else 'DIVERGED'}")
    hp = report["compiled_hot_path"]
    if hp["compiled_available"]:
        print(f"  compiled hot path: rca32 transient "
              f"{hp['rca32_transient']['speedup']:.2f}x vs PR-5 "
              f"floor, kernel parity "
              f"{hp['kernel_parity']['max_dv_v']:.1e} V; "
              f"{hp['mc_scaling']['workers']}-worker MC efficiency "
              f"{hp['mc_scaling']['parallel_efficiency']:.2f} "
              f"({hp['mc_scaling']['cores']} cores"
              f"{'' if hp['mc_scaling']['gated'] else ', not gated'})")
    else:
        print("  compiled hot path: no compiled tier available "
              "(numba absent and no working C compiler)")
    sv = report["service_load"]
    print(f"  service load: {sv['jobs']} jobs in "
          f"{sv['engine_dispatches']} engine dispatches "
          f"({sv['coalesce_ratio']:.1f}x coalesce), "
          f"{sv['jobs_per_s']:.1f} jobs/s, p50 "
          f"{sv['latency_p50_s']*1e3:.0f} ms / p95 "
          f"{sv['latency_p95_s']*1e3:.0f} ms, served parity "
          f"{sv['parity_v']:.1e} V")

    if args.check:
        failures = []
        if fam["combined_speedup"] < FAMILY_SPEEDUP_FLOOR:
            failures.append(
                f"family speedup {fam['combined_speedup']:.2f}x < "
                f"{FAMILY_SPEEDUP_FLOOR}x")
        if ring["work_reduction"] < TRANSIENT_WORK_REDUCTION_FLOOR:
            failures.append(
                f"transient work reduction {ring['work_reduction']:.2f}x "
                f"< {TRANSIENT_WORK_REDUCTION_FLOOR}x")
        if mc["speedup_vs_naive"] < MC_SPEEDUP_FLOOR:
            failures.append(
                f"MC campaign speedup {mc['speedup_vs_naive']:.1f}x < "
                f"{MC_SPEEDUP_FLOOR}x")
        if mc["samples_per_s_cold"] < MC_SAMPLES_PER_S_FLOOR:
            failures.append(
                f"MC throughput {mc['samples_per_s_cold']:.0f} samples/s "
                f"< {MC_SAMPLES_PER_S_FLOOR}")
        if ada["parity_pinned_grid_v"] > ADAPTIVE_PARITY_TOL_V:
            failures.append(
                f"adaptive pinned-grid parity "
                f"{ada['parity_pinned_grid_v']:.2e} V > "
                f"{ADAPTIVE_PARITY_TOL_V:.0e} V")
        if ada["iteration_ratio"] < ADAPTIVE_ITER_RATIO_FLOOR:
            failures.append(
                f"adaptive iteration ratio {ada['iteration_ratio']:.2f}x "
                f"< {ADAPTIVE_ITER_RATIO_FLOOR}x")
        if bt["characterization_grid"]["speedup"] \
                < BATCH_CHAR_SPEEDUP_FLOOR:
            failures.append(
                f"batched characterization grid speedup "
                f"{bt['characterization_grid']['speedup']:.2f}x < "
                f"{BATCH_CHAR_SPEEDUP_FLOOR}x")
        if bt["mc_ring"]["speedup"] < BATCH_MC_SPEEDUP_FLOOR:
            failures.append(
                f"batched MC ring speedup "
                f"{bt['mc_ring']['speedup']:.2f}x < "
                f"{BATCH_MC_SPEEDUP_FLOOR}x")
        if bt["parity"]["max_waveform_dv_v"] > BATCH_PARITY_TOL_V:
            failures.append(
                f"batch per-lane waveform parity "
                f"{bt['parity']['max_waveform_dv_v']:.2e} V > "
                f"{BATCH_PARITY_TOL_V:.0e} V")
        if rca["transient"]["speedup"] < LARGE_SPARSE_SPEEDUP_FLOOR:
            failures.append(
                f"rca32 sparse transient speedup "
                f"{rca['transient']['speedup']:.2f}x < "
                f"{LARGE_SPARSE_SPEEDUP_FLOOR}x")
        for label, parity in (
                ("rca32 DC", rca["dc"]["parity_v"]),
                ("rca32 transient", rca["transient"]["parity_v"]),
                ("101-chain sweep", chain["parity_v"])):
            if parity > LARGE_PARITY_TOL_V:
                failures.append(
                    f"{label} dense-vs-sparse parity {parity:.2e} V > "
                    f"{LARGE_PARITY_TOL_V:.0e} V")
        if not lc["carry_launched_ok"]:
            failures.append("rca32 carry ripple did not launch "
                            "(s0 failed to fall)")
        if pt["hold"]["speedup"] < PARTITION_SPEEDUP_FLOOR:
            failures.append(
                f"partitioned hold speedup "
                f"{pt['hold']['speedup']:.2f}x < "
                f"{PARTITION_SPEEDUP_FLOOR}x")
        if pt["hold"]["block_steps_bypassed"] \
                <= pt["hold"]["block_steps_active"]:
            failures.append(
                "partitioned hold bypass inert: "
                f"{pt['hold']['block_steps_bypassed']} bypassed vs "
                f"{pt['hold']['block_steps_active']} active "
                f"block-steps on a quiescent run")
        if pt["hold"]["interface_solve_reuses"] < 1:
            failures.append(
                "partitioned hold never reused the interface solve")
        for label in ("hold", "pulse"):
            if pt[label]["parity_bypass_v"] \
                    > PARTITION_BYPASS_PARITY_TOL_V:
                failures.append(
                    f"partitioned {label} bypass parity "
                    f"{pt[label]['parity_bypass_v']:.2e} V > "
                    f"{PARTITION_BYPASS_PARITY_TOL_V:.0e} V")
            if pt[label]["parity_nobypass_v"] \
                    > PARTITION_EXACT_PARITY_TOL_V:
                failures.append(
                    f"partitioned {label} nobypass parity "
                    f"{pt[label]['parity_nobypass_v']:.2e} V > "
                    f"{PARTITION_EXACT_PARITY_TOL_V:.0e} V")
        if oc["raw_trace_bytes"] <= STORE_PEAK_CAP_BYTES:
            failures.append(
                f"out-of-core workload too small: raw trace "
                f"{oc['raw_trace_bytes']} B does not exceed the "
                f"{STORE_PEAK_CAP_BYTES} B cap")
        if oc["peak_store_bytes"] >= STORE_PEAK_CAP_BYTES:
            failures.append(
                f"store-backed peak {oc['peak_store_bytes']} B >= "
                f"{STORE_PEAK_CAP_BYTES} B cap")
        if oc["peak_ratio"] < STORE_PEAK_RATIO_FLOOR:
            failures.append(
                f"out-of-core peak ratio {oc['peak_ratio']:.1f}x < "
                f"{STORE_PEAK_RATIO_FLOOR}x")
        if not oc["summaries_identical"]:
            failures.append(
                "lazy-vs-eager decimated summaries diverged")
        if not hp["compiled_available"]:
            failures.append(
                "compiled kernel tier unavailable (numba absent and "
                "no working C compiler) — the ISSUE 6 gates need it")
        else:
            if hp["rca32_transient"]["speedup"] < HOT_SPEEDUP_FLOOR:
                failures.append(
                    f"compiled hot-path rca32 speedup "
                    f"{hp['rca32_transient']['speedup']:.2f}x < "
                    f"{HOT_SPEEDUP_FLOOR}x")
            if hp["kernel_parity"]["max_dv_v"] > HOT_PARITY_TOL_V:
                failures.append(
                    f"stacked-VSC kernel parity "
                    f"{hp['kernel_parity']['max_dv_v']:.2e} V > "
                    f"{HOT_PARITY_TOL_V:.0e} V")
        if hp["mc_scaling"]["gated"] and \
                hp["mc_scaling"]["parallel_efficiency"] \
                < HOT_MC_EFFICIENCY_FLOOR:
            failures.append(
                f"MC parallel efficiency "
                f"{hp['mc_scaling']['parallel_efficiency']:.2f} < "
                f"{HOT_MC_EFFICIENCY_FLOOR} at "
                f"{hp['mc_scaling']['workers']} workers")
        if sv["engine_dispatches"] >= sv["jobs"]:
            failures.append(
                f"service coalescing inert: {sv['engine_dispatches']} "
                f"engine dispatches for {sv['jobs']} jobs")
        if sv["coalesce_ratio"] < SERVICE_COALESCE_RATIO_FLOOR:
            failures.append(
                f"service coalesce ratio {sv['coalesce_ratio']:.2f}x "
                f"< {SERVICE_COALESCE_RATIO_FLOOR}x")
        if sv["parity_v"] > SERVICE_PARITY_TOL_V:
            failures.append(
                f"served-vs-direct waveform parity "
                f"{sv['parity_v']:.2e} V > "
                f"{SERVICE_PARITY_TOL_V:.0e} V")
        if failures:
            print("BENCH CHECK FAILED: " + "; ".join(failures))
            return 1
        print("bench check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
