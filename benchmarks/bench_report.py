#!/usr/bin/env python
"""Dump a ``BENCH_<name>.json`` perf snapshot so the trajectory is
tracked across PRs.

Measures the two headline workloads of the perf overhaul (ISSUE 1) and
the Monte-Carlo campaign throughput of the variability subsystem
(ISSUE 2):

* **Fig. 6/7 IV families** — the batched ``iv_family`` path against the
  seed-style scalar loop (``model.ids`` point by point), same run, same
  machine: points/sec and the speed-up ratio per model and combined.
* **Ring-oscillator transient** — wall time, steps, Newton
  iterations/step, and the number of closed-form solves consumed
  (machine-independent work metric; the seed engine spent ~5 scalar
  solves per CNFET per iteration plus one per CNFET per recorded row).
* **MC device metrics** — a 2000-sample Ion/Ioff/Vth/gm campaign
  through the grouped ``ids_batch`` fast path (cold: includes the
  handful of shared fits; warm: fit cache populated) against the
  seed-style naive loop (one freshly fitted device per sample, scalar
  bias evaluation).

Usage::

    PYTHONPATH=src python benchmarks/bench_report.py [--name NAME]
        [--check]

``--check`` exits non-zero when the measured batch speed-up, the
transient work reduction, or the MC campaign throughput/speed-up
regress below the ISSUE 1/2 acceptance floors (the Table I speed-up
assertions live in the pytest suite that `make bench` runs first).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.circuit.logic import LogicFamily, build_ring_oscillator
from repro.circuit.transient import initial_conditions_from_op, transient
from repro.experiments.workloads import (
    FIG67_VG_VALUES,
    PAPER_VDS_SWEEP,
    default_device_parameters,
)
from repro.pwl.device import CNFET
from repro.reference.sweep import sweep_iv_family

#: acceptance floors from ISSUE 1
FAMILY_SPEEDUP_FLOOR = 5.0
TRANSIENT_WORK_REDUCTION_FLOOR = 1.5

#: acceptance floors from ISSUE 2 (variability campaigns)
MC_SAMPLES = 2000
MC_SPEEDUP_FLOOR = 10.0          # campaign vs naive per-sample loop
MC_SAMPLES_PER_S_FLOOR = 300.0   # cold-campaign device-metric throughput


def _best_of(fn, repeats: int, inner: int) -> float:
    """Best per-call wall time over ``repeats`` blocks of ``inner``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


def bench_iv_family() -> dict:
    """Batched vs scalar-loop family on the Fig. 6/7 workload."""
    vg = list(FIG67_VG_VALUES)
    vd = list(PAPER_VDS_SWEEP)
    points = len(vg) * len(vd)
    out = {"workload": "fig6/7 output families",
           "points_per_family": points, "models": {}}
    total_batch = total_scalar = 0.0
    for model in ("model1", "model2"):
        device = CNFET(default_device_parameters(), model=model)
        sweep_iv_family(device, vg, vd, use_batch=True)    # warm caches
        # Interleave batch and scalar blocks so CPU-frequency noise and
        # noisy neighbours bias both paths alike; keep the best block.
        batch_s = scalar_s = float("inf")
        for _ in range(12):
            batch_s = min(batch_s, _best_of(
                lambda: sweep_iv_family(device, vg, vd, use_batch=True),
                repeats=1, inner=200))
            scalar_s = min(scalar_s, _best_of(
                lambda: sweep_iv_family(device, vg, vd, use_batch=False),
                repeats=1, inner=40))
        total_batch += batch_s
        total_scalar += scalar_s
        out["models"][model] = {
            "batch_s": batch_s,
            "scalar_loop_s": scalar_s,
            "speedup": scalar_s / batch_s,
            "points_per_s_batch": points / batch_s,
            "points_per_s_scalar": points / scalar_s,
        }
    out["combined_speedup"] = total_scalar / total_batch
    return out


def _count_closed_form_solves(device: CNFET) -> tuple:
    """Instrument a device's solver; returns ([count] cell, restore)."""
    cell = [0]
    solver = device.solver
    orig_solve, orig_many = solver.solve, solver.solve_many

    def solve(*args, **kwargs):
        cell[0] += 1
        return orig_solve(*args, **kwargs)

    def solve_many(vg, vd, vs=0.0):
        result = orig_many(vg, vd, vs)
        cell[0] += int(np.asarray(result).size)
        return result

    solver.solve, solver.solve_many = solve, solve_many

    def restore():
        solver.solve, solver.solve_many = orig_solve, orig_many

    return cell, restore


def bench_ring_transient() -> dict:
    """Ring-oscillator transient wall time and Newton work."""
    family = LogicFamily.default(vdd=0.6)
    ring, _ = build_ring_oscillator(family, stages=3)
    x0 = initial_conditions_from_op(ring, {"n0": 0.0, "n1": 0.6})

    def run(stats=None):
        return transient(ring, tstop=1.5e-10, dt=2e-12, x0=x0,
                         method="be", stats=stats)

    run()                                                  # warm caches
    wall = _best_of(run, repeats=7, inner=1)
    stats: dict = {}
    devices = {id(el.backend.device): el.backend.device
               for el in ring.elements if hasattr(el, "backend")}
    instrumented = [_count_closed_form_solves(dev)
                    for dev in devices.values()]
    try:
        run(stats)
    finally:
        for _cell, restore in instrumented:
            restore()
    solves = sum(cell[0] for cell, _restore in instrumented)
    steps = stats["steps"]
    iterations = stats["iterations"]
    n_cnfets = sum(1 for el in ring.elements if hasattr(el, "backend"))
    # Seed engine work for the same iteration count: 5 scalar solves per
    # CNFET per Newton iteration (evaluate + 4 charge solves) plus one
    # per CNFET per recorded row for the current traces.
    seed_equiv = iterations * n_cnfets * 5 + (steps + 1) * n_cnfets
    return {
        "workload": "3-stage CNFET ring oscillator, BE, 75 steps",
        "wall_s": wall,
        "steps": steps,
        "newton_iterations": iterations,
        "iterations_per_step": iterations / steps,
        "closed_form_solves": solves,
        "seed_equivalent_solves": seed_equiv,
        "work_reduction": seed_equiv / solves,
        "seed_wall_s_measured_pre_change": 0.0647,
    }


def bench_mc_device() -> dict:
    """2000-sample device-metric MC campaign vs the naive loop.

    The naive baseline is measured on a subset: its cost is strictly
    per-sample (every sample refits its own device — the pre-cache
    construction behaviour — then walks the bias grid with scalar
    ``ids`` calls), so the per-sample rate extrapolates without bias
    and the benchmark stays under a minute.
    """
    from repro.pwl.device import clear_fit_cache, fit_cache_info
    from repro.variability.campaign import DeviceMetricsEvaluator
    from repro.variability.params import default_device_space
    from repro.variability.sampling import monte_carlo

    space = default_device_space()
    samples = monte_carlo(space, MC_SAMPLES, seed=7)

    clear_fit_cache()
    evaluator = DeviceMetricsEvaluator(space)
    start = time.perf_counter()
    evaluator.evaluate(samples)
    cold_s = time.perf_counter() - start
    fits = fit_cache_info()["misses"]

    warm_evaluator = DeviceMetricsEvaluator(space)
    start = time.perf_counter()
    warm_evaluator.evaluate(samples)
    warm_s = time.perf_counter() - start

    naive_n = 200
    start = time.perf_counter()
    evaluator.evaluate_naive(samples[:naive_n])
    naive_per_sample_s = (time.perf_counter() - start) / naive_n
    start = time.perf_counter()
    evaluator.evaluate_naive(samples[:naive_n], use_fit_cache=True)
    cached_scalar_per_sample_s = (time.perf_counter() - start) / naive_n

    naive_total_s = naive_per_sample_s * MC_SAMPLES
    return {
        "workload": f"{MC_SAMPLES}-sample Ion/Ioff/Vth/gm campaign, "
                    f"default device space",
        "samples": MC_SAMPLES,
        "fits": fits,
        "distinct_devices": len(evaluator._memo),
        "campaign_cold_s": cold_s,
        "campaign_warm_s": warm_s,
        "samples_per_s_cold": MC_SAMPLES / cold_s,
        "samples_per_s_warm": MC_SAMPLES / warm_s,
        "naive_per_sample_s": naive_per_sample_s,
        "naive_projected_s": naive_total_s,
        "naive_cached_scalar_per_sample_s": cached_scalar_per_sample_s,
        "speedup_vs_naive": naive_total_s / cold_s,
        "speedup_vs_cached_scalar":
            cached_scalar_per_sample_s * MC_SAMPLES / warm_s,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--name", default="perf",
                        help="suffix of the BENCH_<name>.json artifact")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero on acceptance regressions")
    parser.add_argument("--out-dir", default=str(Path(__file__).parent.parent),
                        help="directory for the JSON artifact")
    args = parser.parse_args(argv)

    report = {
        "name": args.name,
        "created_unix": time.time(),
        "machine": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
            "processor": platform.processor() or "unknown",
        },
        "iv_family": bench_iv_family(),
        "transient_ring": bench_ring_transient(),
        "mc_device": bench_mc_device(),
    }

    path = Path(args.out_dir) / f"BENCH_{args.name}.json"
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    fam = report["iv_family"]
    ring = report["transient_ring"]
    print(f"wrote {path}")
    for model, row in fam["models"].items():
        print(f"  {model}: {row['points_per_s_batch']:,.0f} pts/s batch "
              f"vs {row['points_per_s_scalar']:,.0f} scalar "
              f"({row['speedup']:.2f}x)")
    print(f"  combined family speedup: {fam['combined_speedup']:.2f}x")
    print(f"  ring transient: {ring['wall_s']*1e3:.1f} ms, "
          f"{ring['iterations_per_step']:.2f} Newton iters/step, "
          f"work reduction {ring['work_reduction']:.2f}x")
    mc = report["mc_device"]
    print(f"  MC device metrics: {mc['samples_per_s_cold']:,.0f} "
          f"samples/s cold ({mc['fits']} fits, "
          f"{mc['distinct_devices']} devices), "
          f"{mc['samples_per_s_warm']:,.0f} warm; "
          f"{mc['speedup_vs_naive']:.1f}x vs naive loop")

    if args.check:
        failures = []
        if fam["combined_speedup"] < FAMILY_SPEEDUP_FLOOR:
            failures.append(
                f"family speedup {fam['combined_speedup']:.2f}x < "
                f"{FAMILY_SPEEDUP_FLOOR}x")
        if ring["work_reduction"] < TRANSIENT_WORK_REDUCTION_FLOOR:
            failures.append(
                f"transient work reduction {ring['work_reduction']:.2f}x "
                f"< {TRANSIENT_WORK_REDUCTION_FLOOR}x")
        if mc["speedup_vs_naive"] < MC_SPEEDUP_FLOOR:
            failures.append(
                f"MC campaign speedup {mc['speedup_vs_naive']:.1f}x < "
                f"{MC_SPEEDUP_FLOOR}x")
        if mc["samples_per_s_cold"] < MC_SAMPLES_PER_S_FLOOR:
            failures.append(
                f"MC throughput {mc['samples_per_s_cold']:.0f} samples/s "
                f"< {MC_SAMPLES_PER_S_FLOOR}")
        if failures:
            print("BENCH CHECK FAILED: " + "; ".join(failures))
            return 1
        print("bench check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
