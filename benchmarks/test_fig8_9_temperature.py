"""Figures 8 and 9 — Model 2 across temperature / Fermi-level corners.

Fig. 8: T = 150 K, EF = 0 eV — currents up to ~3.5e-5 A (strongly doped
contact, low T).  Fig. 9: T = 450 K, EF = -0.5 eV — currents an order of
magnitude lower (~3.5e-6 A).  Model 2 must track FETToy through both
corners.
"""

from __future__ import annotations

import numpy as np
from conftest import print_block

from repro.experiments.runners import run_fig8, run_fig9


def test_fig8_low_temperature_high_fermi(benchmark):
    result = benchmark.pedantic(run_fig8, iterations=1, rounds=1)
    print_block(result.render())
    peak = float(np.max(result.reference))
    # Paper's Fig. 8 y-axis tops out at ~3.5e-5 A.
    assert 5e-6 < peak < 1e-4
    assert result.average_error_percent < 5.0


def test_fig9_high_temperature_low_fermi(benchmark):
    result = benchmark.pedantic(run_fig9, iterations=1, rounds=1)
    print_block(result.render())
    peak = float(np.max(result.reference))
    # Paper's Fig. 9 y-axis tops out at ~3.5e-6 A.
    assert 5e-7 < peak < 1e-5
    assert result.average_error_percent < 5.0


def test_fig8_exceeds_fig9_currents():
    """The qualitative temperature/Fermi-level ordering of the figures."""
    peak8 = float(np.max(run_fig8().reference))
    peak9 = float(np.max(run_fig9().reference))
    assert peak8 > 3.0 * peak9
