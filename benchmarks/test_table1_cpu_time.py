"""Table I — CPU time: FETToy reference vs Model 1 vs Model 2.

The paper reports ~3400x (Model 1) and ~1100x (Model 2) over the MATLAB
FETToy on a Pentium IV.  The reproduction target is the *shape*: both
piecewise models must be orders of magnitude faster than the
full-numerics reference, with Model 1 faster than Model 2.
"""

from __future__ import annotations

from conftest import print_block

from repro.experiments.runners import run_table1
from repro.experiments.workloads import FIG67_VG_VALUES, PAPER_VDS_SWEEP


def test_table1_speedups(benchmark):
    result = benchmark.pedantic(run_table1, kwargs={"loops": (5, 10)},
                                iterations=1, rounds=1)
    print_block(result.render())
    assert result.speedup_model1 > 50.0, (
        f"Model 1 speed-up collapsed: {result.speedup_model1:.0f}x"
    )
    assert result.speedup_model2 > 30.0, (
        f"Model 2 speed-up collapsed: {result.speedup_model2:.0f}x"
    )
    # The two ratio gates below compare single-shot timings, so a load
    # spike during one side's run can flip them; re-measure up to
    # twice and gate on the best attempt (the project's best-of-N
    # protocol, docs/experiments.md).
    for _attempt in range(2):
        if (result.model1_s[-1] <= result.model2_s[-1] * 1.25
                and result.fettoy_s[1] > result.fettoy_s[0] * 1.2):
            break
        result = run_table1(loops=(5, 10))
    # Model 1 (3 regions, 1 coefficient) must not be slower than Model 2.
    assert result.model1_s[-1] <= result.model2_s[-1] * 1.25
    # Times scale ~linearly with loop count (sanity of the measurement).
    assert result.fettoy_s[1] > result.fettoy_s[0] * 1.2


def test_bench_reference_family(benchmark, default_models):
    reference, _, _ = default_models
    benchmark.group = "table1-family"
    benchmark(reference.iv_family, FIG67_VG_VALUES, PAPER_VDS_SWEEP)


def test_bench_model1_family(benchmark, default_models):
    _, model1, _ = default_models
    benchmark.group = "table1-family"
    benchmark(model1.iv_family, FIG67_VG_VALUES, PAPER_VDS_SWEEP)


def test_bench_model2_family(benchmark, default_models):
    _, _, model2 = default_models
    benchmark.group = "table1-family"
    benchmark(model2.iv_family, FIG67_VG_VALUES, PAPER_VDS_SWEEP)
