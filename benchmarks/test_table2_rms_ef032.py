"""Table II — average RMS errors in IDS at EF = -0.32 eV.

Paper values (peak-normalised percent): Model 1 between 1.5 and 4.6,
Model 2 between 0.4 and 2.3 across T in {150, 300, 450} K and
VG in 0.1..0.6 V.  Shape targets asserted here: Model 2 beats Model 1 on
average, and Model 2 stays within a few percent.
"""

from __future__ import annotations

from conftest import print_block

from repro.experiments.runners import run_rms_table


def test_table2_errors(benchmark):
    result = benchmark.pedantic(
        run_rms_table, args=(-0.32,), iterations=1, rounds=1
    )
    print_block(result.render())
    avg1 = result.average("model1")
    avg2 = result.average("model2")
    print_block(
        f"averages: Model 1 = {avg1:.2f}% (paper ~2.7%), "
        f"Model 2 = {avg2:.2f}% (paper ~1.2%)"
    )
    assert avg2 < avg1, "Model 2 must be more accurate than Model 1"
    assert avg2 < 4.0, f"Model 2 average error too large: {avg2:.2f}%"
    assert avg1 < 12.0, f"Model 1 average error too large: {avg1:.2f}%"
    # 300 K column (the paper's headline claim: Model 2 errors <= 2%).
    m2_300 = result.errors[(300.0, "model2")]
    assert max(m2_300) < 3.0, f"Model 2 at 300K: {m2_300}"
