"""Table V — average RMS error against the (synthetic) experimental data.

Paper values: all three models within 7.2-10.7% of the Javey-2005
measurement.  Our measurement substitute (DESIGN.md §5) degrades the
reference theory with contact resistance, sub-unity transmission and a
deterministic ripple; the assertion is the paper's qualitative claim —
every model tracks the experiment to roughly 10%.
"""

from __future__ import annotations

from conftest import print_block

from repro.experiments.runners import run_table5


def test_table5_experimental(benchmark):
    result = benchmark.pedantic(run_table5, iterations=1, rounds=1)
    print_block(result.render())
    all_errors = (
        result.fettoy_err + result.model1_err + result.model2_err
    )
    assert max(all_errors) < 20.0, (
        f"models should stay within ~2x of the paper's 10% band: "
        f"{max(all_errors):.1f}%"
    )
    # The fast models must not be wildly worse than the full theory.
    for i in range(len(result.vg_values)):
        assert result.model2_err[i] < result.fettoy_err[i] + 6.0
