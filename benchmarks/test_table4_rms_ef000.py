"""Table IV — average RMS errors in IDS at EF = 0 eV.

Paper values: Model 1 between 1.2 and 4.0, Model 2 between 0.4 and 2.1.
This is the Fermi-at-band-edge case where the equilibrium density is
large; the saturation-tail generalisation (DESIGN.md §6) is what keeps
the piecewise models accurate here.
"""

from __future__ import annotations

from conftest import print_block

from repro.experiments.runners import run_rms_table


def test_table4_errors(benchmark):
    result = benchmark.pedantic(
        run_rms_table, args=(0.0,), iterations=1, rounds=1
    )
    print_block(result.render())
    avg1 = result.average("model1")
    avg2 = result.average("model2")
    print_block(
        f"averages: Model 1 = {avg1:.2f}% (paper ~2.3%), "
        f"Model 2 = {avg2:.2f}% (paper ~1.1%)"
    )
    assert avg2 < avg1
    assert avg2 < 3.0
    assert avg1 < 10.0
