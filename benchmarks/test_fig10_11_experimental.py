"""Figures 10 and 11 — model vs (synthetic) experimental IV curves.

Paper shape: at each gate voltage both the FETToy theory and the
piecewise models run slightly above the measurement (the real device has
contacts and scattering) while tracking its saturation shape; all traces
at VG = 0 are ~0.
"""

from __future__ import annotations

import numpy as np
from conftest import print_block

from repro.experiments.runners import run_fig10_11


def _check(result) -> None:
    # VG = 0: bottom trace of the figure, ~zero on the 1e-5 A axis.
    vg0 = list(result.vg_values).index(0.0)
    peak = float(np.max(result.experimental))
    assert float(np.max(result.experimental[vg0])) < 0.15 * peak
    assert float(np.max(result.model[vg0])) < 0.15 * peak
    # At the top gate voltage the model tracks the experiment's
    # saturation current within ~25%.
    i_exp = float(result.experimental[-1, -1])
    i_mod = float(result.model[-1, -1])
    assert abs(i_mod - i_exp) / i_exp < 0.25
    # Ballistic theory >= degraded experiment at saturation.
    assert result.fettoy[-1, -1] > 0.9 * i_exp


def test_fig10_model1(benchmark):
    result = benchmark.pedantic(
        run_fig10_11, args=("model1",), iterations=1, rounds=1
    )
    print_block(result.render())
    _check(result)


def test_fig11_model2(benchmark):
    result = benchmark.pedantic(
        run_fig10_11, args=("model2",), iterations=1, rounds=1
    )
    print_block(result.render())
    _check(result)
