"""Shared fixtures for the paper-reproduction benchmarks.

Device fitting is session-scoped: the runners cache fitted devices per
configuration, so repeated benchmarks measure *evaluation* cost, not
fitting cost — matching the paper's methodology (Table I times model
invocations, not model construction).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import runners
from repro.experiments.workloads import default_device_parameters

_BENCH_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(items) -> None:
    """Every benchmark test is tier-slow: they replicate paper grids
    and time real workloads.  Marking them here (instead of per-file)
    keeps `make test-fast` honest when new benchmark modules land.
    The hook is global (it sees the whole session's items when pytest
    runs from the repo root), so filter to this directory's tests."""
    for item in items:
        if _BENCH_DIR in Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def default_models():
    """(reference, model1, model2) for the stock device, fitted once."""
    return runners.build_models(default_device_parameters())


def print_block(text: str) -> None:
    """Print a result block with separation that survives pytest -s."""
    print("\n" + text + "\n")
