"""Shared fixtures for the paper-reproduction benchmarks.

Device fitting is session-scoped: the runners cache fitted devices per
configuration, so repeated benchmarks measure *evaluation* cost, not
fitting cost — matching the paper's methodology (Table I times model
invocations, not model construction).
"""

from __future__ import annotations

import pytest

from repro.experiments import runners
from repro.experiments.workloads import default_device_parameters


@pytest.fixture(scope="session")
def default_models():
    """(reference, model1, model2) for the stock device, fitted once."""
    return runners.build_models(default_device_parameters())


def print_block(text: str) -> None:
    """Print a result block with separation that survives pytest -s."""
    print("\n" + text + "\n")
