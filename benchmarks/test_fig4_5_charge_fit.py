"""Figures 4 and 5 — QS and QD (theory vs approximation) at VDS = 0.2 V.

The drain curve is the source curve shifted by the drain bias; the
figures' key feature is that both approximations hug the theory over the
operating VSC range, Model 2 visibly tighter at large charge.
"""

from __future__ import annotations

import numpy as np
from conftest import print_block

from repro.experiments.runners import run_fig4_5


def _max_deviation(result) -> float:
    peak = float(np.max(result.theory_qs))
    dev_s = np.max(np.abs(result.fitted_qs - result.theory_qs))
    dev_d = np.max(np.abs(result.fitted_qd - result.theory_qd))
    return float(max(dev_s, dev_d)) / peak


def test_fig4_model1(benchmark):
    result = benchmark.pedantic(
        run_fig4_5, args=("model1",), iterations=1, rounds=1
    )
    print_block(result.render())
    assert _max_deviation(result) < 0.30


def test_fig5_model2(benchmark):
    result = benchmark.pedantic(
        run_fig4_5, args=("model2",), iterations=1, rounds=1
    )
    print_block(result.render())
    assert _max_deviation(result) < 0.12


def test_qd_is_shifted_qs():
    """QD(VSC; VDS) == QS(VSC + VDS) exactly at polynomial level."""
    result = run_fig4_5("model2", vds=0.2)
    vsc = np.asarray(result.vsc_axis)
    # Recompute QS at shifted arguments and compare with the QD series.
    from repro.experiments.runners import build_models
    from repro.experiments.workloads import default_device_parameters

    _, _, model2 = build_models(default_device_parameters())
    qs_shifted = np.asarray(model2.fitted.curve.value(vsc + 0.2))
    np.testing.assert_allclose(result.fitted_qd, qs_shifted,
                               rtol=1e-9, atol=1e-18)
