"""Circuit-level benchmark: the paper's motivating claim.

"This numerical efficiency makes our model particularly suitable for
implementation in circuit-level, e.g. SPICE-like, simulators" — measured
directly: the same CNFET inverter VTC swept with the fast piecewise
backend and with the full-numerics reference backend inside the MNA
engine.
"""

from __future__ import annotations

import numpy as np
from conftest import print_block

from repro.circuit import Circuit, Capacitor, VoltageSource, dc_sweep
from repro.circuit.elements import CNFETElement
from repro.circuit.logic import LogicFamily, build_ring_oscillator
from repro.circuit.transient import initial_conditions_from_op, transient
from repro.experiments.workloads import default_device_parameters
from repro.pwl.device import CNFET
from repro.reference.fettoy import FETToyModel


def _resistive_inverter(device) -> Circuit:
    """CNFET + resistive pull-up (works for both backends)."""
    from repro.circuit.elements import Resistor

    circuit = Circuit("nmos-style inverter")
    circuit.add(VoltageSource("vdd", "vdd", "0", 0.6))
    circuit.add(VoltageSource("vin", "in", "0", 0.0))
    circuit.add(Resistor("rl", "vdd", "out", 2e5))
    circuit.add(CNFETElement("q1", "out", "in", "0", device=device))
    return circuit


def test_bench_inverter_sweep_pwl_backend(benchmark):
    device = CNFET(default_device_parameters())
    circuit = _resistive_inverter(device)
    benchmark.group = "inverter-vtc"
    values = np.linspace(0.0, 0.6, 13)
    benchmark(dc_sweep, circuit, "vin", values)


def test_bench_inverter_sweep_reference_backend(benchmark):
    device = FETToyModel(default_device_parameters())
    circuit = _resistive_inverter(device)
    benchmark.group = "inverter-vtc"
    values = np.linspace(0.0, 0.6, 13)
    benchmark(dc_sweep, circuit, "vin", values)


def test_vtc_backends_agree():
    """The fast backend's VTC must overlay the reference backend's."""
    values = np.linspace(0.0, 0.6, 13)
    out = {}
    for label, device in (
        ("pwl", CNFET(default_device_parameters())),
        ("ref", FETToyModel(default_device_parameters())),
    ):
        ds = dc_sweep(_resistive_inverter(device), "vin", values)
        out[label] = ds.voltage("out")
    dev = np.max(np.abs(out["pwl"] - out["ref"]))
    print_block(f"max VTC deviation pwl vs reference: {dev*1e3:.2f} mV")
    assert dev < 0.02, f"VTC deviation too large: {dev} V"


def test_ring_oscillator_runs_and_oscillates():
    family = LogicFamily.default(vdd=0.6)
    ring, nodes = build_ring_oscillator(family, stages=3)
    x0 = initial_conditions_from_op(ring, {"n0": 0.0, "n1": 0.6})
    ds = transient(ring, tstop=1.5e-10, dt=2e-12, x0=x0, method="be")
    period = ds.period_estimate("v(n0)", 0.3)
    print_block(
        f"3-stage CNFET ring oscillator: period = {period*1e12:.1f} ps "
        f"({1e-9/period:.1f} GHz), swing = {ds.swing('v(n0)')*1e3:.0f} mV"
    )
    assert 1e-12 < period < 1e-9
    assert ds.swing("v(n0)") > 0.2
