"""Ablation benches for the design choices DESIGN.md calls out.

Not a paper table — these quantify the reproduction's own decisions:

* boundary optimisation vs the paper's published boundaries,
* Gaussian sensitivity weighting vs uniform least squares,
* saturation tail vs the paper's literal zero region (at EF = 0).
"""

from __future__ import annotations

import numpy as np
from conftest import print_block

from repro.experiments import metrics
from repro.experiments.report import ascii_table
from repro.experiments.workloads import (
    PAPER_VDS_SWEEP,
    PAPER_VG_VALUES,
    default_device_parameters,
)
from repro.pwl.device import CNFET
from repro.pwl.fitting import FitSpec, fit_piecewise_charge
from repro.pwl.model2 import MODEL2_BOUNDARIES, MODEL2_WINDOW
from repro.reference.fettoy import FETToyModel


def _family_error(device, reference_family) -> float:
    family = device.iv_family(PAPER_VG_VALUES, PAPER_VDS_SWEEP)
    return metrics.average_rms_error_percent(family, reference_family)


def test_ablation_boundary_optimisation_and_weighting(benchmark):
    params = default_device_parameters()
    reference = FETToyModel(params)
    ref_family = reference.iv_family(PAPER_VG_VALUES, PAPER_VDS_SWEEP)

    def run():
        rows = []
        for label, weighting, optimize in (
            ("paper boundaries, uniform", "uniform", False),
            ("paper boundaries, gaussian", "gaussian", False),
            ("optimised, uniform", "uniform", True),
            ("optimised, gaussian (default)", "gaussian", True),
        ):
            spec = FitSpec(
                orders=(1, 2, 3, 0),
                boundaries_rel=MODEL2_BOUNDARIES,
                window_rel=MODEL2_WINDOW,
                name="model2",
                weighting=weighting,
            )
            device = CNFET(params, model=spec,
                           optimize_boundaries=optimize)
            rows.append((label, _family_error(device, ref_family)))
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print_block(ascii_table(
        ("configuration", "avg IDS error [%]"), rows,
        title="Ablation: Model 2 fitting choices (T=300K, EF=-0.32eV)",
    ))
    errors = dict(rows)
    default = errors["optimised, gaussian (default)"]
    # The default configuration must be at least as good as the naive one.
    assert default <= errors["paper boundaries, uniform"] + 0.2


def test_ablation_saturation_tail_at_ef0(benchmark):
    """At EF = 0 the zero-region literalism breaks down (DESIGN.md §6)."""
    params = default_device_parameters(fermi_level_ev=0.0)
    reference = FETToyModel(params)
    ref_family = reference.iv_family(PAPER_VG_VALUES, PAPER_VDS_SWEEP)
    spec = FitSpec(
        orders=(1, 2, 3, 0), boundaries_rel=MODEL2_BOUNDARIES,
        window_rel=MODEL2_WINDOW, name="model2",
    )

    def run():
        out = {}
        for label, tail in (("zero tail (paper literal)", "zero"),
                            ("saturation tail (default)", "saturation")):
            fitted = fit_piecewise_charge(
                reference.charge, spec, optimize_boundaries=True, tail=tail,
            )
            device = CNFET(params, fitted=fitted)
            out[label] = _family_error(device, ref_family)
        return out

    errors = benchmark.pedantic(run, iterations=1, rounds=1)
    print_block(ascii_table(
        ("tail handling", "avg IDS error [%]"),
        list(errors.items()),
        title="Ablation: rightmost-region constant at EF = 0 eV",
    ))
    assert errors["saturation tail (default)"] \
        < errors["zero tail (paper literal)"], (
            "the saturation tail exists precisely to win at EF=0"
        )


def test_ablation_segment_count(benchmark):
    """Paper §IV: 'more sections ... higher accuracy but at some
    computational expense' — sweep 3/4/5-region layouts."""
    params = default_device_parameters()
    reference = FETToyModel(params)
    ref_family = reference.iv_family(PAPER_VG_VALUES, PAPER_VDS_SWEEP)
    layouts = {
        "3-piece (model1)": FitSpec(
            orders=(1, 2, 0), boundaries_rel=(-0.08, 0.08),
            window_rel=(-0.18, 0.32), name="model1"),
        "4-piece (model2)": FitSpec(
            orders=(1, 2, 3, 0), boundaries_rel=MODEL2_BOUNDARIES,
            window_rel=MODEL2_WINDOW, name="model2"),
        "5-piece (extension)": FitSpec(
            orders=(1, 2, 3, 3, 0),
            boundaries_rel=(-0.30, -0.10, 0.0, 0.12),
            window_rel=MODEL2_WINDOW, name="model2x"),
    }

    def run():
        rows = []
        for label, spec in layouts.items():
            device = CNFET(params, model=spec)
            import time
            error = _family_error(device, ref_family)
            start = time.perf_counter()
            for _ in range(3):
                device.iv_family(PAPER_VG_VALUES, PAPER_VDS_SWEEP)
            elapsed = (time.perf_counter() - start) / 3.0
            rows.append((label, error, elapsed * 1e3))
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print_block(ascii_table(
        ("layout", "avg IDS error [%]", "family time [ms]"), rows,
        title="Ablation: accuracy/speed vs number of piecewise segments",
    ))
    errors = [r[1] for r in rows]
    # More segments should not get dramatically worse.
    assert errors[1] <= errors[0] + 0.5
