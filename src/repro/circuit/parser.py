"""SPICE-flavoured netlist text parser.

Supported cards (case-insensitive, ``*``/``;`` comments, ``+``
continuations):

``R<name> a b value``            resistor
``C<name> a b value [ic=v]``     capacitor
``L<name> a b value``            inductor
``V<name> a b [DC] v | PULSE(...) | SIN(...) | PWL(...)``
``I<name> a b [DC] v | ...``     sources
``D<name> a c [is=..] [n=..]``   diode
``Q<name> d g s model [l=30n] [polarity=n|p]``  CNFET instance
``.model <name> cnfet [param=value ...]``       CNFET model card
``.subckt <name> port [port ...]``              begin definition
``.ends [name]``                                end definition
``X<name> net [net ...] <subckt>``              subcircuit instance
``X<name> d g s model [l=30n]``                 CNFET (legacy X form)
``.dc <source> start stop points``
``.tran tstep tstop [method]``
``.end``

Hierarchy: ``.subckt`` bodies may contain element cards and ``X``
instances of other subcircuits (nested to any depth; definitions
themselves do not nest).  Top-level ``X`` instances are flattened into
the returned circuit with dot-separated hierarchical names
(``Xadd0.Xfa1.carry`` — see
:class:`repro.circuit.netlist.SubCircuit`); errors raised during
flattening carry the line number of the offending ``X`` card.  An
``X`` card is a subcircuit instance when its last bare token names a
``.subckt`` (which wins over a same-named ``.model``), a CNFET
instance when its fifth token names a ``.model``.

Duplicate element/instance names within one scope are rejected at
parse time with both line numbers (continuation-joined cards report
the line the card started on).

The parser returns a :class:`ParsedDeck` holding the circuit plus any
analysis directives, models and subcircuit definitions.  CNFET model
cards accept the :class:`repro.reference.fettoy.FETToyParameters`
field names plus ``model=model1|model2``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.circuit.elements import (
    Capacitor,
    CNFETElement,
    CurrentSource,
    Diode,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit, Instance, SubCircuit
from repro.circuit.waveforms import DC, Pulse, PWLWaveform, Sine, Waveform
from repro.errors import ParseError, ReproError
from repro.pwl.device import CNFET
from repro.reference.fettoy import FETToyParameters
from repro.units import parse_spice_number


@dataclass
class AnalysisDirective:
    """One ``.dc`` or ``.tran`` card."""

    kind: str
    params: Dict[str, float] = field(default_factory=dict)
    source: Optional[str] = None
    method: str = "trap"


@dataclass
class ParsedDeck:
    circuit: Circuit
    analyses: List[AnalysisDirective]
    models: Dict[str, CNFET]
    subcircuits: Dict[str, SubCircuit] = field(default_factory=dict)


_FLOAT_FIELDS = {
    "diameter_nm", "tox_nm", "kappa", "temperature_k", "fermi_level_ev",
    "alpha_g", "alpha_d", "transmission",
}


def _join_continuations(text: str) -> List[Tuple[int, str]]:
    """Strip comments, join ``+`` continuation lines; returns
    (line_number, logical_line) pairs."""
    logical: List[Tuple[int, str]] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";")[0]
        stripped = line.strip()
        if not stripped or stripped.startswith("*"):
            continue
        if stripped.startswith("+"):
            if not logical:
                raise ParseError(
                    "continuation with no previous line",
                    line_number=number, line=raw,
                )
            prev_no, prev = logical[-1]
            logical[-1] = (prev_no, prev + " " + stripped[1:].strip())
        else:
            logical.append((number, stripped))
    return logical


_WAVE_RE = re.compile(r"(pulse|sin|pwl)\s*\((.*)\)", re.IGNORECASE)


def _parse_waveform(tokens: List[str], joined: str) -> Waveform:
    match = _WAVE_RE.search(joined)
    if match:
        kind = match.group(1).lower()
        args = [parse_spice_number(t)
                for t in match.group(2).replace(",", " ").split()]
        if kind == "pulse":
            if len(args) < 2:
                raise ParseError(f"PULSE needs at least v1 v2: {joined!r}")
            defaults = [0.0, 0.0, 0.0, 1e-12, 1e-12, 1e-9, 2e-9]
            full = args + defaults[len(args):]
            return Pulse(*full[:7])
        if kind == "sin":
            if len(args) < 3:
                raise ParseError(f"SIN needs vo va freq: {joined!r}")
            defaults = [0.0, 0.0, 1.0, 0.0, 0.0]
            full = args + defaults[len(args):]
            return Sine(*full[:5])
        return PWLWaveform.from_pairs(args)
    # DC forms: "DC 1.5" or bare "1.5".
    values = [t for t in tokens if t.lower() != "dc"]
    if not values:
        return DC(0.0)
    return DC(parse_spice_number(values[0]))


def _keyword_args(tokens: List[str]) -> Dict[str, str]:
    out = {}
    for tok in tokens:
        if "=" in tok:
            key, _, value = tok.partition("=")
            out[key.lower()] = value
    return out


def _add_cnfet(target: Union[Circuit, SubCircuit], tokens: List[str],
               models: Dict[str, CNFET], number: int,
               line: str) -> None:
    """Resolve one CNFET instance card into ``target``."""
    device = models.get(tokens[4].lower())
    if device is None:
        raise ParseError(
            f"unknown CNFET model {tokens[4]!r}",
            line_number=number, line=line,
        )
    kwargs = _keyword_args(tokens[5:])
    length_nm = (parse_spice_number(kwargs["l"]) * 1e9
                 if "l" in kwargs else 30.0)
    polarity = kwargs.get("polarity")
    try:
        target.add(CNFETElement(
            tokens[0], tokens[1], tokens[2], tokens[3],
            device=device, length_nm=length_nm, polarity=polarity,
        ))
    except ReproError as exc:
        raise ParseError(str(exc), line_number=number, line=line) from exc


def parse_netlist(text: str, title: str = "") -> ParsedDeck:
    """Parse a netlist deck; see module docstring for the dialect."""
    circuit = Circuit(title)
    analyses: List[AnalysisDirective] = []
    models: Dict[str, CNFET] = {}
    subcircuits: Dict[str, SubCircuit] = {}
    #: cards resolved after the whole deck is read:
    #: (line number, raw line, tokens, enclosing SubCircuit or None)
    pending_cnfets: List[Tuple[int, str, List[str],
                               Optional[SubCircuit]]] = []
    pending_x: List[Tuple[int, str, List[str],
                          Optional[SubCircuit]]] = []
    current: Optional[SubCircuit] = None
    current_line = 0
    #: per-scope duplicate tracking (scope id -> name -> first line)
    seen_names: Dict[int, Dict[str, int]] = {}

    def claim_name(name: str, number: int, line: str) -> None:
        scope = seen_names.setdefault(
            0 if current is None else id(current), {})
        key = name.lower()
        first = scope.get(key)
        if first is not None:
            raise ParseError(
                f"duplicate element name {name!r} (first defined at "
                f"line {first})",
                line_number=number, line=line,
            )
        scope[key] = number

    for number, line in _join_continuations(text):
        tokens = line.split()
        head = tokens[0]
        lower = head.lower()
        target: Union[Circuit, SubCircuit] = \
            circuit if current is None else current
        try:
            if lower == ".subckt":
                if current is not None:
                    raise ParseError(
                        f"nested .subckt definitions are not supported "
                        f"(inside {current.name!r} from line "
                        f"{current_line})",
                        line_number=number, line=line,
                    )
                if len(tokens) < 3:
                    raise ParseError(
                        ".subckt needs: name port [port ...]",
                        line_number=number, line=line,
                    )
                if tokens[1].lower() in subcircuits:
                    raise ParseError(
                        f"duplicate subcircuit {tokens[1]!r}",
                        line_number=number, line=line,
                    )
                current = SubCircuit(tokens[1], tokens[2:])
                current_line = number
                subcircuits[tokens[1].lower()] = current
            elif lower == ".ends":
                if current is None:
                    raise ParseError(
                        ".ends without a matching .subckt",
                        line_number=number, line=line,
                    )
                if len(tokens) > 1 \
                        and tokens[1].lower() != current.name.lower():
                    raise ParseError(
                        f".ends {tokens[1]!r} does not match .subckt "
                        f"{current.name!r} (line {current_line})",
                        line_number=number, line=line,
                    )
                current = None
            elif lower.startswith(".model"):
                if current is not None:
                    raise ParseError(
                        ".model cards are global; define them outside "
                        ".subckt",
                        line_number=number, line=line,
                    )
                _parse_model_card(tokens, models, number, line)
            elif lower == ".dc":
                if current is not None:
                    raise ParseError(
                        "analysis directives are not allowed inside "
                        ".subckt",
                        line_number=number, line=line,
                    )
                if len(tokens) != 5:
                    raise ParseError(
                        ".dc needs: source start stop points",
                        line_number=number, line=line,
                    )
                analyses.append(AnalysisDirective(
                    kind="dc",
                    source=tokens[1],
                    params={
                        "start": parse_spice_number(tokens[2]),
                        "stop": parse_spice_number(tokens[3]),
                        "points": parse_spice_number(tokens[4]),
                    },
                ))
            elif lower == ".tran":
                if current is not None:
                    raise ParseError(
                        "analysis directives are not allowed inside "
                        ".subckt",
                        line_number=number, line=line,
                    )
                if len(tokens) < 3:
                    raise ParseError(
                        ".tran needs: tstep tstop [method]",
                        line_number=number, line=line,
                    )
                analyses.append(AnalysisDirective(
                    kind="tran",
                    params={
                        "tstep": parse_spice_number(tokens[1]),
                        "tstop": parse_spice_number(tokens[2]),
                    },
                    method=tokens[3].lower() if len(tokens) > 3 else "trap",
                ))
            elif lower == ".end":
                break
            elif lower.startswith("."):
                raise ParseError(
                    f"unsupported directive {head!r}",
                    line_number=number, line=line,
                )
            elif lower[0] == "r":
                claim_name(head, number, line)
                target.add(Resistor(head, tokens[1], tokens[2],
                                    parse_spice_number(tokens[3])))
            elif lower[0] == "c":
                claim_name(head, number, line)
                kwargs = _keyword_args(tokens[4:])
                ic = (parse_spice_number(kwargs["ic"])
                      if "ic" in kwargs else None)
                target.add(Capacitor(head, tokens[1], tokens[2],
                                     parse_spice_number(tokens[3]), ic=ic))
            elif lower[0] == "l":
                claim_name(head, number, line)
                target.add(Inductor(head, tokens[1], tokens[2],
                                    parse_spice_number(tokens[3])))
            elif lower[0] == "v":
                claim_name(head, number, line)
                wave = _parse_waveform(tokens[3:], line)
                target.add(VoltageSource(head, tokens[1], tokens[2], wave))
            elif lower[0] == "i":
                claim_name(head, number, line)
                wave = _parse_waveform(tokens[3:], line)
                target.add(CurrentSource(head, tokens[1], tokens[2], wave))
            elif lower[0] == "d":
                claim_name(head, number, line)
                kwargs = _keyword_args(tokens[3:])
                target.add(Diode(
                    head, tokens[1], tokens[2],
                    saturation_current=parse_spice_number(
                        kwargs.get("is", "1e-14")),
                    emission_coefficient=parse_spice_number(
                        kwargs.get("n", "1")),
                ))
            elif lower[0] in ("q", "m"):
                if len(tokens) < 5:
                    raise ParseError(
                        "CNFET instance needs: d g s model",
                        line_number=number, line=line,
                    )
                claim_name(head, number, line)
                pending_cnfets.append((number, line, tokens, current))
            elif lower[0] == "x":
                if len(tokens) < 3:
                    raise ParseError(
                        "X card needs: net [net ...] subckt | d g s "
                        "model",
                        line_number=number, line=line,
                    )
                claim_name(head, number, line)
                pending_x.append((number, line, tokens, current))
            else:
                raise ParseError(
                    f"unrecognised element {head!r}",
                    line_number=number, line=line,
                )
        except ParseError:
            raise
        except (IndexError, ValueError) as exc:
            raise ParseError(str(exc), line_number=number, line=line) from exc

    if current is not None:
        raise ParseError(
            f"unterminated .subckt {current.name!r} (missing .ends)",
            line_number=current_line,
        )

    # Q/M CNFET instances resolve once all .model cards are read.
    for number, line, tokens, scope in pending_cnfets:
        _add_cnfet(circuit if scope is None else scope, tokens, models,
                   number, line)
    # X cards: a subcircuit instance when the last bare token names a
    # .subckt, a legacy CNFET instance when token 5 names a .model.
    # Nested instances register into their definitions first; the
    # top-level ones flatten afterwards, so in-body X cards may
    # reference subcircuits defined anywhere in the deck.
    top_instances: List[Tuple[int, str, str, SubCircuit, List[str]]] = []
    for number, line, tokens, scope in pending_x:
        bare = [t for t in tokens[1:] if "=" not in t]
        sub = subcircuits.get(bare[-1].lower()) if bare else None
        if sub is not None:
            if len(bare) != len(tokens) - 1:
                raise ParseError(
                    "subcircuit instances take no key=value "
                    "parameters",
                    line_number=number, line=line,
                )
            nets = bare[:-1]
            try:
                if scope is None:
                    # Validation happens in sub.instantiate (below),
                    # whose errors carry this card's line number.
                    top_instances.append(
                        (number, line, tokens[0], sub, nets))
                else:
                    scope.add_instance(Instance(tokens[0], sub, nets))
            except ReproError as exc:
                raise ParseError(
                    str(exc), line_number=number, line=line) from exc
        elif len(tokens) >= 5 and tokens[4].lower() in models:
            _add_cnfet(circuit if scope is None else scope, tokens,
                       models, number, line)
        else:
            last = bare[-1] if bare else "?"
            fifth = tokens[4] if len(tokens) > 4 else "?"
            raise ParseError(
                f"{tokens[0]!r}: {last!r} names no .subckt and "
                f"{fifth!r} names no .model",
                line_number=number, line=line,
            )
    for number, line, name, sub, nets in top_instances:
        try:
            sub.instantiate(circuit, name, nets)
        except ReproError as exc:
            raise ParseError(
                str(exc), line_number=number, line=line) from exc
    return ParsedDeck(circuit=circuit, analyses=analyses, models=models,
                      subcircuits=subcircuits)


def _parse_model_card(tokens: List[str], models: Dict[str, CNFET],
                      number: int, line: str) -> None:
    if len(tokens) < 3 or tokens[2].lower() != "cnfet":
        raise ParseError(
            ".model only supports the 'cnfet' type",
            line_number=number, line=line,
        )
    name = tokens[1].lower()
    if name in models:
        raise ParseError(
            f"duplicate model {tokens[1]!r}", line_number=number, line=line,
        )
    kwargs = _keyword_args(tokens[3:])
    params = {}
    for key, value in kwargs.items():
        if key in _FLOAT_FIELDS:
            params[key] = parse_spice_number(value)
        elif key in ("model", "polarity", "gate_geometry"):
            continue
        else:
            raise ParseError(
                f"unknown CNFET model parameter {key!r}",
                line_number=number, line=line,
            )
    if "gate_geometry" in kwargs:
        params["gate_geometry"] = kwargs["gate_geometry"]
    device = CNFET(
        FETToyParameters(**params),
        model=kwargs.get("model", "model2"),
        polarity=kwargs.get("polarity", "n"),
    )
    models[name] = device
