"""SPICE-flavoured netlist text parser.

Supported cards (case-insensitive, ``*``/``;`` comments, ``+``
continuations):

``R<name> a b value``            resistor
``C<name> a b value [ic=v]``     capacitor
``L<name> a b value``            inductor
``V<name> a b [DC] v | PULSE(...) | SIN(...) | PWL(...)``
``I<name> a b [DC] v | ...``     sources
``D<name> a c [is=..] [n=..]``   diode
``Q<name> d g s model [l=30n] [polarity=n|p]``  CNFET instance
``.model <name> cnfet [param=value ...]``       CNFET model card
``.dc <source> start stop points``
``.tran tstep tstop [method]``
``.end``

The parser returns a :class:`ParsedDeck` holding the circuit plus any
analysis directives.  CNFET model cards accept the
:class:`repro.reference.fettoy.FETToyParameters` field names plus
``model=model1|model2``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.circuit.elements import (
    Capacitor,
    CNFETElement,
    CurrentSource,
    Diode,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit
from repro.circuit.waveforms import DC, Pulse, PWLWaveform, Sine, Waveform
from repro.errors import ParseError
from repro.pwl.device import CNFET
from repro.reference.fettoy import FETToyParameters
from repro.units import parse_spice_number


@dataclass
class AnalysisDirective:
    """One ``.dc`` or ``.tran`` card."""

    kind: str
    params: Dict[str, float] = field(default_factory=dict)
    source: Optional[str] = None
    method: str = "trap"


@dataclass
class ParsedDeck:
    circuit: Circuit
    analyses: List[AnalysisDirective]
    models: Dict[str, CNFET]


_FLOAT_FIELDS = {
    "diameter_nm", "tox_nm", "kappa", "temperature_k", "fermi_level_ev",
    "alpha_g", "alpha_d", "transmission",
}


def _join_continuations(text: str) -> List[Tuple[int, str]]:
    """Strip comments, join ``+`` continuation lines; returns
    (line_number, logical_line) pairs."""
    logical: List[Tuple[int, str]] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";")[0]
        stripped = line.strip()
        if not stripped or stripped.startswith("*"):
            continue
        if stripped.startswith("+"):
            if not logical:
                raise ParseError(
                    "continuation with no previous line",
                    line_number=number, line=raw,
                )
            prev_no, prev = logical[-1]
            logical[-1] = (prev_no, prev + " " + stripped[1:].strip())
        else:
            logical.append((number, stripped))
    return logical


_WAVE_RE = re.compile(r"(pulse|sin|pwl)\s*\((.*)\)", re.IGNORECASE)


def _parse_waveform(tokens: List[str], joined: str) -> Waveform:
    match = _WAVE_RE.search(joined)
    if match:
        kind = match.group(1).lower()
        args = [parse_spice_number(t)
                for t in match.group(2).replace(",", " ").split()]
        if kind == "pulse":
            if len(args) < 2:
                raise ParseError(f"PULSE needs at least v1 v2: {joined!r}")
            defaults = [0.0, 0.0, 0.0, 1e-12, 1e-12, 1e-9, 2e-9]
            full = args + defaults[len(args):]
            return Pulse(*full[:7])
        if kind == "sin":
            if len(args) < 3:
                raise ParseError(f"SIN needs vo va freq: {joined!r}")
            defaults = [0.0, 0.0, 1.0, 0.0, 0.0]
            full = args + defaults[len(args):]
            return Sine(*full[:5])
        return PWLWaveform.from_pairs(args)
    # DC forms: "DC 1.5" or bare "1.5".
    values = [t for t in tokens if t.lower() != "dc"]
    if not values:
        return DC(0.0)
    return DC(parse_spice_number(values[0]))


def _keyword_args(tokens: List[str]) -> Dict[str, str]:
    out = {}
    for tok in tokens:
        if "=" in tok:
            key, _, value = tok.partition("=")
            out[key.lower()] = value
    return out


def parse_netlist(text: str, title: str = "") -> ParsedDeck:
    """Parse a netlist deck; see module docstring for the dialect."""
    circuit = Circuit(title)
    analyses: List[AnalysisDirective] = []
    models: Dict[str, CNFET] = {}
    pending_cnfets: List[Tuple[int, str, List[str]]] = []

    for number, line in _join_continuations(text):
        tokens = line.split()
        head = tokens[0]
        lower = head.lower()
        try:
            if lower.startswith(".model"):
                _parse_model_card(tokens, models, number, line)
            elif lower == ".dc":
                if len(tokens) != 5:
                    raise ParseError(
                        ".dc needs: source start stop points",
                        line_number=number, line=line,
                    )
                analyses.append(AnalysisDirective(
                    kind="dc",
                    source=tokens[1],
                    params={
                        "start": parse_spice_number(tokens[2]),
                        "stop": parse_spice_number(tokens[3]),
                        "points": parse_spice_number(tokens[4]),
                    },
                ))
            elif lower == ".tran":
                if len(tokens) < 3:
                    raise ParseError(
                        ".tran needs: tstep tstop [method]",
                        line_number=number, line=line,
                    )
                analyses.append(AnalysisDirective(
                    kind="tran",
                    params={
                        "tstep": parse_spice_number(tokens[1]),
                        "tstop": parse_spice_number(tokens[2]),
                    },
                    method=tokens[3].lower() if len(tokens) > 3 else "trap",
                ))
            elif lower == ".end":
                break
            elif lower.startswith("."):
                raise ParseError(
                    f"unsupported directive {head!r}",
                    line_number=number, line=line,
                )
            elif lower[0] == "r":
                circuit.add(Resistor(head, tokens[1], tokens[2],
                                     parse_spice_number(tokens[3])))
            elif lower[0] == "c":
                kwargs = _keyword_args(tokens[4:])
                ic = (parse_spice_number(kwargs["ic"])
                      if "ic" in kwargs else None)
                circuit.add(Capacitor(head, tokens[1], tokens[2],
                                      parse_spice_number(tokens[3]), ic=ic))
            elif lower[0] == "l":
                circuit.add(Inductor(head, tokens[1], tokens[2],
                                     parse_spice_number(tokens[3])))
            elif lower[0] == "v":
                wave = _parse_waveform(tokens[3:], line)
                circuit.add(VoltageSource(head, tokens[1], tokens[2], wave))
            elif lower[0] == "i":
                wave = _parse_waveform(tokens[3:], line)
                circuit.add(CurrentSource(head, tokens[1], tokens[2], wave))
            elif lower[0] == "d":
                kwargs = _keyword_args(tokens[3:])
                circuit.add(Diode(
                    head, tokens[1], tokens[2],
                    saturation_current=parse_spice_number(
                        kwargs.get("is", "1e-14")),
                    emission_coefficient=parse_spice_number(
                        kwargs.get("n", "1")),
                ))
            elif lower[0] in ("q", "x", "m"):
                if len(tokens) < 5:
                    raise ParseError(
                        "CNFET instance needs: d g s model",
                        line_number=number, line=line,
                    )
                pending_cnfets.append((number, line, tokens))
            else:
                raise ParseError(
                    f"unrecognised element {head!r}",
                    line_number=number, line=line,
                )
        except ParseError:
            raise
        except (IndexError, ValueError) as exc:
            raise ParseError(str(exc), line_number=number, line=line) from exc

    # CNFET instances resolve after all .model cards are read.
    for number, line, tokens in pending_cnfets:
        model_name = tokens[4].lower()
        device = models.get(model_name)
        if device is None:
            raise ParseError(
                f"unknown CNFET model {tokens[4]!r}",
                line_number=number, line=line,
            )
        kwargs = _keyword_args(tokens[5:])
        length_nm = (parse_spice_number(kwargs["l"]) * 1e9
                     if "l" in kwargs else 30.0)
        polarity = kwargs.get("polarity")
        circuit.add(CNFETElement(
            tokens[0], tokens[1], tokens[2], tokens[3],
            device=device, length_nm=length_nm, polarity=polarity,
        ))
    return ParsedDeck(circuit=circuit, analyses=analyses, models=models)


def _parse_model_card(tokens: List[str], models: Dict[str, CNFET],
                      number: int, line: str) -> None:
    if len(tokens) < 3 or tokens[2].lower() != "cnfet":
        raise ParseError(
            ".model only supports the 'cnfet' type",
            line_number=number, line=line,
        )
    name = tokens[1].lower()
    if name in models:
        raise ParseError(
            f"duplicate model {tokens[1]!r}", line_number=number, line=line,
        )
    kwargs = _keyword_args(tokens[3:])
    params = {}
    for key, value in kwargs.items():
        if key in _FLOAT_FIELDS:
            params[key] = parse_spice_number(value)
        elif key in ("model", "polarity", "gate_geometry"):
            continue
        else:
            raise ParseError(
                f"unknown CNFET model parameter {key!r}",
                line_number=number, line=line,
            )
    if "gate_geometry" in kwargs:
        params["gate_geometry"] = kwargs["gate_geometry"]
    device = CNFET(
        FETToyParameters(**params),
        model=kwargs.get("model", "model2"),
        polarity=kwargs.get("polarity", "n"),
    )
    models[name] = device
