"""Analysis result containers and waveform measurements."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError, ParameterError


class Dataset:
    """Named traces over a common sweep axis.

    ``axis`` is time (transient) or the swept value (DC sweep); traces
    are keyed ``v(node)`` / ``i(element)`` by the analyses.

    A dataset is either *eager* (every trace a resident array, the
    historical mode) or *lazy*, built with :meth:`from_store` over a
    :class:`repro.circuit.store.WaveformStore`: the axis is read once,
    and each :meth:`trace` call materialises exactly one column from
    disk, chunk-wise, without caching — peak memory stays one column
    no matter how many traces the run produced.  Measurements
    (:meth:`crossings`, :meth:`first_crossing`, :meth:`summary`, ...)
    work identically in both modes because they operate on the same
    float64 values with the same numpy expressions.
    """

    def __init__(self, axis_name: str, axis: Sequence[float]) -> None:
        self.axis_name = axis_name
        self.axis = np.asarray(axis, dtype=float)
        self._traces: Dict[str, np.ndarray] = {}
        self._store = None
        self._lazy: Dict[str, str] = {}

    @classmethod
    def from_store(cls, store) -> "Dataset":
        """A lazy dataset over an (open or writable-closed) waveform
        store: traces materialise one column per access, uncached."""
        store.flush()
        axis = store.read_column(store.axis_name)
        ds = cls(store.axis_name, axis)
        ds._store = store
        ds._lazy = {name.lower(): name for name in store.exposed
                    if name != store.axis_name}
        return ds

    @property
    def is_lazy(self) -> bool:
        """``True`` when traces are backed by an on-disk store."""
        return self._store is not None

    def add_trace(self, name: str, values: Sequence[float]) -> None:
        """Attach a trace (same length as the axis)."""
        arr = np.asarray(values, dtype=float)
        if arr.shape != self.axis.shape:
            raise ParameterError(
                f"trace {name!r} length {arr.shape} != axis "
                f"{self.axis.shape}"
            )
        self._traces[name.lower()] = arr

    def trace(self, name: str) -> np.ndarray:
        """A trace by (case-insensitive) name.

        Lazy datasets read the column from the store on every call
        (deliberately uncached — callers that need a trace repeatedly
        should hold the returned array).
        """
        key = name.lower()
        try:
            return self._traces[key]
        except KeyError:
            pass
        if key in self._lazy:
            return self._store.read_column(self._lazy[key])
        raise AnalysisError(
            f"no trace {name!r}; available: {self.names}"
        ) from None

    def _trace_window(self, name: str, start: int, stop: int) -> np.ndarray:
        """Rows ``[start:stop]`` of one trace — a chunked store read in
        lazy mode, a plain slice otherwise."""
        key = name.lower()
        if key not in self._traces and key in self._lazy:
            return self._store.read_column(self._lazy[key], start, stop)
        return self.trace(name)[start:stop]

    def __contains__(self, name: str) -> bool:
        key = name.lower()
        return key in self._traces or key in self._lazy

    @property
    def names(self) -> List[str]:
        """Sorted trace names."""
        return sorted(set(self._traces) | set(self._lazy))

    def voltage(self, node: str) -> np.ndarray:
        """Voltage trace ``v(node)`` [V]."""
        return self.trace(f"v({node})")

    def current(self, element: str) -> np.ndarray:
        """Current trace ``i(element)`` [A]."""
        return self.trace(f"i({element})")

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------

    def at(self, name: str, axis_value: float) -> float:
        """Linear interpolation of a trace at an axis value."""
        return float(np.interp(axis_value, self.axis, self.trace(name)))

    def crossings(self, name: str, level: float,
                  rising: Optional[bool] = None) -> List[float]:
        """Axis values where a trace crosses ``level`` (interpolated).

        ``rising=True`` keeps only upward crossings, ``False`` only
        downward, ``None`` both.
        """
        return self._segment_crossings(self.trace(name), self.axis,
                                       level, rising)

    @staticmethod
    def _segment_crossings(values: np.ndarray, x: np.ndarray,
                           level: float,
                           rising: Optional[bool]) -> List[float]:
        """Vectorised crossing scan over one contiguous trace segment
        (exactly the historical per-segment arithmetic: an exact-zero
        sample reports ``x[i]``, a sign change interpolates)."""
        y = np.asarray(values, dtype=float) - level
        if y.shape[0] < 2:
            return []
        y0, y1 = y[:-1], y[1:]
        exact = y0 == 0.0
        change = ~exact & (y0 * y1 < 0.0)
        direction = np.where(exact, y1 > 0, y1 > y0)
        hits = exact | change
        if rising is not None:
            hits &= direction == rising
        idx = np.nonzero(hits)[0]
        if idx.size == 0:
            return []
        t = np.where(
            exact[idx], x[:-1][idx],
            x[:-1][idx] - np.divide(
                y0[idx] * (x[1:][idx] - x[:-1][idx]), y1[idx] - y0[idx],
                out=np.zeros(idx.size), where=y1[idx] != y0[idx]))
        return [float(v) for v in t]

    def first_crossing(self, name: str, level: float,
                       rising: Optional[bool] = None,
                       after: Optional[float] = None,
                       before: Optional[float] = None) -> float:
        """First axis value where the trace crosses ``level`` inside
        ``[after, before)``; ``nan`` when there is none.

        The scan is windowed: only the axis rows whose segments can
        produce a crossing in the window are read, so lazy datasets
        touch a bounded slice of the column instead of the full trace.
        """
        x = self.axis
        lo = 0 if after is None \
            else max(0, int(np.searchsorted(x, after, side="left")) - 1)
        hi = x.shape[0] if before is None \
            else min(x.shape[0],
                     int(np.searchsorted(x, before, side="right")) + 1)
        if hi - lo < 2:
            return float("nan")
        values = self._trace_window(name, lo, hi)
        for t in self._segment_crossings(values, x[lo:hi], level, rising):
            if (after is None or t >= after) and \
                    (before is None or t < before):
                return t
        return float("nan")

    def window(self, name: str, lo: float,
               hi: float) -> Tuple[np.ndarray, np.ndarray]:
        """``(axis, values)`` covering ``[lo, hi]`` padded by one
        sample on each side (enough for boundary interpolation);
        a chunked store read in lazy mode."""
        x = self.axis
        start = max(0, int(np.searchsorted(x, lo, side="right")) - 1)
        stop = min(x.shape[0],
                   int(np.searchsorted(x, hi, side="left")) + 1)
        return x[start:stop], self._trace_window(name, start, stop)

    def summary(self, name: str,
                buckets: int = 64) -> Dict[str, np.ndarray]:
        """Decimated trace summary: per-bucket ``min``/``max``/``mean``
        over ``buckets`` contiguous, nearly equal row runs.

        Returns ``{"axis_lo", "axis_hi", "min", "max", "mean"}``
        arrays (one entry per non-empty bucket).  Lazy and eager
        datasets produce bit-identical summaries — the same numpy
        reductions run over the same row runs — so out-of-core runs
        can be validated against in-memory ones.
        """
        if buckets < 1:
            raise ParameterError(f"buckets must be >= 1: {buckets!r}")
        n = self.axis.shape[0]
        if n == 0:
            raise AnalysisError("cannot summarise an empty dataset")
        bounds = np.linspace(0, n, min(buckets, n) + 1).round().astype(int)
        out = {key: [] for key in ("axis_lo", "axis_hi",
                                   "min", "max", "mean")}
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            if hi <= lo:
                continue
            values = self._trace_window(name, int(lo), int(hi))
            out["axis_lo"].append(self.axis[lo])
            out["axis_hi"].append(self.axis[hi - 1])
            out["min"].append(np.min(values))
            out["max"].append(np.max(values))
            out["mean"].append(np.mean(values))
        return {key: np.asarray(vals) for key, vals in out.items()}

    def period_estimate(self, name: str, level: float,
                        method: str = "mean") -> float:
        """Spacing of same-direction crossings (for oscillators).

        ``method="mean"`` (default) averages every rising-crossing
        spacing — the historical estimator.  ``method="median"`` is
        robust to spurious crossing pairs: a waveform grazing the
        level contributes one near-zero and one near-period spacing,
        which shift the mean by ~1/n but leave the median untouched.
        (The Monte-Carlo ring evaluator needs even stronger
        protection — it validates each cycle's excursion before
        taking the median itself; see
        ``RingOscillatorEvaluator._period_metrics``.)

        Raises :class:`AnalysisError` with a clear message when fewer
        than two rising crossings exist.
        """
        if method not in ("mean", "median"):
            raise ParameterError(
                f"method must be 'mean' or 'median': {method!r}"
            )
        rising = self.crossings(name, level, rising=True)
        if len(rising) < 2:
            raise AnalysisError(
                f"trace {name!r} has {len(rising)} rising crossings of "
                f"{level}; cannot estimate a period"
            )
        diffs = np.diff(rising)
        if method == "median":
            return float(np.median(diffs))
        return float(np.mean(diffs))

    def swing(self, name: str) -> float:
        """Peak-to-peak excursion of a trace."""
        y = self.trace(name)
        return float(np.max(y) - np.min(y))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dataset({self.axis_name}, {len(self.axis)} points, "
            f"traces={self.names})"
        )
