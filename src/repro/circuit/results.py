"""Analysis result containers and waveform measurements."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import AnalysisError, ParameterError


class Dataset:
    """Named traces over a common sweep axis.

    ``axis`` is time (transient) or the swept value (DC sweep); traces
    are keyed ``v(node)`` / ``i(element)`` by the analyses.
    """

    def __init__(self, axis_name: str, axis: Sequence[float]) -> None:
        self.axis_name = axis_name
        self.axis = np.asarray(axis, dtype=float)
        self._traces: Dict[str, np.ndarray] = {}

    def add_trace(self, name: str, values: Sequence[float]) -> None:
        """Attach a trace (same length as the axis)."""
        arr = np.asarray(values, dtype=float)
        if arr.shape != self.axis.shape:
            raise ParameterError(
                f"trace {name!r} length {arr.shape} != axis "
                f"{self.axis.shape}"
            )
        self._traces[name.lower()] = arr

    def trace(self, name: str) -> np.ndarray:
        """A trace by (case-insensitive) name."""
        try:
            return self._traces[name.lower()]
        except KeyError:
            raise AnalysisError(
                f"no trace {name!r}; available: {sorted(self._traces)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._traces

    @property
    def names(self) -> List[str]:
        """Sorted trace names."""
        return sorted(self._traces)

    def voltage(self, node: str) -> np.ndarray:
        """Voltage trace ``v(node)`` [V]."""
        return self.trace(f"v({node})")

    def current(self, element: str) -> np.ndarray:
        """Current trace ``i(element)`` [A]."""
        return self.trace(f"i({element})")

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------

    def at(self, name: str, axis_value: float) -> float:
        """Linear interpolation of a trace at an axis value."""
        return float(np.interp(axis_value, self.axis, self.trace(name)))

    def crossings(self, name: str, level: float,
                  rising: Optional[bool] = None) -> List[float]:
        """Axis values where a trace crosses ``level`` (interpolated).

        ``rising=True`` keeps only upward crossings, ``False`` only
        downward, ``None`` both.
        """
        y = self.trace(name) - level
        x = self.axis
        out: List[float] = []
        for i in range(len(y) - 1):
            y0, y1 = y[i], y[i + 1]
            if y0 == 0.0:
                direction = y1 > 0
                if rising is None or rising == direction:
                    out.append(float(x[i]))
                continue
            if y0 * y1 < 0.0:
                direction = y1 > y0
                if rising is None or rising == direction:
                    out.append(float(x[i] - y0 * (x[i + 1] - x[i])
                                     / (y1 - y0)))
        return out

    def period_estimate(self, name: str, level: float,
                        method: str = "mean") -> float:
        """Spacing of same-direction crossings (for oscillators).

        ``method="mean"`` (default) averages every rising-crossing
        spacing — the historical estimator.  ``method="median"`` is
        robust to spurious crossing pairs: a waveform grazing the
        level contributes one near-zero and one near-period spacing,
        which shift the mean by ~1/n but leave the median untouched.
        (The Monte-Carlo ring evaluator needs even stronger
        protection — it validates each cycle's excursion before
        taking the median itself; see
        ``RingOscillatorEvaluator._period_metrics``.)

        Raises :class:`AnalysisError` with a clear message when fewer
        than two rising crossings exist.
        """
        if method not in ("mean", "median"):
            raise ParameterError(
                f"method must be 'mean' or 'median': {method!r}"
            )
        rising = self.crossings(name, level, rising=True)
        if len(rising) < 2:
            raise AnalysisError(
                f"trace {name!r} has {len(rising)} rising crossings of "
                f"{level}; cannot estimate a period"
            )
        diffs = np.diff(rising)
        if method == "median":
            return float(np.median(diffs))
        return float(np.mean(diffs))

    def swing(self, name: str) -> float:
        """Peak-to-peak excursion of a trace."""
        y = self.trace(name)
        return float(np.max(y) - np.min(y))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dataset({self.axis_name}, {len(self.axis)} points, "
            f"traces={self.names})"
        )
