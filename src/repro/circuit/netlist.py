"""Circuit container: elements, nodes, system dimensioning."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.circuit.elements.base import GROUND_NAMES, Element
from repro.errors import NetlistError


class Circuit:
    """A flat netlist of elements.

    Nodes are created implicitly by element terminals; ``0``/``gnd`` is
    ground.  The circuit assigns matrix indices: node voltages first,
    then auxiliary branch currents in element order.
    """

    def __init__(self, title: str = "") -> None:
        self.title = title
        self.elements: List[Element] = []
        self._by_name: Dict[str, Element] = {}
        self.node_index: Dict[str, int] = {}
        self._n_aux = 0
        self._dimensioned = False

    # ------------------------------------------------------------------

    def add(self, element: Element) -> Element:
        """Add an element (returns it for chaining)."""
        key = element.name.lower()
        if key in self._by_name:
            raise NetlistError(f"duplicate element name {element.name!r}")
        self._by_name[key] = element
        self.elements.append(element)
        self._dimensioned = False
        return element

    def element(self, name: str) -> Element:
        """Look up an element by (case-insensitive) name."""
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise NetlistError(f"no element named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._by_name

    # ------------------------------------------------------------------

    @property
    def nodes(self) -> List[str]:
        """All non-ground nodes, in first-appearance order."""
        seen: Dict[str, None] = {}
        for el in self.elements:
            for node in el.nodes:
                if node not in GROUND_NAMES and node not in seen:
                    seen[node] = None
        return list(seen)

    def dimension(self) -> int:
        """Assign matrix indices; returns the system size.

        Idempotent until the element list changes.
        """
        if self._dimensioned:
            return len(self.node_index) + self._n_aux
        nodes = self.nodes
        if not nodes:
            raise NetlistError("circuit has no non-ground nodes")
        self._check_topology()
        self.node_index = {n: i for i, n in enumerate(nodes)}
        offset = len(nodes)
        self._n_aux = 0
        for el in self.elements:
            if el.n_aux:
                el.aux_index = offset + self._n_aux
                self._n_aux += el.n_aux
        self._dimensioned = True
        return offset + self._n_aux

    def _check_topology(self) -> None:
        ground_seen = any(
            node in GROUND_NAMES for el in self.elements for node in el.nodes
        )
        if not ground_seen:
            raise NetlistError(
                "circuit has no ground reference (node '0' or 'gnd')"
            )

    @property
    def n_nodes(self) -> int:
        """Number of non-ground nodes."""
        return len(self.nodes)

    def reset_state(self) -> None:
        """Clear element transient state before a new analysis."""
        for el in self.elements:
            el.reset_state()

    def iter_elements(self, cls: Optional[type] = None) -> Iterable[Element]:
        """Iterate elements, optionally filtered by class."""
        for el in self.elements:
            if cls is None or isinstance(el, cls):
                yield el

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Circuit({self.title!r}, {len(self.elements)} elements, "
            f"{self.n_nodes} nodes)"
        )
