"""Circuit container, hierarchical subcircuits, system dimensioning.

Two layers live here:

* :class:`Circuit` — the flat netlist the analyses consume: a list of
  elements, implicit nodes, matrix-index assignment.
* :class:`SubCircuit` / :class:`Instance` — the hierarchy front end.
  A ``SubCircuit`` is a reusable block with an ordered port list,
  containing elements and instances of other subcircuits;
  :meth:`SubCircuit.instantiate` *flattens* it into an existing
  ``Circuit``.  Flattening binds ports to parent nets, prefixes every
  internal net and element name with the dot-separated instance path
  (``Xadd0.Xfa1.carry``), and raises
  :class:`~repro.errors.ParameterError` instead of silently merging
  when a generated hierarchical name collides with a pre-existing net.

Node matrix indices are assigned in sorted-name order (insertion-
stable for ties is moot — names are unique), so the index map depends
only on the *set* of nets, not on element insertion order: a
hierarchical circuit and its manually flattened equivalent get
bit-identical systems.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.circuit.elements.base import GROUND_NAMES, Element
from repro.errors import NetlistError, ParameterError

#: Separator of hierarchical instance paths (``Xadd0.Xfa1.carry``).
HIER_SEP = "."


class Circuit:
    """A flat netlist of elements.

    Nodes are created implicitly by element terminals; ``0``/``gnd`` is
    ground.  The circuit assigns matrix indices: node voltages first,
    then auxiliary branch currents in element order.
    """

    def __init__(self, title: str = "") -> None:
        self.title = title
        self.elements: List[Element] = []
        self._by_name: Dict[str, Element] = {}
        self.node_index: Dict[str, int] = {}
        #: incrementally maintained non-ground net set (kept so
        #: ``nodes`` and the flattening collision check never have to
        #: re-scan every element's terminals)
        self._node_set: Set[str] = set()
        self._n_aux = 0
        self._dimensioned = False

    # ------------------------------------------------------------------

    def add(self, element: Element) -> Element:
        """Add an element (returns it for chaining)."""
        key = element.name.lower()
        if key in self._by_name:
            raise NetlistError(f"duplicate element name {element.name!r}")
        self._by_name[key] = element
        self.elements.append(element)
        for node in element.nodes:
            if node not in GROUND_NAMES:
                self._node_set.add(node)
        self._dimensioned = False
        return element

    def element(self, name: str) -> Element:
        """Look up an element by (case-insensitive) name."""
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise NetlistError(f"no element named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._by_name

    # ------------------------------------------------------------------

    @property
    def nodes(self) -> List[str]:
        """All non-ground nodes, sorted by name.

        Sorted order makes index assignment a function of the net
        *set* alone: circuits built in different element orders (e.g.
        a flattened hierarchy vs. its hand-built equivalent) receive
        identical matrix layouts.
        """
        return sorted(self._node_set)

    def dimension(self) -> int:
        """Assign matrix indices; returns the system size.

        Idempotent until the element list changes.
        """
        if self._dimensioned:
            return len(self.node_index) + self._n_aux
        nodes = self.nodes
        if not nodes:
            raise NetlistError("circuit has no non-ground nodes")
        self._check_topology()
        self.node_index = {n: i for i, n in enumerate(nodes)}
        offset = len(nodes)
        self._n_aux = 0
        for el in self.elements:
            if el.n_aux:
                el.aux_index = offset + self._n_aux
                self._n_aux += el.n_aux
        self._dimensioned = True
        return offset + self._n_aux

    def _check_topology(self) -> None:
        ground_seen = any(
            node in GROUND_NAMES for el in self.elements for node in el.nodes
        )
        if not ground_seen:
            raise NetlistError(
                "circuit has no ground reference (node '0' or 'gnd')"
            )

    @property
    def n_nodes(self) -> int:
        """Number of non-ground nodes."""
        return len(self.nodes)

    def reset_state(self) -> None:
        """Clear element transient state before a new analysis."""
        for el in self.elements:
            el.reset_state()

    def iter_elements(self, cls: Optional[type] = None) -> Iterable[Element]:
        """Iterate elements, optionally filtered by class."""
        for el in self.elements:
            if cls is None or isinstance(el, cls):
                yield el

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Circuit({self.title!r}, {len(self.elements)} elements, "
            f"{self.n_nodes} nodes)"
        )


class Instance:
    """A named binding of a :class:`SubCircuit`'s ports to parent nets.

    ``connections[i]`` is the parent-scope net bound to
    ``subcircuit.ports[i]`` — a port of the enclosing subcircuit, an
    internal net, or ground.
    """

    def __init__(self, name: str, subcircuit: "SubCircuit",
                 connections: Sequence[str]) -> None:
        if not name:
            raise ParameterError("instance name must be non-empty")
        if HIER_SEP in name:
            raise ParameterError(
                f"instance name {name!r} must not contain "
                f"{HIER_SEP!r} (the hierarchy separator)"
            )
        connections = tuple(connections)
        if len(connections) != len(subcircuit.ports):
            raise ParameterError(
                f"instance {name!r} of {subcircuit.name!r}: "
                f"{len(connections)} connections for "
                f"{len(subcircuit.ports)} ports {subcircuit.ports}"
            )
        if not all(connections):
            raise ParameterError(
                f"instance {name!r}: empty net name in connections"
            )
        self.name = name
        self.subcircuit = subcircuit
        self.connections = connections

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Instance({self.name!r}, {self.subcircuit.name!r}, "
                f"{self.connections})")


class SubCircuit:
    """A reusable hierarchical block with an ordered port list.

    A definition holds prototype elements (node names are ports,
    internal nets, or ground) and nested :class:`Instance` records.
    :meth:`instantiate` flattens the whole tree into a target
    :class:`Circuit`: element clones get the dot-separated instance
    path as a name prefix, internal nets get the same prefix
    (``Xadd0.Xfa1.carry``), port references resolve to the parent
    nets, and ground stays ground at every level.
    """

    def __init__(self, name: str, ports: Sequence[str]) -> None:
        if not name:
            raise ParameterError("subcircuit name must be non-empty")
        ports = tuple(ports)
        if not ports:
            raise ParameterError(
                f"subcircuit {name!r} needs at least one port"
            )
        seen = set()
        for port in ports:
            if not port:
                raise ParameterError(
                    f"subcircuit {name!r}: empty port name")
            if port in GROUND_NAMES:
                raise ParameterError(
                    f"subcircuit {name!r}: port {port!r} is a ground "
                    f"name; ground is global, not a port"
                )
            if HIER_SEP in port:
                raise ParameterError(
                    f"subcircuit {name!r}: port {port!r} must not "
                    f"contain {HIER_SEP!r} (the hierarchy separator)"
                )
            if port in seen:
                raise ParameterError(
                    f"subcircuit {name!r}: duplicate port {port!r}")
            seen.add(port)
        self.name = name
        self.ports = ports
        self.elements: List[Element] = []
        self.instances: List[Instance] = []
        self._names: Set[str] = set()

    def _claim_name(self, name: str, kind: str) -> None:
        key = name.lower()
        if key in self._names:
            raise NetlistError(
                f"subcircuit {self.name!r}: duplicate {kind} name "
                f"{name!r}"
            )
        self._names.add(key)

    def _check_scope_net(self, net: str, owner: str) -> None:
        # Definition-scope nets must be separator-free: generated
        # hierarchical names then decompose uniquely into
        # (instance path, local net), so two distinct nets can never
        # flatten to the same name (top-level nets, which may be
        # dotted, are guarded separately by the instantiate-time
        # collision set).
        if HIER_SEP in net and net not in GROUND_NAMES:
            raise ParameterError(
                f"subcircuit {self.name!r}: {owner} references net "
                f"{net!r}; nets inside a definition must not contain "
                f"{HIER_SEP!r} (the hierarchy separator)"
            )

    def add(self, element: Element) -> Element:
        """Add a prototype element (returns it for chaining)."""
        self._claim_name(element.name, "element")
        for net in element.nodes:
            self._check_scope_net(net, f"element {element.name!r}")
        self.elements.append(element)
        return element

    def add_instance(self, instance: Instance) -> Instance:
        """Add a nested subcircuit instance."""
        self._claim_name(instance.name, "instance")
        for net in instance.connections:
            self._check_scope_net(net, f"instance {instance.name!r}")
        self.instances.append(instance)
        return instance

    # ------------------------------------------------------------------

    def instantiate(self, circuit: Circuit, name: str,
                    connections: Sequence[str]) -> None:
        """Flatten this subcircuit into ``circuit`` as instance
        ``name`` with its ports bound to ``connections``.

        Raises
        ------
        ParameterError
            On port/connection count mismatch, on recursive
            definitions, or when a generated hierarchical net name
            collides with a net that already exists in ``circuit``
            (silent merging would quietly short two nets).
        NetlistError
            When a flattened element name is already taken.
        """
        instance = Instance(name, self, connections)  # validates
        # Nets that generated hierarchical names must not merge with:
        # everything already in the circuit plus the connection nets
        # themselves (a connection may name a net that does not exist
        # in the circuit yet).  Snapshot the incrementally maintained
        # set — the live one grows as this very expansion adds
        # elements, and an internal net must be free to be referenced
        # more than once.
        taken = set(circuit._node_set)
        taken.update(n for n in instance.connections
                     if n not in GROUND_NAMES)
        self._expand(circuit, instance.name,
                     dict(zip(self.ports, instance.connections)),
                     taken, ())
        circuit._dimensioned = False

    def _expand(self, circuit: Circuit, path: str,
                binding: Dict[str, str], taken: Set[str],
                stack: Tuple["SubCircuit", ...]) -> None:
        # Cycle detection is by definition *identity*: two distinct
        # definitions may legitimately share a name along one path.
        if any(ancestor is self for ancestor in stack):
            chain = " -> ".join(
                s.name for s in stack + (self,))
            raise ParameterError(
                f"recursive subcircuit definition: {chain}"
            )
        stack = stack + (self,)

        def map_node(node: str) -> str:
            if node in GROUND_NAMES:
                return node
            bound = binding.get(node)
            if bound is not None:
                return bound
            internal = f"{path}{HIER_SEP}{node}"
            if internal in taken:
                raise ParameterError(
                    f"flattening {path!r} ({self.name}): internal net "
                    f"{internal!r} collides with an existing net; "
                    f"rename the conflicting top-level net or instance"
                )
            return internal

        for el in self.elements:
            clone = el.clone(f"{path}{HIER_SEP}{el.name}",
                             [map_node(n) for n in el.nodes])
            try:
                circuit.add(clone)
            except NetlistError as exc:
                raise NetlistError(
                    f"flattening {path!r} ({self.name}): {exc}"
                ) from exc
        for inst in self.instances:
            child_binding = {
                port: map_node(net)
                for port, net in zip(inst.subcircuit.ports,
                                     inst.connections)
            }
            inst.subcircuit._expand(
                circuit, f"{path}{HIER_SEP}{inst.name}",
                child_binding, taken, stack,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SubCircuit({self.name!r}, ports={self.ports}, "
            f"{len(self.elements)} elements, "
            f"{len(self.instances)} instances)"
        )
