"""SPICE-like circuit simulation engine.

A deliberately compact but real modified-nodal-analysis (MNA) simulator:

* :mod:`repro.circuit.netlist` — circuit container, node bookkeeping,
  and the :class:`SubCircuit`/:class:`Instance` hierarchy layer
  (flattened with dot-separated instance paths);
* :mod:`repro.circuit.solvers` — pluggable dense/sparse linear-solver
  backends (``backend="auto"|"dense"|"sparse"`` on every analysis;
  see ``docs/hierarchy.md``);
* :mod:`repro.circuit.elements` — R, L, C, sources, diode and the CNFET
  device element (fast piecewise backend or reference backend);
* :mod:`repro.circuit.mna` — assembly and the damped Newton loop with
  gmin/source stepping fallbacks;
* :mod:`repro.circuit.dc` — operating point and DC sweeps;
* :mod:`repro.circuit.transient` — adaptive LTE-controlled
  backward-Euler / trapezoidal integration with event-aware waveform
  breakpoints (plus the legacy fixed-step mode; see
  ``docs/transient.md``);
* :mod:`repro.circuit.batch_sim` — the lane-batched engine: many
  instances of one circuit topology advanced in lock-step through
  stacked MNA solves (see ``docs/performance.md``);
* :mod:`repro.circuit.parser` — SPICE-flavoured netlist text front end
  (``.subckt``/``.ends``/``X`` hierarchy cards included);
* :mod:`repro.circuit.logic` — CNFET gate primitives (inverter,
  NAND2/NAND3, NOR2, transmission gate, ring oscillator) plus
  hierarchical blocks (full adder, N-bit ripple-carry adder, inverter
  chains, 6T SRAM cell, mux trees) used by the examples and
  :mod:`repro.characterize`;
* :mod:`repro.circuit.partition` — block partitioning along subcircuit
  boundaries with Schur-complement interface coupling and latency
  bypass for mostly-quiescent transients
  (``transient(partition="auto")``; see ``docs/partitioning.md``);
* :mod:`repro.circuit.store` — chunked on-disk waveform store backing
  the out-of-core ``Dataset`` mode (``transient(store=...)``).
"""

from repro.circuit.ac import ac_analysis, decade_frequencies
from repro.circuit.batch_sim import (
    BatchTransientResult,
    LaneBatch,
    batch_dc_sweep,
    batch_operating_points,
    batch_transient,
)
from repro.circuit.dc import dc_sweep, operating_point
from repro.circuit.mna import NewtonOptions, TwoPhaseAssembler
from repro.circuit.netlist import Instance, SubCircuit
from repro.circuit.solvers import (
    DenseBackend,
    LinearSolverBackend,
    SparseBackend,
    resolve_backend,
)
from repro.circuit.elements import (
    Capacitor,
    CNFETElement,
    CurrentSource,
    Diode,
    Inductor,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit
from repro.circuit.partition import (
    Partition,
    PartitionBlock,
    PartitionedAssembler,
    PartitionReport,
    partition_circuit,
)
from repro.circuit.results import Dataset
from repro.circuit.store import WaveformStore
from repro.circuit.transient import transient
from repro.circuit.waveforms import DC, Pulse, PWLWaveform, Sine

__all__ = [
    "Circuit",
    "SubCircuit",
    "Instance",
    "LinearSolverBackend",
    "DenseBackend",
    "SparseBackend",
    "resolve_backend",
    "ac_analysis",
    "decade_frequencies",
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "Diode",
    "CNFETElement",
    "operating_point",
    "dc_sweep",
    "transient",
    "Dataset",
    "DC",
    "Pulse",
    "Sine",
    "PWLWaveform",
    "NewtonOptions",
    "TwoPhaseAssembler",
    "Partition",
    "PartitionBlock",
    "PartitionReport",
    "PartitionedAssembler",
    "partition_circuit",
    "WaveformStore",
    "LaneBatch",
    "BatchTransientResult",
    "batch_transient",
    "batch_operating_points",
    "batch_dc_sweep",
]
