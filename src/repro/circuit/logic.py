"""CNFET logic-circuit builders.

The paper motivates the fast model with "simulations of circuits that
might involve very large numbers of CNT devices" and names logic
structures as future work; these builders create the canonical test
circuits used by the examples, the gate-characterization subsystem
(:mod:`repro.characterize`) and the integration tests:

* complementary inverter (n + p CNFET),
* 2-input NAND / NOR, 3-input NAND,
* transmission-gate buffer,
* N-stage ring oscillator with load capacitors.

The p-type device is the voltage-mirrored n-type model (see
:class:`repro.pwl.device.CNFET`), the standard circuit-level idealisation
for complementary CNFET logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.circuit.elements import Capacitor, CNFETElement, VoltageSource
from repro.circuit.netlist import Circuit
from repro.circuit.waveforms import Waveform
from repro.errors import ParameterError
from repro.pwl.device import CNFET
from repro.reference.fettoy import FETToyParameters


@dataclass
class LogicFamily:
    """A matched pair of n/p devices plus shared sizing defaults."""

    n_device: CNFET
    p_device: CNFET
    vdd: float = 0.6
    length_nm: float = 30.0
    load_f: float = 1e-17

    @classmethod
    def default(cls, vdd: float = 0.6, model: str = "model2",
                params: Optional[FETToyParameters] = None) -> "LogicFamily":
        """Build the standard family from FETToy-default devices."""
        base = params if params is not None else FETToyParameters()
        return cls(
            n_device=CNFET(base, model=model, polarity="n"),
            p_device=CNFET(base, model=model, polarity="p"),
            vdd=vdd,
        )


def add_inverter(circuit: Circuit, family: LogicFamily, name: str,
                 vin: str, vout: str, vdd_node: str = "vdd") -> None:
    """Complementary inverter ``name`` from ``vin`` to ``vout``."""
    circuit.add(CNFETElement(
        f"{name}_p", vout, vin, vdd_node, device=family.p_device,
        length_nm=family.length_nm,
    ))
    circuit.add(CNFETElement(
        f"{name}_n", vout, vin, "0", device=family.n_device,
        length_nm=family.length_nm,
    ))


def add_nand2(circuit: Circuit, family: LogicFamily, name: str,
              in_a: str, in_b: str, vout: str,
              vdd_node: str = "vdd") -> None:
    """2-input NAND: parallel p pull-ups, stacked n pull-downs."""
    mid = f"{name}_mid"
    circuit.add(CNFETElement(
        f"{name}_pa", vout, in_a, vdd_node, device=family.p_device,
        length_nm=family.length_nm,
    ))
    circuit.add(CNFETElement(
        f"{name}_pb", vout, in_b, vdd_node, device=family.p_device,
        length_nm=family.length_nm,
    ))
    circuit.add(CNFETElement(
        f"{name}_na", vout, in_a, mid, device=family.n_device,
        length_nm=family.length_nm,
    ))
    circuit.add(CNFETElement(
        f"{name}_nb", mid, in_b, "0", device=family.n_device,
        length_nm=family.length_nm,
    ))


def add_nor2(circuit: Circuit, family: LogicFamily, name: str,
             in_a: str, in_b: str, vout: str,
             vdd_node: str = "vdd") -> None:
    """2-input NOR: stacked p pull-ups, parallel n pull-downs."""
    mid = f"{name}_mid"
    circuit.add(CNFETElement(
        f"{name}_pa", mid, in_a, vdd_node, device=family.p_device,
        length_nm=family.length_nm,
    ))
    circuit.add(CNFETElement(
        f"{name}_pb", vout, in_b, mid, device=family.p_device,
        length_nm=family.length_nm,
    ))
    circuit.add(CNFETElement(
        f"{name}_na", vout, in_a, "0", device=family.n_device,
        length_nm=family.length_nm,
    ))
    circuit.add(CNFETElement(
        f"{name}_nb", vout, in_b, "0", device=family.n_device,
        length_nm=family.length_nm,
    ))


def add_nand3(circuit: Circuit, family: LogicFamily, name: str,
              in_a: str, in_b: str, in_c: str, vout: str,
              vdd_node: str = "vdd") -> None:
    """3-input NAND: three parallel p pull-ups, three stacked n
    pull-downs."""
    mid1, mid2 = f"{name}_mid1", f"{name}_mid2"
    for tag, node in (("pa", in_a), ("pb", in_b), ("pc", in_c)):
        circuit.add(CNFETElement(
            f"{name}_{tag}", vout, node, vdd_node,
            device=family.p_device, length_nm=family.length_nm,
        ))
    circuit.add(CNFETElement(
        f"{name}_na", vout, in_a, mid1, device=family.n_device,
        length_nm=family.length_nm,
    ))
    circuit.add(CNFETElement(
        f"{name}_nb", mid1, in_b, mid2, device=family.n_device,
        length_nm=family.length_nm,
    ))
    circuit.add(CNFETElement(
        f"{name}_nc", mid2, in_c, "0", device=family.n_device,
        length_nm=family.length_nm,
    ))


def add_tgate_buffer(circuit: Circuit, family: LogicFamily, name: str,
                     vin: str, vout: str, enable: str,
                     enable_bar: str) -> None:
    """Transmission gate passing ``vin`` to ``vout`` while enabled.

    The n-device conducts for ``enable`` high, the mirrored p-device
    for ``enable_bar`` low; together they pass both logic levels
    (each device alone degrades one rail by its threshold).
    """
    circuit.add(CNFETElement(
        f"{name}_n", vout, enable, vin, device=family.n_device,
        length_nm=family.length_nm,
    ))
    circuit.add(CNFETElement(
        f"{name}_p", vout, enable_bar, vin, device=family.p_device,
        length_nm=family.length_nm,
    ))


def build_inverter(family: LogicFamily,
                   vin_wave: Waveform | float = 0.0
                   ) -> Tuple[Circuit, str, str]:
    """Single inverter with supply and driven input.

    Returns ``(circuit, input_node, output_node)``.
    """
    circuit = Circuit("cnfet inverter")
    circuit.add(VoltageSource("vdd_src", "vdd", "0", family.vdd))
    circuit.add(VoltageSource("vin_src", "in", "0", vin_wave))
    add_inverter(circuit, family, "inv", "in", "out")
    circuit.add(Capacitor("cload", "out", "0", family.load_f))
    return circuit, "in", "out"


def build_nand2(family: LogicFamily,
                wave_a: Waveform | float = 0.0,
                wave_b: Waveform | float = 0.0) -> Tuple[Circuit, str]:
    """2-input NAND with driven inputs; returns ``(circuit, out_node)``."""
    circuit = Circuit("cnfet nand2")
    circuit.add(VoltageSource("vdd_src", "vdd", "0", family.vdd))
    circuit.add(VoltageSource("va_src", "a", "0", wave_a))
    circuit.add(VoltageSource("vb_src", "b", "0", wave_b))
    add_nand2(circuit, family, "nand", "a", "b", "out")
    circuit.add(Capacitor("cload", "out", "0", family.load_f))
    return circuit, "out"


def build_nor2(family: LogicFamily,
               wave_a: Waveform | float = 0.0,
               wave_b: Waveform | float = 0.0) -> Tuple[Circuit, str]:
    """2-input NOR with driven inputs; returns ``(circuit, out_node)``."""
    circuit = Circuit("cnfet nor2")
    circuit.add(VoltageSource("vdd_src", "vdd", "0", family.vdd))
    circuit.add(VoltageSource("va_src", "a", "0", wave_a))
    circuit.add(VoltageSource("vb_src", "b", "0", wave_b))
    add_nor2(circuit, family, "nor", "a", "b", "out")
    circuit.add(Capacitor("cload", "out", "0", family.load_f))
    return circuit, "out"


def build_nand3(family: LogicFamily,
                wave_a: Waveform | float = 0.0,
                wave_b: Waveform | float = 0.0,
                wave_c: Waveform | float = 0.0) -> Tuple[Circuit, str]:
    """3-input NAND with driven inputs; returns ``(circuit, out_node)``."""
    circuit = Circuit("cnfet nand3")
    circuit.add(VoltageSource("vdd_src", "vdd", "0", family.vdd))
    circuit.add(VoltageSource("va_src", "a", "0", wave_a))
    circuit.add(VoltageSource("vb_src", "b", "0", wave_b))
    circuit.add(VoltageSource("vc_src", "c", "0", wave_c))
    add_nand3(circuit, family, "nand", "a", "b", "c", "out")
    circuit.add(Capacitor("cload", "out", "0", family.load_f))
    return circuit, "out"


def build_tgate_buffer(family: LogicFamily,
                       vin_wave: Waveform | float = 0.0
                       ) -> Tuple[Circuit, str]:
    """Enabled transmission-gate buffer driven by ``vin_wave``.

    Returns ``(circuit, out_node)``; the enables are tied active
    (``en = VDD``, ``enb = 0``).
    """
    circuit = Circuit("cnfet tgate buffer")
    circuit.add(VoltageSource("vdd_src", "vdd", "0", family.vdd))
    circuit.add(VoltageSource("ven_src", "en", "0", family.vdd))
    circuit.add(VoltageSource("vin_src", "in", "0", vin_wave))
    add_tgate_buffer(circuit, family, "tg", "in", "out", "en", "0")
    circuit.add(Capacitor("cload", "out", "0", family.load_f))
    return circuit, "out"


def build_ring_oscillator(family: LogicFamily,
                          stages: int = 3) -> Tuple[Circuit, Tuple[str, ...]]:
    """Ring of an odd number of inverters with per-stage load caps.

    Returns ``(circuit, stage_output_nodes)``.
    """
    if stages < 3 or stages % 2 == 0:
        raise ParameterError(
            f"a ring oscillator needs an odd stage count >= 3: {stages}"
        )
    circuit = Circuit(f"cnfet ring oscillator ({stages} stages)")
    circuit.add(VoltageSource("vdd_src", "vdd", "0", family.vdd))
    nodes = tuple(f"n{i}" for i in range(stages))
    for i in range(stages):
        vin = nodes[i - 1] if i > 0 else nodes[-1]
        add_inverter(circuit, family, f"inv{i}", vin, nodes[i])
        circuit.add(Capacitor(f"cl{i}", nodes[i], "0", family.load_f))
    return circuit, nodes
