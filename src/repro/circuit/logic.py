"""CNFET logic-circuit builders: flat gates and hierarchical blocks.

The paper motivates the fast model with "simulations of circuits that
might involve very large numbers of CNT devices" and names logic
structures as future work.  This module is a composable library with
two layers:

* **Gate primitives** (``add_*``): stamp one gate's transistors into
  any container exposing the ``add(element)`` protocol — a flat
  :class:`~repro.circuit.netlist.Circuit` *or* a
  :class:`~repro.circuit.netlist.SubCircuit` definition.  Inverter,
  2/3-input NAND, 2-input NOR, transmission gate.
* **Hierarchical blocks** (``*_subcircuit``): reusable
  :class:`~repro.circuit.netlist.SubCircuit` definitions built from
  the primitives and from each other — a full adder as nine NAND2
  instances, an N-bit ripple-carry adder as chained full adders
  (three hierarchy levels), N-stage inverter/buffer chains, a
  6T-style cross-coupled SRAM cell, and a transmission-gate mux tree.
  ``build_*`` helpers flatten a block into a ready-to-simulate
  :class:`Circuit` with supplies and drive sources.

The p-type device is the voltage-mirrored n-type model (see
:class:`repro.pwl.device.CNFET`), the standard circuit-level idealisation
for complementary CNFET logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from repro.circuit.elements import Capacitor, CNFETElement, VoltageSource
from repro.circuit.netlist import Circuit, Instance, SubCircuit
from repro.circuit.waveforms import Waveform
from repro.errors import ParameterError
from repro.pwl.device import CNFET
from repro.reference.fettoy import FETToyParameters


@dataclass
class LogicFamily:
    """A matched pair of n/p devices plus shared sizing defaults."""

    n_device: CNFET
    p_device: CNFET
    vdd: float = 0.6
    length_nm: float = 30.0
    load_f: float = 1e-17

    @classmethod
    def default(cls, vdd: float = 0.6, model: str = "model2",
                params: Optional[FETToyParameters] = None) -> "LogicFamily":
        """Build the standard family from FETToy-default devices."""
        base = params if params is not None else FETToyParameters()
        return cls(
            n_device=CNFET(base, model=model, polarity="n"),
            p_device=CNFET(base, model=model, polarity="p"),
            vdd=vdd,
        )


def add_inverter(circuit: Union[Circuit, SubCircuit], family: LogicFamily, name: str,
                 vin: str, vout: str, vdd_node: str = "vdd") -> None:
    """Complementary inverter ``name`` from ``vin`` to ``vout``."""
    circuit.add(CNFETElement(
        f"{name}_p", vout, vin, vdd_node, device=family.p_device,
        length_nm=family.length_nm,
    ))
    circuit.add(CNFETElement(
        f"{name}_n", vout, vin, "0", device=family.n_device,
        length_nm=family.length_nm,
    ))


def add_nand2(circuit: Union[Circuit, SubCircuit], family: LogicFamily, name: str,
              in_a: str, in_b: str, vout: str,
              vdd_node: str = "vdd") -> None:
    """2-input NAND: parallel p pull-ups, stacked n pull-downs."""
    mid = f"{name}_mid"
    circuit.add(CNFETElement(
        f"{name}_pa", vout, in_a, vdd_node, device=family.p_device,
        length_nm=family.length_nm,
    ))
    circuit.add(CNFETElement(
        f"{name}_pb", vout, in_b, vdd_node, device=family.p_device,
        length_nm=family.length_nm,
    ))
    circuit.add(CNFETElement(
        f"{name}_na", vout, in_a, mid, device=family.n_device,
        length_nm=family.length_nm,
    ))
    circuit.add(CNFETElement(
        f"{name}_nb", mid, in_b, "0", device=family.n_device,
        length_nm=family.length_nm,
    ))


def add_nor2(circuit: Union[Circuit, SubCircuit], family: LogicFamily, name: str,
             in_a: str, in_b: str, vout: str,
             vdd_node: str = "vdd") -> None:
    """2-input NOR: stacked p pull-ups, parallel n pull-downs."""
    mid = f"{name}_mid"
    circuit.add(CNFETElement(
        f"{name}_pa", mid, in_a, vdd_node, device=family.p_device,
        length_nm=family.length_nm,
    ))
    circuit.add(CNFETElement(
        f"{name}_pb", vout, in_b, mid, device=family.p_device,
        length_nm=family.length_nm,
    ))
    circuit.add(CNFETElement(
        f"{name}_na", vout, in_a, "0", device=family.n_device,
        length_nm=family.length_nm,
    ))
    circuit.add(CNFETElement(
        f"{name}_nb", vout, in_b, "0", device=family.n_device,
        length_nm=family.length_nm,
    ))


def add_nand3(circuit: Union[Circuit, SubCircuit], family: LogicFamily, name: str,
              in_a: str, in_b: str, in_c: str, vout: str,
              vdd_node: str = "vdd") -> None:
    """3-input NAND: three parallel p pull-ups, three stacked n
    pull-downs."""
    mid1, mid2 = f"{name}_mid1", f"{name}_mid2"
    for tag, node in (("pa", in_a), ("pb", in_b), ("pc", in_c)):
        circuit.add(CNFETElement(
            f"{name}_{tag}", vout, node, vdd_node,
            device=family.p_device, length_nm=family.length_nm,
        ))
    circuit.add(CNFETElement(
        f"{name}_na", vout, in_a, mid1, device=family.n_device,
        length_nm=family.length_nm,
    ))
    circuit.add(CNFETElement(
        f"{name}_nb", mid1, in_b, mid2, device=family.n_device,
        length_nm=family.length_nm,
    ))
    circuit.add(CNFETElement(
        f"{name}_nc", mid2, in_c, "0", device=family.n_device,
        length_nm=family.length_nm,
    ))


def add_tgate_buffer(circuit: Union[Circuit, SubCircuit], family: LogicFamily, name: str,
                     vin: str, vout: str, enable: str,
                     enable_bar: str) -> None:
    """Transmission gate passing ``vin`` to ``vout`` while enabled.

    The n-device conducts for ``enable`` high, the mirrored p-device
    for ``enable_bar`` low; together they pass both logic levels
    (each device alone degrades one rail by its threshold).
    """
    circuit.add(CNFETElement(
        f"{name}_n", vout, enable, vin, device=family.n_device,
        length_nm=family.length_nm,
    ))
    circuit.add(CNFETElement(
        f"{name}_p", vout, enable_bar, vin, device=family.p_device,
        length_nm=family.length_nm,
    ))


def build_inverter(family: LogicFamily,
                   vin_wave: Waveform | float = 0.0
                   ) -> Tuple[Circuit, str, str]:
    """Single inverter with supply and driven input.

    Returns ``(circuit, input_node, output_node)``.
    """
    circuit = Circuit("cnfet inverter")
    circuit.add(VoltageSource("vdd_src", "vdd", "0", family.vdd))
    circuit.add(VoltageSource("vin_src", "in", "0", vin_wave))
    add_inverter(circuit, family, "inv", "in", "out")
    circuit.add(Capacitor("cload", "out", "0", family.load_f))
    return circuit, "in", "out"


def build_nand2(family: LogicFamily,
                wave_a: Waveform | float = 0.0,
                wave_b: Waveform | float = 0.0) -> Tuple[Circuit, str]:
    """2-input NAND with driven inputs; returns ``(circuit, out_node)``."""
    circuit = Circuit("cnfet nand2")
    circuit.add(VoltageSource("vdd_src", "vdd", "0", family.vdd))
    circuit.add(VoltageSource("va_src", "a", "0", wave_a))
    circuit.add(VoltageSource("vb_src", "b", "0", wave_b))
    add_nand2(circuit, family, "nand", "a", "b", "out")
    circuit.add(Capacitor("cload", "out", "0", family.load_f))
    return circuit, "out"


def build_nor2(family: LogicFamily,
               wave_a: Waveform | float = 0.0,
               wave_b: Waveform | float = 0.0) -> Tuple[Circuit, str]:
    """2-input NOR with driven inputs; returns ``(circuit, out_node)``."""
    circuit = Circuit("cnfet nor2")
    circuit.add(VoltageSource("vdd_src", "vdd", "0", family.vdd))
    circuit.add(VoltageSource("va_src", "a", "0", wave_a))
    circuit.add(VoltageSource("vb_src", "b", "0", wave_b))
    add_nor2(circuit, family, "nor", "a", "b", "out")
    circuit.add(Capacitor("cload", "out", "0", family.load_f))
    return circuit, "out"


def build_nand3(family: LogicFamily,
                wave_a: Waveform | float = 0.0,
                wave_b: Waveform | float = 0.0,
                wave_c: Waveform | float = 0.0) -> Tuple[Circuit, str]:
    """3-input NAND with driven inputs; returns ``(circuit, out_node)``."""
    circuit = Circuit("cnfet nand3")
    circuit.add(VoltageSource("vdd_src", "vdd", "0", family.vdd))
    circuit.add(VoltageSource("va_src", "a", "0", wave_a))
    circuit.add(VoltageSource("vb_src", "b", "0", wave_b))
    circuit.add(VoltageSource("vc_src", "c", "0", wave_c))
    add_nand3(circuit, family, "nand", "a", "b", "c", "out")
    circuit.add(Capacitor("cload", "out", "0", family.load_f))
    return circuit, "out"


def build_tgate_buffer(family: LogicFamily,
                       vin_wave: Waveform | float = 0.0
                       ) -> Tuple[Circuit, str]:
    """Enabled transmission-gate buffer driven by ``vin_wave``.

    Returns ``(circuit, out_node)``; the enables are tied active
    (``en = VDD``, ``enb = 0``).
    """
    circuit = Circuit("cnfet tgate buffer")
    circuit.add(VoltageSource("vdd_src", "vdd", "0", family.vdd))
    circuit.add(VoltageSource("ven_src", "en", "0", family.vdd))
    circuit.add(VoltageSource("vin_src", "in", "0", vin_wave))
    add_tgate_buffer(circuit, family, "tg", "in", "out", "en", "0")
    circuit.add(Capacitor("cload", "out", "0", family.load_f))
    return circuit, "out"


# ----------------------------------------------------------------------
# Hierarchical blocks (SubCircuit definitions)
# ----------------------------------------------------------------------

def inverter_subcircuit(family: LogicFamily,
                        name: str = "inv") -> SubCircuit:
    """Complementary inverter block; ports ``(a, y, vdd)``."""
    sub = SubCircuit(name, ("a", "y", "vdd"))
    add_inverter(sub, family, "m", "a", "y", "vdd")
    return sub


def nand2_subcircuit(family: LogicFamily,
                     name: str = "nand2") -> SubCircuit:
    """2-input NAND block; ports ``(a, b, y, vdd)``."""
    sub = SubCircuit(name, ("a", "b", "y", "vdd"))
    add_nand2(sub, family, "m", "a", "b", "y", "vdd")
    return sub


def full_adder_subcircuit(family: LogicFamily, name: str = "fa",
                          nand2: Optional[SubCircuit] = None
                          ) -> SubCircuit:
    """One-bit full adder from nine NAND2 instances.

    Ports ``(a, b, cin, sum, cout, vdd)``.  The classic nine-gate
    realisation: ``n1 = NAND(a, b)`` feeds both the XOR half
    (``h = a ^ b`` from three more NANDs) and the carry
    (``cout = NAND(n1, n4)`` with ``n4 = NAND(h, cin)``); the sum is
    the second XOR stage.  Pass a shared ``nand2`` definition to keep
    one prototype across many adders.
    """
    gate = nand2 if nand2 is not None else nand2_subcircuit(family)
    sub = SubCircuit(name, ("a", "b", "cin", "sum", "cout", "vdd"))
    wires = [
        ("Xn1", "a", "b", "n1"),
        ("Xn2", "a", "n1", "n2"),
        ("Xn3", "b", "n1", "n3"),
        ("Xn4", "n2", "n3", "h"),      # h = a xor b
        ("Xn5", "h", "cin", "n4"),
        ("Xn6", "h", "n4", "n5"),
        ("Xn7", "cin", "n4", "n6"),
        ("Xn8", "n5", "n6", "sum"),    # sum = h xor cin
        ("Xn9", "n1", "n4", "cout"),   # cout = a·b + h·cin
    ]
    for inst, in_a, in_b, out in wires:
        sub.add_instance(Instance(inst, gate, (in_a, in_b, out, "vdd")))
    return sub


def ripple_carry_adder_subcircuit(family: LogicFamily, bits: int,
                                  name: Optional[str] = None,
                                  full_adder: Optional[SubCircuit] = None
                                  ) -> SubCircuit:
    """N-bit ripple-carry adder from chained full-adder instances.

    Ports ``(a0..a{N-1}, b0..b{N-1}, cin, s0..s{N-1}, cout, vdd)``;
    internal carries ``c1..c{N-1}``.  Three hierarchy levels deep
    (adder -> full adder -> NAND2), ~``36 * N`` transistors.
    """
    if bits < 1:
        raise ParameterError(f"adder needs bits >= 1: {bits}")
    fa = full_adder if full_adder is not None \
        else full_adder_subcircuit(family)
    ports = tuple(
        [f"a{i}" for i in range(bits)]
        + [f"b{i}" for i in range(bits)]
        + ["cin"]
        + [f"s{i}" for i in range(bits)]
        + ["cout", "vdd"]
    )
    sub = SubCircuit(name or f"rca{bits}", ports)
    carry = "cin"
    for i in range(bits):
        carry_out = "cout" if i == bits - 1 else f"c{i + 1}"
        sub.add_instance(Instance(
            f"Xfa{i}", fa,
            (f"a{i}", f"b{i}", carry, f"s{i}", carry_out, "vdd"),
        ))
        carry = carry_out
    return sub


def inverter_chain_subcircuit(family: LogicFamily, stages: int,
                              name: Optional[str] = None,
                              inverter: Optional[SubCircuit] = None
                              ) -> SubCircuit:
    """N-stage inverter chain; ports ``(a, y, vdd)``.

    Even ``stages`` makes a (non-inverting) buffer chain, odd an
    inverting one; internal nodes ``n1..n{stages-1}``.
    """
    if stages < 1:
        raise ParameterError(f"chain needs stages >= 1: {stages}")
    inv = inverter if inverter is not None \
        else inverter_subcircuit(family)
    sub = SubCircuit(name or f"chain{stages}", ("a", "y", "vdd"))
    src = "a"
    for i in range(stages):
        dst = "y" if i == stages - 1 else f"n{i + 1}"
        sub.add_instance(Instance(f"Xinv{i}", inv, (src, dst, "vdd")))
        src = dst
    return sub


def sram_cell_subcircuit(family: LogicFamily,
                         name: str = "sram6t") -> SubCircuit:
    """6T-style cross-coupled cell; ports ``(bl, blb, wl, q, qb, vdd)``.

    Two cross-coupled inverter instances hold the state on ``q``/
    ``qb``; two n-type access transistors gate the bitlines onto the
    cell while the wordline is high.  The storage nodes are ports so
    test benches can observe (or force) the state directly.
    """
    inv = inverter_subcircuit(family)
    sub = SubCircuit(name, ("bl", "blb", "wl", "q", "qb", "vdd"))
    sub.add_instance(Instance("Xi1", inv, ("q", "qb", "vdd")))
    sub.add_instance(Instance("Xi2", inv, ("qb", "q", "vdd")))
    sub.add(CNFETElement("macc1", "bl", "wl", "q",
                         device=family.n_device,
                         length_nm=family.length_nm))
    sub.add(CNFETElement("macc2", "blb", "wl", "qb",
                         device=family.n_device,
                         length_nm=family.length_nm))
    return sub


def mux2_subcircuit(family: LogicFamily,
                    name: str = "mux2") -> SubCircuit:
    """Transmission-gate 2:1 mux; ports ``(d0, d1, s, y, vdd)``.

    An internal inverter derives the select complement; the ``s=0``
    gate passes ``d0``, the ``s=1`` gate passes ``d1``.
    """
    sub = SubCircuit(name, ("d0", "d1", "s", "y", "vdd"))
    add_inverter(sub, family, "minv", "s", "sb", "vdd")
    add_tgate_buffer(sub, family, "t0", "d0", "y", "sb", "s")
    add_tgate_buffer(sub, family, "t1", "d1", "y", "s", "sb")
    return sub


def mux_tree_subcircuit(family: LogicFamily, select_bits: int,
                        name: Optional[str] = None) -> SubCircuit:
    """``2^k : 1`` transmission-gate mux tree from 2:1 mux instances.

    Ports ``(d0..d{2^k-1}, s0..s{k-1}, y, vdd)``; select bit ``s0``
    steers the leaf level.  ``2^k - 1`` mux instances, two hierarchy
    levels.
    """
    if select_bits < 1:
        raise ParameterError(
            f"mux tree needs select_bits >= 1: {select_bits}")
    n_inputs = 1 << select_bits
    mux = mux2_subcircuit(family)
    ports = tuple(
        [f"d{i}" for i in range(n_inputs)]
        + [f"s{i}" for i in range(select_bits)]
        + ["y", "vdd"]
    )
    sub = SubCircuit(name or f"mux{n_inputs}", ports)
    level_nets = [f"d{i}" for i in range(n_inputs)]
    for level in range(select_bits):
        next_nets = []
        for k in range(len(level_nets) // 2):
            if level == select_bits - 1:
                out = "y"
            else:
                out = f"l{level}_{k}"
            sub.add_instance(Instance(
                f"Xm{level}_{k}", mux,
                (level_nets[2 * k], level_nets[2 * k + 1],
                 f"s{level}", out, "vdd"),
            ))
            next_nets.append(out)
        level_nets = next_nets
    return sub


# ----------------------------------------------------------------------
# Flat test benches over the hierarchical blocks
# ----------------------------------------------------------------------

def build_ripple_carry_adder(
    family: LogicFamily, bits: int,
    a_value: int = 0, b_value: int = 0,
    cin_wave: Union[Waveform, float] = 0.0,
    load_f: Optional[float] = None,
) -> Tuple[Circuit, Dict[str, object]]:
    """N-bit ripple-carry adder bench, flattened and ready to run.

    ``a_value``/``b_value`` drive the input buses as DC rail patterns
    (bit ``i`` of the integer sets ``a{i}``/``b{i}``); ``cin_wave``
    drives the carry input (a :class:`~repro.circuit.waveforms.Pulse`
    on ``cin`` with ``a = all ones, b = 0`` ripples a carry through
    every stage — the classic worst-case transition).  ``load_f``
    (default: the family's ``load_f``) caps each sum output and
    ``cout``; pass 0 to omit the loads.

    Returns ``(circuit, info)`` where ``info`` holds ``"sum_nodes"``
    (tuple, LSB first), ``"cout"`` and ``"bits"``.
    """
    if bits < 1:
        raise ParameterError(f"adder needs bits >= 1: {bits}")
    vdd = family.vdd
    circuit = Circuit(f"{bits}-bit CNFET ripple-carry adder")
    circuit.add(VoltageSource("vdd_src", "vdd", "0", vdd))
    for i in range(bits):
        circuit.add(VoltageSource(
            f"va{i}", f"a{i}", "0",
            vdd if (a_value >> i) & 1 else 0.0))
        circuit.add(VoltageSource(
            f"vb{i}", f"b{i}", "0",
            vdd if (b_value >> i) & 1 else 0.0))
    circuit.add(VoltageSource("vcin", "cin", "0", cin_wave))
    # Bench nets intentionally share the port names (a0.., cin, s0..,
    # cout, vdd), so the port list doubles as the connection list.
    rca = ripple_carry_adder_subcircuit(family, bits)
    rca.instantiate(circuit, "Xrca", rca.ports)
    cap = family.load_f if load_f is None else load_f
    if cap:
        for i in range(bits):
            circuit.add(Capacitor(f"cs{i}", f"s{i}", "0", cap))
        circuit.add(Capacitor("ccout", "cout", "0", cap))
    info = {
        "bits": bits,
        "sum_nodes": tuple(f"s{i}" for i in range(bits)),
        "cout": "cout",
    }
    return circuit, info


def build_inverter_chain(
    family: LogicFamily, stages: int,
    vin_wave: Union[Waveform, float] = 0.0,
    load_f: Optional[float] = None,
) -> Tuple[Circuit, str]:
    """N-stage inverter-chain bench; returns ``(circuit, out_node)``.

    The chain block is flattened as instance ``Xchain`` with its
    output on node ``out``; ``load_f`` (default: the family default)
    caps the output, 0 omits it.
    """
    circuit = Circuit(f"{stages}-stage CNFET inverter chain")
    circuit.add(VoltageSource("vdd_src", "vdd", "0", family.vdd))
    circuit.add(VoltageSource("vin_src", "in", "0", vin_wave))
    chain = inverter_chain_subcircuit(family, stages)
    chain.instantiate(circuit, "Xchain", ("in", "out", "vdd"))
    cap = family.load_f if load_f is None else load_f
    if cap:
        circuit.add(Capacitor("cload", "out", "0", cap))
    return circuit, "out"


def build_ring_oscillator(family: LogicFamily,
                          stages: int = 3) -> Tuple[Circuit, Tuple[str, ...]]:
    """Ring of an odd number of inverters with per-stage load caps.

    Returns ``(circuit, stage_output_nodes)``.
    """
    if stages < 3 or stages % 2 == 0:
        raise ParameterError(
            f"a ring oscillator needs an odd stage count >= 3: {stages}"
        )
    circuit = Circuit(f"cnfet ring oscillator ({stages} stages)")
    circuit.add(VoltageSource("vdd_src", "vdd", "0", family.vdd))
    nodes = tuple(f"n{i}" for i in range(stages))
    for i in range(stages):
        vin = nodes[i - 1] if i > 0 else nodes[-1]
        add_inverter(circuit, family, f"inv{i}", vin, nodes[i])
        circuit.add(Capacitor(f"cl{i}", nodes[i], "0", family.load_f))
    return circuit, nodes
