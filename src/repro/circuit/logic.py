"""CNFET logic-circuit builders.

The paper motivates the fast model with "simulations of circuits that
might involve very large numbers of CNT devices" and names logic
structures as future work; these builders create the canonical test
circuits used by the examples and integration tests:

* complementary inverter (n + p CNFET),
* 2-input NAND,
* N-stage ring oscillator with load capacitors.

The p-type device is the voltage-mirrored n-type model (see
:class:`repro.pwl.device.CNFET`), the standard circuit-level idealisation
for complementary CNFET logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.circuit.elements import Capacitor, CNFETElement, VoltageSource
from repro.circuit.netlist import Circuit
from repro.circuit.waveforms import Waveform
from repro.errors import ParameterError
from repro.pwl.device import CNFET
from repro.reference.fettoy import FETToyParameters


@dataclass
class LogicFamily:
    """A matched pair of n/p devices plus shared sizing defaults."""

    n_device: CNFET
    p_device: CNFET
    vdd: float = 0.6
    length_nm: float = 30.0
    load_f: float = 1e-17

    @classmethod
    def default(cls, vdd: float = 0.6, model: str = "model2",
                params: Optional[FETToyParameters] = None) -> "LogicFamily":
        """Build the standard family from FETToy-default devices."""
        base = params if params is not None else FETToyParameters()
        return cls(
            n_device=CNFET(base, model=model, polarity="n"),
            p_device=CNFET(base, model=model, polarity="p"),
            vdd=vdd,
        )


def add_inverter(circuit: Circuit, family: LogicFamily, name: str,
                 vin: str, vout: str, vdd_node: str = "vdd") -> None:
    """Complementary inverter ``name`` from ``vin`` to ``vout``."""
    circuit.add(CNFETElement(
        f"{name}_p", vout, vin, vdd_node, device=family.p_device,
        length_nm=family.length_nm,
    ))
    circuit.add(CNFETElement(
        f"{name}_n", vout, vin, "0", device=family.n_device,
        length_nm=family.length_nm,
    ))


def add_nand2(circuit: Circuit, family: LogicFamily, name: str,
              in_a: str, in_b: str, vout: str,
              vdd_node: str = "vdd") -> None:
    """2-input NAND: parallel p pull-ups, stacked n pull-downs."""
    mid = f"{name}_mid"
    circuit.add(CNFETElement(
        f"{name}_pa", vout, in_a, vdd_node, device=family.p_device,
        length_nm=family.length_nm,
    ))
    circuit.add(CNFETElement(
        f"{name}_pb", vout, in_b, vdd_node, device=family.p_device,
        length_nm=family.length_nm,
    ))
    circuit.add(CNFETElement(
        f"{name}_na", vout, in_a, mid, device=family.n_device,
        length_nm=family.length_nm,
    ))
    circuit.add(CNFETElement(
        f"{name}_nb", mid, in_b, "0", device=family.n_device,
        length_nm=family.length_nm,
    ))


def build_inverter(family: LogicFamily,
                   vin_wave: Waveform | float = 0.0
                   ) -> Tuple[Circuit, str, str]:
    """Single inverter with supply and driven input.

    Returns ``(circuit, input_node, output_node)``.
    """
    circuit = Circuit("cnfet inverter")
    circuit.add(VoltageSource("vdd_src", "vdd", "0", family.vdd))
    circuit.add(VoltageSource("vin_src", "in", "0", vin_wave))
    add_inverter(circuit, family, "inv", "in", "out")
    circuit.add(Capacitor("cload", "out", "0", family.load_f))
    return circuit, "in", "out"


def build_nand2(family: LogicFamily,
                wave_a: Waveform | float = 0.0,
                wave_b: Waveform | float = 0.0) -> Tuple[Circuit, str]:
    """2-input NAND with driven inputs; returns ``(circuit, out_node)``."""
    circuit = Circuit("cnfet nand2")
    circuit.add(VoltageSource("vdd_src", "vdd", "0", family.vdd))
    circuit.add(VoltageSource("va_src", "a", "0", wave_a))
    circuit.add(VoltageSource("vb_src", "b", "0", wave_b))
    add_nand2(circuit, family, "nand", "a", "b", "out")
    circuit.add(Capacitor("cload", "out", "0", family.load_f))
    return circuit, "out"


def build_ring_oscillator(family: LogicFamily,
                          stages: int = 3) -> Tuple[Circuit, Tuple[str, ...]]:
    """Ring of an odd number of inverters with per-stage load caps.

    Returns ``(circuit, stage_output_nodes)``.
    """
    if stages < 3 or stages % 2 == 0:
        raise ParameterError(
            f"a ring oscillator needs an odd stage count >= 3: {stages}"
        )
    circuit = Circuit(f"cnfet ring oscillator ({stages} stages)")
    circuit.add(VoltageSource("vdd_src", "vdd", "0", family.vdd))
    nodes = tuple(f"n{i}" for i in range(stages))
    for i in range(stages):
        vin = nodes[i - 1] if i > 0 else nodes[-1]
        add_inverter(circuit, family, f"inv{i}", vin, nodes[i])
        circuit.add(Capacitor(f"cl{i}", nodes[i], "0", family.load_f))
    return circuit, nodes
