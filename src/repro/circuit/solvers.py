"""Pluggable linear-solver backends for the MNA engine.

Every analysis solves ``A x = z`` systems produced by the two-phase
assembler.  Historically that solve was a hard-wired dense
``np.linalg.solve`` — adequate for tens of nodes, cubic-wall-time
suicide for the thousand-node blocks the hierarchy layer can now
build.  This module abstracts the solve (and, for the sparse backend,
the matrix *representation*) behind :class:`LinearSolverBackend`:

* :class:`DenseBackend` — the historical path, byte-for-byte: dense
  preallocated stamping buffers, ``np.linalg.solve``.  Fastest below a
  couple hundred unknowns where LAPACK's constant factors win.
* :class:`SparseBackend` — the assembler emits COO triplets instead of
  writing a dense matrix, the symbolic sparsity pattern (stored in
  the CSC layout SuperLU consumes) and the static/dynamic scatter
  index maps are built **once per run** (they only depend on the
  circuit topology and the analysis mode, mirroring the
  static/dynamic split of the two-phase assembler), and each Newton
  iteration scatters values and factorises with
  ``scipy.sparse.linalg.splu``.  When scipy is absent the same
  triplets are scattered into a dense matrix and solved with pure
  numpy, so the backend stays importable and correct everywhere.

:func:`resolve_backend` picks a backend: explicit ``"dense"`` /
``"sparse"`` strings (or instances) are honoured, ``"auto"`` /
``None`` selects sparse at or above :data:`SPARSE_AUTO_MIN_DIM`
unknowns when scipy is importable — the measured dense/sparse
crossover for MNA-shaped matrices on this codebase's workloads.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.errors import AnalysisError, ParameterError

try:  # pragma: no cover - exercised via the scipy-absent fallback test
    from scipy.sparse import csc_matrix
    from scipy.sparse.linalg import splu

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    csc_matrix = None
    splu = None
    HAVE_SCIPY = False

__all__ = [
    "LinearSolverBackend",
    "DenseBackend",
    "SparseBackend",
    "resolve_backend",
    "SPARSE_AUTO_MIN_DIM",
    "HAVE_SCIPY",
]

#: ``"auto"`` switches from dense to sparse at this system dimension.
#: Measured crossover for this engine's MNA matrices: a dense
#: ``np.linalg.solve`` beats SuperLU below ~250 unknowns (LAPACK
#: constant factors), loses by an order of magnitude at 800+.
SPARSE_AUTO_MIN_DIM = 256


class LinearSolverBackend:
    """Interface of a linear-solver backend.

    A backend owns the *solve* of the assembled MNA system; the sparse
    backend additionally changes how the assembler represents the
    matrix (COO triplets instead of a dense buffer — see
    :class:`repro.circuit.mna.TwoPhaseAssembler`).  Backends are
    stateless across solves and may be shared between assemblers.
    """

    #: registry name (``"dense"`` / ``"sparse"``)
    name: str = "?"
    #: True when the assembler should emit COO triplets for this
    #: backend instead of stamping a dense matrix.
    is_sparse: bool = False

    def solve_dense(self, matrix: np.ndarray, rhs: np.ndarray
                    ) -> np.ndarray:
        """Solve one dense system (raises
        :class:`~repro.errors.AnalysisError` when singular)."""
        raise NotImplementedError

    def solve_csc(self, n: int, data: np.ndarray, indices: np.ndarray,
                  indptr: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Solve one CSC-represented system (sparse assembly path).

        The assembler hands over its cached symbolic structure
        (``indices``/``indptr``, constant per run) with a freshly
        scattered ``data`` vector — already in the column-major order
        SuperLU consumes, so no format conversion happens here.
        """
        raise NotImplementedError

    def solve_stacked(self, matrices: np.ndarray, rhs: np.ndarray
                      ) -> np.ndarray:
        """Solve a ``(B, n, n)`` stack of dense systems lane by lane.

        Singular lanes come back as NaN rows (the lane-batched engine
        routes non-finite lanes through its per-lane failure path)
        rather than poisoning the whole stack.
        """
        raise NotImplementedError


def _nan_fill_singular(matrices: np.ndarray, rhs: np.ndarray
                       ) -> np.ndarray:
    """Per-lane dense solves with NaN rows for singular lanes."""
    out = np.empty_like(rhs)
    for i in range(matrices.shape[0]):
        try:
            out[i] = np.linalg.solve(matrices[i], rhs[i])
        except np.linalg.LinAlgError:
            out[i] = np.nan
    return out


class DenseBackend(LinearSolverBackend):
    """Dense LAPACK solves on the assembler's preallocated buffers.

    The historical engine behaviour, byte for byte — every analysis
    that predates the backend layer ran exactly this path.
    """

    name = "dense"
    is_sparse = False

    def solve_dense(self, matrix: np.ndarray, rhs: np.ndarray
                    ) -> np.ndarray:
        """``np.linalg.solve`` with the singular-matrix diagnosis."""
        try:
            return np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError as exc:
            raise AnalysisError(
                f"singular MNA matrix ({exc}); check for floating nodes"
            ) from exc

    def solve_stacked(self, matrices: np.ndarray, rhs: np.ndarray
                      ) -> np.ndarray:
        """One batched LAPACK call; singular lanes re-solved one by
        one so a single bad lane cannot fail the stack."""
        try:
            return np.linalg.solve(matrices, rhs[:, :, None])[:, :, 0]
        except np.linalg.LinAlgError:
            return _nan_fill_singular(matrices, rhs)


class SparseBackend(LinearSolverBackend):
    """SuperLU factorisation of the triplet-assembled CSC system.

    The assembler hands over the (per-run constant) CSC pattern plus a
    freshly scattered data vector each Newton iteration;
    ``scipy.sparse.linalg.splu`` factorises and solves.  Without scipy
    the triplets are scattered into a dense matrix and solved with
    numpy — same answers, none of the asymptotic win, zero hard
    dependency.
    """

    name = "sparse"
    is_sparse = True

    def solve_csc(self, n: int, data: np.ndarray, indices: np.ndarray,
                  indptr: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Factorise-and-solve one CSC system."""
        if not HAVE_SCIPY:  # pure-numpy fallback: scatter dense
            matrix = np.zeros((n, n), dtype=data.dtype)
            for col in range(n):
                matrix[indices[indptr[col]:indptr[col + 1]], col] = \
                    data[indptr[col]:indptr[col + 1]]
            return DenseBackend().solve_dense(matrix, rhs)
        try:
            lu = splu(csc_matrix(
                (data, indices, indptr), shape=(n, n)))
            return lu.solve(rhs)
        except RuntimeError as exc:  # "Factor is exactly singular"
            raise AnalysisError(
                f"singular MNA matrix ({exc}); check for floating nodes"
            ) from exc

    def solve_dense(self, matrix: np.ndarray, rhs: np.ndarray
                    ) -> np.ndarray:
        """Dense systems still solve (AC hands the backend dense
        ``G``/``C`` buffers); scipy converts, numpy falls back."""
        if not HAVE_SCIPY:
            return DenseBackend().solve_dense(matrix, rhs)
        try:
            lu = splu(csc_matrix(matrix))
            return lu.solve(rhs)
        except RuntimeError as exc:
            raise AnalysisError(
                f"singular MNA matrix ({exc}); check for floating nodes"
            ) from exc

    def solve_stacked(self, matrices: np.ndarray, rhs: np.ndarray
                      ) -> np.ndarray:
        """Per-lane SuperLU solves of a dense-stamped stack.

        The lane-batched engine stamps dense stacks (vectorized
        scatter-adds need rectangular buffers); converting one lane's
        ``(n, n)`` buffer to CSC is O(n^2) against the O(n^3) dense
        solve it replaces, so the conversion pays for itself from a
        few hundred unknowns — exactly where :func:`resolve_backend`
        starts picking this backend.
        """
        if not HAVE_SCIPY:
            return DenseBackend().solve_stacked(matrices, rhs)
        out = np.empty_like(rhs)
        for i in range(matrices.shape[0]):
            try:
                out[i] = splu(csc_matrix(matrices[i])).solve(rhs[i])
            except RuntimeError:
                out[i] = np.nan
        return out


_DENSE = DenseBackend()
_SPARSE = SparseBackend()

BackendLike = Union[None, str, LinearSolverBackend]


def resolve_backend(backend: BackendLike,
                    dimension: Optional[int] = None
                    ) -> LinearSolverBackend:
    """Resolve a backend spec to an instance.

    Parameters
    ----------
    backend : None, str or LinearSolverBackend
        ``None`` / ``"auto"`` — dense below
        :data:`SPARSE_AUTO_MIN_DIM` unknowns or when scipy is missing,
        sparse otherwise.  ``"dense"`` / ``"sparse"`` force a backend
        (``"sparse"`` works without scipy through its numpy fallback).
        Instances pass through.
    dimension : int, optional
        System size used by the auto rule (``None`` means unknown and
        resolves dense).
    """
    if isinstance(backend, LinearSolverBackend):
        return backend
    if backend is None or backend == "auto":
        if HAVE_SCIPY and dimension is not None \
                and dimension >= SPARSE_AUTO_MIN_DIM:
            return _SPARSE
        return _DENSE
    if backend == "dense":
        return _DENSE
    if backend == "sparse":
        return _SPARSE
    raise ParameterError(
        f"unknown linear-solver backend {backend!r}; expected 'auto', "
        f"'dense', 'sparse' or a LinearSolverBackend instance"
    )
