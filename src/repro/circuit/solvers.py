"""Pluggable linear-solver backends for the MNA engine.

Every analysis solves ``A x = z`` systems produced by the two-phase
assembler.  Historically that solve was a hard-wired dense
``np.linalg.solve`` — adequate for tens of nodes, cubic-wall-time
suicide for the thousand-node blocks the hierarchy layer can now
build.  This module abstracts the solve (and, for the sparse backend,
the matrix *representation*) behind :class:`LinearSolverBackend`:

* :class:`DenseBackend` — the historical path, byte-for-byte: dense
  preallocated stamping buffers, ``np.linalg.solve``.  Fastest below a
  couple hundred unknowns where LAPACK's constant factors win.
* :class:`SparseBackend` — the assembler emits COO triplets instead of
  writing a dense matrix, the symbolic sparsity pattern (stored in
  the CSC layout SuperLU consumes) and the static/dynamic scatter
  index maps are built **once per run** (they only depend on the
  circuit topology and the analysis mode, mirroring the
  static/dynamic split of the two-phase assembler), and each Newton
  iteration scatters values and factorises with
  ``scipy.sparse.linalg.splu``.  When scipy is absent the same
  triplets are scattered into a dense matrix and solved with pure
  numpy, so the backend stays importable and correct everywhere.

:func:`resolve_backend` picks a backend: explicit ``"dense"`` /
``"sparse"`` strings (or instances) are honoured, ``"auto"`` /
``None`` selects sparse at or above :data:`SPARSE_AUTO_MIN_DIM`
unknowns when scipy is importable — the measured dense/sparse
crossover for MNA-shaped matrices on this codebase's workloads.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Union

import numpy as np

from repro.errors import AnalysisError, ParameterError
from repro.pwl.kernels import active_kernel_backend

try:  # pragma: no cover - exercised via the scipy-absent fallback test
    from scipy.sparse import csc_matrix
    from scipy.sparse.linalg import splu

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    csc_matrix = None
    splu = None
    HAVE_SCIPY = False

__all__ = [
    "LinearSolverBackend",
    "DenseBackend",
    "SparseBackend",
    "resolve_backend",
    "SPARSE_AUTO_MIN_DIM",
    "HAVE_SCIPY",
]

#: ``"auto"`` switches from dense to sparse at this system dimension.
#: Measured crossover for this engine's MNA matrices: a dense
#: ``np.linalg.solve`` beats SuperLU below ~250 unknowns (LAPACK
#: constant factors), loses by an order of magnitude at 800+.
SPARSE_AUTO_MIN_DIM = 256


class LinearSolverBackend:
    """Interface of a linear-solver backend.

    A backend owns the *solve* of the assembled MNA system; the sparse
    backend additionally changes how the assembler represents the
    matrix (COO triplets instead of a dense buffer — see
    :class:`repro.circuit.mna.TwoPhaseAssembler`).  Backends are
    stateless across solves and may be shared between assemblers.
    """

    #: registry name (``"dense"`` / ``"sparse"``)
    name: str = "?"
    #: True when the assembler should emit COO triplets for this
    #: backend instead of stamping a dense matrix.
    is_sparse: bool = False

    def solve_dense(self, matrix: np.ndarray, rhs: np.ndarray
                    ) -> np.ndarray:
        """Solve one dense system (raises
        :class:`~repro.errors.AnalysisError` when singular)."""
        raise NotImplementedError

    def solve_csc(self, n: int, data: np.ndarray, indices: np.ndarray,
                  indptr: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Solve one CSC-represented system (sparse assembly path).

        The assembler hands over its cached symbolic structure
        (``indices``/``indptr``, constant per run) with a freshly
        scattered ``data`` vector — already in the column-major order
        SuperLU consumes, so no format conversion happens here.
        """
        raise NotImplementedError

    def solve_stacked(self, matrices: np.ndarray, rhs: np.ndarray
                      ) -> np.ndarray:
        """Solve a ``(B, n, n)`` stack of dense systems lane by lane.

        Singular lanes come back as NaN rows (the lane-batched engine
        routes non-finite lanes through its per-lane failure path)
        rather than poisoning the whole stack.
        """
        raise NotImplementedError

    def factorize_csc(self, n: int, data: np.ndarray,
                      indices: np.ndarray, indptr: np.ndarray):
        """Factorise one CSC system; the returned object exposes
        ``.solve(rhs)`` reusable across right-hand sides.

        ``None`` means the backend has no reusable factorisation (the
        caller must go through :meth:`solve_csc` instead) — the
        assembler uses this to reuse a factorisation across Newton
        iterations whose ``data`` vector is unchanged (the Jacobian-
        reuse chord path freezes the stamps, so the comparison is a
        cheap ``np.array_equal``).
        """
        return None


def _nan_fill_singular(matrices: np.ndarray, rhs: np.ndarray
                       ) -> np.ndarray:
    """Per-lane dense solves with NaN rows for singular lanes."""
    out = np.empty_like(rhs)
    for i in range(matrices.shape[0]):
        try:
            out[i] = np.linalg.solve(matrices[i], rhs[i])
        except np.linalg.LinAlgError:
            out[i] = np.nan
    return out


#: Relative residual ceiling of the frozen-pivot refactorization lane.
#: The guarded quantity is ``max|Ax-b| / (max|b| + max|A| * max|x|)``;
#: healthy solves sit at ~1e-16 (at or below SuperLU's own), a stale
#: pivot order shows up orders of magnitude above this line.
REFACTOR_GUARD_REL = 1e-11


class _LuSymbolic:
    """Frozen symbolic factorization for the compiled refactor lane.

    Holds the L/U sparsity patterns, permutations and numeric buffers
    that :meth:`CcKernelBackend.lu_refactor` replays against — all
    int64 / float64 contiguous so the C kernel consumes them directly.
    ``refresh`` re-derives everything from one scipy ``splu`` of the
    current values (``Equil=False`` so no hidden row/column scaling:
    ``Pr A Pc = L U`` exactly).
    """

    __slots__ = ("n", "indices", "indptr", "pr", "prinv", "pc", "pcinv",
                 "lp", "li", "lx", "up", "ui", "ux", "work", "refreshes")

    def __init__(self, n: int, indices: np.ndarray,
                 indptr: np.ndarray) -> None:
        self.n = n
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.work = np.zeros(n)
        self.refreshes = 0

    def refresh(self, matrix) -> None:
        """Rebuild patterns/permutations from a fresh ``splu`` of
        ``matrix`` (a csc_matrix holding the current values)."""
        lu = splu(matrix, options=dict(Equil=False))
        lower, upper = lu.L.tocsc(), lu.U.tocsc()
        lower.sort_indices()
        upper.sort_indices()
        n = self.n
        self.pr = lu.perm_r.astype(np.int64)
        self.pc = lu.perm_c.astype(np.int64)
        self.prinv = np.empty(n, dtype=np.int64)
        self.prinv[self.pr] = np.arange(n)
        self.pcinv = np.empty(n, dtype=np.int64)
        self.pcinv[self.pc] = np.arange(n)
        self.lp = lower.indptr.astype(np.int64)
        self.li = lower.indices.astype(np.int64)
        self.lx = np.ascontiguousarray(lower.data)
        self.up = upper.indptr.astype(np.int64)
        self.ui = upper.indices.astype(np.int64)
        self.ux = np.ascontiguousarray(upper.data)
        self.refreshes += 1


class _RefactorLU:
    """Factorization handle of the compiled refactor lane.

    Duck-types the SuperLU object the assembler expects
    (``.solve(rhs)``), but every solve is residual-guarded: the frozen
    pivot order can lose accuracy as the Jacobian values drift, in
    which case the handle transparently refreshes the symbolics from
    a fresh ``splu`` and re-solves.  Only the newest handle per
    pattern is valid — a later ``factorize_csc`` on the same pattern
    reuses (overwrites) the shared numeric buffers.
    """

    __slots__ = ("owner", "kern", "sym", "data", "scale")

    def __init__(self, owner: "SparseBackend", kern, sym: _LuSymbolic,
                 data: np.ndarray) -> None:
        self.owner = owner
        self.kern = kern
        self.sym = sym
        self.data = data
        self.scale = float(np.max(np.abs(data))) if data.size else 0.0

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        sym = self.sym
        x = self.kern.lu_solve(sym, rhs)
        err = self.kern.csc_residual(sym, self.data, x, rhs)
        rhs_inf = float(np.max(np.abs(rhs))) if rhs.size else 0.0
        x_inf = float(np.max(np.abs(x))) if x.size else 0.0
        if err <= REFACTOR_GUARD_REL * (rhs_inf + self.scale * x_inf):
            return x
        # Stale pivot order: re-pivot on the current values and retry.
        try:
            matrix = self.owner._template(sym.n, self.data,
                                          sym.indices, sym.indptr)
            sym.refresh(matrix)
            if self.kern.lu_refactor(sym, self.data) == 0:
                x = self.kern.lu_solve(sym, rhs)
                err = self.kern.csc_residual(sym, self.data, x, rhs)
                if err <= REFACTOR_GUARD_REL * (
                        rhs_inf + self.scale * x_inf):
                    return x
            return splu(matrix).solve(rhs)  # pragma: no cover
        except RuntimeError as exc:  # pragma: no cover - singular
            raise AnalysisError(
                f"singular MNA matrix ({exc}); check for floating nodes"
            ) from exc


class DenseBackend(LinearSolverBackend):
    """Dense LAPACK solves on the assembler's preallocated buffers.

    The historical engine behaviour, byte for byte — every analysis
    that predates the backend layer ran exactly this path.
    """

    name = "dense"
    is_sparse = False

    def solve_dense(self, matrix: np.ndarray, rhs: np.ndarray
                    ) -> np.ndarray:
        """``np.linalg.solve`` with the singular-matrix diagnosis."""
        try:
            return np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError as exc:
            raise AnalysisError(
                f"singular MNA matrix ({exc}); check for floating nodes"
            ) from exc

    def solve_stacked(self, matrices: np.ndarray, rhs: np.ndarray
                      ) -> np.ndarray:
        """One batched LAPACK call; singular lanes re-solved one by
        one so a single bad lane cannot fail the stack."""
        try:
            return np.linalg.solve(matrices, rhs[:, :, None])[:, :, 0]
        except np.linalg.LinAlgError:
            return _nan_fill_singular(matrices, rhs)


class SparseBackend(LinearSolverBackend):
    """SuperLU factorisation of the triplet-assembled CSC system.

    The assembler hands over the (per-run constant) CSC pattern plus a
    freshly scattered data vector each Newton iteration;
    ``scipy.sparse.linalg.splu`` factorises and solves.  Without scipy
    the triplets are scattered into a dense matrix and solved with
    numpy — same answers, none of the asymptotic win, zero hard
    dependency.
    """

    name = "sparse"
    is_sparse = True

    #: retained CSC templates (the matrix-shell cache in
    #: :meth:`_template` keeps one per live assembler pattern)
    _TEMPLATE_CACHE_MAX = 8

    def __init__(self) -> None:
        # (id(indices), id(indptr), n) -> (indices, indptr, csc) — the
        # strong refs pin the keyed arrays so their ids stay valid.
        self._templates: "OrderedDict[tuple, tuple]" = OrderedDict()
        # same keying -> (indices, indptr, _LuSymbolic) for the
        # compiled frozen-pivot refactorization lane
        self._symbolics: "OrderedDict[tuple, tuple]" = OrderedDict()

    def _template(self, n: int, data: np.ndarray, indices: np.ndarray,
                  indptr: np.ndarray):
        """Cached ``csc_matrix`` shell for a (per-run constant)
        symbolic pattern.

        Building a ``csc_matrix`` from raw arrays re-runs index-dtype
        selection, downcast copies and format validation on every
        call — ~20% of a factorisation for MNA-sized systems.  The
        pattern arrays are constant per assembler, so the shell is
        built once and only its ``data`` vector is swapped per solve.
        """
        key = (id(indices), id(indptr), n)
        hit = self._templates.get(key)
        if hit is not None and hit[0] is indices and hit[1] is indptr:
            matrix = hit[2]
            self._templates.move_to_end(key)
        else:
            matrix = csc_matrix(
                (data, indices.astype(np.int32),
                 indptr.astype(np.int32)), shape=(n, n))
            self._templates[key] = (indices, indptr, matrix)
            while len(self._templates) > self._TEMPLATE_CACHE_MAX:
                self._templates.popitem(last=False)
        matrix.data = data
        return matrix

    def solve_csc(self, n: int, data: np.ndarray, indices: np.ndarray,
                  indptr: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Factorise-and-solve one CSC system."""
        if not HAVE_SCIPY:  # pure-numpy fallback: scatter dense
            matrix = np.zeros((n, n), dtype=data.dtype)
            for col in range(n):
                matrix[indices[indptr[col]:indptr[col + 1]], col] = \
                    data[indptr[col]:indptr[col + 1]]
            return DenseBackend().solve_dense(matrix, rhs)
        try:
            lu = splu(self._template(n, data, indices, indptr))
            return lu.solve(rhs)
        except RuntimeError as exc:  # "Factor is exactly singular"
            raise AnalysisError(
                f"singular MNA matrix ({exc}); check for floating nodes"
            ) from exc

    def factorize_csc(self, n: int, data: np.ndarray,
                      indices: np.ndarray, indptr: np.ndarray):
        """Factor object (``.solve(rhs)``), or ``None`` without scipy
        (the dense fallback has nothing to reuse).

        With the compiled kernel tier active this is the frozen-pivot
        refactorization lane: the (per-run constant) L/U patterns and
        permutations come from one SuperLU factorization, every
        subsequent Newton iteration replays only the numeric phase in
        C (~10x cheaper than ``splu`` for MNA-sized systems) and each
        solve is residual-guarded against pivot staleness.  The numpy
        kernel tier — and any zero-pivot pathology — takes the plain
        SuperLU path, byte for byte the historical behaviour.
        """
        if not HAVE_SCIPY:
            return None
        kern = active_kernel_backend()
        if getattr(kern, "lu_refactor", None) is None:
            try:
                return splu(self._template(n, data, indices, indptr))
            except RuntimeError as exc:
                raise AnalysisError(
                    f"singular MNA matrix ({exc}); check for floating "
                    f"nodes") from exc
        key = (id(indices), id(indptr), n)
        hit = self._symbolics.get(key)
        if hit is not None and hit[0] is indices and hit[1] is indptr:
            sym = hit[2]
            self._symbolics.move_to_end(key)
        else:
            sym = _LuSymbolic(n, indices, indptr)
            self._symbolics[key] = (indices, indptr, sym)
            while len(self._symbolics) > self._TEMPLATE_CACHE_MAX:
                self._symbolics.popitem(last=False)
        try:
            if sym.refreshes == 0:
                sym.refresh(self._template(n, data, indices, indptr))
            if kern.lu_refactor(sym, data) != 0:
                # zero pivot under the frozen order: re-pivot once on
                # the current values before giving up on the lane
                sym.refresh(self._template(n, data, indices, indptr))
                if kern.lu_refactor(sym, data) != 0:
                    return splu(self._template(n, data, indices, indptr))
            return _RefactorLU(self, kern, sym, data)
        except RuntimeError as exc:
            raise AnalysisError(
                f"singular MNA matrix ({exc}); check for floating nodes"
            ) from exc

    def solve_dense(self, matrix: np.ndarray, rhs: np.ndarray
                    ) -> np.ndarray:
        """Dense systems still solve (AC hands the backend dense
        ``G``/``C`` buffers); scipy converts, numpy falls back."""
        if not HAVE_SCIPY:
            return DenseBackend().solve_dense(matrix, rhs)
        try:
            lu = splu(csc_matrix(matrix))
            return lu.solve(rhs)
        except RuntimeError as exc:
            raise AnalysisError(
                f"singular MNA matrix ({exc}); check for floating nodes"
            ) from exc

    def solve_stacked(self, matrices: np.ndarray, rhs: np.ndarray
                      ) -> np.ndarray:
        """Per-lane SuperLU solves of a dense-stamped stack.

        The lane-batched engine stamps dense stacks (vectorized
        scatter-adds need rectangular buffers); converting one lane's
        ``(n, n)`` buffer to CSC is O(n^2) against the O(n^3) dense
        solve it replaces, so the conversion pays for itself from a
        few hundred unknowns — exactly where :func:`resolve_backend`
        starts picking this backend.
        """
        if not HAVE_SCIPY:
            return DenseBackend().solve_stacked(matrices, rhs)
        out = np.empty_like(rhs)
        for i in range(matrices.shape[0]):
            try:
                out[i] = splu(csc_matrix(matrices[i])).solve(rhs[i])
            except RuntimeError:
                out[i] = np.nan
        return out


_DENSE = DenseBackend()
_SPARSE = SparseBackend()

BackendLike = Union[None, str, LinearSolverBackend]


def resolve_backend(backend: BackendLike,
                    dimension: Optional[int] = None
                    ) -> LinearSolverBackend:
    """Resolve a backend spec to an instance.

    Parameters
    ----------
    backend : None, str or LinearSolverBackend
        ``None`` / ``"auto"`` — dense below
        :data:`SPARSE_AUTO_MIN_DIM` unknowns or when scipy is missing,
        sparse otherwise.  ``"dense"`` / ``"sparse"`` force a backend
        (``"sparse"`` works without scipy through its numpy fallback).
        Instances pass through.
    dimension : int, optional
        System size used by the auto rule (``None`` means unknown and
        resolves dense).
    """
    if isinstance(backend, LinearSolverBackend):
        return backend
    if backend is None or backend == "auto":
        if HAVE_SCIPY and dimension is not None \
                and dimension >= SPARSE_AUTO_MIN_DIM:
            return _SPARSE
        return _DENSE
    if backend == "dense":
        return _DENSE
    if backend == "sparse":
        return _SPARSE
    raise ParameterError(
        f"unknown linear-solver backend {backend!r}; expected 'auto', "
        f"'dense', 'sparse' or a LinearSolverBackend instance"
    )
