"""MNA assembly and the damped Newton solver.

``solve_system`` runs Newton-Raphson on the assembled companion system:
each iteration re-stamps every element around the current iterate and
solves the dense linear system.  Robustness aids, in escalation order:

1. per-iteration voltage step damping (clipped to ``max_step`` volts);
2. gmin stepping (decade sweep of the nonlinear shunt conductance);
3. source stepping (ramping all independent sources from 0).

Dense numpy is entirely adequate for the circuit sizes this library
targets (tens to hundreds of nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.circuit.elements.base import StampContext
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError


@dataclass(frozen=True)
class NewtonOptions:
    """Newton-loop tuning knobs (defaults follow SPICE conventions)."""

    max_iterations: int = 100
    #: absolute node-voltage convergence tolerance [V]
    vtol: float = 1e-9
    #: relative convergence tolerance
    reltol: float = 1e-6
    #: maximum voltage change per Newton iteration [V]
    max_step: float = 0.5
    #: shunt conductance for nonlinear elements
    gmin: float = 1e-12
    #: enable gmin stepping fallback
    gmin_stepping: bool = True
    #: enable source stepping fallback
    source_stepping: bool = True


def assemble(circuit: Circuit, x: np.ndarray, *, analysis: str = "dc",
             time: Optional[float] = None, dt: Optional[float] = None,
             x_prev: Optional[np.ndarray] = None, method: str = "be",
             gmin: float = 1e-12, source_scale: float = 1.0
             ) -> StampContext:
    """Stamp every element around iterate ``x``; returns the context
    whose ``matrix``/``rhs`` hold the companion system."""
    n = circuit.dimension()
    ctx = StampContext(
        matrix=np.zeros((n, n)),
        rhs=np.zeros(n),
        node_index=circuit.node_index,
        x=x,
        analysis=analysis,
        time=time,
        dt=dt,
        x_prev=x_prev,
        method=method,
        gmin=gmin,
        source_scale=source_scale,
    )
    for el in circuit.elements:
        el.stamp(ctx)
    return ctx


def newton_solve(circuit: Circuit, x0: np.ndarray,
                 options: NewtonOptions = NewtonOptions(), *,
                 analysis: str = "dc", time: Optional[float] = None,
                 dt: Optional[float] = None,
                 x_prev: Optional[np.ndarray] = None, method: str = "be",
                 gmin: Optional[float] = None,
                 source_scale: float = 1.0) -> np.ndarray:
    """Damped Newton iteration; raises :class:`AnalysisError` on failure."""
    x = x0.copy()
    n_nodes = len(circuit.node_index)
    use_gmin = options.gmin if gmin is None else gmin
    for _ in range(options.max_iterations):
        ctx = assemble(
            circuit, x, analysis=analysis, time=time, dt=dt,
            x_prev=x_prev, method=method, gmin=use_gmin,
            source_scale=source_scale,
        )
        try:
            x_new = np.linalg.solve(ctx.matrix, ctx.rhs)
        except np.linalg.LinAlgError as exc:
            raise AnalysisError(
                f"singular MNA matrix ({exc}); check for floating nodes"
            ) from exc
        delta = x_new - x
        # Damp voltage unknowns only; branch currents may move freely.
        v_delta = delta[:n_nodes]
        max_dv = float(np.max(np.abs(v_delta))) if n_nodes else 0.0
        if max_dv > options.max_step:
            delta = delta * (options.max_step / max_dv)
        x = x + delta
        converged = np.all(
            np.abs(delta[:n_nodes])
            <= options.vtol + options.reltol * np.abs(x[:n_nodes])
        )
        if converged and max_dv <= options.max_step:
            return x
    raise AnalysisError(
        f"Newton did not converge in {options.max_iterations} iterations "
        f"(analysis={analysis}, t={time})"
    )


def robust_dc_solve(circuit: Circuit, x0: Optional[np.ndarray] = None,
                    options: NewtonOptions = NewtonOptions()) -> np.ndarray:
    """DC solve with gmin/source-stepping fallbacks."""
    n = circuit.dimension()
    x_start = np.zeros(n) if x0 is None else x0.copy()
    try:
        return newton_solve(circuit, x_start, options, analysis="dc")
    except AnalysisError:
        pass
    if options.gmin_stepping:
        x = x_start.copy()
        try:
            for exponent in range(3, 13):
                x = newton_solve(
                    circuit, x, options, analysis="dc",
                    gmin=10.0 ** (-exponent),
                )
            return newton_solve(circuit, x, options, analysis="dc")
        except AnalysisError:
            pass
    if options.source_stepping:
        x = np.zeros(n)
        try:
            for scale in (0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0):
                x = newton_solve(
                    circuit, x, options, analysis="dc", source_scale=scale,
                )
            return x
        except AnalysisError:
            pass
    raise AnalysisError(
        "DC operating point failed (Newton, gmin stepping and source "
        "stepping all diverged)"
    )
