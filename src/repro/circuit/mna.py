"""MNA assembly (two-phase) and the damped Newton solver.

Assembly is split into two phases per Newton solve:

* **static phase** — every linear element (``nonlinear = False``:
  resistors, sources, capacitor/inductor companions) is stamped once
  per step context into a preallocated static matrix/rhs pair.  These
  stamps depend on ``(time, dt, x_prev, method, source_scale)`` but not
  on the Newton iterate, so re-stamping them every iteration — as the
  one-phase assembler did — is pure waste.
* **dynamic phase** — each Newton iteration copies the static system
  into preallocated work buffers and stamps only the nonlinear elements
  (CNFETs, diodes) around the current iterate.

:class:`TwoPhaseAssembler` owns the buffers and can be reused across
Newton solves and transient steps, eliminating the per-iteration
matrix allocations as well.  Two orthogonal scaling layers sit on the
same two-phase split:

* **Linear-solver backends** (:mod:`repro.circuit.solvers`): the dense
  path stamps/solves exactly as the engine always has; the sparse
  path has the elements emit COO triplets through a
  :class:`~repro.circuit.elements.base.TripletStampContext`, builds
  the symbolic sparsity pattern (CSC layout) and the static/dynamic
  scatter index maps
  once per run (positions depend only on topology and analysis mode —
  the pattern self-heals if a mode switch changes them), and
  factorises with SuperLU per Newton iteration.
* **The CNFET slab** (:class:`~repro.circuit.elements.cnfet.CNFETSlab`):
  at :data:`CNFET_SLAB_MIN_DEVICES` fast-backend CNFETs and above,
  all of them evaluate as one stacked closed-form pass per iteration
  instead of a Python loop of scalar solves.  Circuits below the
  threshold keep the byte-for-byte historical scalar path.

Robustness aids, in escalation order:

1. per-iteration voltage step damping (clipped to ``max_step`` volts);
2. gmin stepping (decade sweep of the nonlinear shunt conductance);
3. source stepping (ramping all independent sources from 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import faults
from repro.cancel import CancelToken
from repro.circuit.elements.base import StampContext, TripletStampContext
from repro.circuit.elements.cnfet import CNFETElement, CNFETSlab
from repro.circuit.netlist import Circuit
from repro.circuit.solvers import BackendLike, resolve_backend
from repro.errors import AnalysisError
from repro.pwl.device import CNFET
from repro.pwl.kernels import active_kernel_backend

#: Fast-backend CNFET count at which the assembler switches from the
#: per-element scalar stamp loop to the stacked
#: :class:`~repro.circuit.elements.cnfet.CNFETSlab`.  Below this the
#: stacked pass's fixed costs are not worth it and the historical
#: scalar path is kept bit-for-bit.
CNFET_SLAB_MIN_DEVICES = 16


@dataclass(frozen=True)
class NewtonOptions:
    """Newton-loop tuning knobs (defaults follow SPICE conventions)."""

    max_iterations: int = 100
    #: absolute node-voltage convergence tolerance [V]
    vtol: float = 1e-9
    #: relative convergence tolerance
    reltol: float = 1e-6
    #: maximum voltage change per Newton iteration [V]
    max_step: float = 0.5
    #: shunt conductance for nonlinear elements
    gmin: float = 1e-12
    #: enable gmin stepping fallback
    gmin_stepping: bool = True
    #: enable source stepping fallback
    source_stepping: bool = True
    #: Jacobian-reuse fast path: when > 0, a Newton iteration whose
    #: iterate moved less than this many volts (inf-norm) since the
    #: last nonlinear assembly reuses that assembly's stamps instead of
    #: re-evaluating every nonlinear element.  The static phase is
    #: still refreshed per step, so across transient steps this is a
    #: frozen-linearisation (chord) iteration; the approximation error
    #: is O(curvature * tol^2), and a stalling solve falls back to full
    #: assemblies for its remaining iterations.  The tuned default
    #: (1e-6 V — solution error ~1e-12 V, well under every engine
    #: tolerance) additionally lets the sparse assembler reuse its LU
    #: factorisation whenever the chord freezes the stamps; set 0 to
    #: recover the exact legacy iteration.
    jacobian_reuse_tol: float = 1e-6


def assemble(circuit: Circuit, x: np.ndarray, *, analysis: str = "dc",
             time: Optional[float] = None, dt: Optional[float] = None,
             x_prev: Optional[np.ndarray] = None, method: str = "be",
             gmin: float = 1e-12, source_scale: float = 1.0
             ) -> StampContext:
    """Stamp every element around iterate ``x``; returns the context
    whose ``matrix``/``rhs`` hold the companion system.

    One-phase convenience used by the AC linearisation and tests; the
    Newton loop goes through :class:`TwoPhaseAssembler` instead.
    """
    n = circuit.dimension()
    ctx = StampContext(
        matrix=np.zeros((n, n)),
        rhs=np.zeros(n),
        node_index=circuit.node_index,
        x=x,
        analysis=analysis,
        time=time,
        dt=dt,
        x_prev=x_prev,
        method=method,
        gmin=gmin,
        source_scale=source_scale,
    )
    for el in circuit.elements:
        el.stamp(ctx)
    return ctx


class TwoPhaseAssembler:
    """Preallocated two-phase assembly for one circuit.

    Create once per analysis (or let :func:`newton_solve` make a
    throwaway one), call :meth:`begin_step` whenever the step context —
    ``(analysis, time, dt, x_prev, method, source_scale)`` — changes,
    then :meth:`iterate` per Newton iteration and :meth:`solve` for
    the linear solve through the active backend.

    Elements whose stamp reads the Newton iterate must declare
    ``nonlinear = True`` (the documented contract of
    :attr:`Element.nonlinear`); everything else is stamped once per
    step.

    Parameters
    ----------
    circuit : Circuit
        The circuit to assemble.
    backend : None, str or LinearSolverBackend
        Linear-solver backend (see
        :func:`repro.circuit.solvers.resolve_backend`); ``None`` /
        ``"auto"`` picks dense below
        :data:`~repro.circuit.solvers.SPARSE_AUTO_MIN_DIM` unknowns.
    cnfet_slab : bool, optional
        Force the stacked CNFET evaluation on/off; default (``None``)
        enables it at :data:`CNFET_SLAB_MIN_DEVICES` fast-backend
        devices.
    """

    def __init__(self, circuit: Circuit,
                 backend: BackendLike = None,
                 cnfet_slab: Optional[bool] = None) -> None:
        self.circuit = circuit
        n = circuit.dimension()
        self.n = n
        self.backend = resolve_backend(backend, n)
        self._static = [el for el in circuit.elements if not el.nonlinear]
        dynamic = [el for el in circuit.elements if el.nonlinear]
        slab_els = [
            el for el in dynamic
            if isinstance(el, CNFETElement)
            and isinstance(el.backend.device, CNFET)
        ]
        if cnfet_slab is None:
            cnfet_slab = len(slab_els) >= CNFET_SLAB_MIN_DEVICES
        if cnfet_slab and slab_els:
            self.slab: Optional[CNFETSlab] = CNFETSlab(
                slab_els, n, circuit.node_index)
            slab_ids = {id(el) for el in slab_els}
            self._dynamic = [el for el in dynamic
                             if id(el) not in slab_ids]
        else:
            self.slab = None
            self._dynamic = dynamic
        if self.backend.is_sparse:
            self._static_ctx = TripletStampContext(n, circuit.node_index)
            self._dyn_ctx = TripletStampContext(n, circuit.node_index)
            #: sorted unique flat matrix positions (the pattern key;
            #: _indices/_indptr hold its CSC form)
            self._pattern_flat: Optional[np.ndarray] = None
            self._indices: Optional[np.ndarray] = None
            self._indptr: Optional[np.ndarray] = None
            self._static_flat: Optional[np.ndarray] = None
            self._static_map: Optional[np.ndarray] = None
            self._static_data: Optional[np.ndarray] = None
            self._static_dirty = True
            self._dyn_flat: Optional[np.ndarray] = None
            self._dyn_map: Optional[np.ndarray] = None
            self._begun = False
            #: LU-factorisation reuse across iterations with identical
            #: ``data`` (the Jacobian-reuse chord freezes the stamps,
            #: so comparing the scattered values is enough)
            self._lu_data: Optional[np.ndarray] = None
            self._lu = None
        else:
            self._static_matrix = np.zeros((n, n))
            self._static_rhs = np.zeros(n)
            self._matrix = np.zeros((n, n))
            self._rhs = np.zeros(n)
            self._x_static = np.zeros(n)  # placeholder for phase 1
            self._ctx: Optional[StampContext] = None

    def begin_step(self, *, analysis: str = "dc",
                   time: Optional[float] = None, dt: Optional[float] = None,
                   x_prev: Optional[np.ndarray] = None, method: str = "be",
                   gmin: float = 1e-12,
                   source_scale: float = 1.0) -> None:
        """Stamp the static (iterate-independent) part of the system."""
        if self.backend.is_sparse:
            ctx = self._static_ctx
            ctx.clear()
            ctx.analysis = analysis
            ctx.time = time
            ctx.dt = dt
            ctx.x_prev = x_prev
            ctx.method = method
            ctx.gmin = gmin
            ctx.source_scale = source_scale
            for el in self._static:
                el.stamp(ctx)
            if self.slab is not None:
                self.slab.begin_step(ctx)
            self._static_dirty = True
            self._begun = True
            return
        ctx = StampContext(
            matrix=self._static_matrix,
            rhs=self._static_rhs,
            node_index=self.circuit.node_index,
            x=self._x_static,  # placeholder; static stamps never read x
            analysis=analysis,
            time=time,
            dt=dt,
            x_prev=x_prev,
            method=method,
            gmin=gmin,
            source_scale=source_scale,
        )
        self._static_matrix[:] = 0.0
        self._static_rhs[:] = 0.0
        for el in self._static:
            el.stamp(ctx)
        if self.slab is not None:
            self.slab.begin_step(ctx)
        self._ctx = ctx

    def iterate(self, x: np.ndarray,
                reuse_tol: float = 0.0) -> StampContext:
        """Companion system around iterate ``x``: static copy plus
        nonlinear stamps.

        ``reuse_tol`` > 0 enables the Jacobian-reuse fast path for
        elements that support it (see
        :attr:`NewtonOptions.jacobian_reuse_tol`): an element whose
        controlling voltages moved less than the tolerance since its
        last evaluation may restamp from that frozen linearisation.
        """
        if self.backend.is_sparse:
            if not self._begun:
                raise AnalysisError(
                    "begin_step must be called before iterate")
            src = self._static_ctx
            ctx = self._dyn_ctx
            ctx.clear()
            ctx.x = x
            ctx.analysis = src.analysis
            ctx.time = src.time
            ctx.dt = src.dt
            ctx.x_prev = src.x_prev
            ctx.method = src.method
            ctx.gmin = src.gmin
            ctx.source_scale = src.source_scale
            ctx.reuse_tol = reuse_tol
            for el in self._dynamic:
                el.stamp(ctx)
            if self.slab is not None:
                self.slab.stamp(ctx)
            return ctx
        ctx = self._ctx
        if ctx is None:
            raise AnalysisError("begin_step must be called before iterate")
        np.copyto(self._matrix, self._static_matrix)
        np.copyto(self._rhs, self._static_rhs)
        ctx.matrix = self._matrix
        ctx.rhs = self._rhs
        ctx.x = x
        ctx.reuse_tol = reuse_tol
        for el in self._dynamic:
            el.stamp(ctx)
        if self.slab is not None:
            self.slab.stamp(ctx)
        return ctx

    # -- sparse pattern bookkeeping -------------------------------------

    def _rebuild_pattern(self, s_flat: np.ndarray,
                         d_flat: np.ndarray) -> None:
        """Symbolic CSC pattern + static/dynamic scatter maps.

        Positions depend only on the topology and the analysis mode
        (each element emits a fixed entry sequence per mode), so this
        runs once per run in steady state; a mode switch (dc -> tran
        adds capacitor and charge-companion entries) is detected by
        the flat-position comparison in :meth:`_sparse_system` and
        rebuilds automatically.  The pattern is stored directly in the
        CSC layout SuperLU consumes and the scatter maps compose the
        row-major -> column-major permutation, so per-iteration work
        is two value scatters — no matrix construction or format
        conversion.
        """
        n = self.n
        union = np.unique(np.concatenate([s_flat, d_flat]))
        rows = union // n
        cols = union % n
        self._pattern_flat = union
        # union is sorted by (row, col); a stable argsort on the
        # column takes it to (col, row) — the CSC entry order.
        perm = np.argsort(cols, kind="stable")
        self._indices = rows[perm].astype(np.intp)
        indptr = np.zeros(n + 1, dtype=np.intp)
        np.cumsum(np.bincount(cols, minlength=n), out=indptr[1:])
        self._indptr = indptr
        csc_pos = np.empty(union.size, dtype=np.intp)
        csc_pos[perm] = np.arange(union.size)
        self._static_flat = s_flat.copy()
        self._dyn_flat = d_flat.copy()
        self._static_map = csc_pos[np.searchsorted(union, s_flat)]
        self._dyn_map = csc_pos[np.searchsorted(union, d_flat)]
        self._static_dirty = True
        self._lu_data = None
        self._lu = None

    def _sparse_system(self):
        """Scatter the recorded triplets into CSC data + rhs."""
        s_flat, s_val = self._static_ctx.triplets()
        d_flat, d_val = self._dyn_ctx.triplets()
        if (self._pattern_flat is None
                or self._static_flat.size != s_flat.size
                or self._dyn_flat.size != d_flat.size
                or not np.array_equal(s_flat, self._static_flat)
                or not np.array_equal(d_flat, self._dyn_flat)):
            self._rebuild_pattern(s_flat, d_flat)
        nnz = self._pattern_flat.size
        if self._static_dirty:
            self._static_data = np.bincount(
                self._static_map, weights=s_val, minlength=nnz)
            self._static_dirty = False
        data = active_kernel_backend().scatter_accum(
            self._static_data, self._dyn_map, d_val)
        rhs = self._static_ctx.rhs + self._dyn_ctx.rhs
        return data, rhs

    def solve(self) -> np.ndarray:
        """Solve the assembled system through the active backend
        (raises :class:`~repro.errors.AnalysisError` when singular)."""
        if self.backend.is_sparse:
            data, rhs = self._sparse_system()
            # Factorisation reuse: when the Jacobian-reuse chord froze
            # every stamp, the scattered values are bit-identical to
            # the previous iteration's and the (dominant) SuperLU
            # factorisation can be skipped outright.
            if self._lu is not None \
                    and data.size == self._lu_data.size \
                    and np.array_equal(data, self._lu_data):
                return self._lu.solve(rhs)
            lu = self.backend.factorize_csc(
                self.n, data, self._indices, self._indptr)
            if lu is not None:
                self._lu = lu
                self._lu_data = data
                return lu.solve(rhs)
            return self.backend.solve_csc(
                self.n, data, self._indices, self._indptr, rhs)
        return self.backend.solve_dense(self._matrix, self._rhs)


def newton_solve(circuit: Circuit, x0: np.ndarray,
                 options: NewtonOptions = NewtonOptions(), *,
                 analysis: str = "dc", time: Optional[float] = None,
                 dt: Optional[float] = None,
                 x_prev: Optional[np.ndarray] = None, method: str = "be",
                 gmin: Optional[float] = None,
                 source_scale: float = 1.0,
                 assembler: Optional[TwoPhaseAssembler] = None,
                 stats: Optional[dict] = None,
                 backend: BackendLike = None,
                 cancel: Optional[CancelToken] = None) -> np.ndarray:
    """Damped Newton iteration; raises :class:`AnalysisError` on failure.

    Pass a reusable ``assembler`` (transient does, once per analysis) to
    amortise buffer allocation across steps; ``backend`` selects the
    linear-solver backend when no assembler is given.  When a ``stats``
    dict is supplied, ``"iterations"`` and ``"solves"`` counters are
    accumulated into it (the benchmark report reads them).  A ``cancel``
    token is checked once per iteration, so a deadline or an explicit
    cancellation unwinds within one iteration's latency.
    """
    x = x0.copy()
    n_nodes = len(circuit.node_index)
    use_gmin = options.gmin if gmin is None else gmin
    if assembler is None:
        assembler = TwoPhaseAssembler(circuit, backend=backend)
    assembler.begin_step(
        analysis=analysis, time=time, dt=dt, x_prev=x_prev, method=method,
        gmin=use_gmin, source_scale=source_scale,
    )
    reuse_tol = options.jacobian_reuse_tol
    # Convergence-stall fallback for the reuse fast path: past half the
    # iteration budget every assembly is forced fresh.
    stall_cap = options.max_iterations // 2
    # Local counters, flushed once per solve — the per-iteration
    # ``stats.get`` dict churn used to show up on long transients.
    iterations = 0
    max_dv = None
    worst = None
    try:
        for iterations in range(1, options.max_iterations + 1):
            if cancel is not None:
                cancel.check()
            assembler.iterate(
                x,
                reuse_tol if iterations <= stall_cap else 0.0,
            )
            try:
                if faults.fire("solver.singular"):
                    raise np.linalg.LinAlgError(
                        "injected singular system (fault seam "
                        "solver.singular)")
                x_new = assembler.solve()
            except np.linalg.LinAlgError as exc:
                # Backends normally diagnose singularity themselves; a
                # raw LinAlgError escaping here must not abort a whole
                # campaign when gmin/source stepping could recover.
                raise AnalysisError(
                    f"singular MNA matrix ({exc}); check for floating "
                    f"nodes"
                ) from exc
            delta = x_new - x
            # Damp voltage unknowns only; branch currents may move
            # freely.
            v_delta = delta[:n_nodes]
            if n_nodes:
                worst = int(np.argmax(np.abs(v_delta)))
                max_dv = float(np.abs(v_delta[worst]))
            else:
                max_dv = 0.0
            if max_dv > options.max_step:
                delta = delta * (options.max_step / max_dv)
            x = x + delta
            converged = np.all(
                np.abs(delta[:n_nodes])
                <= options.vtol + options.reltol * np.abs(x[:n_nodes])
            )
            if converged and max_dv <= options.max_step:
                return x
    finally:
        if stats is not None:
            stats["solves"] = stats.get("solves", 0) + 1
            stats["iterations"] = stats.get("iterations", 0) + iterations
    raise AnalysisError(
        f"Newton did not converge in {options.max_iterations} iterations "
        f"(analysis={analysis}, t={time})",
        residual=max_dv,
        node=_node_name(circuit, worst),
    )


def _node_name(circuit: Circuit, index: Optional[int]) -> Optional[str]:
    """Node name for a voltage-unknown index (``None`` when unknown)."""
    if index is None:
        return None
    for name, position in circuit.node_index.items():
        if position == index:
            return name
    return None


def robust_dc_solve(circuit: Circuit, x0: Optional[np.ndarray] = None,
                    options: NewtonOptions = NewtonOptions(),
                    assembler: Optional[TwoPhaseAssembler] = None,
                    backend: BackendLike = None,
                    cancel: Optional[CancelToken] = None) -> np.ndarray:
    """DC solve with gmin/source-stepping fallbacks.

    ``backend`` selects the linear-solver backend when no reusable
    ``assembler`` is supplied.  Source stepping first continues from
    the last gmin-stepping iterate (when that strategy ran) — the
    partially-converged point is usually a better ramp start — and
    re-ramps from the caller's start point if that fails (a diverged
    gmin iterate can be worse than no warm start at all).  On total
    failure the :class:`AnalysisError` reports
    every strategy tried and the best (smallest) final Newton update
    with its worst node, so the diagnosis names where convergence
    stalled instead of just "diverged".
    """
    n = circuit.dimension()
    x_start = np.zeros(n) if x0 is None else x0.copy()
    if assembler is None:
        assembler = TwoPhaseAssembler(circuit, backend=backend)
    tried: list = []

    def _best() -> "tuple[Optional[float], Optional[str]]":
        known = [(exc.residual, exc.node) for _, exc in tried
                 if exc.residual is not None]
        if not known:
            return None, None
        return min(known, key=lambda pair: pair[0])

    try:
        return newton_solve(circuit, x_start, options, analysis="dc",
                            assembler=assembler, cancel=cancel)
    except AnalysisError as exc:
        tried.append(("newton", exc))
    # Source stepping ramps from the most-converged point available:
    # the last gmin-stepping iterate when that strategy ran, else the
    # caller's start point.
    x_ramp = x_start.copy()
    if options.gmin_stepping:
        x = x_start.copy()
        try:
            for exponent in range(3, 13):
                x = newton_solve(
                    circuit, x, options, analysis="dc",
                    gmin=10.0 ** (-exponent), assembler=assembler,
                    cancel=cancel,
                )
                x_ramp = x
            return newton_solve(circuit, x, options, analysis="dc",
                                assembler=assembler, cancel=cancel)
        except AnalysisError as exc:
            tried.append(("gmin-stepping", exc))
    if options.source_stepping:
        starts = [x_ramp]
        if not np.array_equal(x_ramp, x_start):
            starts.append(x_start.copy())
        failure: Optional[AnalysisError] = None
        for x in starts:
            try:
                for scale in (0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0):
                    x = newton_solve(
                        circuit, x, options, analysis="dc",
                        source_scale=scale, assembler=assembler,
                        cancel=cancel,
                    )
                return x
            except AnalysisError as exc:
                if (failure is None or failure.residual is None
                        or (exc.residual is not None
                            and exc.residual < failure.residual)):
                    failure = exc
        tried.append(("source-stepping", failure))
    strategies = tuple(name for name, _ in tried)
    residual, node = _best()
    detail = ""
    if residual is not None:
        detail = (f"; best residual {residual:.3g} V"
                  + (f" at node {node!r}" if node else ""))
    raise AnalysisError(
        f"DC operating point failed after "
        f"{', '.join(strategies) or 'no strategies'}{detail}",
        residual=residual, node=node, strategies=strategies,
    )
