"""MNA assembly (two-phase) and the damped Newton solver.

Assembly is split into two phases per Newton solve:

* **static phase** — every linear element (``nonlinear = False``:
  resistors, sources, capacitor/inductor companions) is stamped once
  per step context into a preallocated static matrix/rhs pair.  These
  stamps depend on ``(time, dt, x_prev, method, source_scale)`` but not
  on the Newton iterate, so re-stamping them every iteration — as the
  one-phase assembler did — is pure waste.
* **dynamic phase** — each Newton iteration copies the static system
  into preallocated work buffers and stamps only the nonlinear elements
  (CNFETs, diodes) around the current iterate.

:class:`TwoPhaseAssembler` owns the four buffers and can be reused
across Newton solves and transient steps, eliminating the per-iteration
matrix allocations as well.  Robustness aids, in escalation order:

1. per-iteration voltage step damping (clipped to ``max_step`` volts);
2. gmin stepping (decade sweep of the nonlinear shunt conductance);
3. source stepping (ramping all independent sources from 0).

Dense numpy is entirely adequate for the circuit sizes this library
targets (tens to hundreds of nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.circuit.elements.base import StampContext
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError


@dataclass(frozen=True)
class NewtonOptions:
    """Newton-loop tuning knobs (defaults follow SPICE conventions)."""

    max_iterations: int = 100
    #: absolute node-voltage convergence tolerance [V]
    vtol: float = 1e-9
    #: relative convergence tolerance
    reltol: float = 1e-6
    #: maximum voltage change per Newton iteration [V]
    max_step: float = 0.5
    #: shunt conductance for nonlinear elements
    gmin: float = 1e-12
    #: enable gmin stepping fallback
    gmin_stepping: bool = True
    #: enable source stepping fallback
    source_stepping: bool = True
    #: Jacobian-reuse fast path: when > 0, a Newton iteration whose
    #: iterate moved less than this many volts (inf-norm) since the
    #: last nonlinear assembly reuses that assembly's stamps instead of
    #: re-evaluating every nonlinear element.  The static phase is
    #: still refreshed per step, so across transient steps this is a
    #: frozen-linearisation (chord) iteration; the approximation error
    #: is O(curvature * tol^2), and a stalling solve falls back to full
    #: assemblies for its remaining iterations.  0 (default) preserves
    #: the exact legacy iteration.
    jacobian_reuse_tol: float = 0.0


def assemble(circuit: Circuit, x: np.ndarray, *, analysis: str = "dc",
             time: Optional[float] = None, dt: Optional[float] = None,
             x_prev: Optional[np.ndarray] = None, method: str = "be",
             gmin: float = 1e-12, source_scale: float = 1.0
             ) -> StampContext:
    """Stamp every element around iterate ``x``; returns the context
    whose ``matrix``/``rhs`` hold the companion system.

    One-phase convenience used by the AC linearisation and tests; the
    Newton loop goes through :class:`TwoPhaseAssembler` instead.
    """
    n = circuit.dimension()
    ctx = StampContext(
        matrix=np.zeros((n, n)),
        rhs=np.zeros(n),
        node_index=circuit.node_index,
        x=x,
        analysis=analysis,
        time=time,
        dt=dt,
        x_prev=x_prev,
        method=method,
        gmin=gmin,
        source_scale=source_scale,
    )
    for el in circuit.elements:
        el.stamp(ctx)
    return ctx


class TwoPhaseAssembler:
    """Preallocated two-phase assembly for one circuit.

    Create once per analysis (or let :func:`newton_solve` make a
    throwaway one), call :meth:`begin_step` whenever the step context —
    ``(analysis, time, dt, x_prev, method, source_scale)`` — changes,
    then :meth:`iterate` per Newton iteration.

    Elements whose stamp reads the Newton iterate must declare
    ``nonlinear = True`` (the documented contract of
    :attr:`Element.nonlinear`); everything else is stamped once per
    step.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        n = circuit.dimension()
        self.n = n
        self._static = [el for el in circuit.elements if not el.nonlinear]
        self._dynamic = [el for el in circuit.elements if el.nonlinear]
        self._static_matrix = np.zeros((n, n))
        self._static_rhs = np.zeros(n)
        self._matrix = np.zeros((n, n))
        self._rhs = np.zeros(n)
        self._x_static = np.zeros(n)  # placeholder iterate for phase 1
        self._ctx: Optional[StampContext] = None

    def begin_step(self, *, analysis: str = "dc",
                   time: Optional[float] = None, dt: Optional[float] = None,
                   x_prev: Optional[np.ndarray] = None, method: str = "be",
                   gmin: float = 1e-12,
                   source_scale: float = 1.0) -> None:
        """Stamp the static (iterate-independent) part of the system."""
        ctx = StampContext(
            matrix=self._static_matrix,
            rhs=self._static_rhs,
            node_index=self.circuit.node_index,
            x=self._x_static,  # placeholder; static stamps never read x
            analysis=analysis,
            time=time,
            dt=dt,
            x_prev=x_prev,
            method=method,
            gmin=gmin,
            source_scale=source_scale,
        )
        self._static_matrix[:] = 0.0
        self._static_rhs[:] = 0.0
        for el in self._static:
            el.stamp(ctx)
        self._ctx = ctx

    def iterate(self, x: np.ndarray,
                reuse_tol: float = 0.0) -> StampContext:
        """Companion system around iterate ``x``: static copy plus
        nonlinear stamps.

        ``reuse_tol`` > 0 enables the Jacobian-reuse fast path for
        elements that support it (see
        :attr:`NewtonOptions.jacobian_reuse_tol`): an element whose
        controlling voltages moved less than the tolerance since its
        last evaluation may restamp from that frozen linearisation.
        """
        ctx = self._ctx
        if ctx is None:
            raise AnalysisError("begin_step must be called before iterate")
        np.copyto(self._matrix, self._static_matrix)
        np.copyto(self._rhs, self._static_rhs)
        ctx.matrix = self._matrix
        ctx.rhs = self._rhs
        ctx.x = x
        ctx.reuse_tol = reuse_tol
        for el in self._dynamic:
            el.stamp(ctx)
        return ctx


def newton_solve(circuit: Circuit, x0: np.ndarray,
                 options: NewtonOptions = NewtonOptions(), *,
                 analysis: str = "dc", time: Optional[float] = None,
                 dt: Optional[float] = None,
                 x_prev: Optional[np.ndarray] = None, method: str = "be",
                 gmin: Optional[float] = None,
                 source_scale: float = 1.0,
                 assembler: Optional[TwoPhaseAssembler] = None,
                 stats: Optional[dict] = None) -> np.ndarray:
    """Damped Newton iteration; raises :class:`AnalysisError` on failure.

    Pass a reusable ``assembler`` (transient does, once per analysis) to
    amortise buffer allocation across steps.  When a ``stats`` dict is
    supplied, ``"iterations"`` and ``"solves"`` counters are accumulated
    into it (the benchmark report reads them).
    """
    x = x0.copy()
    n_nodes = len(circuit.node_index)
    use_gmin = options.gmin if gmin is None else gmin
    if assembler is None:
        assembler = TwoPhaseAssembler(circuit)
    assembler.begin_step(
        analysis=analysis, time=time, dt=dt, x_prev=x_prev, method=method,
        gmin=use_gmin, source_scale=source_scale,
    )
    reuse_tol = options.jacobian_reuse_tol
    # Convergence-stall fallback for the reuse fast path: past half the
    # iteration budget every assembly is forced fresh.
    stall_cap = options.max_iterations // 2
    # Local counters, flushed once per solve — the per-iteration
    # ``stats.get`` dict churn used to show up on long transients.
    iterations = 0
    try:
        for iterations in range(1, options.max_iterations + 1):
            ctx = assembler.iterate(
                x,
                reuse_tol if iterations <= stall_cap else 0.0,
            )
            try:
                x_new = np.linalg.solve(ctx.matrix, ctx.rhs)
            except np.linalg.LinAlgError as exc:
                raise AnalysisError(
                    f"singular MNA matrix ({exc}); check for floating "
                    f"nodes"
                ) from exc
            delta = x_new - x
            # Damp voltage unknowns only; branch currents may move
            # freely.
            v_delta = delta[:n_nodes]
            max_dv = float(np.max(np.abs(v_delta))) if n_nodes else 0.0
            if max_dv > options.max_step:
                delta = delta * (options.max_step / max_dv)
            x = x + delta
            converged = np.all(
                np.abs(delta[:n_nodes])
                <= options.vtol + options.reltol * np.abs(x[:n_nodes])
            )
            if converged and max_dv <= options.max_step:
                return x
    finally:
        if stats is not None:
            stats["solves"] = stats.get("solves", 0) + 1
            stats["iterations"] = stats.get("iterations", 0) + iterations
    raise AnalysisError(
        f"Newton did not converge in {options.max_iterations} iterations "
        f"(analysis={analysis}, t={time})"
    )


def robust_dc_solve(circuit: Circuit, x0: Optional[np.ndarray] = None,
                    options: NewtonOptions = NewtonOptions(),
                    assembler: Optional[TwoPhaseAssembler] = None
                    ) -> np.ndarray:
    """DC solve with gmin/source-stepping fallbacks."""
    n = circuit.dimension()
    x_start = np.zeros(n) if x0 is None else x0.copy()
    if assembler is None:
        assembler = TwoPhaseAssembler(circuit)
    try:
        return newton_solve(circuit, x_start, options, analysis="dc",
                            assembler=assembler)
    except AnalysisError:
        pass
    if options.gmin_stepping:
        x = x_start.copy()
        try:
            for exponent in range(3, 13):
                x = newton_solve(
                    circuit, x, options, analysis="dc",
                    gmin=10.0 ** (-exponent), assembler=assembler,
                )
            return newton_solve(circuit, x, options, analysis="dc",
                                assembler=assembler)
        except AnalysisError:
            pass
    if options.source_stepping:
        x = np.zeros(n)
        try:
            for scale in (0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0):
                x = newton_solve(
                    circuit, x, options, analysis="dc", source_scale=scale,
                    assembler=assembler,
                )
            return x
        except AnalysisError:
            pass
    raise AnalysisError(
        "DC operating point failed (Newton, gmin stepping and source "
        "stepping all diverged)"
    )
