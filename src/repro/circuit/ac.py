"""AC small-signal analysis.

Linearises the circuit around its DC operating point and solves the
complex MNA system ``(G + j w C) x = b`` per frequency:

* resistive/conductance stamps are reused from the DC assembly at the
  operating point (nonlinear elements contribute their gm/gds there);
* energy-storage stamps are collected by a second assembly pass with a
  unit time step, from which the capacitance matrix is recovered as the
  difference between the transient and DC Jacobians (backward-Euler
  companion conductance is exactly ``C/dt``);
* one independent source is designated as the AC input with unit
  magnitude, SPICE-style.

This covers the classic compact-model use cases — gain/bandwidth of a
CNFET stage, input capacitance extraction — without any element needing
a dedicated AC stamp.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.circuit.elements.sources import CurrentSource, VoltageSource
from repro.circuit.mna import NewtonOptions, assemble, robust_dc_solve
from repro.circuit.netlist import Circuit
from repro.circuit.results import Dataset
from repro.errors import NetlistError, ParameterError


def ac_analysis(
    circuit: Circuit,
    source_name: str,
    frequencies_hz: Sequence[float],
    options: NewtonOptions = NewtonOptions(),
) -> Dataset:
    """Frequency sweep with a unit AC excitation on ``source_name``.

    Returns a :class:`Dataset` with axis ``frequency`` and complex-
    magnitude/phase traces ``vm(node)`` [V], ``vp(node)`` [degrees].

    Raises
    ------
    NetlistError
        If ``source_name`` is not an independent source.
    ParameterError
        For empty or non-positive frequency lists.
    """
    freqs = [float(f) for f in frequencies_hz]
    if not freqs:
        raise ParameterError("frequency list is empty")
    if any(f <= 0.0 for f in freqs):
        raise ParameterError(f"frequencies must be > 0: {freqs}")
    source = circuit.element(source_name)
    if not isinstance(source, (VoltageSource, CurrentSource)):
        raise NetlistError(f"{source_name!r} is not an independent source")

    # 1. DC operating point.
    circuit.reset_state()
    x_op = robust_dc_solve(circuit, None, options)
    n = circuit.dimension()

    # 2. Small-signal conductance matrix at the operating point.
    ctx_dc = assemble(circuit, x_op, analysis="dc")
    g_matrix = ctx_dc.matrix.copy()

    # 3. Capacitance matrix: the BE companion adds exactly C/dt to the
    #    Jacobian, so one transient assembly at dt = 1 isolates C.
    ctx_tr = assemble(circuit, x_op, analysis="tran", time=0.0, dt=1.0,
                      x_prev=x_op, method="be")
    c_matrix = ctx_tr.matrix - g_matrix

    # 4. Unit excitation vector on the chosen source.
    b = np.zeros(n, dtype=complex)
    if isinstance(source, VoltageSource):
        b[source.aux_index] = 1.0
    else:
        a, bb = source.nodes
        ia = circuit.node_index.get(a, -1) if a not in ("0", "gnd") else -1
        ib = circuit.node_index.get(bb, -1) if bb not in ("0", "gnd") else -1
        if ia >= 0:
            b[ia] -= 1.0
        if ib >= 0:
            b[ib] += 1.0

    dataset = Dataset("frequency", freqs)
    nodes = circuit.nodes
    solutions = np.empty((len(freqs), n), dtype=complex)
    for k, f in enumerate(freqs):
        omega = 2.0 * np.pi * f
        solutions[k] = np.linalg.solve(g_matrix + 1j * omega * c_matrix, b)
    for node, idx in circuit.node_index.items():
        dataset.add_trace(f"vm({node})", np.abs(solutions[:, idx]))
        dataset.add_trace(
            f"vp({node})", np.degrees(np.angle(solutions[:, idx]))
        )
    _ = nodes
    return dataset


def decade_frequencies(f_start: float, f_stop: float,
                       points_per_decade: int = 10) -> list:
    """Logarithmic frequency grid, SPICE ``.ac dec`` style."""
    if f_start <= 0.0 or f_stop <= f_start:
        raise ParameterError(
            f"need 0 < f_start < f_stop: {f_start}, {f_stop}"
        )
    if points_per_decade < 1:
        raise ParameterError(
            f"points_per_decade must be >= 1: {points_per_decade}"
        )
    decades = np.log10(f_stop / f_start)
    count = max(2, int(round(decades * points_per_decade)) + 1)
    return list(np.logspace(np.log10(f_start), np.log10(f_stop), count))
