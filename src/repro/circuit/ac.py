"""AC small-signal analysis.

Linearises the circuit around its DC operating point and solves the
complex MNA system ``(G + j w C) x = b`` per frequency:

* resistive/conductance stamps are reused from the DC assembly at the
  operating point (nonlinear elements contribute their gm/gds there);
* energy-storage stamps are collected by a second assembly pass with a
  unit time step, from which the capacitance matrix is recovered as the
  difference between the transient and DC Jacobians (backward-Euler
  companion conductance is exactly ``C/dt``);
* one independent source is designated as the AC input with unit
  magnitude, SPICE-style.

The ``G`` and ``C`` buffers are stamped **once** for the whole sweep;
per frequency only the scaled sum ``G + j w C`` changes, written into
one preallocated complex work matrix (dense) or re-summed on the
shared sparsity pattern (sparse backend).  A circuit with no
energy-storage stamps (``C == 0``) is frequency-independent, so it is
factorised and solved exactly once.

This covers the classic compact-model use cases — gain/bandwidth of a
CNFET stage, input capacitance extraction — without any element needing
a dedicated AC stamp.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.circuit.elements.sources import CurrentSource, VoltageSource
from repro.circuit.mna import NewtonOptions, assemble, robust_dc_solve
from repro.circuit.netlist import Circuit
from repro.circuit.results import Dataset
from repro.circuit.solvers import BackendLike, resolve_backend
from repro.errors import AnalysisError, NetlistError, ParameterError


def ac_analysis(
    circuit: Circuit,
    source_name: str,
    frequencies_hz: Sequence[float],
    options: NewtonOptions = NewtonOptions(),
    backend: BackendLike = None,
) -> Dataset:
    """Frequency sweep with a unit AC excitation on ``source_name``.

    Returns a :class:`Dataset` with axis ``frequency`` and complex-
    magnitude/phase traces ``vm(node)`` [V], ``vp(node)`` [degrees].
    ``backend`` selects the linear-solver backend (``"auto"`` /
    ``"dense"`` / ``"sparse"``) for the operating point and the
    per-frequency complex solves.

    Raises
    ------
    NetlistError
        If ``source_name`` is not an independent source.
    ParameterError
        For empty or non-positive frequency lists.
    """
    freqs = [float(f) for f in frequencies_hz]
    if not freqs:
        raise ParameterError("frequency list is empty")
    if any(f <= 0.0 for f in freqs):
        raise ParameterError(f"frequencies must be > 0: {freqs}")
    source = circuit.element(source_name)
    if not isinstance(source, (VoltageSource, CurrentSource)):
        raise NetlistError(f"{source_name!r} is not an independent source")

    # 1. DC operating point.
    circuit.reset_state()
    x_op = robust_dc_solve(circuit, None, options, backend=backend)
    n = circuit.dimension()
    solver = resolve_backend(backend, n)

    # 2. Small-signal conductance matrix at the operating point.
    ctx_dc = assemble(circuit, x_op, analysis="dc")
    g_matrix = ctx_dc.matrix.copy()

    # 3. Capacitance matrix: the BE companion adds exactly C/dt to the
    #    Jacobian, so one transient assembly isolates C.  The probe dt
    #    is chosen so C/dt lands on the same order as the conductance
    #    stamps: extracting at dt = 1 (as this pass historically did)
    #    left the fF-scale charge companions ~12 orders below the gm
    #    stamps, and the subtraction returned C with only ~4
    #    significant digits — visible as 1e-4-relative noise in the
    #    capacitance-dominated end of the sweep.
    probe_dt = 1e-12
    ctx_tr = assemble(circuit, x_op, analysis="tran", time=0.0,
                      dt=probe_dt, x_prev=x_op, method="be")
    c_matrix = (ctx_tr.matrix - g_matrix) * probe_dt

    # 4. Unit excitation vector on the chosen source.
    b = np.zeros(n, dtype=complex)
    if isinstance(source, VoltageSource):
        b[source.aux_index] = 1.0
    else:
        a, bb = source.nodes
        ia = circuit.node_index.get(a, -1) if a not in ("0", "gnd") else -1
        ib = circuit.node_index.get(bb, -1) if bb not in ("0", "gnd") else -1
        if ia >= 0:
            b[ia] -= 1.0
        if ib >= 0:
            b[ib] += 1.0

    dataset = Dataset("frequency", freqs)
    solutions = _solve_frequency_sweep(solver, g_matrix, c_matrix, b,
                                       freqs)
    for node, idx in circuit.node_index.items():
        dataset.add_trace(f"vm({node})", np.abs(solutions[:, idx]))
        dataset.add_trace(
            f"vp({node})", np.degrees(np.angle(solutions[:, idx]))
        )
    return dataset


def _solve_frequency_sweep(solver, g_matrix: np.ndarray,
                           c_matrix: np.ndarray, b: np.ndarray,
                           freqs: Sequence[float]) -> np.ndarray:
    """Solve ``(G + j w C) x = b`` per frequency through ``solver``.

    The stamped ``G``/``C`` buffers are shared by every point; the
    dense path re-sums into one preallocated complex work matrix, the
    sparse path converts ``G``/``C`` to sparse once and re-sums on the
    shared pattern.  With ``C == 0`` the system is frequency-
    independent: one factorise-and-solve serves the whole sweep.
    """
    n = b.size
    solutions = np.empty((len(freqs), n), dtype=complex)
    static = not c_matrix.any()
    if static:
        solutions[:] = solver.solve_dense(
            g_matrix.astype(complex), b)
        return solutions
    if solver.is_sparse:
        # One structural pass: the union sparsity pattern of G and C
        # in CSC order, with both stamped buffers gathered onto it.
        # Each frequency then only combines the two aligned data
        # vectors and hands the shared structure to the backend — no
        # per-point matrix addition or format conversion.
        mask = (g_matrix != 0.0) | (c_matrix != 0.0)
        cols, rows = np.nonzero(mask.T)  # column-major entry order
        indptr = np.zeros(n + 1, dtype=np.intp)
        np.cumsum(np.bincount(cols, minlength=n), out=indptr[1:])
        g_data = g_matrix[rows, cols].astype(complex)
        c_data = c_matrix[rows, cols].astype(complex)
        for k, f in enumerate(freqs):
            omega = 2.0 * np.pi * f
            try:
                solutions[k] = solver.solve_csc(
                    n, g_data + (1j * omega) * c_data, rows, indptr, b)
            except AnalysisError as exc:
                raise AnalysisError(
                    f"singular AC system at f={f:g} Hz ({exc})"
                ) from exc
        return solutions
    work = np.empty((n, n), dtype=complex)
    for k, f in enumerate(freqs):
        omega = 2.0 * np.pi * f
        np.multiply(c_matrix, 1j * omega, out=work)
        work += g_matrix
        solutions[k] = solver.solve_dense(work, b)
    return solutions


def decade_frequencies(f_start: float, f_stop: float,
                       points_per_decade: int = 10) -> list:
    """Logarithmic frequency grid, SPICE ``.ac dec`` style."""
    if f_start <= 0.0 or f_stop <= f_start:
        raise ParameterError(
            f"need 0 < f_start < f_stop: {f_start}, {f_stop}"
        )
    if points_per_decade < 1:
        raise ParameterError(
            f"points_per_decade must be >= 1: {points_per_decade}"
        )
    decades = np.log10(f_stop / f_start)
    count = max(2, int(round(decades * points_per_decade)) + 1)
    return list(np.logspace(np.log10(f_start), np.log10(f_stop), count))
