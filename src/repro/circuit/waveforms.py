"""Time-dependent source waveforms (SPICE semantics)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import math

from repro.errors import ParameterError


class Waveform:
    """Base class: a scalar function of time."""

    def value(self, t: float) -> float:
        raise NotImplementedError

    def dc_value(self) -> float:
        """Value used for the DC operating point (t = 0)."""
        return self.value(0.0)


@dataclass(frozen=True)
class DC(Waveform):
    """Constant value."""

    level: float = 0.0

    def value(self, t: float) -> float:
        return self.level


@dataclass(frozen=True)
class Pulse(Waveform):
    """SPICE PULSE(v1 v2 td tr tf pw per)."""

    v1: float
    v2: float
    delay: float = 0.0
    rise: float = 1e-12
    fall: float = 1e-12
    width: float = 1e-9
    period: float = 2e-9

    def __post_init__(self) -> None:
        if self.rise < 0 or self.fall < 0 or self.width < 0:
            raise ParameterError("pulse edges and width must be >= 0")
        if self.period <= 0:
            raise ParameterError(f"pulse period must be > 0: {self.period}")
        if self.rise + self.width + self.fall > self.period:
            raise ParameterError("pulse rise+width+fall exceeds period")

    def value(self, t: float) -> float:
        if t < self.delay:
            return self.v1
        tau = math.fmod(t - self.delay, self.period)
        if tau < self.rise:
            if self.rise == 0:
                return self.v2
            return self.v1 + (self.v2 - self.v1) * tau / self.rise
        tau -= self.rise
        if tau < self.width:
            return self.v2
        tau -= self.width
        if tau < self.fall:
            if self.fall == 0:
                return self.v1
            return self.v2 + (self.v1 - self.v2) * tau / self.fall
        return self.v1

    def dc_value(self) -> float:
        return self.v1


@dataclass(frozen=True)
class Sine(Waveform):
    """SPICE SIN(vo va freq td theta)."""

    offset: float
    amplitude: float
    frequency: float
    delay: float = 0.0
    damping: float = 0.0

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise ParameterError(f"frequency must be > 0: {self.frequency}")

    def value(self, t: float) -> float:
        if t < self.delay:
            return self.offset
        dt = t - self.delay
        return self.offset + self.amplitude * math.exp(
            -self.damping * dt
        ) * math.sin(2.0 * math.pi * self.frequency * dt)

    def dc_value(self) -> float:
        return self.offset


@dataclass(frozen=True)
class PWLWaveform(Waveform):
    """Piecewise-linear waveform from (time, value) points."""

    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        times = [p[0] for p in self.points]
        if len(times) < 2:
            raise ParameterError("PWL needs at least two points")
        if sorted(times) != times:
            raise ParameterError(f"PWL times must ascend: {times}")

    @classmethod
    def from_pairs(cls, pairs: Sequence[float]) -> "PWLWaveform":
        """Build from a flat ``t0 v0 t1 v1 ...`` list (SPICE style)."""
        if len(pairs) % 2 != 0:
            raise ParameterError("PWL pair list must have even length")
        pts = tuple(
            (float(pairs[i]), float(pairs[i + 1]))
            for i in range(0, len(pairs), 2)
        )
        return cls(pts)

    def value(self, t: float) -> float:
        pts = self.points
        if t <= pts[0][0]:
            return pts[0][1]
        if t >= pts[-1][0]:
            return pts[-1][1]
        for (t0, v0), (t1, v1) in zip(pts, pts[1:]):
            if t0 <= t <= t1:
                if t1 == t0:
                    return v1
                return v0 + (v1 - v0) * (t - t0) / (t1 - t0)
        return pts[-1][1]  # pragma: no cover - unreachable
