"""Time-dependent source waveforms (SPICE semantics)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import math

from repro.errors import ParameterError


#: Safety cap on the number of breakpoints one waveform may report
#: (a short-period pulse over a long transient would otherwise flood
#: the stepper with millions of corner times).
MAX_BREAKPOINTS = 100_000


class Waveform:
    """Base class: a scalar function of time."""

    def value(self, t: float) -> float:
        raise NotImplementedError

    def dc_value(self) -> float:
        """Value used for the DC operating point (t = 0)."""
        return self.value(0.0)

    def breakpoints(self, t0: float, t1: float) -> Tuple[float, ...]:
        """Times in ``(t0, t1)`` where the waveform has a slope
        discontinuity [s].

        The transient engine lands a step *exactly* on every reported
        breakpoint (both fixed- and adaptive-step modes), so sharp
        source edges are never smeared across a step.  Smooth waveforms
        return an empty tuple.
        """
        return ()


@dataclass(frozen=True)
class DC(Waveform):
    """Constant value."""

    level: float = 0.0

    def value(self, t: float) -> float:
        """The constant level [V or A]."""
        return self.level


@dataclass(frozen=True)
class Pulse(Waveform):
    """SPICE PULSE(v1 v2 td tr tf pw per)."""

    v1: float
    v2: float
    delay: float = 0.0
    rise: float = 1e-12
    fall: float = 1e-12
    width: float = 1e-9
    period: float = 2e-9

    def __post_init__(self) -> None:
        if self.rise < 0 or self.fall < 0 or self.width < 0:
            raise ParameterError("pulse edges and width must be >= 0")
        if self.period <= 0:
            raise ParameterError(f"pulse period must be > 0: {self.period}")
        if self.rise + self.width + self.fall > self.period:
            raise ParameterError("pulse rise+width+fall exceeds period")

    def value(self, t: float) -> float:
        """Pulse level at time ``t`` [s] (periodic SPICE semantics)."""
        if t < self.delay:
            return self.v1
        tau = math.fmod(t - self.delay, self.period)
        if tau < self.rise:
            if self.rise == 0:
                return self.v2
            return self.v1 + (self.v2 - self.v1) * tau / self.rise
        tau -= self.rise
        if tau < self.width:
            return self.v2
        tau -= self.width
        if tau < self.fall:
            if self.fall == 0:
                return self.v1
            return self.v2 + (self.v1 - self.v2) * tau / self.fall
        return self.v1

    def dc_value(self) -> float:
        return self.v1

    def breakpoints(self, t0: float, t1: float) -> Tuple[float, ...]:
        """Pulse corners (edge starts/ends) within ``(t0, t1)``."""
        corners = []
        offsets = (0.0, self.rise, self.rise + self.width,
                   self.rise + self.width + self.fall)
        k = max(0, int(math.floor((t0 - self.delay) / self.period)))
        while True:
            base = self.delay + k * self.period
            if base > t1:
                break
            for off in offsets:
                t = base + off
                if t0 < t < t1:
                    corners.append(t)
            if len(corners) >= MAX_BREAKPOINTS:
                break
            k += 1
        return tuple(dict.fromkeys(corners))


@dataclass(frozen=True)
class Sine(Waveform):
    """SPICE SIN(vo va freq td theta)."""

    offset: float
    amplitude: float
    frequency: float
    delay: float = 0.0
    damping: float = 0.0

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise ParameterError(f"frequency must be > 0: {self.frequency}")

    def value(self, t: float) -> float:
        """Damped sine level at time ``t`` [s]."""
        if t < self.delay:
            return self.offset
        dt = t - self.delay
        return self.offset + self.amplitude * math.exp(
            -self.damping * dt
        ) * math.sin(2.0 * math.pi * self.frequency * dt)

    def dc_value(self) -> float:
        return self.offset

    def breakpoints(self, t0: float, t1: float) -> Tuple[float, ...]:
        """The turn-on instant (slope discontinuity at ``delay``)."""
        if t0 < self.delay < t1:
            return (self.delay,)
        return ()


@dataclass(frozen=True)
class PWLWaveform(Waveform):
    """Piecewise-linear waveform from (time, value) points."""

    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        times = [p[0] for p in self.points]
        if len(times) < 2:
            raise ParameterError("PWL needs at least two points")
        if sorted(times) != times:
            raise ParameterError(f"PWL times must ascend: {times}")

    @classmethod
    def from_pairs(cls, pairs: Sequence[float]) -> "PWLWaveform":
        """Build from a flat ``t0 v0 t1 v1 ...`` list (SPICE style)."""
        if len(pairs) % 2 != 0:
            raise ParameterError("PWL pair list must have even length")
        pts = tuple(
            (float(pairs[i]), float(pairs[i + 1]))
            for i in range(0, len(pairs), 2)
        )
        return cls(pts)

    def value(self, t: float) -> float:
        """Linear interpolation at ``t`` [s] (clamped at the ends)."""
        pts = self.points
        if t <= pts[0][0]:
            return pts[0][1]
        if t >= pts[-1][0]:
            return pts[-1][1]
        for (t0, v0), (t1, v1) in zip(pts, pts[1:]):
            if t0 <= t <= t1:
                if t1 == t0:
                    return v1
                return v0 + (v1 - v0) * (t - t0) / (t1 - t0)
        return pts[-1][1]  # pragma: no cover - unreachable

    def breakpoints(self, t0: float, t1: float) -> Tuple[float, ...]:
        """Every PWL corner time within ``(t0, t1)``."""
        return tuple(t for t, _v in self.points if t0 < t < t1)
