"""Circuit partitioning with Schur-coupled block solves and latency bypass.

The monolithic MNA engine factorises one global Jacobian per Newton
iteration.  For mostly-quiescent digital circuits that is almost all
waste: the paper's closed-form CNFET model makes *device evaluation*
cheap, so the global factorisation dominates — and most of the circuit
did not move since the last step.  This module implements the classic
fast-SPICE answer:

* :func:`partition_circuit` cuts the flattened circuit into **blocks**
  along subcircuit-instance boundaries (the dot-separated hierarchical
  names produced by :class:`~repro.circuit.netlist.Instance`
  flattening), falling back to connectivity clustering for flat
  netlists.  Elements whose every node is shared between blocks (the
  independent sources, the inter-stage load capacitors) form the
  **interface**; nodes touched by more than one block or by any
  interface element are **boundary nodes**.
* :class:`PartitionedAssembler` assembles each block into its own
  bordered system ``[[A_bb, E_b], [F_b, C_b]]`` over (internal
  unknowns, local boundary nodes) and couples the blocks through a
  **Schur complement** interface solve — algebraically the same global
  Newton step the monolithic engine takes, so results agree to
  round-off.  A block Gauss–Seidel **relaxation** coupling is available
  as the cheap alternative; it checks its own convergence and
  escalates to the direct Schur solve when the sweeps stall.
* **Latency bypass**: a block whose unknowns and boundary terminals
  moved less than ``bypass_tol`` volts since its last assembly skips
  device re-evaluation, stamping and refactorisation entirely — its
  frozen Schur contribution is reused.  The bypass is re-checked every
  Newton iteration (a block whose terminals get driven mid-step is
  promoted back to active) and refreshed every
  ``max_bypass_steps`` accepted steps so slow drift cannot accumulate
  unobserved.  See ``docs/partitioning.md`` for the tolerance
  semantics.

The assembler duck-types the three-method contract of
:class:`repro.circuit.mna.TwoPhaseAssembler` (``begin_step`` /
``iterate`` / ``solve``), so :func:`repro.circuit.mna.newton_solve`
and both transient loops drive it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.elements.base import (
    GROUND_NAMES,
    Element,
    TripletStampContext,
)
from repro.circuit.elements.cnfet import CNFETElement, CNFETSlab
from repro.circuit.netlist import HIER_SEP, Circuit
from repro.circuit.solvers import HAVE_SCIPY, SparseBackend
from repro.circuit.waveforms import DC
from repro.errors import AnalysisError, ParameterError
from repro.pwl.device import CNFET

try:  # dense-block LU reuse (optional; numpy fallback below)
    from scipy.linalg import lu_factor as _lu_factor
    from scipy.linalg import lu_solve as _lu_solve
except ImportError:  # pragma: no cover - no-scipy guard
    _lu_factor = _lu_solve = None

#: Default maximum number of elements per block; hierarchy groups and
#: connectivity clusters larger than this are split further.
DEFAULT_MAX_BLOCK = 64

#: Internal-unknown count at which a block's ``A_bb`` factorisation
#: switches from dense LAPACK to the sparse backend (SuperLU or the
#: compiled frozen-pivot refactor lane,
#: :class:`repro.circuit.solvers._RefactorLU`).
SPARSE_BLOCK_MIN_DIM = 192

#: Accepted steps a block may stay bypassed before it is force-refreshed.
#: Drift itself is bounded per step by the bypass-tolerance check (it
#: compares the live iterate against the *frozen* solution, so slow
#: drift accumulates towards the tolerance and triggers a refresh on
#: its own); the age cap is a belt-and-braces bound on how long a
#: frozen linearisation may be reused, not the drift guard.
DEFAULT_MAX_BYPASS_STEPS = 1000


def _non_ground_nodes(element: Element) -> List[str]:
    return [node for node in element.nodes if node not in GROUND_NAMES]


def _is_time_varying(element: Element) -> bool:
    waveform = getattr(element, "waveform", None)
    return waveform is not None and not isinstance(waveform, DC)


def _dt_matches(frozen_dt, dt, rel: float = 1e-9) -> bool:
    """Whether a step size matches a frozen block's, to ``rel``.

    Exact equality would defeat bypass on any breakpoint-bearing run:
    the step that lands on a breakpoint computes ``dt`` as a time
    difference, off by an ulp from the nominal cadence, and the key
    mismatch would refresh *every* block twice per source edge.  A
    1e-9 relative slack changes the trap/BE companion conductances
    (``2C/dt``) by far less than any bypass tolerance resolves."""
    if frozen_dt is None or dt is None:
        return frozen_dt is None and dt is None
    return abs(dt - frozen_dt) <= rel * abs(frozen_dt)


# ---------------------------------------------------------------------------
# partitioning


def _hier_groups(elements: Sequence[Element], max_block: int
                 ) -> Optional[Dict[Tuple[str, ...], List[Element]]]:
    """Group elements by hierarchical name prefix, recursively splitting
    groups larger than ``max_block`` by the next path segment.

    Returns ``None`` when the netlist carries no hierarchy (no element
    name contains :data:`~repro.circuit.netlist.HIER_SEP`).
    """
    if not any(HIER_SEP in el.name for el in elements):
        return None
    groups: Dict[Tuple[str, ...], List[Element]] = {}

    def place(key: Tuple[str, ...], els: List[Element], depth: int) -> None:
        if len(els) <= max_block:
            groups[key] = els
            return
        sub: Dict[Tuple[str, ...], List[Element]] = {}
        leaves: List[Element] = []
        for el in els:
            segments = el.name.split(HIER_SEP)
            # the last segment is the element's own name, never a level
            if len(segments) > depth + 1:
                child = key + (segments[depth],)
                sub.setdefault(child, []).append(el)
            else:
                leaves.append(el)
        if len(sub) <= 1 and not leaves:
            # no further hierarchy to exploit; keep as one block
            groups[key] = els
            return
        if leaves:
            groups[key + ("",)] = leaves
        for child_key, child_els in sub.items():
            place(child_key, child_els, depth + 1)

    top: Dict[Tuple[str, ...], List[Element]] = {}
    for el in elements:
        segments = el.name.split(HIER_SEP)
        key = (segments[0],) if len(segments) > 1 else ("",)
        top.setdefault(key, []).append(el)
    for key, els in top.items():
        place(key, els, 1 if key != ("",) else 0)
    return groups


def _connectivity_groups(elements: Sequence[Element], max_block: int,
                         cut_degree: Optional[int],
                         cut_nets: Optional[set] = None
                         ) -> Dict[Tuple[str, ...], List[Element]]:
    """Cluster a flat netlist by shared nets.

    High-degree nets (supply rails and similar) are excluded as *cut
    nets* so they do not glue the whole circuit into one cluster;
    clusters larger than ``max_block`` are split into contiguous
    chunks of a breadth-first element ordering.
    """
    degree: Dict[str, int] = {}
    for el in elements:
        for node in _non_ground_nodes(el):
            degree[node] = degree.get(node, 0) + 1
    if cut_degree is None:
        if degree:
            avg = sum(degree.values()) / len(degree)
        else:
            avg = 0.0
        cut_degree = max(8, int(2 * avg))
    cut_nets = set(cut_nets or ()) | {
        node for node, deg in degree.items() if deg > cut_degree}

    # union-find over elements joined by shared (non-cut) nets
    parent = list(range(len(elements)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    first_touch: Dict[str, int] = {}
    adjacency: Dict[str, List[int]] = {}
    for k, el in enumerate(elements):
        for node in _non_ground_nodes(el):
            adjacency.setdefault(node, []).append(k)
            if node in cut_nets:
                continue
            if node in first_touch:
                union(first_touch[node], k)
            else:
                first_touch[node] = k

    clusters: Dict[int, List[int]] = {}
    for k in range(len(elements)):
        clusters.setdefault(find(k), []).append(k)

    groups: Dict[Tuple[str, ...], List[Element]] = {}
    serial = 0
    for root in sorted(clusters):
        members = clusters[root]
        if len(members) <= max_block:
            groups[(f"blk{serial}",)] = [elements[k] for k in members]
            serial += 1
            continue
        # BFS element ordering inside the cluster, chunked
        member_set = set(members)
        order: List[int] = []
        seen = set()
        queue = [members[0]]
        while queue or len(seen) < len(members):
            if not queue:  # disconnected remainder (via cut nets only)
                queue.append(next(k for k in members if k not in seen))
            k = queue.pop(0)
            if k in seen:
                continue
            seen.add(k)
            order.append(k)
            for node in _non_ground_nodes(elements[k]):
                if node in cut_nets:
                    continue
                for peer in adjacency[node]:
                    if peer in member_set and peer not in seen:
                        queue.append(peer)
        for start in range(0, len(order), max_block):
            chunk = order[start:start + max_block]
            groups[(f"blk{serial}",)] = [elements[k] for k in chunk]
            serial += 1
    return groups


@dataclass
class PartitionBlock:
    """One partition block: its elements and its unknown-index scopes.

    ``internal`` holds the global indices owned exclusively by this
    block (its private nodes plus its elements' auxiliary unknowns);
    ``boundary`` holds the global indices of the boundary nodes its
    elements touch.  Together they are the block's *scope*: every
    matrix entry a block element stamps lands inside
    ``internal x internal``, ``internal x boundary``,
    ``boundary x internal`` or ``boundary x boundary``.
    """

    name: str
    elements: List[Element]
    internal: np.ndarray = field(default_factory=lambda: np.empty(0, np.intp))
    boundary: np.ndarray = field(default_factory=lambda: np.empty(0, np.intp))
    time_varying: bool = False

    @property
    def n_internal(self) -> int:
        """Number of unknowns owned by the block."""
        return int(self.internal.size)

    @property
    def n_boundary(self) -> int:
        """Number of boundary nodes the block couples through."""
        return int(self.boundary.size)


@dataclass
class PartitionReport:
    """Summary statistics of a :class:`Partition` (CLI/diagnostics)."""

    n_blocks: int
    block_unknowns: List[int]
    block_elements: List[int]
    boundary_nodes: int
    interface_elements: int
    interface_unknowns: int
    total_unknowns: int

    def histogram(self, bins: int = 8, width: int = 40) -> str:
        """ASCII histogram of block sizes (unknowns per block)."""
        if not self.block_unknowns:
            return "(no blocks)"
        values = np.asarray(self.block_unknowns)
        lo, hi = int(values.min()), int(values.max())
        if lo == hi:
            return f"{lo:>6d}..{hi:<6d} | " + "#" * min(width, len(values)) \
                + f" {len(values)}"
        edges = np.linspace(lo, hi + 1, bins + 1)
        counts, _ = np.histogram(values, bins=edges)
        peak = counts.max()
        lines = []
        for i, count in enumerate(counts):
            bar = "#" * int(round(width * count / peak)) if count else ""
            lines.append(
                f"{int(edges[i]):>6d}..{int(edges[i + 1]) - 1:<6d} | "
                f"{bar} {count}")
        return "\n".join(lines)

    def as_dict(self) -> Dict:
        """JSON-friendly payload (the CLI ``--json`` output)."""
        return {
            "n_blocks": self.n_blocks,
            "block_unknowns": list(self.block_unknowns),
            "block_elements": list(self.block_elements),
            "boundary_nodes": self.boundary_nodes,
            "interface_elements": self.interface_elements,
            "interface_unknowns": self.interface_unknowns,
            "total_unknowns": self.total_unknowns,
        }


class Partition:
    """A circuit cut into blocks, interface elements and boundary nodes.

    Build one with :func:`partition_circuit`; pass it to
    :class:`PartitionedAssembler` (or ``transient(partition=...)``).
    The constructor validates that the block scopes tile the global
    unknown vector exactly: every unknown index belongs to exactly one
    block or to the interface.
    """

    def __init__(self, circuit: Circuit, blocks: List[PartitionBlock],
                 interface_elements: List[Element],
                 boundary_nodes: List[str]) -> None:
        self.circuit = circuit
        self.blocks = blocks
        self.interface_elements = interface_elements
        self.boundary_nodes = boundary_nodes
        n = circuit.dimension()
        self.n = n
        node_index = circuit.node_index
        self.boundary_index = np.array(
            sorted(node_index[name] for name in boundary_nodes),
            dtype=np.intp)
        aux: List[int] = []
        for el in interface_elements:
            aux.extend(range(el.aux_index, el.aux_index + el.n_aux))
        self.interface_aux = np.array(sorted(aux), dtype=np.intp)
        #: global indices of the interface solve: boundary nodes first,
        #: then the interface elements' auxiliary unknowns
        self.gamma = np.concatenate([self.boundary_index,
                                     self.interface_aux])
        covered = [self.gamma] + [blk.internal for blk in self.blocks]
        flat = np.concatenate(covered) if covered else np.empty(0, np.intp)
        if flat.size != n or not np.array_equal(np.sort(flat),
                                                np.arange(n)):
            raise AnalysisError(
                "partition does not tile the unknown vector: "
                f"{flat.size} scoped indices for dimension {n}")

    def report(self) -> PartitionReport:
        """Block/boundary statistics for diagnostics and the CLI."""
        return PartitionReport(
            n_blocks=len(self.blocks),
            block_unknowns=[blk.n_internal for blk in self.blocks],
            block_elements=[len(blk.elements) for blk in self.blocks],
            boundary_nodes=len(self.boundary_nodes),
            interface_elements=len(self.interface_elements),
            interface_unknowns=int(self.gamma.size),
            total_unknowns=self.n,
        )


def partition_circuit(circuit: Circuit, *,
                      max_block: int = DEFAULT_MAX_BLOCK,
                      cut_degree: Optional[int] = None,
                      cut_nets: Optional[set] = None) -> Partition:
    """Partition a flattened circuit into coupled blocks.

    Elements are grouped along subcircuit-instance boundaries (the
    dot-separated hierarchical names), recursively splitting groups
    larger than ``max_block`` elements by the next path segment; flat
    netlists fall back to connectivity clustering with high-degree
    nets (supply rails) excluded as cut nets.  Nodes touched by more
    than one group become boundary nodes; elements whose every
    non-ground node is a boundary node (independent sources, shared
    load capacitors) move to the interface.

    Parameters
    ----------
    circuit : Circuit
        The circuit to partition (hierarchy must already be flattened,
        which :meth:`Circuit.add`-built and parsed circuits are).
    max_block : int
        Maximum elements per block before a group is split further.
    cut_degree : int, optional
        Connectivity-fallback knob: nets touching more than this many
        elements are never used to cluster (default: automatic from
        the average net degree).
    cut_nets : set of str, optional
        Explicit net names to exclude from clustering (supply rails
        the degree heuristic cannot see on small circuits).

    Returns
    -------
    Partition
        The validated block structure.
    """
    if max_block < 1:
        raise ParameterError(f"max_block must be >= 1, got {max_block!r}")
    circuit.dimension()  # assign node/aux indices
    elements = list(circuit.elements)
    groups = _hier_groups(elements, max_block)
    if groups is None or len(groups) < 2:
        groups = _connectivity_groups(elements, max_block, cut_degree,
                                      cut_nets)

    # nodes touched by >= 2 groups are boundary
    node_groups: Dict[str, set] = {}
    for key in sorted(groups):
        for el in groups[key]:
            for node in _non_ground_nodes(el):
                node_groups.setdefault(node, set()).add(key)

    # Absorb single-block-affine elements: an element every one of
    # whose non-ground nodes is also touched by exactly one *other*
    # group moves into that group.  Without this, top-level stimulus
    # sources and load capacitors form a degenerate group that turns
    # every circuit input and output into a boundary node — on rca32
    # that inflates the interface from ~35 unknowns (carry chain +
    # supply) to ~200 (every source aux and terminal).
    moves: List[Tuple[Element, Tuple[str, ...], Tuple[str, ...]]] = []
    for key in sorted(groups):
        for el in groups[key]:
            nodes = _non_ground_nodes(el)
            if not nodes:
                continue
            others = set()
            for node in nodes:
                others |= node_groups[node]
            others.discard(key)
            if len(others) != 1:
                continue
            target = next(iter(others))
            if all(target in node_groups[node] for node in nodes):
                moves.append((el, key, target))
    if moves:
        for el, src, dst in moves:
            groups[src].remove(el)
            groups[dst].append(el)
        groups = {key: els for key, els in groups.items() if els}
        node_groups = {}
        for key in sorted(groups):
            for el in groups[key]:
                for node in _non_ground_nodes(el):
                    node_groups.setdefault(node, set()).add(key)

    boundary = {node for node, keys in node_groups.items()
                if len(keys) > 1}

    node_index = circuit.node_index
    blocks: List[PartitionBlock] = []
    interface: List[Element] = []
    for key in sorted(groups):
        members = groups[key]
        kept: List[Element] = []
        for el in members:
            nodes = _non_ground_nodes(el)
            if not nodes or all(node in boundary for node in nodes):
                # couples only boundary nodes (or only ground): pure
                # interface element; its aux unknowns follow it
                interface.append(el)
            else:
                kept.append(el)
        if not kept:
            continue
        internal_nodes = sorted(
            node_index[node]
            for node in {n for el in kept for n in _non_ground_nodes(el)}
            if node not in boundary)
        aux: List[int] = []
        for el in kept:
            aux.extend(range(el.aux_index, el.aux_index + el.n_aux))
        block = PartitionBlock(
            name=HIER_SEP.join(s for s in key if s) or "top",
            elements=kept,
            internal=np.array(sorted(internal_nodes + aux), dtype=np.intp),
            boundary=np.array(
                sorted(node_index[node]
                       for node in {n for el in kept
                                    for n in _non_ground_nodes(el)}
                       if node in boundary),
                dtype=np.intp),
            time_varying=any(_is_time_varying(el) for el in kept),
        )
        if block.n_internal == 0:
            # nothing private to solve for: fold into the interface
            interface.extend(kept)
            continue
        blocks.append(block)

    # an interface element may touch a node no remaining block touches
    # (a folded-away block's private node): promote it to boundary so
    # the interface solve owns it.
    boundary_names = set(boundary)
    block_nodes = {name for blk in blocks for el in blk.elements
                   for name in _non_ground_nodes(el)}
    for el in interface:
        for node in _non_ground_nodes(el):
            if node not in block_nodes:
                boundary_names.add(node)
    return Partition(circuit, blocks, interface, sorted(boundary_names))


# ---------------------------------------------------------------------------
# per-block assembly plumbing


class _ScatterMaps:
    """Destination maps from one TripletStampContext's flat positions
    into a block's bordered dense/sparse storage (self-healing: rebuilt
    whenever the recorded positions change, exactly like the sparse
    assembler's pattern)."""

    __slots__ = ("flat", "a_sel", "a_map", "efc_sel", "efc_map")

    def __init__(self) -> None:
        self.flat: Optional[np.ndarray] = None
        self.a_sel: Optional[np.ndarray] = None
        self.a_map: Optional[np.ndarray] = None
        self.efc_sel: Optional[np.ndarray] = None
        self.efc_map: Optional[np.ndarray] = None

    def stale(self, flat: np.ndarray) -> bool:
        return (self.flat is None or self.flat.size != flat.size
                or not np.array_equal(self.flat, flat))


class _BlockState:
    """Runtime assembly/bypass state of one :class:`PartitionBlock`."""

    def __init__(self, block: PartitionBlock, n: int,
                 node_index) -> None:
        self.block = block
        self.n = n
        self.ni = block.n_internal
        self.nb = block.n_boundary
        m = self.ni + self.nb
        self.m = m
        # local index of each global index (internal first, boundary after)
        loc = np.full(n, -1, dtype=np.intp)
        loc[block.internal] = np.arange(self.ni)
        loc[block.boundary] = self.ni + np.arange(self.nb)
        self.loc = loc
        self.scope = np.concatenate([block.internal, block.boundary])
        self.static_els = [el for el in block.elements if not el.nonlinear]
        dynamic = [el for el in block.elements if el.nonlinear]
        #: fast-backend CNFETs this block contributes to the
        #: assembler's *shared* slab (one stacked evaluation per Newton
        #: iteration across every active block — per-block slabs paid
        #: the kernel call's fixed cost once per block per iteration)
        self.slab_els = [el for el in dynamic
                         if isinstance(el, CNFETElement)
                         and isinstance(el.backend.device, CNFET)]
        slab_ids = {id(el) for el in self.slab_els}
        self.dynamic_els = [el for el in dynamic
                            if id(el) not in slab_ids]
        #: device positions / scatter columns in the shared slab
        #: (set by the assembler; empty when the pool is too small)
        self.slab_idx = np.empty(0, dtype=np.intp)
        self.slab_midx: Optional[np.ndarray] = None
        self.slab_ridx: Optional[np.ndarray] = None
        self.static_ctx = TripletStampContext(n, node_index)
        self.dyn_ctx = TripletStampContext(n, node_index)
        self.smaps = _ScatterMaps()
        self.dmaps = _ScatterMaps()
        # bordered storage: A (ni x ni), EFC = [[., E], [F, C]] (m x m)
        # with the A quadrant unused (kept zero)
        self.efc_static = np.zeros((m, m))
        self.a_static = np.zeros((self.ni, self.ni))
        self.static_dirty = True
        # sparse A path (large blocks only)
        self.use_sparse = HAVE_SCIPY and self.ni >= SPARSE_BLOCK_MIN_DIM
        self.sparse_backend = SparseBackend() if self.use_sparse else None
        self.a_pattern: Optional[np.ndarray] = None
        self.a_indices: Optional[np.ndarray] = None
        self.a_indptr: Optional[np.ndarray] = None
        self.a_static_data: Optional[np.ndarray] = None
        self.lu_data: Optional[np.ndarray] = None
        self.lu = None
        # value-identical system reuse: a chord-frozen block restamps
        # bitwise-identical triplet values every iteration, so the
        # assembled quadrants, the factorisation, and the Schur pieces
        # built from them (X, s_add) can all be carried over; only the
        # right-hand side moves.  ``sys_serial`` ties a frozen dict to
        # the matrix it was computed from.
        self._sys_sval: Optional[np.ndarray] = None
        self._sys_dval: Optional[np.ndarray] = None
        self._efc_sum: Optional[np.ndarray] = None
        self._a_fac = None
        self._a_dense: Optional[np.ndarray] = None
        self.sys_serial = 0
        # bypass bookkeeping
        self.bypassed = False
        self.frozen: Optional[dict] = None
        self.frozen_version = 0
        self.static_step = -1  # step id of the last static stamp
        self.wave_els = [el for el in block.elements
                         if _is_time_varying(el)]
        self.gpos: Optional[np.ndarray] = None  # set by the assembler
        self.seg: Optional[slice] = None        # slice into scope_all
        self.iseg: Optional[slice] = None       # slice into internal_all
        self.dseg: Optional[slice] = None       # slice into bsub data

    # -- pattern / scatter --------------------------------------------------

    def _rebuild(self, maps: _ScatterMaps, flat: np.ndarray) -> None:
        n, ni, m = self.n, self.ni, self.m
        rows = self.loc[flat // n]
        cols = self.loc[flat % n]
        if flat.size and (rows.min() < 0 or cols.min() < 0):
            raise AnalysisError(
                f"block {self.block.name!r} stamped outside its scope; "
                "partition is inconsistent with the netlist")
        in_a = (rows < ni) & (cols < ni)
        maps.flat = flat.copy()
        maps.a_sel = np.flatnonzero(in_a)
        maps.efc_sel = np.flatnonzero(~in_a)
        maps.efc_map = (rows[maps.efc_sel] * m + cols[maps.efc_sel])
        maps.a_map = rows[maps.a_sel] * ni + cols[maps.a_sel]
        self.static_dirty = True
        self.a_pattern = None  # sparse CSC pattern rebuilt lazily
        self.lu_data = None
        self.lu = None
        self._sys_sval = None
        self._sys_dval = None
        self._efc_sum = None
        self._a_fac = None
        self._a_dense = None

    def _rebuild_sparse_pattern(self) -> None:
        """CSC pattern of the A quadrant from both phases' maps."""
        ni = self.ni
        union = np.unique(np.concatenate([
            self.smaps.a_map if self.smaps.a_map is not None
            else np.empty(0, np.intp),
            self.dmaps.a_map if self.dmaps.a_map is not None
            else np.empty(0, np.intp)]))
        rows = union // ni
        cols = union % ni
        perm = np.argsort(cols, kind="stable")
        self.a_indices = rows[perm].astype(np.intp)
        indptr = np.zeros(ni + 1, dtype=np.intp)
        np.cumsum(np.bincount(cols, minlength=ni), out=indptr[1:])
        self.a_indptr = indptr
        csc_pos = np.empty(union.size, dtype=np.intp)
        csc_pos[perm] = np.arange(union.size)
        self.a_pattern = union
        self._a_static_csc = csc_pos[np.searchsorted(union,
                                                     self.smaps.a_map)]
        self._a_dyn_csc = csc_pos[np.searchsorted(union, self.dmaps.a_map)]

    def system(self) -> Tuple:
        """Bordered block system from the recorded triplets.

        Returns ``(solve_stacked, E, F, C, r_int, r_bd, unchanged)``
        where ``solve_stacked(B)`` solves ``A_bb X = B`` for a stacked
        right-hand side ``B`` of shape ``(ni, k)``.  ``unchanged`` is
        ``True`` when every recorded triplet value is bit-identical to
        the previous call (a chord-frozen block restamps the same
        linearisation): the matrix quadrants and the factorisation are
        carried over, and the caller may reuse any Schur pieces tagged
        with the current :attr:`sys_serial`.
        """
        s_flat, s_val = self.static_ctx.triplets()
        d_flat, d_val = self.dyn_ctx.triplets()
        if self.smaps.stale(s_flat):
            self._rebuild(self.smaps, s_flat)
        if self.dmaps.stale(d_flat):
            self._rebuild(self.dmaps, d_flat)
        ni, m = self.ni, self.m
        s_same = self._sys_sval is not None \
            and np.array_equal(s_val, self._sys_sval)
        d_same = self._sys_dval is not None \
            and np.array_equal(d_val, self._sys_dval)
        unchanged = s_same and d_same
        if not unchanged:
            self.sys_serial += 1
        if not s_same:
            self._sys_sval = s_val.copy()
        if not d_same:
            self._sys_dval = d_val.copy()
        static_changed = self.static_dirty and not s_same
        self.static_dirty = False
        if static_changed:
            efc = self.efc_static
            efc[:] = 0.0
            np.add.at(efc.ravel(), self.smaps.efc_map,
                      s_val[self.smaps.efc_sel])
            if not self.use_sparse:
                a = self.a_static
                a[:] = 0.0
                np.add.at(a.ravel(), self.smaps.a_map,
                          s_val[self.smaps.a_sel])
        if unchanged and self._efc_sum is not None:
            efc = self._efc_sum
        else:
            efc = self.efc_static.copy()
            np.add.at(efc.ravel(), self.dmaps.efc_map,
                      d_val[self.dmaps.efc_sel])
            self._efc_sum = efc
        E = efc[:ni, ni:]
        F = efc[ni:, :ni]
        C = efc[ni:, ni:]
        rhs = self.static_ctx.rhs + self.dyn_ctx.rhs
        r_int = rhs[self.block.internal]
        r_bd = rhs[self.block.boundary]
        if self.use_sparse:
            if self.a_pattern is None:
                self._rebuild_sparse_pattern()
                static_changed = True
            nnz = self.a_pattern.size
            if static_changed or self.a_static_data is None:
                self.a_static_data = np.bincount(
                    self._a_static_csc, weights=s_val[self.smaps.a_sel],
                    minlength=nnz)
            data = self.a_static_data.copy()
            np.add.at(data, self._a_dyn_csc, d_val[self.dmaps.a_sel])

            def solve_stacked(b_stack: np.ndarray) -> np.ndarray:
                if self.lu is not None and self.lu_data is not None \
                        and np.array_equal(data, self.lu_data):
                    lu = self.lu
                else:
                    lu = self.sparse_backend.factorize_csc(
                        ni, data, self.a_indices, self.a_indptr)
                    if lu is None:  # pragma: no cover - no-scipy guard
                        raise np.linalg.LinAlgError(
                            "sparse block factorisation unavailable")
                    self.lu = lu
                    self.lu_data = data
                out = np.empty_like(b_stack)
                for col in range(b_stack.shape[1]):
                    out[:, col] = lu.solve(
                        np.ascontiguousarray(b_stack[:, col]))
                return out

            return solve_stacked, E, F, C, r_int, r_bd, unchanged
        have_fac = self._a_fac is not None or self._a_dense is not None
        if not (unchanged and have_fac):
            a = self.a_static.copy()
            np.add.at(a.ravel(), self.dmaps.a_map,
                      d_val[self.dmaps.a_sel])
            if _lu_factor is not None:
                fac = _lu_factor(a, check_finite=False)
                if not np.all(np.diagonal(fac[0])):
                    raise np.linalg.LinAlgError(
                        "singular block system")
                self._a_fac = fac
                self._a_dense = None
            else:
                self._a_dense = a
                self._a_fac = None
        fac = self._a_fac
        dense = self._a_dense

        def solve_stacked(b_stack: np.ndarray) -> np.ndarray:
            if fac is not None:
                return _lu_solve(fac, b_stack, check_finite=False)
            return np.linalg.solve(dense, b_stack)

        return solve_stacked, E, F, C, r_int, r_bd, unchanged


class PartitionedAssembler:
    """Partition-aware two-phase assembler with latency bypass.

    Drop-in replacement for
    :class:`~repro.circuit.mna.TwoPhaseAssembler` (same
    ``begin_step`` / ``iterate`` / ``solve`` contract, consumed
    unchanged by :func:`~repro.circuit.mna.newton_solve`): each block
    assembles its bordered system independently and the blocks are
    coupled through a Schur-complement solve over the boundary nodes
    and interface unknowns.  With ``coupling="relax"`` the interface
    runs block Gauss–Seidel sweeps instead and escalates to the direct
    Schur solve if they do not converge.

    With ``bypass_tol > 0`` (transient analysis only) a block whose
    scope — internal unknowns plus boundary terminals — moved less
    than the tolerance (inf-norm, volts) since its last assembly is
    *bypassed*: no device evaluation, no stamping, no factorisation;
    its frozen Schur contribution is added directly.  Bypassed blocks
    are re-checked against the live iterate every Newton iteration and
    promoted back to active the moment their terminals move; a forced
    refresh every ``max_bypass_steps`` steps bounds slow drift.  The
    approximation error is the chord-iteration error of
    ``NewtonOptions.jacobian_reuse_tol``, at block granularity.

    Parameters
    ----------
    circuit : Circuit
        The circuit to assemble (flattened).
    partition : Partition, optional
        A prebuilt partition; default builds
        ``partition_circuit(circuit)``.
    bypass_tol : float
        Latency-bypass tolerance in volts; ``0`` disables bypass.
    coupling : str
        ``"schur"`` (direct, exact) or ``"relax"`` (block
        Gauss–Seidel with Schur escalation).
    relax_tol : float
        Interface convergence tolerance of the relaxation sweeps.
    max_relax_sweeps : int
        Sweep budget before the relaxation escalates to Schur.
    max_bypass_steps : int
        Consecutive accepted steps a block may stay bypassed.
    cnfet_slab_min : int
        Stacked-CNFET threshold for the assembler's *shared* slab
        (pooled across blocks — one stacked evaluation per Newton
        iteration covers every active block's devices; mirrors the
        monolithic assembler's slab cutover).
    """

    def __init__(self, circuit: Circuit,
                 partition: Optional[Partition] = None, *,
                 bypass_tol: float = 0.0,
                 coupling: str = "schur",
                 relax_tol: float = 1e-9,
                 max_relax_sweeps: int = 40,
                 max_bypass_steps: int = DEFAULT_MAX_BYPASS_STEPS,
                 cnfet_slab_min: int = 16) -> None:
        if coupling not in ("schur", "relax"):
            raise ParameterError(
                f"coupling must be 'schur' or 'relax', got {coupling!r}")
        self.circuit = circuit
        self.partition = partition if partition is not None \
            else partition_circuit(circuit)
        if self.partition.circuit is not circuit:
            raise ParameterError(
                "partition was built for a different circuit")
        self.n = circuit.dimension()
        self.bypass_tol = float(bypass_tol)
        self.coupling = coupling
        self.relax_tol = float(relax_tol)
        self.max_relax_sweeps = int(max_relax_sweeps)
        self.max_bypass_steps = int(max_bypass_steps)
        node_index = circuit.node_index
        self._blocks = [
            _BlockState(blk, self.n, node_index)
            for blk in self.partition.blocks]
        # One shared CNFET slab across all blocks: per Newton iteration
        # the assembler runs a single stacked evaluation over the
        # *active* blocks' devices and scatters each block's columns
        # into its own triplet context (per-block slabs paid the
        # kernel's fixed call cost once per block per iteration).
        slab_pool = [el for st in self._blocks for el in st.slab_els]
        if len(slab_pool) >= cnfet_slab_min:
            self._slab: Optional[CNFETSlab] = CNFETSlab(
                slab_pool, self.n, node_index)
            pos = 0
            for st in self._blocks:
                k = len(st.slab_els)
                st.slab_idx = np.arange(pos, pos + k)
                pos += k
                st.slab_midx, st.slab_ridx = \
                    self._slab.scatter_indices(st.slab_idx)
        else:
            self._slab = None
            for st in self._blocks:
                st.dynamic_els = st.dynamic_els + st.slab_els
                st.slab_idx = np.empty(0, dtype=np.intp)
        gamma = self.partition.gamma
        self.gamma = gamma
        self.ng = int(gamma.size)
        gloc = np.full(self.n, -1, dtype=np.intp)
        gloc[gamma] = np.arange(self.ng)
        for st in self._blocks:
            st.gpos = gloc[st.block.boundary]
        # interface assembly (same two-phase split as a block, but
        # scattered into the dense gamma system)
        iface = self.partition.interface_elements
        self._if_static = [el for el in iface if not el.nonlinear]
        if_dynamic = [el for el in iface if el.nonlinear]
        slab_els = [el for el in if_dynamic
                    if isinstance(el, CNFETElement)
                    and isinstance(el.backend.device, CNFET)]
        if len(slab_els) >= cnfet_slab_min and slab_els:
            self._if_slab: Optional[CNFETSlab] = CNFETSlab(
                slab_els, self.n, node_index)
            slab_ids = {id(el) for el in slab_els}
            self._if_dynamic = [el for el in if_dynamic
                                if id(el) not in slab_ids]
        else:
            self._if_slab = None
            self._if_dynamic = if_dynamic
        self._if_static_ctx = TripletStampContext(self.n, node_index)
        self._if_dyn_ctx = TripletStampContext(self.n, node_index)
        self._gloc = gloc
        self._if_smap: Optional[np.ndarray] = None
        self._if_sflat: Optional[np.ndarray] = None
        self._if_dmap: Optional[np.ndarray] = None
        self._if_dflat: Optional[np.ndarray] = None
        self._if_static_dense: Optional[np.ndarray] = None
        self._if_static_dirty = True
        self._step: Optional[dict] = None
        self._x: Optional[np.ndarray] = None
        self._first_reuse_tol: Optional[float] = None
        self._qprev_pending: Optional[np.ndarray] = None
        self._frozen_sig: Optional[tuple] = None
        self._frozen_S: Optional[np.ndarray] = None
        self._frozen_r: Optional[np.ndarray] = None
        # Fully-bypassed solve cache: when every block is bypassed the
        # global system is determined by the frozen contributions plus
        # the interface triplets alone, so if those are bit-identical
        # to the previous fully-bypassed solve the returned iterate is
        # too — a quiescent step skips the interface assembly, the
        # Schur solve, and the back-substitution entirely.
        self._cache_sig: Optional[tuple] = None
        self._cache_sval: Optional[np.ndarray] = None
        self._cache_dval: Optional[np.ndarray] = None
        self._cache_r: Optional[np.ndarray] = None
        self._cache_x: Optional[np.ndarray] = None
        # Concatenated per-block scopes: drift checks for all blocks
        # collapse into one gather + one segmented max instead of a
        # Python loop of tiny numpy calls per block per iteration.
        blocks = self._blocks
        if blocks:
            scopes = [st.scope for st in blocks]
            self._scope_all = np.concatenate(scopes)
            lengths = [s.size for s in scopes]
            starts = np.zeros(len(blocks), dtype=np.intp)
            starts[1:] = np.cumsum(lengths[:-1])
            self._seg_starts = starts
            pos = 0
            for st, ln in zip(blocks, lengths):
                st.seg = slice(pos, pos + ln)
                pos += ln
        else:
            self._scope_all = np.empty(0, dtype=np.intp)
            self._seg_starts = np.empty(0, dtype=np.intp)
        self._frozen_x_all = np.zeros(self._scope_all.size)
        self._frozen_xp_all = np.zeros(self._scope_all.size)
        # Fixed-pattern back-substitution operator: the per-block
        # ``x_b = y - X @ x_gamma`` matvecs stack into one CSR product
        # over every internal unknown (pattern = internal x gpos per
        # block, fixed for the life of the partition; only the data
        # changes, and only when a block is actively re-solved).
        self._internal_all = np.concatenate(
            [st.block.internal for st in blocks]) if blocks \
            else np.empty(0, dtype=np.intp)
        self._y_all = np.zeros(self._internal_all.size)
        self._bsub = None
        if HAVE_SCIPY and blocks:
            import scipy.sparse as _sp

            pos = ipos = 0
            indices_parts = []
            counts_parts = []
            for st in blocks:
                st.iseg = slice(ipos, ipos + st.ni)
                ipos += st.ni
                st.dseg = slice(pos, pos + st.ni * st.nb)
                pos += st.ni * st.nb
                if st.nb:
                    indices_parts.append(np.tile(st.gpos, st.ni))
                counts_parts.append(np.full(st.ni, st.nb, dtype=np.intp))
            indices = np.concatenate(indices_parts) if indices_parts \
                else np.empty(0, dtype=np.intp)
            counts = np.concatenate(counts_parts)
            indptr = np.zeros(self._internal_all.size + 1, dtype=np.intp)
            indptr[1:] = np.cumsum(counts)
            self._bsub = _sp.csr_matrix(
                (np.zeros(indices.size), indices, indptr),
                shape=(self._internal_all.size, max(self.ng, 1)))
        else:
            ipos = 0
            for st in blocks:
                st.iseg = slice(ipos, ipos + st.ni)
                ipos += st.ni
        #: counters read by the transient loop / benchmarks
        self.stats: Dict[str, int] = {
            "steps": 0,
            "block_steps_active": 0,
            "block_steps_bypassed": 0,
            "bypass_promotions": 0,
            "relax_sweeps": 0,
            "relax_escalations": 0,
            "intra_step_refreezes": 0,
            "interface_solve_reuses": 0,
        }

    # -- assembler contract --------------------------------------------------

    def begin_step(self, *, analysis: str = "dc",
                   time: Optional[float] = None,
                   dt: Optional[float] = None,
                   x_prev: Optional[np.ndarray] = None,
                   method: str = "be", gmin: float = 1e-12,
                   source_scale: float = 1.0) -> None:
        """Stamp the static phase of the interface and of every block
        that cannot be bypassed this step."""
        step = dict(analysis=analysis, time=time, dt=dt, x_prev=x_prev,
                    method=method, gmin=gmin, source_scale=source_scale)
        self._step = step
        self._first_reuse_tol = None
        self.stats["steps"] += 1
        self._stamp_static(self._if_static_ctx, self._if_static,
                           self._if_slab, step)
        self._if_static_dirty = True
        key = (analysis, method, gmin, source_scale)
        tol = self.bypass_tol
        candidates = (tol > 0.0 and analysis == "tran"
                      and x_prev is not None and self._blocks)
        if candidates:
            # one gather + one segmented max for every block's drift
            seg_max = np.maximum.reduceat(
                np.abs(x_prev[self._scope_all] - self._frozen_xp_all),
                self._seg_starts)
        for i, st in enumerate(self._blocks):
            st.bypassed = False
            frozen = st.frozen
            if (candidates and frozen is not None
                    and frozen["key"] == key
                    and _dt_matches(frozen["dt"], dt)
                    and frozen["age"] < self.max_bypass_steps
                    and frozen["x_prev_valid"]
                    and seg_max[i] <= tol
                    and frozen["src_vals"] == tuple(
                        el.waveform.value(time) for el in st.wave_els)):
                # A time-varying block stays bypassable while its
                # sources sit on a waveform plateau (values identical
                # to the frozen step); any ramp breaks the equality.
                st.bypassed = True
                frozen["age"] += 1
                self.stats["block_steps_bypassed"] += 1
                continue
            self._stamp_static(st.static_ctx, st.static_els, None, step)
            st.static_dirty = True
            st.static_step = self.stats["steps"]
            self.stats["block_steps_active"] += 1
        self._qprev_pending = None
        if (self._slab is not None and analysis == "tran"
                and dt is not None and x_prev is not None):
            # per-step q_prev refresh for the active blocks' devices
            # (the scoped twin of CNFETSlab.begin_step) — deferred to
            # the first Newton iteration, whose iterate is x_prev
            # itself: the companion evaluation there computes the very
            # charges q_prev needs, saving a kernel call per step
            active = [st.slab_idx for st in self._blocks
                      if not st.bypassed and st.slab_idx.size]
            if active:
                self._qprev_pending = active[0] if len(active) == 1 \
                    else np.concatenate(active)

    def _stamp_static(self, ctx: TripletStampContext, elements, slab,
                      step: dict) -> None:
        ctx.clear()
        ctx.analysis = step["analysis"]
        ctx.time = step["time"]
        ctx.dt = step["dt"]
        ctx.x_prev = step["x_prev"]
        ctx.method = step["method"]
        ctx.gmin = step["gmin"]
        ctx.source_scale = step["source_scale"]
        for el in elements:
            el.stamp(ctx)
        if slab is not None:
            slab.begin_step(ctx)

    def _stamp_dynamic(self, ctx: TripletStampContext, elements, slab,
                       x: np.ndarray, reuse_tol: float) -> None:
        step = self._step
        ctx.clear()
        ctx.x = x
        ctx.analysis = step["analysis"]
        ctx.time = step["time"]
        ctx.dt = step["dt"]
        ctx.x_prev = step["x_prev"]
        ctx.method = step["method"]
        ctx.gmin = step["gmin"]
        ctx.source_scale = step["source_scale"]
        ctx.reuse_tol = reuse_tol
        for el in elements:
            el.stamp(ctx)
        if slab is not None:
            slab.stamp(ctx)

    def iterate(self, x: np.ndarray, reuse_tol: float = 0.0) -> None:
        """Stamp the dynamic phase around iterate ``x``; bypassed
        blocks are re-validated against the live iterate (and promoted
        to active when their scope moved or the Newton loop entered
        its stall fallback), and an active block that has stopped
        moving *within* the step is re-frozen mid-step: its Schur
        contribution from the last ``solve`` is reused for the
        remaining iterations (edge steps drag most blocks along for
        only their first iteration)."""
        if self._step is None:
            raise AnalysisError("begin_step must be called before iterate")
        if self._first_reuse_tol is None:
            self._first_reuse_tol = reuse_tol
        # a reuse_tol tightened mid-step is newton_solve's stall
        # fallback: drop every bypass for this step as well
        stalled = reuse_tol < self._first_reuse_tol
        tol = self.bypass_tol
        step_id = self.stats["steps"]
        seg_max = None
        if self._blocks and tol > 0.0 \
                and self._step["analysis"] == "tran":
            seg_max = np.maximum.reduceat(
                np.abs(x[self._scope_all] - self._frozen_x_all),
                self._seg_starts)
        for i, st in enumerate(self._blocks):
            if st.bypassed:
                if seg_max[i] <= tol and not stalled:
                    continue
                st.bypassed = False
                if st.static_step != step_id:
                    # bypassed since begin_step: stamp the static
                    # phase it skipped and move it to the active
                    # column (an intra-step re-frozen block keeps its
                    # fresh static phase and was already counted)
                    self._stamp_static(st.static_ctx, st.static_els,
                                       None, self._step)
                    st.static_dirty = True
                    st.static_step = step_id
                    self.stats["bypass_promotions"] += 1
                    self.stats["block_steps_bypassed"] -= 1
                    self.stats["block_steps_active"] += 1
                    step = self._step
                    if (self._slab is not None and st.slab_idx.size
                            and step["analysis"] == "tran"
                            and step["dt"] is not None
                            and step["x_prev"] is not None):
                        self._slab.refresh_charges(step["x_prev"],
                                                   st.slab_idx)
            elif (seg_max is not None and not stalled
                    and st.frozen is not None
                    and st.frozen["step"] == step_id
                    and seg_max[i] <= tol):
                # the last solve froze this block's contribution at a
                # linearisation point the iterate has not left: reuse
                # it instead of re-stamping and re-factorising
                st.bypassed = True
                self.stats["intra_step_refreezes"] += 1
                continue
            self._stamp_dynamic(st.dyn_ctx, st.dynamic_els, None,
                                x, reuse_tol)
        if self._slab is not None:
            # one stacked companion evaluation for every active
            # block's devices, scattered per block
            parts = [st for st in self._blocks
                     if not st.bypassed and st.slab_idx.size]
            if parts:
                step = self._step
                tran = step["analysis"] == "tran" \
                    and step["dt"] is not None
                idx = parts[0].slab_idx if len(parts) == 1 else \
                    np.concatenate([st.slab_idx for st in parts])
                seed = False
                pending = self._qprev_pending
                if pending is not None:
                    self._qprev_pending = None
                    if np.array_equal(idx, pending) \
                            and np.array_equal(x, step["x_prev"]):
                        seed = True  # charges at x double as q_prev
                    else:  # pragma: no cover - first iterate moved
                        self._slab.refresh_charges(step["x_prev"],
                                                   pending)
                values, rhs_values = self._slab.companion_subset(
                    x, idx, gmin=step["gmin"], tran=tran,
                    dt=step["dt"], reuse_tol=reuse_tol,
                    seed_qprev=seed)
                nv, nr = values.shape[0], rhs_values.shape[0]
                pos = 0
                for st in parts:
                    k = st.slab_idx.size
                    st.dyn_ctx.add_flat(
                        st.slab_midx[:nv].ravel(),
                        values[:, pos:pos + k].ravel(),
                        st.slab_ridx[:nr].ravel(),
                        rhs_values[:, pos:pos + k].ravel())
                    pos += k
        self._stamp_dynamic(self._if_dyn_ctx, self._if_dynamic,
                            self._if_slab, x, reuse_tol)
        self._x = x

    # -- interface system -----------------------------------------------------

    def _if_maps(self, flat: np.ndarray) -> np.ndarray:
        rows = self._gloc[flat // self.n]
        cols = self._gloc[flat % self.n]
        if flat.size and (rows.min() < 0 or cols.min() < 0):
            raise AnalysisError(
                "interface element stamped outside the boundary scope; "
                "partition is inconsistent with the netlist")
        return rows * self.ng + cols

    def _interface_system(self) -> Tuple[np.ndarray, np.ndarray]:
        s_flat, s_val = self._if_static_ctx.triplets()
        d_flat, d_val = self._if_dyn_ctx.triplets()
        ng = self.ng
        if self._if_sflat is None or self._if_sflat.size != s_flat.size \
                or not np.array_equal(self._if_sflat, s_flat):
            self._if_smap = self._if_maps(s_flat)
            self._if_sflat = s_flat.copy()
            self._if_static_dirty = True
        if self._if_dflat is None or self._if_dflat.size != d_flat.size \
                or not np.array_equal(self._if_dflat, d_flat):
            self._if_dmap = self._if_maps(d_flat)
            self._if_dflat = d_flat.copy()
        if self._if_static_dirty or self._if_static_dense is None:
            dense = np.zeros((ng, ng))
            np.add.at(dense.ravel(), self._if_smap, s_val)
            self._if_static_dense = dense
            self._if_static_dirty = False
        S = self._if_static_dense.copy()
        np.add.at(S.ravel(), self._if_dmap, d_val)
        rhs = self._if_static_ctx.rhs + self._if_dyn_ctx.rhs
        return S, rhs[self.gamma]

    # -- solve ----------------------------------------------------------------

    def solve(self) -> np.ndarray:
        """Couple the block solves through the interface and return the
        next global iterate (raises
        :class:`numpy.linalg.LinAlgError` on a singular block or
        interface system, which :func:`newton_solve` converts to an
        :class:`~repro.errors.AnalysisError`)."""
        if self._x is None:
            raise AnalysisError("iterate must be called before solve")
        blocks = self._blocks
        all_byp = (bool(blocks) and self.ng > 0
                   and self.coupling == "schur"
                   and all(st.bypassed for st in blocks))
        sig = None
        if all_byp:
            _, s_val = self._if_static_ctx.triplets()
            _, d_val = self._if_dyn_ctx.triplets()
            r_g = (self._if_static_ctx.rhs
                   + self._if_dyn_ctx.rhs)[self.gamma]
            sig = tuple(st.frozen_version for st in blocks)
            if (self._cache_x is not None and sig == self._cache_sig
                    and np.array_equal(s_val, self._cache_sval)
                    and np.array_equal(d_val, self._cache_dval)
                    and np.array_equal(r_g, self._cache_r)):
                self.stats["interface_solve_reuses"] += 1
                return self._cache_x.copy()
        S_base, r_base = self._interface_system()
        contributions = []
        for st in self._blocks:
            if st.bypassed:
                contributions.append((st, st.frozen))
                continue
            solve_stacked, E, F, C, r_int, r_bd, reusable = st.system()
            fz0 = st.frozen
            if (reusable and fz0 is not None
                    and fz0["sys_serial"] == st.sys_serial):
                # matrix identical to the one the last frozen state was
                # built from: only the rhs moved, so the coupling
                # columns X and the Schur term survive — one single-rhs
                # back-solve replaces the stacked solve and the GEMM
                y = solve_stacked(r_int.reshape(-1, 1))[:, 0]
                X = fz0["X"]
                s_add = fz0["s_add"]
            else:
                stack = np.empty((st.ni, 1 + st.nb))
                stack[:, 0] = r_int
                stack[:, 1:] = E
                sol = solve_stacked(stack)
                y = sol[:, 0]
                X = sol[:, 1:]
                s_add = C - F @ X
            x_prev = self._step["x_prev"]
            frozen = {
                "key": (self._step["analysis"], self._step["method"],
                        self._step["gmin"],
                        self._step["source_scale"]),
                "dt": self._step["dt"],
                "x_prev_valid": x_prev is not None,
                "src_vals": tuple(el.waveform.value(self._step["time"])
                                  for el in st.wave_els)
                if self._step["time"] is not None else (),
                "y": y, "X": X, "C": C, "F": F,
                "s_add": s_add,
                "r_contrib": r_bd - F @ y,
                "r_bd": r_bd,
                "age": 0,
                "step": self.stats["steps"],
                "sys_serial": st.sys_serial,
            }
            self._frozen_x_all[st.seg] = self._x[st.scope]
            if x_prev is not None:
                self._frozen_xp_all[st.seg] = x_prev[st.scope]
            st.frozen = frozen
            st.frozen_version += 1
            self._y_all[st.iseg] = y
            if self._bsub is not None and st.nb:
                self._bsub.data[st.dseg] = X.ravel()
            contributions.append((st, frozen))
        x_new = np.empty(self.n)
        if self.ng == 0:
            for st, fz in contributions:
                x_new[st.block.internal] = fz["y"]
            return x_new
        x_g = self._solve_interface(S_base, r_base, contributions)
        x_new[self.gamma] = x_g
        if self._bsub is not None:
            x_new[self._internal_all] = self._y_all - self._bsub @ x_g
        else:
            for st, fz in contributions:
                if st.nb:
                    x_new[st.block.internal] = \
                        fz["y"] - fz["X"] @ x_g[st.gpos]
                else:
                    x_new[st.block.internal] = fz["y"]
        if all_byp:
            # triplets() returns views into reused stamp buffers;
            # cache copies so the next iteration can compare against
            # them after the contexts are cleared and restamped
            self._cache_sig = sig
            self._cache_sval = s_val.copy()
            self._cache_dval = d_val.copy()
            self._cache_r = r_g
            self._cache_x = x_new.copy()
        return x_new

    def _frozen_sums(self) -> Tuple[np.ndarray, np.ndarray]:
        """Summed Schur contributions of the bypassed blocks, cached
        across iterations and steps (a quiescent circuit re-scatters
        nothing): invalidated only when the bypassed set or one of its
        frozen factorizations changes."""
        sig = tuple((i, st.frozen_version)
                    for i, st in enumerate(self._blocks) if st.bypassed)
        if sig != self._frozen_sig:
            S = np.zeros((self.ng, self.ng))
            r = np.zeros(self.ng)
            for st in self._blocks:
                if st.bypassed and st.nb:
                    fz = st.frozen
                    S[np.ix_(st.gpos, st.gpos)] += fz["s_add"]
                    r[st.gpos] += fz["r_contrib"]
            self._frozen_sig = sig
            self._frozen_S = S
            self._frozen_r = r
        return self._frozen_S, self._frozen_r

    def _solve_interface(self, S_base: np.ndarray, r_base: np.ndarray,
                         contributions) -> np.ndarray:
        if self.coupling == "relax":
            x_g = self._relax(S_base, r_base, contributions)
            if x_g is not None:
                return x_g
            self.stats["relax_escalations"] += 1
        S_fz, r_fz = self._frozen_sums()
        S = S_base + S_fz
        r = r_base + r_fz
        for st, fz in contributions:
            if st.nb and not st.bypassed:
                S[np.ix_(st.gpos, st.gpos)] += fz["s_add"]
                r[st.gpos] += fz["r_contrib"]
        return np.linalg.solve(S, r)

    def _relax(self, S_base: np.ndarray, r_base: np.ndarray,
               contributions) -> Optional[np.ndarray]:
        """Block Gauss–Seidel sweeps over the interface; ``None`` on
        non-convergence (the caller escalates to the Schur solve)."""
        D = S_base.copy()
        for st, fz in contributions:
            if st.nb:
                D[np.ix_(st.gpos, st.gpos)] += fz["C"]
        x_g = self._x[self.gamma].copy()
        for _ in range(self.max_relax_sweeps):
            self.stats["relax_sweeps"] += 1
            r = r_base.copy()
            for st, fz in contributions:
                if not st.nb:
                    continue
                x_b = fz["y"] - fz["X"] @ x_g[st.gpos]
                r[st.gpos] += fz["r_bd"] - fz["F"] @ x_b
            x_next = np.linalg.solve(D, r)
            delta = float(np.max(np.abs(x_next - x_g))) if self.ng else 0.0
            x_g = x_next
            if delta <= self.relax_tol * (1.0 + float(
                    np.max(np.abs(x_g)))):
                return x_g
        return None
