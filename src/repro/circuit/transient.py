"""Transient analysis: adaptive LTE-controlled BE/trapezoidal engine.

Two stepping modes share one Newton back end (the two-phase assembler,
so static stamps are refreshed once per step attempt, never per
iteration):

* **fixed-step** (``dt`` given) — the legacy engine: march at ``dt``,
  halve locally (up to ``max_halvings`` times) when a step's Newton
  iteration fails to converge, then re-double.  Byte-for-byte the
  historical behaviour for circuits without source breakpoints.
* **adaptive** (``dt`` omitted or ``adaptive=True``) — variable-step
  integration with per-step local-truncation-error (LTE) control: a
  polynomial predictor extrapolates the solution history, the implicit
  corrector (BE or trapezoidal) solves the step, and the scaled
  predictor–corrector difference estimates the LTE.  A PI controller
  picks the next step; steps whose error exceeds ``rtol``/``atol`` are
  rejected and retried smaller, and Newton failures feed the same
  rejection path (shrink by 4x).  ``dt_min``/``dt_max`` bound the step.

Both modes are **event-aware**: waveform breakpoints (PULSE edges, PWL
corners — see :meth:`Waveform.breakpoints`) are landed on exactly, so a
source edge falling between two natural steps is never smeared.

See ``docs/transient.md`` for the integrator theory, the controller
constants, and tuning guidance.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cancel import CancelToken
from repro.circuit.elements.base import Element, StampContext
from repro.circuit.elements.cnfet import CNFETElement
from repro.circuit.elements.sources import VoltageSource
from repro.circuit.mna import (
    NewtonOptions,
    TwoPhaseAssembler,
    newton_solve,
    robust_dc_solve,
)
from repro.circuit.netlist import Circuit
from repro.circuit.partition import (
    Partition,
    PartitionedAssembler,
    partition_circuit,
)
from repro.circuit.solvers import BackendLike
from repro.circuit.results import Dataset
from repro.circuit.store import WaveformStore
from repro.errors import AnalysisError, ParameterError

__all__ = ["transient", "initial_conditions_from_op",
           "DEFAULT_RTOL", "DEFAULT_ATOL", "DEFAULT_BYPASS_TOL"]

#: Default relative LTE tolerance of the adaptive controller.
DEFAULT_RTOL = 1e-3
#: Default absolute LTE tolerance [V].
DEFAULT_ATOL = 1e-6
#: Default latency-bypass tolerance [V] for partitioned transients —
#: a block whose scope moved less than this since its last solve is
#: carried frozen (see ``docs/partitioning.md``).
DEFAULT_BYPASS_TOL = 1e-6

#: PI controller safety factor and per-step growth/shrink clamps.
_SAFETY = 0.9
_FAC_MIN = 0.2
_FAC_MAX = 5.0
#: Growth cap when no LTE estimate exists (first step, post-breakpoint).
_FAC_BLIND = 2.0
#: Step shrink on a Newton convergence failure.
_NEWTON_SHRINK = 0.25
#: Step shrink when landing on a breakpoint (integration restarts).
_BREAKPOINT_SHRINK = 0.1
#: Hard cap on accepted steps (keeps a runaway dt_min from hanging).
_MAX_ACCEPTED_STEPS = 2_000_000


def _collect_breakpoints(circuit: Circuit, tstop: float) -> List[float]:
    """Sorted, deduplicated source-waveform corner times in (0, tstop)."""
    times = set()
    for el in circuit.elements:
        waveform = getattr(el, "waveform", None)
        if waveform is not None:
            times.update(waveform.breakpoints(0.0, tstop))
    return sorted(times)


def _quadratic_extrapolate(ts: Sequence[float], xs: Sequence[np.ndarray],
                           t: float) -> np.ndarray:
    """Lagrange extrapolation of three history points at time ``t``."""
    t0, t1, t2 = ts
    l0 = (t - t1) * (t - t2) / ((t0 - t1) * (t0 - t2))
    l1 = (t - t0) * (t - t2) / ((t1 - t0) * (t1 - t2))
    l2 = (t - t0) * (t - t1) / ((t2 - t0) * (t2 - t1))
    return l0 * xs[0] + l1 * xs[1] + l2 * xs[2]


def _predict(hist_t: List[float], hist_x: List[np.ndarray], t_next: float,
             method: str) -> Tuple[Optional[np.ndarray], float]:
    """Predictor and LTE divisor for the step ending at ``t_next``.

    Returns ``(x_pred, divisor)`` where the method's local truncation
    error is estimated as ``|x_corrector - x_pred| / divisor``; the
    divisors come from the uniform-step error constants (trapezoidal
    LTE ``-h^3 x'''/12`` vs quadratic-extrapolation error ``h^3 x'''``;
    BE LTE ``h^2 x''/2`` vs linear-extrapolation error ``h^2 x''``).
    ``(None, 1.0)`` when there is not enough smooth history.
    """
    if method == "trap" and len(hist_t) >= 3:
        pred = _quadratic_extrapolate(hist_t[-3:], hist_x[-3:], t_next)
        return pred, 11.0
    if len(hist_t) >= 2:
        t0, t1 = hist_t[-2], hist_t[-1]
        x0, x1 = hist_x[-2], hist_x[-1]
        pred = x1 + (x1 - x0) * ((t_next - t1) / (t1 - t0))
        # Linear predictor under a 2nd-order corrector overestimates
        # the LTE (conservative); only used while history warms up.
        return pred, 3.0 if method == "be" else 2.0
    return None, 1.0


def _stateful_elements(circuit: Circuit) -> List:
    """Elements whose ``accept_step`` actually commits state.

    Most elements inherit the base no-op; a 32-bit adder is ~1200
    elements of which ~30 (the trap capacitors / inductors) keep
    per-step state, so skipping the no-ops removes the dominant
    Python-call cost of step acceptance."""
    return [el for el in circuit.elements
            if type(el).accept_step is not Element.accept_step]


class _StepRecorder:
    """Accumulates accepted steps and finalises the Dataset."""

    def __init__(self, circuit: Circuit, x0: np.ndarray) -> None:
        self.circuit = circuit
        self.times = [0.0]
        self.solutions = [x0.copy()]
        # One reusable context for the whole run: ``accept`` used to
        # build a throwaway StampContext per accepted step, which on
        # long adaptive runs was allocator churn for no benefit (the
        # empty matrix/rhs are never stamped during acceptance).
        self._ctx = StampContext(
            matrix=np.zeros((0, 0)), rhs=np.zeros(0),
            node_index=circuit.node_index, x=x0, analysis="tran",
        )
        self._accepting = _stateful_elements(circuit)

    def accept(self, t: float, x: np.ndarray, x_prev: np.ndarray,
               dt: float, method: str) -> None:
        """Commit a converged step: element state update + recording."""
        ctx = self._ctx
        ctx.x = x
        ctx.time = t
        ctx.dt = dt
        ctx.x_prev = x_prev
        ctx.method = method
        for el in self._accepting:
            el.accept_step(ctx)
        self.times.append(t)
        self.solutions.append(x.copy())

    def dataset(self, record_currents) -> Dataset:
        circuit = self.circuit
        data = np.asarray(self.solutions)
        dataset = Dataset("time", self.times)
        for node, idx in circuit.node_index.items():
            dataset.add_trace(f"v({node})", data[:, idx])
        if record_currents:
            for el in circuit.iter_elements(VoltageSource):
                dataset.add_trace(f"i({el.name})", data[:, el.aux_index])
        if record_currents is True:
            # CNFET current traces in one vectorized post-pass per
            # element (the per-row scalar re-evaluation used to rival
            # the Newton loop itself on long runs); skipped in the
            # "sources" mode, whose branch currents above are free
            # columns of the solution.
            node_index = circuit.node_index
            zeros = np.zeros(data.shape[0])

            def node_trace(node: str) -> np.ndarray:
                idx = node_index.get(node, -1)
                return data[:, idx] if idx >= 0 else zeros

            for el in circuit.iter_elements(CNFETElement):
                d_node, g_node, s_node = el.nodes
                vs_col = node_trace(s_node)
                vgs = node_trace(g_node) - vs_col
                vds = node_trace(d_node) - vs_col
                if el.polarity == "p":
                    vgs, vds = -vgs, -vds
                series = el.backend.ids_many(vgs, vds)
                if el.polarity == "p":
                    series = -series
                dataset.add_trace(f"i({el.name})", series)
        return dataset


class _StoreRecorder:
    """Streams accepted steps into a :class:`WaveformStore`.

    Drop-in for :class:`_StepRecorder` (same ``accept`` contract —
    element state commits included) except rows leave RAM every
    ``chunk_rows`` steps; ``dataset()`` returns a lazy Dataset over
    the finished store.
    """

    def __init__(self, circuit: Circuit, x0: np.ndarray,
                 directory, chunk_rows: int,
                 record_currents: Union[bool, str]) -> None:
        self.circuit = circuit
        n = circuit.dimension()
        columns = [f"aux{i}" for i in range(n + 1)]
        columns[0] = "time"
        for node, idx in circuit.node_index.items():
            columns[1 + idx] = f"v({node})"
        current_names = []
        for el in circuit.iter_elements(VoltageSource):
            columns[1 + el.aux_index] = f"i({el.name})"
            current_names.append(f"i({el.name})")
        exposed = ["time"]
        exposed += [f"v({node})" for node in circuit.node_index]
        if record_currents:
            exposed += current_names
        self.store = WaveformStore.create(directory, columns,
                                          exposed=exposed,
                                          chunk_rows=chunk_rows)
        self._row = np.empty(n + 1)
        self._ctx = StampContext(
            matrix=np.zeros((0, 0)), rhs=np.zeros(0),
            node_index=circuit.node_index, x=x0, analysis="tran",
        )
        self._row[0] = 0.0
        self._row[1:] = x0
        self.store.append(self._row)
        self._accepting = _stateful_elements(circuit)

    def accept(self, t: float, x: np.ndarray, x_prev: np.ndarray,
               dt: float, method: str) -> None:
        """Commit a converged step: element state update + a store row."""
        ctx = self._ctx
        ctx.x = x
        ctx.time = t
        ctx.dt = dt
        ctx.x_prev = x_prev
        ctx.method = method
        for el in self._accepting:
            el.accept_step(ctx)
        self._row[0] = t
        self._row[1:] = x
        self.store.append(self._row)

    def dataset(self, record_currents) -> Dataset:
        self.store.close()
        return Dataset.from_store(self.store)


def _resolve_partition(circuit: Circuit, partition,
                       bypass_tol: Optional[float]
                       ) -> Tuple[Optional[Partition], float, bool]:
    """Validate/normalise the ``partition``/``bypass_tol`` pair.

    Returns ``(partition_or_None, bypass_tol, escalate)`` where
    ``escalate`` records that ``"auto"`` was requested (a failing
    partitioned run may fall back to the monolithic engine).
    """
    escalate = False
    if partition is None or partition == "off":
        if bypass_tol is not None:
            raise ParameterError(
                "bypass_tol only applies to a partitioned transient "
                "(pass partition='auto' or a Partition)")
        return None, 0.0, escalate
    if isinstance(partition, str):
        if partition != "auto":
            raise ParameterError(
                f"partition must be 'off', 'auto' or a Partition: "
                f"{partition!r}")
        escalate = True
        partition = partition_circuit(circuit)
        if len(partition.blocks) < 2:
            # Nothing to decouple: one block (or all-interface) would
            # just be the monolithic solve with extra indirection.
            return None, 0.0, escalate
    elif not isinstance(partition, Partition):
        raise ParameterError(
            f"partition must be 'off', 'auto' or a Partition: "
            f"{partition!r}")
    tol = DEFAULT_BYPASS_TOL if bypass_tol is None else float(bypass_tol)
    if tol < 0.0:
        raise ParameterError(f"bypass_tol must be >= 0: {bypass_tol!r}")
    return partition, tol, escalate


def transient(
    circuit: Circuit,
    tstop: float,
    dt: Optional[float] = None,
    method: str = "trap",
    options: NewtonOptions = NewtonOptions(),
    record_currents: Union[bool, str] = True,
    x0: Optional[np.ndarray] = None,
    max_halvings: Optional[int] = None,
    stats: Optional[dict] = None,
    *,
    adaptive: Optional[bool] = None,
    rtol: Optional[float] = None,
    atol: Optional[float] = None,
    dt_min: Optional[float] = None,
    dt_max: Optional[float] = None,
    extra_breakpoints: Sequence[float] = (),
    backend: BackendLike = None,
    cancel: Optional[CancelToken] = None,
    partition: "Union[None, str, Partition]" = None,
    bypass_tol: Optional[float] = None,
    store: "Optional[str]" = None,
    store_chunk_rows: int = 256,
) -> Dataset:
    """Integrate the circuit from its DC operating point to ``tstop``.

    Parameters
    ----------
    circuit : Circuit
        The circuit; transient element state is reset first.
    tstop : float
        Stop time [s].
    dt : float, optional
        Fixed step [s].  Giving ``dt`` selects the legacy fixed-step
        mode (unless ``adaptive=True``, where it seeds the initial
        step); omitting it selects the adaptive engine.
    method : {"trap", "be"}
        ``"trap"`` (trapezoidal, 2nd order, SPICE default) or ``"be"``
        (backward Euler, L-stable, more damping).
    options : NewtonOptions
        Newton-loop tuning knobs.
    record_currents : bool or "sources"
        ``True`` also records voltage-source branch currents and CNFET
        drain currents; ``"sources"`` records only the branch currents
        (free columns of the solution, skipping the per-device CNFET
        current post-pass); ``False`` records voltages only.
    x0 : numpy.ndarray, optional
        Initial solution (defaults to the DC operating point at t = 0).
    max_halvings : int, optional
        **Fixed-step only** — how many times a non-convergent step may
        be halved before the run aborts (default 8).  In adaptive mode
        step rejection is owned by the LTE controller (``rtol``/
        ``atol``/``dt_min``), so passing ``max_halvings`` there raises
        :class:`~repro.errors.ParameterError` rather than being
        silently ignored.
    stats : dict, optional
        Accumulates step statistics: ``steps`` (accepted), ``solves``,
        ``iterations`` (Newton), and in adaptive mode additionally
        ``rejected_lte``, ``rejected_newton``, ``breakpoints_hit``,
        ``dt_smallest``, ``dt_largest``.
    adaptive : bool, optional
        Force the stepping mode; default ``dt is None``.
    rtol, atol : float, optional
        **Adaptive only** — relative / absolute [V] LTE tolerances per
        step (defaults 1e-3 / 1e-6 V).  Tightening them buys waveform
        accuracy with smaller steps; see ``docs/transient.md``.
    dt_min, dt_max : float, optional
        **Adaptive only** — hard step bounds [s].  Defaults:
        ``tstop * 1e-9`` and ``tstop / 50``.
    extra_breakpoints : sequence of float, optional
        Additional time points in ``(0, tstop)`` to land on exactly,
        merged with the source-waveform breakpoints (user-forced
        events; also how the parity suite replays a lane-batched run's
        shared grid, which carries *every* lane's breakpoints).
    backend : None, str or LinearSolverBackend, optional
        Linear-solver backend for every solve of the run (the initial
        DC operating point included) — ``"auto"`` (default),
        ``"dense"`` or ``"sparse"``; see
        :func:`repro.circuit.solvers.resolve_backend`.
    cancel : repro.cancel.CancelToken, optional
        Cooperative cancellation token, checked once per Newton
        iteration — a deadline or an explicit cancel unwinds the run
        with :class:`~repro.errors.CancelledError` within one
        iteration's latency (how the job service enforces per-job
        ``deadline_s``).
    partition : None, "off", "auto" or Partition, optional
        ``"auto"`` partitions the circuit
        (:func:`repro.circuit.partition.partition_circuit`) and solves
        each step block-by-block through a Schur-complement interface
        system with latency bypass; a run that fails to converge
        escalates to the monolithic engine automatically.  Passing a
        prebuilt :class:`~repro.circuit.partition.Partition` uses it
        as-is (no escalation).  Default/``"off"``: monolithic.  See
        ``docs/partitioning.md``.
    bypass_tol : float, optional
        **Partitioned only** — latency-bypass tolerance [V]
        (default 1e-6): a block whose boundary voltages and internal
        state all moved less than this since its last solve is carried
        frozen for the step — no device evaluation, stamping or
        refactorisation.  ``0.0`` disables bypass.
    store : str, optional
        Directory for an out-of-core run: accepted steps stream into a
        chunked :class:`~repro.circuit.store.WaveformStore` there and
        the returned Dataset is lazy (one column resident at a time),
        so peak memory is bounded by ``store_chunk_rows`` rows instead
        of the trace length.  Requires ``record_currents`` ``False``
        or ``"sources"`` (the CNFET current post-pass of ``True``
        needs the full solution matrix in RAM).
    store_chunk_rows : int
        Rows buffered per store chunk (default 256).

    Returns
    -------
    Dataset
        Axis ``time`` plus traces ``v(node)`` / ``i(element)``.  In
        adaptive mode the time axis is non-uniform; use
        :meth:`Dataset.at` for interpolation.
    """
    if tstop <= 0.0:
        raise ParameterError(f"tstop must be > 0: {tstop!r}")
    if method not in ("be", "trap"):
        raise ParameterError(f"method must be 'be' or 'trap': {method!r}")
    if adaptive is None:
        adaptive = dt is None
    if not adaptive:
        if dt is None:
            raise ParameterError(
                "fixed-step mode needs dt (omit it or pass adaptive=True "
                "for the adaptive engine)"
            )
        if dt <= 0.0 or dt > tstop:
            raise ParameterError(f"dt must be in (0, tstop]: {dt!r}")
        for name, value in (("rtol", rtol), ("atol", atol),
                            ("dt_min", dt_min), ("dt_max", dt_max)):
            if value is not None:
                raise ParameterError(
                    f"{name} is an adaptive-mode option; fixed-step "
                    f"accuracy is set by dt alone"
                )
        max_halvings = 8 if max_halvings is None else max_halvings
    else:
        if max_halvings is not None:
            raise ParameterError(
                "max_halvings is a fixed-step option; adaptive step "
                "rejection is governed by rtol/atol/dt_min"
            )
        rtol = DEFAULT_RTOL if rtol is None else float(rtol)
        atol = DEFAULT_ATOL if atol is None else float(atol)
        if rtol < 0.0 or atol < 0.0 or rtol + atol <= 0.0:
            raise ParameterError(
                f"need rtol, atol >= 0 and rtol + atol > 0: "
                f"rtol={rtol!r}, atol={atol!r}"
            )
        dt_max = tstop / 50.0 if dt_max is None else float(dt_max)
        dt_min = tstop * 1e-9 if dt_min is None else float(dt_min)
        if not 0.0 < dt_min <= dt_max <= tstop:
            raise ParameterError(
                f"need 0 < dt_min <= dt_max <= tstop: dt_min={dt_min!r}, "
                f"dt_max={dt_max!r}"
            )
        if dt is not None and dt <= 0.0:
            raise ParameterError(f"initial dt must be > 0: {dt!r}")
    if store is not None and record_currents is True:
        raise ParameterError(
            "store mode needs record_currents=False or 'sources': the "
            "CNFET current post-pass of record_currents=True would "
            "materialize the full trace the store exists to avoid")
    if store is not None and store_chunk_rows < 1:
        raise ParameterError(
            f"store_chunk_rows must be >= 1: {store_chunk_rows!r}")
    part, tol, escalate = _resolve_partition(circuit, partition,
                                             bypass_tol)

    circuit.reset_state()
    n = circuit.dimension()
    if x0 is None:
        x = robust_dc_solve(circuit, None, options, backend=backend,
                            cancel=cancel)
    else:
        x = np.asarray(x0, dtype=float).copy()
        if x.shape != (n,):
            raise ParameterError(
                f"x0 has shape {x.shape}, expected ({n},)"
            )

    if store is not None:
        recorder = _StoreRecorder(circuit, x, store, store_chunk_rows,
                                  record_currents)
    else:
        recorder = _StepRecorder(circuit, x)
    breakpoints = _collect_breakpoints(circuit, tstop)
    if extra_breakpoints:
        merged = set(breakpoints)
        merged.update(t for t in map(float, extra_breakpoints)
                      if 0.0 < t < tstop)
        breakpoints = sorted(merged)
    # One assembler for the whole run: matrix/rhs buffers (and, for
    # the sparse backend, the symbolic pattern) live across steps;
    # only the static stamps are refreshed per step.
    if part is not None:
        assembler = PartitionedAssembler(circuit, part, bypass_tol=tol)
    else:
        assembler = TwoPhaseAssembler(circuit, backend=backend)
    try:
        if adaptive:
            _adaptive_loop(circuit, tstop, method, options, x, recorder,
                           assembler, breakpoints, rtol, atol, dt_min,
                           dt_max, dt, stats, cancel)
        else:
            _fixed_loop(circuit, tstop, dt, method, options, x, recorder,
                        assembler, breakpoints, max_halvings, stats,
                        cancel)
    except AnalysisError:
        if part is None or not escalate:
            raise
        # "auto" contract: a partitioned run that cannot converge is
        # re-run monolithically from scratch (element transient state
        # is reset by the recursive call).
        if stats is not None:
            stats["partition_escalated"] = \
                stats.get("partition_escalated", 0) + 1
        return transient(
            circuit, tstop, dt, method, options, record_currents, x0,
            max_halvings, stats, adaptive=adaptive, rtol=rtol, atol=atol,
            dt_min=dt_min, dt_max=dt_max,
            extra_breakpoints=extra_breakpoints, backend=backend,
            cancel=cancel, partition="off", store=store,
            store_chunk_rows=store_chunk_rows,
        )
    if part is not None and stats is not None:
        for key, value in assembler.stats.items():
            stats[f"partition_{key}"] = value
    return recorder.dataset(record_currents)


def _next_breakpoint(breakpoints: List[float], bp_idx: int, t: float,
                     eps: float) -> int:
    """Index of the first breakpoint strictly after ``t`` (+ eps)."""
    n = len(breakpoints)
    while bp_idx < n and breakpoints[bp_idx] <= t + eps:
        bp_idx += 1
    return bp_idx


def _fixed_loop(circuit: Circuit, tstop: float, dt: float, method: str,
                options: NewtonOptions, x: np.ndarray,
                recorder: _StepRecorder, assembler: TwoPhaseAssembler,
                breakpoints: List[float], max_halvings: int,
                stats: Optional[dict],
                cancel: Optional[CancelToken] = None) -> None:
    """Legacy fixed-step march with local halving on Newton failure.

    Byte-for-byte the historical engine when the circuit has no source
    breakpoints; otherwise steps are truncated to land exactly on each
    breakpoint before resuming the ``dt`` cadence.
    """
    t = 0.0
    current_dt = dt
    halvings = 0
    bp_idx = 0
    eps = 1e-15 * tstop
    while t < tstop - eps:
        bp_idx = _next_breakpoint(breakpoints, bp_idx, t, eps)
        step = min(current_dt, tstop - t)
        landing = (bp_idx < len(breakpoints)
                   and breakpoints[bp_idx] - t <= step * (1.0 + 1e-12))
        if landing:
            t_next = breakpoints[bp_idx]
            step = t_next - t
        else:
            t_next = t + step
        try:
            x_next = newton_solve(
                circuit, x, options, analysis="tran", time=t_next,
                dt=step, x_prev=x, method=method, assembler=assembler,
                stats=stats, cancel=cancel,
            )
        except AnalysisError:
            if halvings >= max_halvings:
                raise AnalysisError(
                    f"transient stalled at t={t:.3e} s even at "
                    f"dt={step:.3e} s"
                ) from None
            current_dt = step / 2.0
            halvings += 1
            continue
        recorder.accept(t_next, x_next, x, step, method)
        t = t_next
        x = x_next
        if landing:
            bp_idx += 1
            if stats is not None:
                stats["breakpoints_hit"] = \
                    stats.get("breakpoints_hit", 0) + 1
        if stats is not None:
            stats["steps"] = stats.get("steps", 0) + 1
        # Re-double after reductions.  Gating on current_dt (not the
        # halvings counter) matters with breakpoints: one Newton
        # failure on a breakpoint-sliver step can cut current_dt far
        # below dt/2, and recovery must not be capped at 2^halvings.
        # Without breakpoints step always equals current_dt mid-run,
        # halvings > 0 iff current_dt < dt, and this is byte-for-byte
        # the legacy behaviour.
        if current_dt < dt:
            current_dt = min(dt, current_dt * 2.0)
            halvings = max(0, halvings - 1)


def _adaptive_loop(circuit: Circuit, tstop: float, method: str,
                   options: NewtonOptions, x: np.ndarray,
                   recorder: _StepRecorder, assembler: TwoPhaseAssembler,
                   breakpoints: List[float], rtol: float, atol: float,
                   dt_min: float, dt_max: float, dt0: Optional[float],
                   stats: Optional[dict],
                   cancel: Optional[CancelToken] = None) -> None:
    """Variable-step LTE-controlled integration (see module docstring).

    Controller: predictor–corrector LTE estimate over the voltage
    unknowns, weighted by ``atol + rtol * |v|``; accept when the scaled
    error ``err <= 1``; PI step update ``h *= 0.9 err^(-0.7/k)
    err_prev^(0.4/k)`` with ``k = order + 1``.  Newton failures shrink
    the step 4x through the same rejection path.  Breakpoints are
    landed on exactly; the solution history (and so the predictor) is
    restarted across them because the derivative is discontinuous.
    """
    n_nodes = len(circuit.node_index)
    k_order = 2 if method == "be" else 3
    t = 0.0
    h = min(dt_max, tstop / 1000.0) if dt0 is None else min(dt0, dt_max)
    err_prev = 1.0
    bp_idx = 0
    eps = 1e-15 * tstop
    accepted = 0
    hist_t: List[float] = [0.0]
    hist_x: List[np.ndarray] = [x.copy()]
    while t < tstop - eps:
        bp_idx = _next_breakpoint(breakpoints, bp_idx, t, eps)
        h = min(max(h, dt_min), dt_max)
        step = min(h, tstop - t)
        landing = (bp_idx < len(breakpoints)
                   and breakpoints[bp_idx] - t <= step * (1.0 + 1e-12))
        if landing:
            t_next = breakpoints[bp_idx]
            step = t_next - t
        else:
            t_next = t + step
        x_pred, divisor = _predict(hist_t, hist_x, t_next, method)
        # The predictor doubles as the Newton starting point: an
        # extrapolated start typically converges in 1-2 iterations
        # where restarting from x_prev needs several.
        x_start = x if x_pred is None else x_pred
        try:
            x_next = newton_solve(
                circuit, x_start, options, analysis="tran", time=t_next,
                dt=step, x_prev=x, method=method, assembler=assembler,
                stats=stats, cancel=cancel,
            )
        except AnalysisError:
            if stats is not None:
                stats["rejected_newton"] = \
                    stats.get("rejected_newton", 0) + 1
            # A retry is only meaningful if the next attempt can be
            # genuinely smaller; dt_min floors the controller, and a
            # breakpoint sliver shorter than dt_min cannot shrink at
            # all (the landing time is fixed), so both stall here.
            shrunk = max(step * _NEWTON_SHRINK, dt_min)
            if shrunk >= step * (1.0 - 1e-12):
                raise AnalysisError(
                    f"transient stalled at t={t:.3e} s: Newton failed "
                    f"at an irreducible step ({step:.3e} s, dt_min="
                    f"{dt_min:.3e} s)"
                ) from None
            h = shrunk
            continue

        err = None
        if x_pred is not None:
            v_now = np.abs(x[:n_nodes])
            v_next = np.abs(x_next[:n_nodes])
            weight = atol + rtol * np.maximum(v_now, v_next)
            diff = np.abs(x_next[:n_nodes] - x_pred[:n_nodes])
            err = float(np.max(diff / weight)) / divisor if n_nodes \
                else 0.0
        if err is not None and err > 1.0:
            shrunk = max(
                step * min(0.5, max(0.1,
                                    _SAFETY * err ** (-1.0 / k_order))),
                dt_min,
            )
            if shrunk < step * (1.0 - 1e-12):
                if stats is not None:
                    stats["rejected_lte"] = \
                        stats.get("rejected_lte", 0) + 1
                h = shrunk
                continue
            # The step cannot shrink (dt_min floor or an irreducible
            # breakpoint sliver): accept it as the best available.

        recorder.accept(t_next, x_next, x, step, method)
        t = t_next
        x = x_next
        accepted += 1
        if accepted > _MAX_ACCEPTED_STEPS:
            raise AnalysisError(
                f"transient exceeded {_MAX_ACCEPTED_STEPS} accepted "
                f"steps; loosen rtol/atol or raise dt_min"
            )
        if stats is not None:
            stats["steps"] = stats.get("steps", 0) + 1
            stats["dt_smallest"] = min(stats.get("dt_smallest", step),
                                       step)
            stats["dt_largest"] = max(stats.get("dt_largest", step), step)
        if err is None or err <= 0.0:
            fac = _FAC_BLIND
        else:
            fac = _SAFETY * err ** (-0.7 / k_order) \
                * err_prev ** (0.4 / k_order)
            fac = min(_FAC_MAX, max(_FAC_MIN, fac))
            err_prev = max(err, 1e-4)
        h = step * fac
        if landing:
            bp_idx += 1
            if stats is not None:
                stats["breakpoints_hit"] = \
                    stats.get("breakpoints_hit", 0) + 1
            # The source derivative is discontinuous here: restart the
            # predictor history and re-enter cautiously (the first
            # post-breakpoint step has no LTE estimate).
            hist_t = [t]
            hist_x = [x.copy()]
            h = max(dt_min, h * _BREAKPOINT_SHRINK)
            err_prev = 1.0
        else:
            hist_t.append(t)
            hist_x.append(x.copy())
            if len(hist_t) > 3:
                hist_t.pop(0)
                hist_x.pop(0)


def initial_conditions_from_op(circuit: Circuit,
                               overrides: Optional[dict] = None,
                               options: NewtonOptions = NewtonOptions()
                               ) -> np.ndarray:
    """DC operating point with optional per-node voltage overrides [V].

    Useful to kick oscillators out of their unstable symmetric point:
    ``initial_conditions_from_op(ckt, {"n1": 0.0})``.

    Parameters
    ----------
    circuit : Circuit
        The circuit (transient state is reset).
    overrides : dict, optional
        ``{node_name: voltage}`` values forced onto the DC solution.
    options : NewtonOptions
        Newton-loop tuning knobs for the DC solve.

    Returns
    -------
    numpy.ndarray
        A solution vector usable as ``x0`` for :func:`transient`.
    """
    circuit.reset_state()
    x = robust_dc_solve(circuit, None, options)
    if overrides:
        for node, value in overrides.items():
            idx = circuit.node_index.get(node)
            if idx is None:
                raise ParameterError(f"unknown node {node!r} in overrides")
            x[idx] = float(value)
    return x
