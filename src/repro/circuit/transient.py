"""Transient analysis: fixed-step BE/trapezoidal with Newton per step.

The step size is fixed (``dt``) but the engine halves it locally (up to
``max_halvings`` times) when a step's Newton iteration fails to
converge, then re-doubles — a simple, predictable robustness scheme
adequate for the strongly-damped logic circuits this library simulates.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.circuit.elements.base import StampContext
from repro.circuit.elements.cnfet import CNFETElement
from repro.circuit.elements.sources import VoltageSource
from repro.circuit.mna import (
    NewtonOptions,
    TwoPhaseAssembler,
    newton_solve,
    robust_dc_solve,
)
from repro.circuit.netlist import Circuit
from repro.circuit.results import Dataset
from repro.errors import AnalysisError, ParameterError


def transient(
    circuit: Circuit,
    tstop: float,
    dt: float,
    method: str = "trap",
    options: NewtonOptions = NewtonOptions(),
    record_currents: bool = True,
    x0: Optional[np.ndarray] = None,
    max_halvings: int = 8,
    stats: Optional[dict] = None,
) -> Dataset:
    """Integrate the circuit from its DC operating point to ``tstop``.

    Parameters
    ----------
    circuit:
        The circuit; transient element state is reset first.
    tstop, dt:
        Stop time and nominal step [s].
    method:
        ``"be"`` (backward Euler, L-stable, more damping) or ``"trap"``
        (trapezoidal, 2nd order, SPICE default).
    record_currents:
        Also record voltage-source branch currents and CNFET drain
        currents.
    x0:
        Optional initial solution (defaults to the DC operating point
        at t = 0).

    Returns
    -------
    Dataset with axis ``time`` and traces ``v(node)`` / ``i(element)``.
    """
    if tstop <= 0.0:
        raise ParameterError(f"tstop must be > 0: {tstop!r}")
    if dt <= 0.0 or dt > tstop:
        raise ParameterError(f"dt must be in (0, tstop]: {dt!r}")
    if method not in ("be", "trap"):
        raise ParameterError(f"method must be 'be' or 'trap': {method!r}")
    circuit.reset_state()
    n = circuit.dimension()
    if x0 is None:
        x = robust_dc_solve(circuit, None, options)
    else:
        x = np.asarray(x0, dtype=float).copy()
        if x.shape != (n,):
            raise ParameterError(
                f"x0 has shape {x.shape}, expected ({n},)"
            )

    times = [0.0]
    solutions = [x.copy()]
    t = 0.0
    current_dt = dt
    halvings = 0
    # One assembler for the whole run: matrix/rhs buffers live across
    # steps; only the static stamps are refreshed per step.
    assembler = TwoPhaseAssembler(circuit)
    while t < tstop - 1e-15 * tstop:
        step = min(current_dt, tstop - t)
        t_next = t + step
        try:
            x_next = newton_solve(
                circuit, x, options, analysis="tran", time=t_next,
                dt=step, x_prev=x, method=method, assembler=assembler,
                stats=stats,
            )
        except AnalysisError:
            if halvings >= max_halvings:
                raise AnalysisError(
                    f"transient stalled at t={t:.3e} s even at "
                    f"dt={step:.3e} s"
                ) from None
            current_dt = step / 2.0
            halvings += 1
            continue
        # Let elements with memory accept the step.
        ctx = StampContext(
            matrix=np.zeros((0, 0)), rhs=np.zeros(0),
            node_index=circuit.node_index, x=x_next, analysis="tran",
            time=t_next, dt=step, x_prev=x, method=method,
        )
        for el in circuit.elements:
            el.accept_step(ctx)
        t = t_next
        x = x_next
        times.append(t)
        solutions.append(x.copy())
        if stats is not None:
            stats["steps"] = stats.get("steps", 0) + 1
        if halvings and current_dt < dt:
            current_dt = min(dt, current_dt * 2.0)
            halvings = max(0, halvings - 1)

    data = np.asarray(solutions)
    dataset = Dataset("time", times)
    for node, idx in circuit.node_index.items():
        dataset.add_trace(f"v({node})", data[:, idx])
    if record_currents:
        for el in circuit.iter_elements(VoltageSource):
            dataset.add_trace(f"i({el.name})", data[:, el.aux_index])
        # CNFET current traces in one vectorized post-pass per element
        # (the per-row scalar re-evaluation used to rival the Newton
        # loop itself on long runs).
        node_index = circuit.node_index
        zeros = np.zeros(data.shape[0])

        def node_trace(node: str) -> np.ndarray:
            idx = node_index.get(node, -1)
            return data[:, idx] if idx >= 0 else zeros

        for el in circuit.iter_elements(CNFETElement):
            d_node, g_node, s_node = el.nodes
            vs_col = node_trace(s_node)
            vgs = node_trace(g_node) - vs_col
            vds = node_trace(d_node) - vs_col
            if el.polarity == "p":
                vgs, vds = -vgs, -vds
            series = el.backend.ids_many(vgs, vds)
            if el.polarity == "p":
                series = -series
            dataset.add_trace(f"i({el.name})", series)
    return dataset


def initial_conditions_from_op(circuit: Circuit,
                               overrides: Optional[dict] = None,
                               options: NewtonOptions = NewtonOptions()
                               ) -> np.ndarray:
    """DC operating point with optional per-node voltage overrides.

    Useful to kick oscillators out of their unstable symmetric point:
    ``initial_conditions_from_op(ckt, {"n1": 0.0})``.
    """
    circuit.reset_state()
    x = robust_dc_solve(circuit, None, options)
    if overrides:
        for node, value in overrides.items():
            idx = circuit.node_index.get(node)
            if idx is None:
                raise ParameterError(f"unknown node {node!r} in overrides")
            x[idx] = float(value)
    return x
