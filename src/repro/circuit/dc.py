"""DC analyses: operating point and sweeps."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.cancel import CancelToken
from repro.circuit.elements.base import GROUND_NAMES, StampContext
from repro.circuit.elements.cnfet import CNFETElement
from repro.circuit.elements.resistor import Resistor
from repro.circuit.elements.sources import CurrentSource, VoltageSource
from repro.circuit.mna import (
    NewtonOptions,
    TwoPhaseAssembler,
    robust_dc_solve,
)
from repro.circuit.netlist import Circuit
from repro.circuit.results import Dataset
from repro.circuit.solvers import BackendLike
from repro.circuit.waveforms import DC
from repro.errors import NetlistError


class OperatingPoint:
    """Converged DC solution with convenient accessors."""

    def __init__(self, circuit: Circuit, x: np.ndarray) -> None:
        self.circuit = circuit
        self.x = x

    def voltage(self, node: str) -> float:
        if node in GROUND_NAMES:
            return 0.0
        try:
            return float(self.x[self.circuit.node_index[node]])
        except KeyError:
            raise NetlistError(f"unknown node {node!r}") from None

    def source_current(self, name: str) -> float:
        """Branch current through a voltage source (SPICE sign: into the
        + terminal)."""
        el = self.circuit.element(name)
        if el.n_aux != 1:
            raise NetlistError(
                f"{name!r} has no branch-current unknown"
            )
        return float(self.x[el.aux_index])

    def element_current(self, name: str) -> float:
        """DC current through supported two/three-terminal elements."""
        el = self.circuit.element(name)
        if isinstance(el, Resistor):
            a, b = el.nodes
            return el.current(self.voltage(a), self.voltage(b))
        if isinstance(el, CNFETElement):
            ctx = _reporting_context(self.circuit, self.x)
            return el.ids(ctx)
        if isinstance(el, CurrentSource):
            ctx = _reporting_context(self.circuit, self.x)
            return el.source_value(ctx)
        if el.n_aux == 1:
            return float(self.x[el.aux_index])
        raise NetlistError(f"cannot report a current for {name!r}")

    def as_dict(self) -> Dict[str, float]:
        return {
            f"v({node})": self.voltage(node)
            for node in self.circuit.nodes
        }


def _reporting_context(circuit: Circuit, x: np.ndarray) -> StampContext:
    n = circuit.dimension()
    return StampContext(
        matrix=np.zeros((0, 0)), rhs=np.zeros(0),
        node_index=circuit.node_index, x=x[:n], analysis="dc",
    )


def operating_point(circuit: Circuit,
                    options: NewtonOptions = NewtonOptions(),
                    x0: Optional[np.ndarray] = None,
                    assembler: Optional[TwoPhaseAssembler] = None,
                    backend: BackendLike = None,
                    cancel: Optional[CancelToken] = None) -> OperatingPoint:
    """Solve the DC operating point (with fallbacks; see
    :func:`repro.circuit.mna.robust_dc_solve`).

    ``backend`` selects the linear-solver backend when no reusable
    ``assembler`` is passed (``"auto"`` / ``"dense"`` / ``"sparse"``);
    ``cancel`` is checked once per Newton iteration.
    """
    circuit.reset_state()
    x = robust_dc_solve(circuit, x0, options, assembler, backend=backend,
                        cancel=cancel)
    return OperatingPoint(circuit, x)


def dc_sweep(circuit: Circuit, source_name: str, values: Sequence[float],
             options: NewtonOptions = NewtonOptions(),
             backend: BackendLike = None,
             cancel: Optional[CancelToken] = None) -> Dataset:
    """Sweep an independent source and record all node voltages (and
    every voltage-source branch current).

    The previous solution seeds each step's Newton iteration, which is
    both faster and more robust than cold starts (continuation).
    ``backend`` selects the linear-solver backend shared by every
    point of the sweep; ``cancel`` is checked at every sweep point (and
    once per Newton iteration inside each solve).
    """
    source = circuit.element(source_name)
    if not isinstance(source, (VoltageSource, CurrentSource)):
        raise NetlistError(
            f"{source_name!r} is not an independent source"
        )
    original = source.waveform
    dataset = Dataset(source_name, values)
    nodes = circuit.nodes
    voltages = {n: [] for n in nodes}
    currents = {
        el.name: []
        for el in circuit.iter_elements(VoltageSource)
    }
    cnfet_currents = {
        el.name: []
        for el in circuit.iter_elements(CNFETElement)
    }
    x_prev: Optional[np.ndarray] = None
    # Shared buffers across the whole sweep (continuation reuses the
    # previous solution *and* the previous allocations; the sparse
    # backend additionally reuses its symbolic pattern).
    assembler = TwoPhaseAssembler(circuit, backend=backend)
    try:
        for value in values:
            if cancel is not None:
                cancel.check()
            source.waveform = DC(float(value))
            op = operating_point(circuit, options, x0=x_prev,
                                 assembler=assembler, cancel=cancel)
            x_prev = op.x
            for n in nodes:
                voltages[n].append(op.voltage(n))
            for name in currents:
                currents[name].append(op.source_current(name))
            for name in cnfet_currents:
                cnfet_currents[name].append(op.element_current(name))
    finally:
        source.waveform = original
    for n in nodes:
        dataset.add_trace(f"v({n})", voltages[n])
    for name, series in currents.items():
        dataset.add_trace(f"i({name})", series)
    for name, series in cnfet_currents.items():
        dataset.add_trace(f"i({name})", series)
    return dataset
