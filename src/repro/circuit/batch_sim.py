"""Lane-batched MNA + transient engine: many circuit instances, one
stacked solve.

The scalar engine advances one circuit through one Python-level Newton/
transient loop.  Multi-scenario workloads — a gate-characterization
load x slew grid, a Monte-Carlo ring-oscillator campaign — run many
*instances of the same topology* that differ only in parameters (load
caps, source waveforms, per-lane CNFET geometry).  This module advances
``B`` such instances (*lanes*) in lock-step:

* :class:`LaneBatch` stacks assembly into ``(B, n+1, n+1)`` matrix /
  ``(B, n+1)`` rhs stacks (the extra row/column is a ground pad), with
  the same static/dynamic split as :class:`TwoPhaseAssembler`: linear
  element groups are stamped once per step, nonlinear groups per Newton
  iteration.  Element classes provide vectorized
  :class:`~repro.circuit.elements.base.LaneGroup` implementations
  (CNFETs route all lanes through the stacked closed forms of
  :mod:`repro.pwl.batch`); anything else falls back to a per-lane
  scalar loop, so every circuit is batchable.
* the lock-step Newton iteration solves all active lanes through one
  batched ``np.linalg.solve`` on the stack, damps and checks
  convergence per lane, and *freezes* converged lanes while stragglers
  iterate; lanes whose Newton fails are retried (step shrink) and
  ultimately re-simulated through the scalar engine (exact per-lane
  fallback).
* :func:`batch_transient` steppers: fixed-step mode marches every lane
  on a shared grid (the union of all lanes' waveform breakpoints is
  landed on exactly); adaptive mode drives the scalar engine's LTE/PI
  controller from the **worst-lane** error and retires lanes that reach
  their per-lane ``tstop`` early.

Waveform parity with the scalar engine is a few closed-form residuals
(~1e-12 V) per step — see ``tests/test_batch_sim.py`` and the
``batch_transient`` section of ``BENCH_perf.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuit.elements.base import LaneContext
from repro.circuit.elements.cnfet import CNFETElement
from repro.circuit.elements.sources import CurrentSource, VoltageSource
from repro.circuit.mna import NewtonOptions, robust_dc_solve
from repro.circuit.netlist import Circuit
from repro.circuit.results import Dataset
from repro.circuit.solvers import BackendLike, resolve_backend
from repro.circuit.transient import (
    DEFAULT_ATOL,
    DEFAULT_RTOL,
    _BREAKPOINT_SHRINK,
    _FAC_BLIND,
    _FAC_MAX,
    _FAC_MIN,
    _MAX_ACCEPTED_STEPS,
    _NEWTON_SHRINK,
    _SAFETY,
    _collect_breakpoints,
    transient,
)
from repro.circuit.waveforms import DC
from repro.errors import AnalysisError, NetlistError, ParameterError

__all__ = ["LaneBatch", "BatchTransientResult", "batch_transient",
           "batch_operating_points", "batch_dc_sweep"]


class LaneBatch:
    """Stacked two-phase assembler over ``B`` same-topology circuits.

    Validates that every circuit shares the template's topology (same
    element order, types, names, terminal nodes and system layout),
    groups each element slot through
    :meth:`~repro.circuit.elements.base.Element.lane_group`, and owns
    the preallocated matrix/rhs stacks.
    """

    def __init__(self, circuits: Sequence[Circuit],
                 backend: BackendLike = None) -> None:
        if not circuits:
            raise ParameterError("need at least one lane circuit")
        self.circuits = list(circuits)
        self.n_lanes = len(self.circuits)
        template = self.circuits[0]
        dim = template.dimension()
        #: linear-solver backend for the stacked solves (``"auto"``
        #: keeps the batched dense solve below the sparse crossover
        #: dimension — see :func:`repro.circuit.solvers.resolve_backend`)
        self.backend = resolve_backend(backend, dim)
        for lane, circuit in enumerate(self.circuits[1:], start=1):
            if circuit.dimension() != dim \
                    or circuit.node_index != template.node_index:
                raise NetlistError(
                    f"lane {lane} does not match the template system "
                    f"layout (same-topology circuits required)"
                )
            if len(circuit.elements) != len(template.elements):
                raise NetlistError(
                    f"lane {lane} has {len(circuit.elements)} elements, "
                    f"template has {len(template.elements)}"
                )
            for el, ref in zip(circuit.elements, template.elements):
                if type(el) is not type(ref) or el.nodes != ref.nodes \
                        or el.name != ref.name \
                        or el.aux_index != ref.aux_index:
                    raise NetlistError(
                        f"lane {lane} element {el.name!r} does not "
                        f"match the template topology"
                    )
        self.dim = dim
        self.n_nodes = len(template.node_index)
        self.node_index = template.node_index
        # Slots grouped per element class: classes whose vectorization
        # spans slots (CNFET) stack them into one wide group.
        by_class: Dict[type, List[List]] = {}
        for slot in range(len(template.elements)):
            elements = [c.elements[slot] for c in self.circuits]
            by_class.setdefault(type(elements[0]), []).append(elements)
        self.groups = []
        for cls, slots in by_class.items():
            self.groups.extend(cls.lane_groups(slots))
        self._static = [g for g in self.groups if not g.nonlinear]
        self._dynamic = [g for g in self.groups if g.nonlinear]
        pad = dim + 1
        b = self.n_lanes
        self._static_matrix = np.zeros((b, pad, pad))
        self._static_rhs = np.zeros((b, pad))
        self._matrix = np.zeros((b, pad, pad))
        self._rhs = np.zeros((b, pad))
        self._ctx: Optional[LaneContext] = None

    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Reset per-lane transient state in every group (run start)."""
        for group in self.groups:
            group.reset()

    def context(self, x: np.ndarray, lanes: np.ndarray,
                **kwargs) -> LaneContext:
        """A :class:`LaneContext` over the work buffers (reporting /
        group-state priming; stamping goes through
        :meth:`begin_step` / :meth:`iterate`)."""
        return LaneContext(
            matrix=self._matrix, rhs=self._rhs,
            node_index=self.node_index, x=x, lanes=lanes, **kwargs,
        )

    def begin_step(self, x_sample: np.ndarray, lanes: np.ndarray, *,
                   analysis: str = "dc", time: Optional[float] = None,
                   dt: Optional[float] = None,
                   x_prev: Optional[np.ndarray] = None,
                   method: str = "be", gmin: float = 1e-12,
                   source_scale: float = 1.0) -> None:
        """Stamp the iterate-independent groups for the active lanes."""
        self._static_matrix[lanes] = 0.0
        self._static_rhs[lanes] = 0.0
        ctx = LaneContext(
            matrix=self._static_matrix, rhs=self._static_rhs,
            node_index=self.node_index, x=x_sample, lanes=lanes,
            analysis=analysis, time=time, dt=dt, x_prev=x_prev,
            method=method, gmin=gmin, source_scale=source_scale,
        )
        for group in self._static:
            group.stamp(ctx)
        self._ctx = ctx

    def iterate(self, x: np.ndarray, lanes: np.ndarray) -> LaneContext:
        """Stacked companion system around iterate stack ``x`` for the
        active ``lanes``."""
        ctx = self._ctx
        if ctx is None:
            raise AnalysisError("begin_step must be called before iterate")
        self._matrix[lanes] = self._static_matrix[lanes]
        self._rhs[lanes] = self._static_rhs[lanes]
        ctx.matrix = self._matrix
        ctx.rhs = self._rhs
        ctx.x = x
        ctx.lanes = lanes
        for group in self._dynamic:
            group.stamp(ctx)
        return ctx

    def accept_context(self, x: np.ndarray, x_prev: np.ndarray,
                       lanes: np.ndarray, time: float, dt: float,
                       method: str) -> LaneContext:
        """Context for committing a converged step (group state)."""
        return LaneContext(
            matrix=self._matrix, rhs=self._rhs,
            node_index=self.node_index, x=x, lanes=lanes,
            analysis="tran", time=time, dt=dt, x_prev=x_prev,
            method=method,
        )


# ----------------------------------------------------------------------
# Lock-step Newton
# ----------------------------------------------------------------------

def _lockstep_newton(batch: LaneBatch, x: np.ndarray,
                     lanes: np.ndarray,
                     options: NewtonOptions, *,
                     analysis: str = "dc",
                     time: Optional[float] = None,
                     dt: Optional[float] = None,
                     x_prev: Optional[np.ndarray] = None,
                     method: str = "be",
                     gmin: Optional[float] = None,
                     source_scale: float = 1.0,
                     x_start: Optional[np.ndarray] = None,
                     stats: Optional[dict] = None
                     ) -> Tuple[np.ndarray, List[int]]:
    """One lock-step damped-Newton solve across ``lanes``.

    Converged lanes freeze while stragglers iterate.  Returns
    ``(x_new, failed)`` where ``x_new`` is the full ``(B, dim)`` stack
    (failed lanes keep their incoming value) and ``failed`` lists lanes
    whose Newton did not converge (singular system, non-finite update,
    or iteration cap).
    """
    n_nodes = batch.n_nodes
    use_gmin = options.gmin if gmin is None else gmin
    x_new = x.copy()
    if x_start is not None:
        x_new[lanes] = x_start[lanes]
    batch.begin_step(
        x_new, lanes, analysis=analysis, time=time, dt=dt, x_prev=x_prev,
        method=method, gmin=use_gmin, source_scale=source_scale,
    )
    active = np.array(lanes, dtype=int, copy=True)
    failed: List[int] = []
    local_iter = local_lane_iter = local_solves = 0
    for _ in range(options.max_iterations):
        if active.size == 0:
            break
        local_iter += 1
        local_lane_iter += active.size
        ctx = batch.iterate(x_new, active)
        a = ctx.matrix[active][:, :batch.dim, :batch.dim]
        z = ctx.rhs[active][:, :batch.dim]
        local_solves += 1
        # Singular lanes come back as NaN rows from the backend and
        # fall into the non-finite failure path right below.
        solved = batch.backend.solve_stacked(a, z)
        delta = solved - x_new[active]
        bad = ~np.isfinite(delta).all(axis=1)
        if bad.any():
            failed.extend(int(l) for l in active[bad])
            active = active[~bad]
            delta = delta[~bad]
            if active.size == 0:
                break
        v_delta = delta[:, :n_nodes]
        max_dv = np.abs(v_delta).max(axis=1) if n_nodes \
            else np.zeros(active.size)
        over = max_dv > options.max_step
        if over.any():
            scale = np.where(over, options.max_step
                             / np.where(over, max_dv, 1.0), 1.0)
            delta = delta * scale[:, None]
        x_new[active] += delta
        tol = options.vtol + options.reltol \
            * np.abs(x_new[active][:, :n_nodes])
        converged = (np.abs(delta[:, :n_nodes]) <= tol).all(axis=1) \
            & ~over
        active = active[~converged]
    else:
        failed.extend(int(l) for l in active)
    if stats is not None:
        stats["solves"] = stats.get("solves", 0) + 1
        stats["iterations"] = stats.get("iterations", 0) + local_iter
        stats["lane_iterations"] = \
            stats.get("lane_iterations", 0) + local_lane_iter
        stats["stacked_solves"] = \
            stats.get("stacked_solves", 0) + local_solves
    for lane in failed:
        x_new[lane] = x[lane]
    return x_new, failed


# ----------------------------------------------------------------------
# DC
# ----------------------------------------------------------------------

def batch_operating_points(circuits: Sequence[Circuit],
                           options: NewtonOptions = NewtonOptions(),
                           batch: Optional[LaneBatch] = None,
                           stats: Optional[dict] = None,
                           backend: BackendLike = None) -> np.ndarray:
    """Stacked DC operating points; ``(B, dim)`` solution stack.

    Lock-step plain Newton first; lanes that fail re-run through the
    scalar :func:`robust_dc_solve` (gmin/source stepping), so the
    result matches the scalar path lane by lane.  Raises
    :class:`AnalysisError` only if a lane fails even scalar-side.
    """
    if batch is None:
        batch = LaneBatch(circuits, backend=backend)
    for circuit in batch.circuits:
        circuit.reset_state()
    batch.reset()
    lanes = np.arange(batch.n_lanes)
    x = np.zeros((batch.n_lanes, batch.dim))
    x, failed = _lockstep_newton(batch, x, lanes, options,
                                 analysis="dc", stats=stats)
    for lane in failed:
        x[lane] = robust_dc_solve(batch.circuits[lane], None, options)
    if stats is not None and failed:
        stats["dc_scalar_fallbacks"] = \
            stats.get("dc_scalar_fallbacks", 0) + len(failed)
    return x


def batch_dc_sweep(circuits: Sequence[Circuit], source_name: str,
                   values: Sequence[float],
                   options: NewtonOptions = NewtonOptions(),
                   stats: Optional[dict] = None,
                   backend: BackendLike = None) -> List[Dataset]:
    """Lane-batched :func:`repro.circuit.dc.dc_sweep`.

    Sweeps the named independent source of *every* lane through the
    shared ``values`` grid, one lock-step DC solve per grid point with
    continuation from the previous point.  Per lane the returned
    :class:`Dataset` carries ``v(node)`` traces plus voltage-source
    branch currents (CNFET current traces, which the MC consumers do
    not read, are omitted).
    """
    batch = LaneBatch(circuits, backend=backend)
    sources = [c.element(source_name) for c in batch.circuits]
    for source in sources:
        if not isinstance(source, (VoltageSource, CurrentSource)):
            raise NetlistError(
                f"{source_name!r} is not an independent source"
            )
    originals = [s.waveform for s in sources]
    lanes = np.arange(batch.n_lanes)
    values = [float(v) for v in values]
    rows = np.empty((len(values), batch.n_lanes, batch.dim))
    try:
        for circuit in batch.circuits:
            circuit.reset_state()
        batch.reset()
        x = np.zeros((batch.n_lanes, batch.dim))
        for i, value in enumerate(values):
            for source in sources:
                source.waveform = DC(value)
            x, failed = _lockstep_newton(batch, x, lanes, options,
                                         analysis="dc", stats=stats)
            for lane in failed:
                x[lane] = robust_dc_solve(
                    batch.circuits[lane],
                    rows[i - 1, lane].copy() if i else None, options)
            rows[i] = x
    finally:
        for source, original in zip(sources, originals):
            source.waveform = original
    datasets = []
    for lane in range(batch.n_lanes):
        dataset = Dataset(source_name, values)
        for node, idx in batch.node_index.items():
            dataset.add_trace(f"v({node})", rows[:, lane, idx])
        for el in batch.circuits[lane].iter_elements(VoltageSource):
            dataset.add_trace(f"i({el.name})", rows[:, lane, el.aux_index])
        datasets.append(dataset)
    return datasets


# ----------------------------------------------------------------------
# Transient
# ----------------------------------------------------------------------

@dataclass
class BatchTransientResult:
    """Per-lane outcome of a :func:`batch_transient` run.

    ``datasets[lane]`` is the lane's waveform set (``None`` when the
    lane failed even scalar-side; ``errors[lane]`` then holds the
    message).  ``fallback_lanes`` lists lanes that left the batch and
    were re-simulated through the scalar engine.
    """

    datasets: List[Optional[Dataset]]
    errors: Dict[int, str] = field(default_factory=dict)
    fallback_lanes: Tuple[int, ...] = ()
    stats: dict = field(default_factory=dict)

    def __getitem__(self, lane: int) -> Dataset:
        dataset = self.datasets[lane]
        if dataset is None:
            raise AnalysisError(
                f"lane {lane} failed: {self.errors.get(lane, 'unknown')}"
            )
        return dataset


class _BatchRecorder:
    """Shared-axis recorder: one time list, per-lane live spans."""

    def __init__(self, x0: np.ndarray) -> None:
        self.times: List[float] = [0.0]
        self.solutions: List[np.ndarray] = [x0.copy()]
        self.length = np.full(x0.shape[0], 1, dtype=int)

    def accept(self, t: float, x: np.ndarray,
               alive: np.ndarray) -> None:
        self.times.append(t)
        self.solutions.append(x.copy())
        self.length[alive] = len(self.times)

    def dataset(self, batch: LaneBatch, lane: int,
                record_currents) -> Dataset:
        k = int(self.length[lane])
        data = np.asarray([s[lane] for s in self.solutions[:k]])
        dataset = Dataset("time", self.times[:k])
        for node, idx in batch.node_index.items():
            dataset.add_trace(f"v({node})", data[:, idx])
        if record_currents:
            circuit = batch.circuits[lane]
            for el in circuit.iter_elements(VoltageSource):
                dataset.add_trace(f"i({el.name})", data[:, el.aux_index])
        if record_currents is True:
            circuit = batch.circuits[lane]
            zeros = np.zeros(data.shape[0])

            def node_trace(node: str) -> np.ndarray:
                idx = batch.node_index.get(node, -1)
                return data[:, idx] if idx >= 0 else zeros

            for el in circuit.iter_elements(CNFETElement):
                d_node, g_node, s_node = el.nodes
                vs_col = node_trace(s_node)
                vgs = node_trace(g_node) - vs_col
                vds = node_trace(d_node) - vs_col
                if el.polarity == "p":
                    vgs, vds = -vgs, -vds
                series = el.backend.ids_many(vgs, vds)
                if el.polarity == "p":
                    series = -series
                dataset.add_trace(f"i({el.name})", series)
        return dataset


def batch_transient(
    circuits: Sequence[Circuit],
    tstop: Union[float, Sequence[float]],
    dt: Optional[float] = None,
    method: str = "trap",
    options: NewtonOptions = NewtonOptions(),
    record_currents: Union[bool, str] = True,
    x0: Optional[np.ndarray] = None,
    max_halvings: Optional[int] = None,
    stats: Optional[dict] = None,
    *,
    adaptive: Optional[bool] = None,
    rtol: Optional[float] = None,
    atol: Optional[float] = None,
    dt_min: Optional[float] = None,
    dt_max: Optional[float] = None,
    scalar_fallback: bool = True,
    batch: Optional[LaneBatch] = None,
    backend: BackendLike = None,
) -> BatchTransientResult:
    """Integrate ``B`` same-topology circuit instances in lock-step.

    Parameters mirror :func:`repro.circuit.transient.transient`;
    differences:

    tstop : float or sequence of float
        Shared or per-lane stop times [s].  Lanes whose stop time is
        shorter than the longest *retire* once reached (their waveforms
        end there) while the remaining lanes keep integrating.
    x0 : numpy.ndarray, optional
        ``(B, dim)`` initial solution stack (default: stacked DC
        operating points via :func:`batch_operating_points`).
    record_currents : bool or "sources"
        ``True`` mirrors the scalar engine (source branch currents
        plus a CNFET drain-current post-pass); ``"sources"`` records
        only the branch currents, which are free columns of the
        solution stack — the CNFET post-pass re-solves every recorded
        row per device, which on a batch's dense shared axis can cost
        more than the integration itself.
    scalar_fallback : bool
        Re-simulate lanes whose lock-step Newton fails irreducibly
        through the scalar engine (default).  With ``False`` such
        lanes report an error instead.
    batch : LaneBatch, optional
        A prebuilt assembler over the same circuits — callers that
        already built one (e.g. for :func:`batch_operating_points`)
        skip the duplicate topology validation and stacked-table
        construction.
    backend : None, str or LinearSolverBackend, optional
        Linear-solver backend for the stacked solves when no prebuilt
        ``batch`` is passed; ``"auto"`` (default) keeps the batched
        dense solve below the sparse crossover dimension and switches
        to per-lane SuperLU above it.

    Stepping modes (shared grid):

    * **fixed** (``dt`` given) — every lane advances at ``dt``; the
      union of all lanes' waveform breakpoints is landed on exactly;
      Newton failures halve the shared step up to ``max_halvings``.
    * **adaptive** — the scalar LTE/PI controller driven by the
      worst-lane scaled error; per-lane predictor history restarts at
      that lane's own waveform breakpoints; rejection (LTE or Newton)
      shrinks the shared step.

    Returns
    -------
    BatchTransientResult
        Per-lane datasets (shared, possibly non-uniform time axis),
        scalar-fallback lanes, per-lane errors, run stats.
    """
    if batch is None:
        batch = LaneBatch(circuits, backend=backend)
    n_lanes = batch.n_lanes
    if np.isscalar(tstop):
        tstops = np.full(n_lanes, float(tstop))
    else:
        tstops = np.asarray(tstop, dtype=float)
        if tstops.shape != (n_lanes,):
            raise ParameterError(
                f"tstop must be a scalar or one value per lane; got "
                f"shape {tstops.shape} for {n_lanes} lanes"
            )
    if (tstops <= 0.0).any():
        raise ParameterError(f"tstop must be > 0: {tstops!r}")
    t_end = float(tstops.max())
    if method not in ("be", "trap"):
        raise ParameterError(f"method must be 'be' or 'trap': {method!r}")
    if adaptive is None:
        adaptive = dt is None
    if not adaptive:
        if dt is None:
            raise ParameterError(
                "fixed-step mode needs dt (omit it or pass adaptive=True "
                "for the adaptive engine)"
            )
        if dt <= 0.0 or dt > t_end:
            raise ParameterError(f"dt must be in (0, tstop]: {dt!r}")
        for name, value in (("rtol", rtol), ("atol", atol),
                            ("dt_min", dt_min), ("dt_max", dt_max)):
            if value is not None:
                raise ParameterError(
                    f"{name} is an adaptive-mode option; fixed-step "
                    f"accuracy is set by dt alone"
                )
        max_halvings = 8 if max_halvings is None else max_halvings
    else:
        if max_halvings is not None:
            raise ParameterError(
                "max_halvings is a fixed-step option; adaptive step "
                "rejection is governed by rtol/atol/dt_min"
            )
        rtol = DEFAULT_RTOL if rtol is None else float(rtol)
        atol = DEFAULT_ATOL if atol is None else float(atol)
        if rtol < 0.0 or atol < 0.0 or rtol + atol <= 0.0:
            raise ParameterError(
                f"need rtol, atol >= 0 and rtol + atol > 0: "
                f"rtol={rtol!r}, atol={atol!r}"
            )
        dt_max = t_end / 50.0 if dt_max is None else float(dt_max)
        dt_min = t_end * 1e-9 if dt_min is None else float(dt_min)
        if not 0.0 < dt_min <= dt_max <= t_end:
            raise ParameterError(
                f"need 0 < dt_min <= dt_max <= tstop: dt_min={dt_min!r}, "
                f"dt_max={dt_max!r}"
            )
        if dt is not None and dt <= 0.0:
            raise ParameterError(f"initial dt must be > 0: {dt!r}")

    run_stats: dict = stats if stats is not None else {}
    for group in batch.groups:
        if hasattr(group, "stats"):
            group.stats = run_stats
    for circuit in batch.circuits:
        circuit.reset_state()
    batch.reset()
    if x0 is None:
        x = batch_operating_points(batch.circuits, options, batch=batch,
                                   stats=run_stats)
    else:
        x = np.asarray(x0, dtype=float).copy()
        if x.shape != (n_lanes, batch.dim):
            raise ParameterError(
                f"x0 has shape {x.shape}, expected "
                f"({n_lanes}, {batch.dim})"
            )

    # Union breakpoint schedule: waveform corners per lane (history
    # restarts apply to the owning lanes only) plus every distinct
    # per-lane stop time (so retirement lands exactly).
    eps = 1e-15 * t_end
    bp_lanes: Dict[float, List[int]] = {}
    for lane, circuit in enumerate(batch.circuits):
        for t in _collect_breakpoints(circuit, float(tstops[lane])):
            bp_lanes.setdefault(t, []).append(lane)
    bp_times = sorted(set(bp_lanes) | {
        float(t) for t in tstops if t < t_end - eps
    })

    state = _RunState(batch, x, tstops, run_stats, record_currents,
                      options, method, scalar_fallback)
    # Prime per-lane group state (previous-step charges) at x0.
    prime_ctx = batch.accept_context(x, x, np.arange(n_lanes), 0.0,
                                     1.0, method)
    for group in batch.groups:
        if hasattr(group, "begin_run"):
            group.begin_run(prime_ctx)
    if adaptive:
        _adaptive_lockstep(state, t_end, bp_times, bp_lanes, rtol, atol,
                           dt_min, dt_max, dt)
    else:
        _fixed_lockstep(state, t_end, bp_times, bp_lanes, dt,
                        max_halvings)
    return state.finish(dt=dt, adaptive=adaptive, rtol=rtol, atol=atol,
                        dt_min=dt_min, dt_max=dt_max,
                        max_halvings=max_halvings)


class _RunState:
    """Shared bookkeeping of both lock-step stepping loops."""

    def __init__(self, batch: LaneBatch, x: np.ndarray,
                 tstops: np.ndarray, stats: dict, record_currents: bool,
                 options: NewtonOptions, method: str,
                 scalar_fallback: bool) -> None:
        self.batch = batch
        self.x = x
        self.x0 = x.copy()
        self.tstops = tstops
        self.stats = stats
        self.record_currents = record_currents
        self.options = options
        self.method = method
        self.scalar_fallback = scalar_fallback
        self.alive = np.ones(batch.n_lanes, dtype=bool)
        self.recorder = _BatchRecorder(x)
        self.dropped: List[int] = []

    @property
    def alive_lanes(self) -> np.ndarray:
        return np.flatnonzero(self.alive)

    def drop(self, lanes: Sequence[int]) -> None:
        """Remove lanes from the batch (scalar fallback at finish)."""
        for lane in lanes:
            self.alive[lane] = False
            self.dropped.append(int(lane))

    def retire(self, t: float, eps: float) -> None:
        done = self.alive & (self.tstops <= t + eps)
        if done.any():
            self.alive &= ~done
            self.stats["retired_lanes"] = \
                self.stats.get("retired_lanes", 0) + int(done.sum())

    def accept(self, t: float, x_new: np.ndarray, step: float) -> None:
        alive = self.alive_lanes
        ctx = self.batch.accept_context(x_new, self.x, alive, t, step,
                                        self.method)
        for group in self.batch.groups:
            group.accept(ctx)
        self.recorder.accept(t, x_new, alive)
        self.x = x_new
        self.stats["steps"] = self.stats.get("steps", 0) + 1

    def finish(self, **run_kwargs) -> BatchTransientResult:
        batch = self.batch
        datasets: List[Optional[Dataset]] = [None] * batch.n_lanes
        errors: Dict[int, str] = {}
        for lane in range(batch.n_lanes):
            if lane not in self.dropped:
                datasets[lane] = self.recorder.dataset(
                    batch, lane, self.record_currents)
        fallback: List[int] = []
        for lane in self.dropped:
            if not self.scalar_fallback:
                errors[lane] = "lock-step Newton failed (scalar " \
                    "fallback disabled)"
                continue
            fallback.append(lane)
            try:
                datasets[lane] = self._scalar_rerun(lane, run_kwargs)
            except AnalysisError as exc:
                errors[lane] = str(exc)
        self.stats["fallback_lanes"] = len(fallback)
        return BatchTransientResult(
            datasets=datasets, errors=errors,
            fallback_lanes=tuple(fallback), stats=self.stats,
        )

    def _scalar_rerun(self, lane: int, run_kwargs: dict) -> Dataset:
        """Exact per-lane fallback: the scalar engine, same settings."""
        kwargs = dict(
            tstop=float(self.tstops[lane]), method=self.method,
            options=self.options,
            record_currents=self.record_currents,
            x0=self.x0[lane].copy(),
        )
        if run_kwargs["adaptive"]:
            fb_dt_max = min(run_kwargs["dt_max"], kwargs["tstop"] / 2.0)
            kwargs.update(
                adaptive=True, rtol=run_kwargs["rtol"],
                atol=run_kwargs["atol"],
                dt_min=min(run_kwargs["dt_min"], fb_dt_max),
                dt_max=fb_dt_max,
            )
            if run_kwargs["dt"] is not None:
                kwargs["dt"] = run_kwargs["dt"]
        else:
            kwargs.update(dt=run_kwargs["dt"],
                          max_halvings=run_kwargs["max_halvings"])
        return transient(self.batch.circuits[lane], **kwargs)


def _next_bp(bp_times: List[float], bp_idx: int, t: float,
             eps: float) -> int:
    n = len(bp_times)
    while bp_idx < n and bp_times[bp_idx] <= t + eps:
        bp_idx += 1
    return bp_idx


def _fixed_lockstep(state: _RunState, t_end: float,
                    bp_times: List[float], bp_lanes: Dict[float, List[int]],
                    dt: float, max_halvings: int) -> None:
    """Shared-grid fixed-step march (lock-step twin of
    :func:`repro.circuit.transient._fixed_loop`)."""
    batch = state.batch
    options = state.options
    t = 0.0
    current_dt = dt
    halvings = 0
    bp_idx = 0
    eps = 1e-15 * t_end
    while state.alive.any() and t < t_end - eps:
        bp_idx = _next_bp(bp_times, bp_idx, t, eps)
        step = min(current_dt, t_end - t)
        landing = (bp_idx < len(bp_times)
                   and bp_times[bp_idx] - t <= step * (1.0 + 1e-12))
        if landing:
            t_next = bp_times[bp_idx]
            step = t_next - t
        else:
            t_next = t + step
        alive = state.alive_lanes
        x_new, failed = _lockstep_newton(
            batch, state.x, alive, options, analysis="tran",
            time=t_next, dt=step, x_prev=state.x, method=state.method,
            stats=state.stats,
        )
        if failed:
            state.stats["rejected_newton"] = \
                state.stats.get("rejected_newton", 0) + 1
            if halvings >= max_halvings:
                # The shared step cannot shrink further: the failing
                # lanes leave the batch, everyone else retries.
                state.drop(failed)
                if not state.alive.any():
                    return
                continue
            current_dt = step / 2.0
            halvings += 1
            continue
        state.accept(t_next, x_new, step)
        t = t_next
        state.retire(t, eps)
        if landing:
            bp_idx += 1
            state.stats["breakpoints_hit"] = \
                state.stats.get("breakpoints_hit", 0) + 1
        if current_dt < dt:
            current_dt = min(dt, current_dt * 2.0)
            halvings = max(0, halvings - 1)


def _adaptive_lockstep(state: _RunState, t_end: float,
                       bp_times: List[float],
                       bp_lanes: Dict[float, List[int]],
                       rtol: float, atol: float, dt_min: float,
                       dt_max: float, dt0: Optional[float]) -> None:
    """Worst-lane LTE-controlled lock-step integration.

    The per-step controller is the scalar adaptive loop verbatim —
    predictor, divisors, PI update, rejection paths — except that the
    accept/reject decision is made once for the whole batch from the
    *largest* per-lane scaled error, and the predictor history is
    per-lane (a source breakpoint restarts only the lanes whose
    waveform owns it).
    """
    batch = state.batch
    options = state.options
    method = state.method
    n_nodes = batch.n_nodes
    n_lanes = batch.n_lanes
    k_order = 2 if method == "be" else 3
    t = 0.0
    h = min(dt_max, t_end / 1000.0) if dt0 is None else min(dt0, dt_max)
    err_prev = 1.0
    bp_idx = 0
    eps = 1e-15 * t_end
    accepted = 0
    hist: List[Tuple[float, np.ndarray]] = [(0.0, state.x.copy())]
    hist_count = np.ones(n_lanes, dtype=int)
    while state.alive.any() and t < t_end - eps:
        bp_idx = _next_bp(bp_times, bp_idx, t, eps)
        h = min(max(h, dt_min), dt_max)
        step = min(h, t_end - t)
        landing = (bp_idx < len(bp_times)
                   and bp_times[bp_idx] - t <= step * (1.0 + 1e-12))
        if landing:
            t_next = bp_times[bp_idx]
            step = t_next - t
        else:
            t_next = t + step
        x_pred, divisor, has_pred = _predict_lanes(
            hist, hist_count, t_next, method, state.x)
        alive = state.alive_lanes
        x_new, failed = _lockstep_newton(
            batch, state.x, alive, options, analysis="tran",
            time=t_next, dt=step, x_prev=state.x, method=method,
            x_start=x_pred, stats=state.stats,
        )
        if failed:
            state.stats["rejected_newton"] = \
                state.stats.get("rejected_newton", 0) + 1
            shrunk = max(step * _NEWTON_SHRINK, dt_min)
            if shrunk >= step * (1.0 - 1e-12):
                # Irreducible step: the failing lanes leave the batch,
                # the remaining lanes retry the same step.
                state.drop(failed)
                if not state.alive.any():
                    return
            else:
                h = shrunk
            continue

        # Worst-lane scaled LTE over alive lanes with a predictor.
        err = None
        scoring = state.alive & has_pred
        if scoring.any():
            lanes = np.flatnonzero(scoring)
            v_now = np.abs(state.x[lanes][:, :n_nodes])
            v_next = np.abs(x_new[lanes][:, :n_nodes])
            weight = atol + rtol * np.maximum(v_now, v_next)
            diff = np.abs(x_new[lanes][:, :n_nodes]
                          - x_pred[lanes][:, :n_nodes])
            lane_err = (diff / weight).max(axis=1) / divisor[lanes] \
                if n_nodes else np.zeros(lanes.size)
            err = float(lane_err.max())
        if err is not None and err > 1.0:
            shrunk = max(
                step * min(0.5, max(0.1,
                                    _SAFETY * err ** (-1.0 / k_order))),
                dt_min,
            )
            if shrunk < step * (1.0 - 1e-12):
                state.stats["rejected_lte"] = \
                    state.stats.get("rejected_lte", 0) + 1
                h = shrunk
                continue
            # Irreducible: accept as the best available (scalar twin).

        state.accept(t_next, x_new, step)
        t = t_next
        accepted += 1
        if accepted > _MAX_ACCEPTED_STEPS:
            raise AnalysisError(
                f"batch transient exceeded {_MAX_ACCEPTED_STEPS} "
                f"accepted steps; loosen rtol/atol or raise dt_min"
            )
        state.stats["dt_smallest"] = min(
            state.stats.get("dt_smallest", step), step)
        state.stats["dt_largest"] = max(
            state.stats.get("dt_largest", step), step)
        state.retire(t, eps)
        if err is None or err <= 0.0:
            fac = _FAC_BLIND
        else:
            fac = _SAFETY * err ** (-0.7 / k_order) \
                * err_prev ** (0.4 / k_order)
            fac = min(_FAC_MAX, max(_FAC_MIN, fac))
            err_prev = max(err, 1e-4)
        if (state.alive & (hist_count < 2)).any():
            # Some lane is predictor-blind (its history just restarted
            # at a breakpoint): its error is invisible to the worst-
            # lane controller, so growth is capped exactly like the
            # scalar engine's no-estimate steps — otherwise the other
            # lanes' plateau-small errors would quintuple the shared
            # step right through the restarting lane's edge.
            fac = min(fac, _FAC_BLIND)
        h = step * fac
        hist.append((t, state.x.copy()))
        if len(hist) > 3:
            hist.pop(0)
        hist_count = np.minimum(hist_count + 1, 3)
        if landing:
            bp_idx += 1
            state.stats["breakpoints_hit"] = \
                state.stats.get("breakpoints_hit", 0) + 1
            restart = [lane for lane in bp_lanes.get(t_next, ())
                       if state.alive[lane]]
            if restart:
                # Source derivative discontinuity: restart the
                # predictor for the owning lanes and re-enter
                # cautiously (worst-lane controller, so the shared
                # step shrinks once for the whole batch).
                hist_count[restart] = 1
                h = max(dt_min, h * _BREAKPOINT_SHRINK)
                err_prev = 1.0


def _predict_lanes(hist: List[Tuple[float, np.ndarray]],
                   hist_count: np.ndarray, t_next: float, method: str,
                   x: np.ndarray
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-lane predictor stack, LTE divisors, and a has-predictor mask
    (vectorized :func:`repro.circuit.transient._predict`)."""
    n_lanes = hist_count.shape[0]
    divisor = np.ones(n_lanes)
    has_pred = hist_count >= 2
    x_pred = x.copy()
    if len(hist) >= 2:
        (t1, x1), (t2, x2) = hist[-2], hist[-1]
        linear = x2 + (x2 - x1) * ((t_next - t2) / (t2 - t1))
        lin_mask = has_pred if method != "trap" \
            else has_pred & (hist_count < 3)
        if method == "trap":
            divisor[has_pred & (hist_count < 3)] = 2.0
        else:
            divisor[has_pred] = 3.0
        x_pred[lin_mask] = linear[lin_mask]
    if method == "trap" and len(hist) >= 3:
        quad_mask = hist_count >= 3
        if quad_mask.any():
            (t0, x0), (t1, x1), (t2, x2) = hist[-3], hist[-2], hist[-1]
            l0 = (t_next - t1) * (t_next - t2) / ((t0 - t1) * (t0 - t2))
            l1 = (t_next - t0) * (t_next - t2) / ((t1 - t0) * (t1 - t2))
            l2 = (t_next - t0) * (t_next - t1) / ((t2 - t0) * (t2 - t1))
            quad = l0 * x0 + l1 * x1 + l2 * x2
            x_pred[quad_mask] = quad[quad_mask]
            divisor[quad_mask] = 11.0
    return x_pred, divisor, has_pred
