"""Chunked on-disk waveform store (the out-of-core Dataset backing).

A store is a directory::

    meta.json          # schema: axis name, column names, chunk table
    chunk_00000.npy    # (rows, columns) float64, written atomically
    chunk_00001.npy
    quarantine/        # chunks that failed validation on open

Rows are appended one accepted transient step at a time (``[t, x...]``
— the time point plus the full solution vector) into a bounded buffer
and flushed every ``chunk_rows`` rows, so a run's peak memory is one
chunk regardless of trace length.  Every chunk write goes through the
``persist.truncate`` fault seam (:func:`repro.faults.mangle_bytes`) and
lands via write-to-temp + :func:`os.replace`, mirroring the campaign
record convention; ``meta.json`` is rewritten (atomically) after each
flush, so a crash leaves at most one unreferenced temp file.

Reads are chunked too: :meth:`WaveformStore.read_column` materialises
one trace (a single column) at a time, loading chunks memory-mapped,
and :meth:`WaveformStore.open` validates the chunk table — a truncated
or unloadable chunk and everything after it is moved to
``quarantine/`` and the row count shrinks to the surviving prefix
(recomputing the run then simply rewrites the store).  The lazy
:class:`repro.circuit.results.Dataset` mode sits directly on this
class; see ``docs/partitioning.md`` for the layout/schema contract.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import faults
from repro.errors import ParameterError, StoreError

#: on-disk schema version (bumped on incompatible layout changes)
STORE_VERSION = 1

#: default rows per chunk — 256 rows x a 709-unknown rca32 solution is
#: ~1.4 MB of buffer, the out-of-core peak per store
DEFAULT_CHUNK_ROWS = 256


def _chunk_name(index: int) -> str:
    return f"chunk_{index:05d}.npy"


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class WaveformStore:
    """One on-disk waveform matrix: a time axis plus named columns.

    Create a writable store with :meth:`create`, append rows with
    :meth:`append` and finish with :meth:`close` (or use the instance
    as a context manager); reopen an existing directory with
    :meth:`open`, which validates and quarantines corrupt chunks.
    """

    def __init__(self, directory: Path, columns: List[str],
                 exposed: List[str], chunk_rows: int,
                 chunks: List[Dict], writable: bool,
                 quarantined: int = 0) -> None:
        self.directory = Path(directory)
        self.columns = list(columns)
        self.exposed = list(exposed)
        self.chunk_rows = int(chunk_rows)
        self._chunks = list(chunks)
        self._writable = writable
        #: chunks moved to ``quarantine/`` by open-time validation
        self.quarantined = quarantined
        self._buffer: List[np.ndarray] = []
        self._column_index = {name: i for i, name in enumerate(columns)}

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def create(cls, directory: Union[str, Path], columns: Sequence[str],
               exposed: Optional[Sequence[str]] = None,
               chunk_rows: int = DEFAULT_CHUNK_ROWS) -> "WaveformStore":
        """Create (or reset) a writable store in ``directory``.

        Existing chunks and metadata are removed — a store holds
        exactly one run; ``quarantine/`` is left in place as the
        forensic record of earlier validation failures.
        """
        if chunk_rows < 1:
            raise ParameterError(
                f"chunk_rows must be >= 1, got {chunk_rows!r}")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for stale in directory.glob("chunk_*.npy"):
            stale.unlink()
        for stale in directory.glob("*.tmp"):
            stale.unlink()
        meta = directory / "meta.json"
        if meta.exists():
            meta.unlink()
        store = cls(directory, list(columns),
                    list(exposed if exposed is not None else columns),
                    chunk_rows, [], writable=True)
        store._write_meta()
        return store

    @classmethod
    def open(cls, directory: Union[str, Path],
             validate: bool = True) -> "WaveformStore":
        """Open an existing store read-only.

        With ``validate`` (default), every chunk in the metadata table
        is load-checked; the first corrupt chunk **and every chunk
        after it** (their rows would otherwise shift) are moved to
        ``quarantine/`` and the store shrinks to the surviving prefix.
        """
        directory = Path(directory)
        meta_path = directory / "meta.json"
        if not meta_path.exists():
            raise StoreError(f"no waveform store at {directory} "
                             f"(missing meta.json)")
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, ValueError) as exc:
            raise StoreError(
                f"unreadable store metadata {meta_path}: {exc}") from exc
        if meta.get("version") != STORE_VERSION:
            raise StoreError(
                f"store {directory} has schema version "
                f"{meta.get('version')!r}, expected {STORE_VERSION}")
        chunks = list(meta.get("chunks", []))
        quarantined = 0
        if validate:
            keep: List[Dict] = []
            bad_from: Optional[int] = None
            for i, entry in enumerate(chunks):
                path = directory / entry["file"]
                try:
                    array = np.load(path, mmap_mode="r")
                    ok = (array.ndim == 2
                          and array.shape[0] == entry["rows"]
                          and array.shape[1] == len(meta["columns"]))
                    del array
                except (OSError, ValueError):
                    ok = False
                if not ok:
                    bad_from = i
                    break
                keep.append(entry)
            if bad_from is not None:
                quarantine = directory / "quarantine"
                quarantine.mkdir(exist_ok=True)
                for entry in chunks[bad_from:]:
                    path = directory / entry["file"]
                    if path.exists():
                        os.replace(path, quarantine / entry["file"])
                    quarantined += 1
                chunks = keep
        return cls(directory, meta["columns"],
                   meta.get("exposed", meta["columns"]),
                   meta.get("chunk_rows", DEFAULT_CHUNK_ROWS),
                   chunks, writable=False, quarantined=quarantined)

    def close(self) -> None:
        """Flush the row buffer and finalise the metadata."""
        if self._writable:
            self.flush()
            self._writable = False

    def __enter__(self) -> "WaveformStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- writing ---------------------------------------------------------------

    def append(self, row: np.ndarray) -> None:
        """Append one row (length ``len(self.columns)``); flushed to a
        chunk file every ``chunk_rows`` rows."""
        if not self._writable:
            raise StoreError(f"store {self.directory} is not writable")
        row = np.asarray(row, dtype=float)
        if row.shape != (len(self.columns),):
            raise ParameterError(
                f"row has shape {row.shape}, store has "
                f"{len(self.columns)} columns")
        self._buffer.append(row.copy())
        if len(self._buffer) >= self.chunk_rows:
            self.flush()

    def flush(self) -> None:
        """Write the buffered rows as the next chunk (atomic: temp file
        + rename, through the ``persist.truncate`` fault seam)."""
        if not self._buffer:
            return
        array = np.vstack(self._buffer)
        self._buffer = []
        name = _chunk_name(len(self._chunks))
        path = self.directory / name
        import io

        sink = io.BytesIO()
        np.save(sink, array)
        payload = faults.mangle_bytes("persist.truncate", sink.getvalue())
        _atomic_write_bytes(path, payload)
        self._chunks.append({"file": name, "rows": int(array.shape[0])})
        self._write_meta()

    def _write_meta(self) -> None:
        payload = {
            "version": STORE_VERSION,
            "axis_name": self.columns[0] if self.columns else "time",
            "columns": self.columns,
            "exposed": self.exposed,
            "chunk_rows": self.chunk_rows,
            "rows": self.n_rows,
            "chunks": self._chunks,
        }
        _atomic_write_bytes(self.directory / "meta.json",
                            json.dumps(payload, indent=1).encode())

    # -- reading ---------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        """Total rows across committed chunks (plus the write buffer)."""
        return sum(entry["rows"] for entry in self._chunks) \
            + len(self._buffer)

    @property
    def axis_name(self) -> str:
        """Name of column 0 (the sweep axis, ``time`` for transients)."""
        return self.columns[0] if self.columns else "time"

    def column_index(self, name: str) -> int:
        """Index of a named column (:class:`ParameterError` if absent)."""
        try:
            return self._column_index[name]
        except KeyError:
            raise ParameterError(
                f"store has no column {name!r}; columns: "
                f"{', '.join(self.columns)}") from None

    def iter_chunks(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(start_row, chunk_array)`` pairs, memory-mapped.

        A chunk that no longer loads (truncated by a crash after it
        entered the table) raises :class:`StoreError` — reopening the
        directory with :meth:`open` quarantines it.
        """
        if self._buffer:
            self.flush()
        start = 0
        for entry in self._chunks:
            path = self.directory / entry["file"]
            try:
                array = np.load(path, mmap_mode="r")
            except (OSError, ValueError) as exc:
                raise StoreError(
                    f"corrupt waveform chunk {path}: {exc} "
                    f"(reopen the store to quarantine it)") from exc
            yield start, array
            start += entry["rows"]

    def read_column(self, column: Union[int, str], start: int = 0,
                    stop: Optional[int] = None) -> np.ndarray:
        """Materialise one column slice ``[start:stop]``, chunk-wise.

        Peak memory is the returned slice plus one memory-mapped
        chunk; the full waveform matrix is never resident.
        """
        idx = self.column_index(column) if isinstance(column, str) \
            else int(column)
        if idx < 0 or idx >= len(self.columns):
            raise ParameterError(
                f"column index {idx} out of range "
                f"(store has {len(self.columns)} columns)")
        total = self.n_rows
        if stop is None or stop > total:
            stop = total
        start = max(0, int(start))
        if stop <= start:
            return np.empty(0)
        out = np.empty(stop - start)
        for chunk_start, array in self.iter_chunks():
            chunk_stop = chunk_start + array.shape[0]
            if chunk_stop <= start:
                continue
            if chunk_start >= stop:
                break
            lo = max(start, chunk_start) - chunk_start
            hi = min(stop, chunk_stop) - chunk_start
            dst = max(start, chunk_start) - start
            out[dst:dst + (hi - lo)] = array[lo:hi, idx]
        return out
