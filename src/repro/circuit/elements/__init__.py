"""Circuit elements for the MNA engine."""

from repro.circuit.elements.base import Element, StampContext
from repro.circuit.elements.capacitor import Capacitor
from repro.circuit.elements.cnfet import CNFETElement
from repro.circuit.elements.diode import Diode
from repro.circuit.elements.inductor import Inductor
from repro.circuit.elements.resistor import Resistor
from repro.circuit.elements.sources import CurrentSource, VoltageSource

__all__ = [
    "Element",
    "StampContext",
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "Diode",
    "CNFETElement",
]
