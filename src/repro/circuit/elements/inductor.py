"""Linear inductor (auxiliary branch-current formulation)."""

from __future__ import annotations

from repro.circuit.elements.base import Element, StampContext
from repro.errors import ParameterError


class Inductor(Element):
    """Two-terminal linear inductor with one auxiliary current unknown.

    DC: behaves as a 0 V source (short).  Transient (BE):
    ``v = L di/dt  ->  v_n - (L/dt)(i_n - i_prev) = 0``; trapezoidal
    keeps the previous voltage as extra state.
    """

    n_aux = 1

    def __init__(self, name: str, a: str, b: str, inductance: float) -> None:
        super().__init__(name, (a, b))
        if inductance <= 0.0:
            raise ParameterError(
                f"{name}: inductance must be > 0, got {inductance!r}"
            )
        self.inductance = float(inductance)
        self._v_prev = 0.0

    def reset_state(self) -> None:
        self._v_prev = 0.0

    def stamp(self, ctx: StampContext) -> None:
        """Stamp the branch equation (DC short; transient
        companion voltage source behind the branch current)."""
        a, b = self.nodes
        ia, ib = ctx.idx(a), ctx.idx(b)
        k = self.aux_index
        # KCL coupling: aux current leaves a, enters b.
        ctx.add_entry(ia, k, 1.0)
        ctx.add_entry(ib, k, -1.0)
        # Branch equation row.
        ctx.add_entry(k, ia, 1.0)
        ctx.add_entry(k, ib, -1.0)
        if ctx.analysis != "tran" or ctx.dt is None:
            # DC: v_a - v_b = 0 (ideal short).
            return
        l_over_dt = self.inductance / ctx.dt
        i_prev = float(ctx.x_prev[k]) if ctx.x_prev is not None else 0.0
        if ctx.method == "trap":
            # v_n + v_prev = (2L/dt)(i_n - i_prev)
            ctx.add_entry(k, k, -2.0 * l_over_dt)
            ctx.add_rhs(k, -2.0 * l_over_dt * i_prev + self._v_prev * -1.0)
        else:
            ctx.add_entry(k, k, -l_over_dt)
            ctx.add_rhs(k, -l_over_dt * i_prev)

    def accept_step(self, ctx: StampContext) -> None:
        a, b = self.nodes
        self._v_prev = ctx.voltage(a) - ctx.voltage(b)
