"""Junction diode with Newton companion model."""

from __future__ import annotations

import math

from repro.circuit.elements.base import Element, StampContext
from repro.errors import ParameterError


class Diode(Element):
    """Shockley diode ``I = Is (exp(V/(n Vt)) - 1)`` with junction
    voltage limiting and a gmin shunt for convergence."""

    nonlinear = True

    def __init__(self, name: str, anode: str, cathode: str,
                 saturation_current: float = 1e-14,
                 emission_coefficient: float = 1.0,
                 temperature_k: float = 300.0) -> None:
        super().__init__(name, (anode, cathode))
        if saturation_current <= 0.0:
            raise ParameterError(
                f"{name}: Is must be > 0, got {saturation_current!r}"
            )
        if emission_coefficient <= 0.0:
            raise ParameterError(
                f"{name}: emission coefficient must be > 0"
            )
        self.saturation_current = saturation_current
        self.n_vt = emission_coefficient * 8.617333262e-5 * temperature_k
        #: critical voltage for junction limiting
        self.v_crit = self.n_vt * math.log(self.n_vt /
                                           (saturation_current * math.sqrt(2)))

    def current_and_conductance(self, v: float) -> tuple[float, float]:
        """``(I(v), dI/dv)`` with exponent clamping."""
        x = v / self.n_vt
        if x > 80.0:
            # Linearise beyond the clamp to keep Newton finite.
            e = math.exp(80.0)
            i = self.saturation_current * (e * (1.0 + (x - 80.0)) - 1.0)
            g = self.saturation_current * e / self.n_vt
        else:
            e = math.exp(x)
            i = self.saturation_current * (e - 1.0)
            g = self.saturation_current * e / self.n_vt
        return i, g

    def stamp(self, ctx: StampContext) -> None:
        """Stamp the linearised Shockley companion (conductance +
        residual current) around the current iterate."""
        a, c = self.nodes
        v = ctx.voltage(a) - ctx.voltage(c)
        i, g = self.current_and_conductance(v)
        ctx.add_conductance(a, c, g + ctx.gmin)
        # Companion current: I(vk) - g*vk as an independent source.
        ctx.add_current(a, c, i - g * v)
