"""Linear capacitor with BE/trapezoidal companion models."""

from __future__ import annotations

import numpy as np

from repro.circuit.elements.base import (
    Element,
    LaneContext,
    LaneGroup,
    StampContext,
)
from repro.errors import ParameterError


class _CapacitorLaneGroup(LaneGroup):
    """Vectorized BE/trap companion across lanes.

    The per-lane trapezoidal branch-current state lives in the group
    (one array), not in the element objects, so a scalar re-run of a
    fallback lane starts from its own clean element state.
    """

    def __init__(self, elements) -> None:
        super().__init__(elements)
        self.c = np.array([el.capacitance for el in elements])
        self.i_prev = np.zeros(len(elements))

    def reset(self) -> None:
        self.i_prev[:] = 0.0

    def _v(self, ctx: LaneContext, x) -> np.ndarray:
        a, b = self.elements[0].nodes
        return ctx.voltages(a, x) - ctx.voltages(b, x)

    def stamp(self, ctx: LaneContext) -> None:
        if ctx.analysis != "tran" or ctx.dt is None:
            return
        a, b = self.elements[0].nodes
        ia, ib = ctx.idx(a), ctx.idx(b)
        lanes = ctx.lanes
        c = self.c[lanes]
        v_prev = self._v(ctx, ctx.x_prev)
        if ctx.method == "trap":
            geq = 2.0 * c / ctx.dt
            ieq = -(geq * v_prev + self.i_prev[lanes])
        else:  # backward Euler
            geq = c / ctx.dt
            ieq = -geq * v_prev
        matrix = ctx.matrix
        matrix[lanes, ia, ia] += geq
        matrix[lanes, ib, ib] += geq
        matrix[lanes, ia, ib] -= geq
        matrix[lanes, ib, ia] -= geq
        ctx.rhs[lanes, ia] -= ieq
        ctx.rhs[lanes, ib] += ieq

    def accept(self, ctx: LaneContext) -> None:
        if ctx.dt is None:
            return
        lanes = ctx.lanes
        c = self.c[lanes]
        dv = self._v(ctx, ctx.x) - self._v(ctx, ctx.x_prev)
        if ctx.method == "trap":
            self.i_prev[lanes] = (2.0 * c / ctx.dt) * dv \
                - self.i_prev[lanes]
        else:
            self.i_prev[lanes] = c * dv / ctx.dt


class Capacitor(Element):
    """Two-terminal linear capacitor.

    DC: open circuit (no stamp).  Transient: companion conductance
    ``geq = C/dt`` (backward Euler) or ``2C/dt`` (trapezoidal, which
    also carries the previous branch current as state).
    """

    def __init__(self, name: str, a: str, b: str, capacitance: float,
                 ic: float | None = None) -> None:
        super().__init__(name, (a, b))
        if capacitance <= 0.0:
            raise ParameterError(
                f"{name}: capacitance must be > 0, got {capacitance!r}"
            )
        self.capacitance = float(capacitance)
        #: optional initial voltage for transient start
        self.initial_voltage = ic
        self._i_prev = 0.0

    def reset_state(self) -> None:
        self._i_prev = 0.0

    def stamp(self, ctx: StampContext) -> None:
        """Stamp the BE/trapezoidal companion conductance and
        history current (no DC stamp: a capacitor is open)."""
        if ctx.analysis != "tran" or ctx.dt is None:
            return
        a, b = self.nodes
        c = self.capacitance
        v_prev = ctx.previous_voltage(a) - ctx.previous_voltage(b)
        if ctx.method == "trap":
            geq = 2.0 * c / ctx.dt
            ieq = -(geq * v_prev + self._i_prev)
        else:  # backward Euler
            geq = c / ctx.dt
            ieq = -geq * v_prev
        ctx.add_conductance(a, b, geq)
        # Equivalent history current source from a to b.
        ctx.add_current(a, b, ieq)

    def accept_step(self, ctx: StampContext) -> None:
        if ctx.dt is None:
            return
        a, b = self.nodes
        v_now = ctx.voltage(a) - ctx.voltage(b)
        v_prev = ctx.previous_voltage(a) - ctx.previous_voltage(b)
        if ctx.method == "trap":
            geq = 2.0 * self.capacitance / ctx.dt
            self._i_prev = geq * (v_now - v_prev) - self._i_prev
        else:
            self._i_prev = self.capacitance * (v_now - v_prev) / ctx.dt

    @classmethod
    def lane_group(cls, elements):
        return _CapacitorLaneGroup(elements)
