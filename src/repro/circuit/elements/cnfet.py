"""CNFET circuit element (the paper's Fig. 1 device in MNA form).

DC: a nonlinear voltage-controlled current source ``IDS(VGS, VDS)``.
The inner self-consistent voltage is solved *inside* the evaluation —
closed-form for the fast piecewise backend, Newton for the reference
backend — and the small-signal stamps (gm, gds) are computed
analytically through the implicit-function theorem on the charge-balance
residual:

``dVSC/dVGS = -CG / (CSum - dDQ/dVSC)``
``dVSC/dVDS = -(CD - Q'(VSC+VDS)) / (CSum - dDQ/dVSC)``

with ``dDQ/dVSC = Q'(VSC) + Q'(VSC+VDS)`` — all quantities the piecewise
model evaluates in closed form, so a Newton iteration of the circuit
engine costs a handful of polynomial evaluations per device.

Transient: terminal charges (gate / drain, with the source taking the
balance so the three displacement currents sum to zero) are companion-
modelled with *analytic* charge partials derived from the same
implicit-function solve — one closed-form solve per Newton iteration
covers current, small-signal and charge stamps (the previous-step
charges are memoised per accepted step, since ``x_prev`` is frozen
while a step iterates).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple, Union

import numpy as np

from repro.circuit.elements.base import Element, StampContext
from repro.errors import ParameterError
from repro.pwl.device import CNFET, _log1pexp_many
from repro.reference.fettoy import FETToyModel


def _log1pexp(x: float) -> float:
    """Stable ``log(1 + exp(x))`` (order-0 Fermi-Dirac integral)."""
    if x > 35.0:
        return x
    if x < -35.0:
        return math.exp(x)
    return math.log1p(math.exp(x))


def _logistic(x: float) -> float:
    """``1 / (1 + exp(-x))`` — derivative of ``_log1pexp``."""
    if x >= 0.0:
        return 1.0 / (1.0 + math.exp(-x))
    e = math.exp(x)
    return e / (1.0 + e)


class _Backend:
    """Uniform view over the fast (CNFET) and reference (FETToyModel)
    devices: vsc solve, mobile-charge curve and derivative, current."""

    def __init__(self, device: Union[CNFET, FETToyModel]) -> None:
        self.device = device
        if isinstance(device, CNFET):
            self.caps = device.capacitances
            self.kt = device._kt
            self.ef = device._ef
            self.pref = device._i_prefactor
            self._solve = lambda vgs, vds: device.solver.solve(vgs, vds, 0.0)
            self._q = device.fitted.curve.value
            self._dq = device.fitted.curve.derivative
        elif isinstance(device, FETToyModel):
            self.caps = device.capacitances
            self.kt = device.kt_ev
            self.ef = device.params.fermi_level_ev
            self.pref = (
                device.params.transmission
                * device.params.temperature_k
                * 2.0 * 1.602176634e-19 * 1.380649e-23
                / (math.pi * 1.054571817e-34)
            )
            self._solve = lambda vgs, vds: device.solve_vsc(vgs, vds, 0.0)
            self._q = lambda u: float(device.charge.qs(u))
            self._dq = lambda u: float(device.charge.dqs_dvsc(u))
        else:
            raise ParameterError(
                f"unsupported CNFET backend {type(device).__name__}; "
                "expected repro.pwl.CNFET or repro.reference.FETToyModel"
            )

    def evaluate(self, vgs: float, vds: float
                 ) -> Tuple[float, float, float, float]:
        """``(ids, gm, gds, vsc)`` at a source-referenced bias point."""
        return self.evaluate_full(vgs, vds)[:4]

    def evaluate_full(self, vgs: float, vds: float,
                      with_charge: bool = False) -> Tuple[
            float, float, float, float, float, float, float, float]:
        """One solve, every stamp ingredient.

        Returns ``(ids, gm, gds, vsc, dvsc_dvgs, dvsc_dvds, q_d, dq_d)``
        where ``q_d = Q(VSC + VDS)`` is the mobile drain charge and
        ``dq_d`` its derivative.  ``q_d`` is only evaluated when
        ``with_charge`` (the transient companion stamps); DC iterations
        skip that extra charge-curve evaluation and receive 0.0 there.
        """
        vsc = self._solve(vgs, vds)
        kt = self.kt
        eta_s = (self.ef - vsc) / kt
        eta_d = eta_s - vds / kt
        ids = self.pref * (_log1pexp(eta_s) - _log1pexp(eta_d))
        sig_s = _logistic(eta_s)
        sig_d = _logistic(eta_d)
        di_dvsc = (self.pref / kt) * (sig_d - sig_s)
        di_dvds_direct = (self.pref / kt) * sig_d
        dq_s = self._dq(vsc)
        dq_d = self._dq(vsc + vds)
        denominator = self.caps.csum - dq_s - dq_d
        dvsc_dvgs = -self.caps.cg / denominator
        dvsc_dvds = -(self.caps.cd - dq_d) / denominator
        gm = di_dvsc * dvsc_dvgs
        gds = di_dvds_direct + di_dvsc * dvsc_dvds
        q_d = self._q(vsc + vds) if with_charge else 0.0
        return ids, gm, gds, vsc, dvsc_dvgs, dvsc_dvds, q_d, dq_d

    def charges(self, vgs: float, vds: float,
                length_m: float) -> Tuple[float, float, float]:
        """Terminal charges (gate, drain, source) [C]; they sum to zero
        by construction so transient displacement currents conserve
        charge."""
        vsc = self._solve(vgs, vds)
        caps = self.caps
        qg = length_m * caps.cg * (vgs + vsc)
        qd = length_m * (caps.cd * (vds + vsc) - self._q(vsc + vds))
        return qg, qd, -(qg + qd)

    def ids_many(self, vgs: np.ndarray, vds: np.ndarray) -> np.ndarray:
        """Vectorized drain currents (n-frame), for waveform post-
        processing; mirrors :meth:`evaluate`'s current arithmetic."""
        device = self.device
        if isinstance(device, CNFET):
            vsc = device.solver.solve_many(vgs, vds, 0.0)
            eta_s = (self.ef - vsc) / self.kt
            eta_d = eta_s - vds / self.kt
            return self.pref * (
                _log1pexp_many(eta_s) - _log1pexp_many(eta_d)
            )
        return np.asarray([
            self.evaluate(float(g), float(d))[0]
            for g, d in zip(vgs, vds)
        ])


class CNFETElement(Element):
    """Three-terminal CNFET for the MNA engine.

    Parameters
    ----------
    name:
        Element name.
    drain, gate, source:
        Node names.
    device:
        A :class:`repro.pwl.CNFET` (fast, the normal case) or a
        :class:`repro.reference.FETToyModel` (baseline; hundreds of
        times slower per Newton iteration — used by the speed-comparison
        benchmarks).
    length_nm:
        Effective channel length for charge scaling (transient only;
        the ballistic current is length-independent).
    polarity:
        ``"n"`` or ``"p"``; p-type mirrors all terminal voltages.  If
        ``device`` is a p-type :class:`CNFET` its polarity is adopted.
    """

    nonlinear = True

    def __init__(self, name: str, drain: str, gate: str, source: str,
                 device: Union[CNFET, FETToyModel],
                 length_nm: float = 30.0,
                 polarity: str | None = None) -> None:
        super().__init__(name, (drain, gate, source))
        if length_nm <= 0.0:
            raise ParameterError(f"{name}: length must be > 0")
        self.backend = _Backend(device)
        self.length_m = length_nm * 1e-9
        if polarity is None:
            polarity = getattr(device, "polarity", "n")
        if polarity not in ("n", "p"):
            raise ParameterError(f"{name}: polarity must be 'n' or 'p'")
        self.polarity = polarity
        #: memoised previous-step charges: (vgs_prev, vds_prev, charges)
        self._prev_charges: Optional[Tuple[float, float, Tuple[
            float, float, float]]] = None

    def reset_state(self) -> None:
        self._prev_charges = None

    # -- bias helpers ----------------------------------------------------

    def _bias(self, ctx: StampContext) -> Tuple[float, float]:
        d, g, s = self.nodes
        vgs = ctx.voltage(g) - ctx.voltage(s)
        vds = ctx.voltage(d) - ctx.voltage(s)
        if self.polarity == "p":
            return -vgs, -vds
        return vgs, vds

    def ids(self, ctx: StampContext) -> float:
        """Drain-to-source current at the current iterate (reporting)."""
        vgs, vds = self._bias(ctx)
        ids, _, _, _ = self.backend.evaluate(vgs, vds)
        return ids if self.polarity == "n" else -ids

    # -- stamping ---------------------------------------------------------

    def stamp(self, ctx: StampContext) -> None:
        """Stamp the linearised current companion (gm, gds,
        residual) plus, in transient, the charge companions."""
        d, g, s = self.nodes
        vgs, vds = self._bias(ctx)
        tran = ctx.analysis == "tran" and ctx.dt is not None
        full = self.backend.evaluate_full(vgs, vds, with_charge=tran)
        ids, gm, gds = full[0], full[1], full[2]
        # Mirroring flips both the controlling voltages and the current
        # direction; the conductance signs are invariant (d(-I)/d(-V)).
        sign = 1.0 if self.polarity == "n" else -1.0
        # Linearised current (n-frame): I = ids + gm*dvgs + gds*dvds.
        ctx.add_transconductance(d, s, g, s, gm)
        ctx.add_conductance(d, s, gds)
        ctx.add_conductance(d, s, ctx.gmin)
        ctx.add_conductance(g, s, ctx.gmin)
        residual = sign * ids - gm * sign * vgs - gds * sign * vds
        ctx.add_current(d, s, residual)
        if tran:
            self._stamp_charges(ctx, vgs, vds, full)

    def _stamp_charges(self, ctx: StampContext, vgs: float, vds: float,
                       full: Tuple) -> None:
        """Charge companion stamps from the already-computed solve.

        The charges and their partials come analytically from the
        implicit-function derivatives ``dVSC/dVGS``, ``dVSC/dVDS`` (no
        perturbed re-solves); the previous-step charges are memoised
        because ``x_prev`` is constant across a step's Newton
        iterations.
        """
        d, g, s = self.nodes
        sign = 1.0 if self.polarity == "n" else -1.0
        _ids, _gm, _gds, vsc, dvsc_g, dvsc_d, q_d, dq_d = full
        length = self.length_m
        caps = self.backend.caps
        qg = length * caps.cg * (vgs + vsc)
        qd = length * (caps.cd * (vds + vsc) - q_d)
        q0 = (qg, qd, -(qg + qd))
        # Analytic partials (n-frame): the mobile drain charge moves
        # with Q'(VSC+VDS) times the inner-node sensitivity.
        dg_gs = length * caps.cg * (1.0 + dvsc_g)
        dg_ds = length * caps.cg * dvsc_d
        dd_gs = length * dvsc_g * (caps.cd - dq_d)
        dd_ds = length * (1.0 + dvsc_d) * (caps.cd - dq_d)
        dq_dvgs = (dg_gs, dd_gs, -(dg_gs + dd_gs))
        dq_dvds = (dg_ds, dd_ds, -(dg_ds + dd_ds))
        # Previous-step charges (memoised per accepted step).
        vgs_prev = ctx.previous_voltage(g) - ctx.previous_voltage(s)
        vds_prev = ctx.previous_voltage(d) - ctx.previous_voltage(s)
        if self.polarity == "p":
            vgs_prev, vds_prev = -vgs_prev, -vds_prev
        memo = self._prev_charges
        if memo is not None and memo[0] == vgs_prev \
                and memo[1] == vds_prev:
            q_prev = memo[2]
        else:
            q_prev = self.backend.charges(vgs_prev, vds_prev,
                                          self.length_m)
            self._prev_charges = (vgs_prev, vds_prev, q_prev)
        dt = ctx.dt
        terminals = (g, d, s)
        for t_idx, terminal in enumerate(terminals):
            # Backward-Euler companion for i_t = dq_t/dt, linearised in
            # (vgs, vds).  Mirroring multiplies both q and v by -1, so
            # the conductances are invariant and currents flip.
            geq_gs = dq_dvgs[t_idx] / dt
            geq_ds = dq_dvds[t_idx] / dt
            i_now = (q0[t_idx] - q_prev[t_idx]) / dt
            ctx.add_transconductance(terminal, "0", g, s, geq_gs)
            ctx.add_transconductance(terminal, "0", d, s, geq_ds)
            residual = sign * i_now - geq_gs * sign * vgs \
                - geq_ds * sign * vds
            ctx.add_current(terminal, "0", residual)
