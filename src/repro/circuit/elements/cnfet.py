"""CNFET circuit element (the paper's Fig. 1 device in MNA form).

DC: a nonlinear voltage-controlled current source ``IDS(VGS, VDS)``.
The inner self-consistent voltage is solved *inside* the evaluation —
closed-form for the fast piecewise backend, Newton for the reference
backend — and the small-signal stamps (gm, gds) are computed
analytically through the implicit-function theorem on the charge-balance
residual:

``dVSC/dVGS = -CG / (CSum - dDQ/dVSC)``
``dVSC/dVDS = -(CD - Q'(VSC+VDS)) / (CSum - dDQ/dVSC)``

with ``dDQ/dVSC = Q'(VSC) + Q'(VSC+VDS)`` — all quantities the piecewise
model evaluates in closed form, so a Newton iteration of the circuit
engine costs a handful of polynomial evaluations per device.

Transient: terminal charges (gate / drain, with the source taking the
balance so the three displacement currents sum to zero) are companion-
modelled with *analytic* charge partials derived from the same
implicit-function solve — one closed-form solve per Newton iteration
covers current, small-signal and charge stamps (the previous-step
charges are memoised per accepted step, since ``x_prev`` is frozen
while a step iterates).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple, Union

import numpy as np

from repro.circuit.elements.base import (
    GROUND_NAMES,
    Element,
    GenericLaneGroup,
    LaneContext,
    LaneGroup,
    StampContext,
)
from repro.errors import ParameterError
from repro.pwl.batch import StackedCurves, StackedVscSolver
from repro.pwl.device import CNFET, _log1pexp_many
from repro.pwl.kernels import active_kernel_backend
from repro.reference.fettoy import FETToyModel

#: Chord radius [V] of the slab's exact-rhs modified-Newton reuse: the
#: frozen Jacobian is kept while no device's bias moved further than
#: this from the linearisation point.  Unlike the scalar elements'
#: ``jacobian_reuse_tol`` (whose frozen *rhs* carries an O(tol^2)
#: solution error), the slab rebuilds the rhs exactly every iteration,
#: so this radius only trades Newton iteration count against
#: factorisation + companion-evaluation count.  Tuned on the 32-bit
#: carry-ripple benchmark *with* the compiled frozen-pivot
#: refactorisation lane active (which makes factorisations cheap):
#: the chord should only take over in the convergence tail of a step
#: and across quiescent plateau steps, where it converges without
#: extra iterations; wider radii trade quadratic for linear
#: convergence mid-transient and lose outright.
_SLAB_CHORD_RADIUS_V = 1e-4


def _logistic_many(x: np.ndarray) -> np.ndarray:
    """Vectorized twin of :func:`_logistic` (same branch at 0)."""
    out = np.empty_like(x)
    pos = x >= 0.0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    e = np.exp(x[~pos])
    out[~pos] = e / (1.0 + e)
    return out


def _log1pexp(x: float) -> float:
    """Stable ``log(1 + exp(x))`` (order-0 Fermi-Dirac integral)."""
    if x > 35.0:
        return x
    if x < -35.0:
        return math.exp(x)
    return math.log1p(math.exp(x))


def _logistic(x: float) -> float:
    """``1 / (1 + exp(-x))`` — derivative of ``_log1pexp``."""
    if x >= 0.0:
        return 1.0 / (1.0 + math.exp(-x))
    e = math.exp(x)
    return e / (1.0 + e)


class _Backend:
    """Uniform view over the fast (CNFET) and reference (FETToyModel)
    devices: vsc solve, mobile-charge curve and derivative, current."""

    def __init__(self, device: Union[CNFET, FETToyModel]) -> None:
        self.device = device
        if isinstance(device, CNFET):
            self.caps = device.capacitances
            self.kt = device._kt
            self.ef = device._ef
            self.pref = device._i_prefactor
            self._solve = lambda vgs, vds: device.solver.solve(vgs, vds, 0.0)
            self._q = device.fitted.curve.value
            self._dq = device.fitted.curve.derivative
        elif isinstance(device, FETToyModel):
            self.caps = device.capacitances
            self.kt = device.kt_ev
            self.ef = device.params.fermi_level_ev
            self.pref = (
                device.params.transmission
                * device.params.temperature_k
                * 2.0 * 1.602176634e-19 * 1.380649e-23
                / (math.pi * 1.054571817e-34)
            )
            self._solve = lambda vgs, vds: device.solve_vsc(vgs, vds, 0.0)
            self._q = lambda u: float(device.charge.qs(u))
            self._dq = lambda u: float(device.charge.dqs_dvsc(u))
        else:
            raise ParameterError(
                f"unsupported CNFET backend {type(device).__name__}; "
                "expected repro.pwl.CNFET or repro.reference.FETToyModel"
            )

    def evaluate(self, vgs: float, vds: float
                 ) -> Tuple[float, float, float, float]:
        """``(ids, gm, gds, vsc)`` at a source-referenced bias point."""
        return self.evaluate_full(vgs, vds)[:4]

    def evaluate_full(self, vgs: float, vds: float,
                      with_charge: bool = False) -> Tuple[
            float, float, float, float, float, float, float, float]:
        """One solve, every stamp ingredient.

        Returns ``(ids, gm, gds, vsc, dvsc_dvgs, dvsc_dvds, q_d, dq_d)``
        where ``q_d = Q(VSC + VDS)`` is the mobile drain charge and
        ``dq_d`` its derivative.  ``q_d`` is only evaluated when
        ``with_charge`` (the transient companion stamps); DC iterations
        skip that extra charge-curve evaluation and receive 0.0 there.
        """
        vsc = self._solve(vgs, vds)
        kt = self.kt
        eta_s = (self.ef - vsc) / kt
        eta_d = eta_s - vds / kt
        ids = self.pref * (_log1pexp(eta_s) - _log1pexp(eta_d))
        sig_s = _logistic(eta_s)
        sig_d = _logistic(eta_d)
        di_dvsc = (self.pref / kt) * (sig_d - sig_s)
        di_dvds_direct = (self.pref / kt) * sig_d
        dq_s = self._dq(vsc)
        dq_d = self._dq(vsc + vds)
        denominator = self.caps.csum - dq_s - dq_d
        dvsc_dvgs = -self.caps.cg / denominator
        dvsc_dvds = -(self.caps.cd - dq_d) / denominator
        gm = di_dvsc * dvsc_dvgs
        gds = di_dvds_direct + di_dvsc * dvsc_dvds
        q_d = self._q(vsc + vds) if with_charge else 0.0
        return ids, gm, gds, vsc, dvsc_dvgs, dvsc_dvds, q_d, dq_d

    def charges(self, vgs: float, vds: float,
                length_m: float) -> Tuple[float, float, float]:
        """Terminal charges (gate, drain, source) [C]; they sum to zero
        by construction so transient displacement currents conserve
        charge."""
        vsc = self._solve(vgs, vds)
        caps = self.caps
        qg = length_m * caps.cg * (vgs + vsc)
        qd = length_m * (caps.cd * (vds + vsc) - self._q(vsc + vds))
        return qg, qd, -(qg + qd)

    def ids_many(self, vgs: np.ndarray, vds: np.ndarray) -> np.ndarray:
        """Vectorized drain currents (n-frame), for waveform post-
        processing; mirrors :meth:`evaluate`'s current arithmetic."""
        device = self.device
        if isinstance(device, CNFET):
            vsc = device.solver.solve_many(vgs, vds, 0.0)
            eta_s = (self.ef - vsc) / self.kt
            eta_d = eta_s - vds / self.kt
            return self.pref * (
                _log1pexp_many(eta_s) - _log1pexp_many(eta_d)
            )
        return np.asarray([
            self.evaluate(float(g), float(d))[0]
            for g, d in zip(vgs, vds)
        ])


class _StackedCNFETBank:
    """Per-device parameter arrays plus the vectorized companion-stamp
    arithmetic shared by the lane-batched group and the single-circuit
    slab.

    ``P`` devices (all fast piecewise backends, possibly all
    different) evaluate as one stacked pass: inner self-consistent
    voltages through :class:`~repro.pwl.batch.StackedVscSolver`
    (hint-warmed closed forms, scalar fallback on region drift),
    charge-curve values/derivatives through
    :class:`~repro.pwl.batch.StackedCurves`, and every downstream
    quantity — currents, analytic small-signal and charge partials,
    companion residuals — is the scalar :meth:`_Backend.evaluate_full`
    arithmetic on ``(P,)`` arrays.
    """

    def _init_bank(self, elements) -> None:
        backends = [el.backend for el in elements]
        self.sign = np.array([
            1.0 if el.polarity == "n" else -1.0 for el in elements])
        self.length = np.array([el.length_m for el in elements])
        self.kt = np.array([b.kt for b in backends])
        self.ef = np.array([b.ef for b in backends])
        self.pref = np.array([b.pref for b in backends])
        self.cg = np.array([b.caps.cg for b in backends])
        self.cd = np.array([b.caps.cd for b in backends])
        self.csum = np.array([b.caps.csum for b in backends])
        self.solver = StackedVscSolver(
            [b.device.solver for b in backends])
        self.curves = StackedCurves(
            [b.device.fitted.curve for b in backends])
        p = len(elements)
        #: warm-start VSC hints: Newton iterates / accepted biases
        self.hint = np.zeros(p)
        #: previous-step terminal charges (gate, drain, source), [C]
        self.q_prev = np.zeros((3, p))
        self.stats: Optional[dict] = None
        #: chord memo: ((tran, dt, gmin), vgs, vds, values) — the
        #: frozen Jacobian of the slab's exact-rhs chord iteration
        #: (see :meth:`CNFETSlab.stamp`).  Only the *matrix* rows are
        #: frozen; the rhs is rebuilt at the current bias every stamp,
        #: so the converged solution is exact regardless of how far the
        #: iterate drifted inside the chord radius, and the assembled
        #: matrix stays bit-identical so the sparse assembler reuses
        #: its LU factorisation across iterations *and* steps.
        self._memo: Optional[Tuple] = None

    def _bank_reset(self) -> None:
        self.hint[:] = 0.0
        self.q_prev[:] = 0.0
        self._memo = None

    def _charges_arrays(self, vgs: np.ndarray, vds: np.ndarray,
                        didx: np.ndarray
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Terminal charges (G, D, S) at n-frame biases [C] —
        vectorized :meth:`_Backend.charges`."""
        vsc = self.solver.solve(vgs, vds, self.hint, idx=didx,
                                stats=self.stats)
        length = self.length[didx]
        qg = length * self.cg[didx] * (vgs + vsc)
        qd = length * (self.cd[didx] * (vds + vsc)
                       - self.curves.value(vsc + vds, idx=didx))
        return qg, qd, -(qg + qd)

    def _companion(self, vgs: np.ndarray, vds: np.ndarray,
                   didx: np.ndarray, gmin: float, tran: bool,
                   dt: Optional[float]
                   ) -> Tuple[np.ndarray, np.ndarray]:
        """Stacked companion stamp values around the given biases.

        Returns ``(values, rhs_values, vsc)`` with one row per entry
        kind (see :meth:`_CNFETLaneGroup._build_indices` for the kind
        table): 8 matrix / 2 rhs kinds in DC, 17 / 5 in transient
        (charge companions around the bank's ``q_prev`` state).
        ``vsc`` is the solved inner voltage.
        """
        vsc = self.solver.solve(vgs, vds, self.hint, idx=didx,
                                stats=self.stats)
        # The companion arithmetic lives in the kernel tier (numpy
        # reference or compiled per-lane loops — same lane-for-lane
        # arithmetic either way).
        values, rhs_values = active_kernel_backend().cnfet_companion(
            self, didx, vsc, vgs, vds, gmin, tran, dt)
        return values, rhs_values, vsc


class _CNFETLaneGroup(_StackedCNFETBank, LaneGroup):
    """Stacked CNFET stamping: *every* CNFET slot of the batch, all
    lanes, one vectorized pass per Newton iteration.

    The hot path of the lane-batched engine.  A *devlane* is one
    (element slot, lane) pair; the group flattens all ``S`` CNFET
    slots x ``B`` lanes into ``P = S * B`` devlanes whose devices may
    all be different (a Monte-Carlo batch).  The companion arithmetic
    lives in :class:`_StackedCNFETBank`; the stamp entries land
    through two ``np.bincount`` scatter-adds against precomputed flat
    matrix/rhs indices (the ground pad row/column absorbs grounded
    terminals).

    Previous-step terminal charges are group state, refreshed once per
    accepted step (the batch twin of the element's per-step memo).
    """

    nonlinear = True

    def __init__(self, slots) -> None:
        elements = [el for slot in slots for el in slot]
        LaneGroup.__init__(self, elements)
        self._init_bank(elements)
        self.n_lanes = len(slots[0])
        #: lane of each devlane (slot-major flattening)
        self.lane_of = np.array([
            lane for slot in slots for lane in range(len(slot))])
        self._slots = slots
        self._indices: Optional[Tuple] = None

    def reset(self) -> None:
        self._bank_reset()

    def _build_indices(self, ctx: LaneContext) -> Tuple:
        """Precomputed flat scatter indices (constant per topology).

        Matrix entry kinds (row, col) and rhs kinds per devlane — the
        exact per-entry sums of the scalar ``stamp``:

        ======== ======================  ========================
        kind     entry                   value
        ======== ======================  ========================
        0        (d, g)                  ``+gm``
        1        (s, g)                  ``-(gm + gmin)``
        2        (d, d)                  ``+(gds + gmin)``
        3        (s, s)                  ``+(gm + gds + 2 gmin)``
        4        (d, s)                  ``-(gm + gds + gmin)``
        5        (s, d)                  ``-(gds + gmin)``
        6        (g, g)                  ``+gmin``
        7        (g, s)                  ``-gmin``
        8..16    (t, g|d|s), t=g,d,s     charge companions
        ======== ======================  ========================
        """
        if self._indices is not None:
            return self._indices
        pad = ctx.dim + 1
        lane = self.lane_of
        i_d = np.empty(len(self.elements), dtype=np.intp)
        i_g = np.empty_like(i_d)
        i_s = np.empty_like(i_d)
        pos = 0
        for slot in self._slots:
            d, g, s = slot[0].nodes
            i_d[pos:pos + len(slot)] = ctx.idx(d)
            i_g[pos:pos + len(slot)] = ctx.idx(g)
            i_s[pos:pos + len(slot)] = ctx.idx(s)
            pos += len(slot)
        base = lane * (pad * pad)

        def m_idx(row, col):
            return base + row * pad + col

        matrix_rows = [
            m_idx(i_d, i_g), m_idx(i_s, i_g), m_idx(i_d, i_d),
            m_idx(i_s, i_s), m_idx(i_d, i_s), m_idx(i_s, i_d),
            m_idx(i_g, i_g), m_idx(i_g, i_s),
        ]
        for it in (i_g, i_d, i_s):
            matrix_rows.extend(
                [m_idx(it, i_g), m_idx(it, i_d), m_idx(it, i_s)])
        rhs_base = lane * pad
        rhs_rows = [rhs_base + i_d, rhs_base + i_s,
                    rhs_base + i_g, rhs_base + i_d, rhs_base + i_s]
        self._indices = (np.stack(matrix_rows), np.stack(rhs_rows),
                         i_g, i_d, i_s)
        return self._indices

    def _active(self, ctx: LaneContext) -> np.ndarray:
        """Devlane indices whose lane is active in ``ctx``."""
        mask = np.zeros(self.n_lanes, dtype=bool)
        mask[ctx.lanes] = True
        return np.flatnonzero(mask[self.lane_of])

    def _bias(self, ctx: LaneContext, x: np.ndarray, didx: np.ndarray
              ) -> Tuple[np.ndarray, np.ndarray]:
        """n-frame (mirrored) VGS/VDS per active devlane."""
        _m, _r, i_g, i_d, i_s = self._build_indices(ctx)
        xp = np.concatenate(
            [x, np.zeros((x.shape[0], 1))], axis=1)
        lane = self.lane_of[didx]
        vs = xp[lane, i_s[didx]]
        sign = self.sign[didx]
        return (sign * (xp[lane, i_g[didx]] - vs),
                sign * (xp[lane, i_d[didx]] - vs))

    def _charges(self, ctx: LaneContext, x: np.ndarray,
                 didx: np.ndarray
                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Terminal charges (G, D, S) at the biases in ``x`` [C]."""
        vgs, vds = self._bias(ctx, x, didx)
        return self._charges_arrays(vgs, vds, didx)

    def begin_run(self, ctx: LaneContext) -> None:
        """Prime the previous-step charge state at the initial
        solution (the scalar element computes the same values lazily on
        its first transient stamp)."""
        self.accept(ctx)

    def accept(self, ctx: LaneContext) -> None:
        didx = self._active(ctx)
        qg, qd, qs = self._charges(ctx, ctx.x, didx)
        self.q_prev[0, didx] = qg
        self.q_prev[1, didx] = qd
        self.q_prev[2, didx] = qs

    def stamp(self, ctx: LaneContext) -> None:
        matrix_idx, rhs_idx, _ig, _id, _is = self._build_indices(ctx)
        didx = self._active(ctx)
        tran = ctx.analysis == "tran" and ctx.dt is not None
        vgs, vds = self._bias(ctx, ctx.x, didx)
        values, rhs_values, _vsc = self._companion(
            vgs, vds, didx, ctx.gmin, tran, ctx.dt)
        # Two scatter-adds against the precomputed flat indices; the
        # ground pad row/column absorbs grounded terminals.
        backend = active_kernel_backend()
        backend.scatter_add_pad(
            ctx.matrix.reshape(-1),
            matrix_idx[:values.shape[0], didx].ravel(),
            values.ravel())
        backend.scatter_add_pad(
            ctx.rhs.reshape(-1),
            rhs_idx[:rhs_values.shape[0], didx].ravel(),
            rhs_values.ravel())


class CNFETSlab(_StackedCNFETBank):
    """Every fast-backend CNFET of *one* circuit, stamped as a single
    stacked evaluation per Newton iteration.

    The single-circuit twin of :class:`_CNFETLaneGroup`: above a
    handful of devices, looping the scalar ``CNFETElement.stamp`` —
    one Python-level closed-form solve per device per iteration — is
    what dominates large-circuit assembly, so the two-phase assembler
    (see :class:`repro.circuit.mna.TwoPhaseAssembler`) hands all fast
    CNFETs to one slab.  Per iteration the slab gathers every device's
    bias from the iterate, runs one
    :class:`~repro.pwl.batch.StackedVscSolver` pass, and lands the
    companion entries through :meth:`StampContext.add_flat` — a dense
    bincount scatter-add or a sparse triplet append, depending on the
    active backend.

    Previous-step terminal charges are recomputed vectorized once per
    ``begin_step`` from ``x_prev`` (the scalar element memoises the
    same values per step).  The Jacobian-reuse fast path
    (``NewtonOptions.jacobian_reuse_tol`` > 0) runs an exact-rhs
    chord: the companion *matrix* rows are frozen at the last
    linearisation point and restamped verbatim while every device's
    bias stays within :data:`_SLAB_CHORD_RADIUS_V` of it, but the rhs
    is rebuilt from a fresh closed-form solve at the current bias each
    iteration — modified Newton, whose fixed point satisfies exact
    KCL.  The frozen matrix keeps the assembled data bit-identical,
    so the sparse backend reuses its LU factorisation across
    iterations and accepted steps (see
    :meth:`~repro.circuit.mna.TwoPhaseAssembler.solve`).
    """

    nonlinear = True

    def __init__(self, elements, dim: int, node_index) -> None:
        self.elements = list(elements)
        self._init_bank(self.elements)
        p = len(self.elements)
        self.dim = dim
        self._all = np.arange(p)
        pad = dim  # xp gather pad: x extended with one zero for ground
        i_d = np.empty(p, dtype=np.intp)
        i_g = np.empty(p, dtype=np.intp)
        i_s = np.empty(p, dtype=np.intp)
        for k, el in enumerate(self.elements):
            d, g, s = el.nodes
            i_d[k] = node_index.get(d, pad) if d not in GROUND_NAMES \
                else pad
            i_g[k] = node_index.get(g, pad) if g not in GROUND_NAMES \
                else pad
            i_s[k] = node_index.get(s, pad) if s not in GROUND_NAMES \
                else pad
        self._i_d, self._i_g, self._i_s = i_d, i_g, i_s

        def m_idx(row, col):
            # Flattened (row, col) with dim*dim as the grounded-entry
            # discard pad (row/col == dim means ground here).
            grounded = (row >= dim) | (col >= dim)
            return np.where(grounded, dim * dim, row * dim + col)

        matrix_rows = [
            m_idx(i_d, i_g), m_idx(i_s, i_g), m_idx(i_d, i_d),
            m_idx(i_s, i_s), m_idx(i_d, i_s), m_idx(i_s, i_d),
            m_idx(i_g, i_g), m_idx(i_g, i_s),
        ]
        for it in (i_g, i_d, i_s):
            matrix_rows.extend(
                [m_idx(it, i_g), m_idx(it, i_d), m_idx(it, i_s)])
        self._m_idx = np.stack(matrix_rows)
        self._r_idx = np.stack([i_d, i_s, i_g, i_d, i_s])
        # per-device chord memo of the subset path (the partitioned
        # assembler evaluates only the active blocks' devices, so
        # validity must be tracked per device, not slab-wide)
        self._sub_key: Optional[Tuple] = None
        self._sub_vgs = np.zeros(p)
        self._sub_vds = np.zeros(p)
        self._sub_values: Optional[np.ndarray] = None
        self._sub_valid = np.zeros(p, dtype=bool)

    def reset(self) -> None:
        """Forget warm-start hints and previous-step charges."""
        self._bank_reset()
        self._sub_key = None
        self._sub_valid[:] = False

    def _biases(self, x: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray]:
        """n-frame (mirrored) per-device VGS/VDS gathered from ``x``."""
        xp = np.append(x, 0.0)  # ground pad
        vs = xp[self._i_s]
        return (self.sign * (xp[self._i_g] - vs),
                self.sign * (xp[self._i_d] - vs))

    def begin_step(self, ctx: StampContext) -> None:
        """Refresh the previous-step charge state from ``ctx.x_prev``
        (transient steps only; DC never reads it)."""
        if ctx.analysis != "tran" or ctx.dt is None \
                or ctx.x_prev is None:
            return
        vgs, vds = self._biases(ctx.x_prev)
        qg, qd, qs = self._charges_arrays(vgs, vds, self._all)
        self.q_prev[0] = qg
        self.q_prev[1] = qd
        self.q_prev[2] = qs

    def stamp(self, ctx: StampContext) -> None:
        """One stacked companion stamp for all devices around
        ``ctx.x``."""
        tran = ctx.analysis == "tran" and ctx.dt is not None
        vgs, vds = self._biases(ctx.x)
        # Jacobian-reuse fast path (exact-rhs chord): while every
        # device's bias stays within the chord radius of the memoised
        # linearisation (same tran flavour, dt and gmin), the *matrix*
        # rows restamp frozen while the rhs is rebuilt from a fresh
        # closed-form solve at the current bias with the frozen
        # gm/gds/geq coefficients.  That is the classic modified-
        # Newton split: the fixed point satisfies exact KCL (the frozen
        # coefficients cancel between matrix and rhs at convergence),
        # so the radius trades iteration count against factorisation
        # count, never accuracy — which is why it can be far looser
        # than the scalar elements' O(tol^2) frozen-rhs tolerance.
        # The frozen matrix keeps the assembled data bit-identical, so
        # the sparse assembler reuses one LU factorisation across
        # iterations and across plateau steps.
        memo = self._memo
        key = (tran, ctx.dt, ctx.gmin)
        radius = max(ctx.reuse_tol, _SLAB_CHORD_RADIUS_V) \
            if ctx.reuse_tol > 0.0 else 0.0
        if radius > 0.0 and memo is not None \
                and memo[0] == key \
                and float(np.max(np.abs(vgs - memo[1]))) <= radius \
                and float(np.max(np.abs(vds - memo[2]))) <= radius:
            values = memo[3]
            vsc = self.solver.solve(vgs, vds, self.hint,
                                    idx=self._all, stats=self.stats)
            eta_s = (self.ef - vsc) / self.kt
            eta_d = eta_s - vds / self.kt
            ids = self.pref * (_log1pexp_many(eta_s)
                               - _log1pexp_many(eta_d))
            sign = self.sign
            gm = values[0]
            gds = values[2] - ctx.gmin
            residual = sign * ids - gm * sign * vgs - gds * sign * vds
            rhs_values = np.empty((5 if tran else 2,
                                   len(self.elements)))
            rhs_values[0] = -residual
            rhs_values[1] = residual
            if tran:
                length = self.length
                qg = length * self.cg * (vgs + vsc)
                qd = length * (self.cd * (vds + vsc)
                               - self.curves.value(vsc + vds))
                q0 = (qg, qd, -(qg + qd))
                for t_idx in range(3):
                    geq_gs = values[8 + 3 * t_idx]
                    geq_ds = values[9 + 3 * t_idx]
                    i_now = (q0[t_idx] - self.q_prev[t_idx]) / ctx.dt
                    rhs_values[2 + t_idx] = -(
                        sign * i_now - geq_gs * sign * vgs
                        - geq_ds * sign * vds
                    )
        else:
            values, rhs_values, _vsc = self._companion(
                vgs, vds, self._all, ctx.gmin, tran, ctx.dt)
            self._memo = (key, vgs, vds, values) if radius > 0.0 \
                else None
        ctx.add_flat(
            self._m_idx[:values.shape[0]].ravel(), values.ravel(),
            self._r_idx[:rhs_values.shape[0]].ravel(),
            rhs_values.ravel(),
        )

    # -- device-subset evaluation (partitioned assembly) ---------------

    def _biases_at(self, x: np.ndarray, idx: np.ndarray
                   ) -> Tuple[np.ndarray, np.ndarray]:
        """n-frame per-device VGS/VDS for a device subset."""
        xp = np.append(x, 0.0)  # ground pad
        vs = xp[self._i_s[idx]]
        sign = self.sign[idx]
        return (sign * (xp[self._i_g[idx]] - vs),
                sign * (xp[self._i_d[idx]] - vs))

    def scatter_indices(self, cols: np.ndarray
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """Flat matrix / rhs destination index columns for a device
        subset (global ``dim x dim`` coordinates, grounded entries on
        the discard pad) — precomputed once per block by the
        partitioned assembler."""
        return self._m_idx[:, cols].copy(), self._r_idx[:, cols].copy()

    def refresh_charges(self, x_prev: np.ndarray,
                        idx: np.ndarray) -> None:
        """Per-step ``q_prev`` refresh for a device subset — the
        slab's ``begin_step`` scoped to the blocks active this step
        (a bypassed block's charges stay frozen with the rest of its
        contribution and are refreshed on promotion)."""
        vgs, vds = self._biases_at(x_prev, idx)
        qg, qd, qs = self._charges_arrays(vgs, vds, idx)
        self.q_prev[0][idx] = qg
        self.q_prev[1][idx] = qd
        self.q_prev[2][idx] = qs

    def companion_subset(self, x: np.ndarray, idx: np.ndarray, *,
                         gmin: float, tran: bool,
                         dt: Optional[float],
                         reuse_tol: float = 0.0,
                         seed_qprev: bool = False
                         ) -> Tuple[np.ndarray, np.ndarray]:
        """``(values, rhs_values)`` companion columns for the device
        subset ``idx`` — :meth:`stamp`'s evaluation core without the
        scatter, so the partitioned assembler can run one stacked
        evaluation per Newton iteration across all active blocks and
        land each block's columns in its own triplet context.

        The Jacobian-reuse chord runs per call over the subset: matrix
        rows are reused verbatim while every *selected* device's bias
        stays within the chord radius of its memoised linearisation
        (devices sleeping in bypassed blocks keep their memo
        untouched), and the rhs is rebuilt exactly as in
        :meth:`stamp`.

        With ``seed_qprev=True`` (valid only when ``x`` *is* the
        previous step's solution, i.e. the first Newton iteration of a
        transient step) the charges evaluated at ``x`` double as the
        per-step ``q_prev`` refresh, replacing a separate
        :meth:`refresh_charges` kernel call."""
        vgs, vds = self._biases_at(x, idx)
        key = (tran, dt, gmin)
        if self._sub_key != key:
            self._sub_valid[:] = False
            self._sub_key = key
        radius = max(reuse_tol, _SLAB_CHORD_RADIUS_V) \
            if reuse_tol > 0.0 else 0.0
        n_rows = 17 if tran else 8
        if (radius > 0.0 and self._sub_values is not None
                and self._sub_values.shape[0] == n_rows
                and bool(np.all(self._sub_valid[idx]))
                and float(np.max(np.abs(vgs - self._sub_vgs[idx])))
                <= radius
                and float(np.max(np.abs(vds - self._sub_vds[idx])))
                <= radius):
            values = self._sub_values[:, idx]
            vsc = self.solver.solve(vgs, vds, self.hint, idx=idx,
                                    stats=self.stats)
            kt = self.kt[idx]
            eta_s = (self.ef[idx] - vsc) / kt
            eta_d = eta_s - vds / kt
            ids = self.pref[idx] * (_log1pexp_many(eta_s)
                                    - _log1pexp_many(eta_d))
            sign = self.sign[idx]
            gm = values[0]
            gds = values[2] - gmin
            residual = sign * ids - gm * sign * vgs - gds * sign * vds
            rhs_values = np.empty((5 if tran else 2, idx.size))
            rhs_values[0] = -residual
            rhs_values[1] = residual
            if tran:
                length = self.length[idx]
                qg = length * self.cg[idx] * (vgs + vsc)
                qd = length * (self.cd[idx] * (vds + vsc)
                               - self.curves.value(vsc + vds, idx=idx))
                q0 = (qg, qd, -(qg + qd))
                if seed_qprev:
                    for t_idx in range(3):
                        self.q_prev[t_idx][idx] = q0[t_idx]
                for t_idx in range(3):
                    geq_gs = values[8 + 3 * t_idx]
                    geq_ds = values[9 + 3 * t_idx]
                    i_now = (q0[t_idx]
                             - self.q_prev[t_idx][idx]) / dt
                    rhs_values[2 + t_idx] = -(
                        sign * i_now - geq_gs * sign * vgs
                        - geq_ds * sign * vds
                    )
            return values, rhs_values
        if seed_qprev and tran:
            qg, qd, qs = self._charges_arrays(vgs, vds, idx)
            self.q_prev[0][idx] = qg
            self.q_prev[1][idx] = qd
            self.q_prev[2][idx] = qs
        values, rhs_values, _vsc = self._companion(
            vgs, vds, idx, gmin, tran, dt)
        if radius > 0.0:
            if self._sub_values is None \
                    or self._sub_values.shape[0] != n_rows:
                self._sub_values = np.zeros(
                    (n_rows, len(self.elements)))
                self._sub_valid[:] = False
            self._sub_values[:, idx] = values
            self._sub_vgs[idx] = vgs
            self._sub_vds[idx] = vds
            self._sub_valid[idx] = True
        else:
            self._sub_valid[idx] = False
        return values, rhs_values


class CNFETElement(Element):
    """Three-terminal CNFET for the MNA engine.

    Parameters
    ----------
    name:
        Element name.
    drain, gate, source:
        Node names.
    device:
        A :class:`repro.pwl.CNFET` (fast, the normal case) or a
        :class:`repro.reference.FETToyModel` (baseline; hundreds of
        times slower per Newton iteration — used by the speed-comparison
        benchmarks).
    length_nm:
        Effective channel length for charge scaling (transient only;
        the ballistic current is length-independent).
    polarity:
        ``"n"`` or ``"p"``; p-type mirrors all terminal voltages.  If
        ``device`` is a p-type :class:`CNFET` its polarity is adopted.
    """

    nonlinear = True

    def __init__(self, name: str, drain: str, gate: str, source: str,
                 device: Union[CNFET, FETToyModel],
                 length_nm: float = 30.0,
                 polarity: str | None = None) -> None:
        super().__init__(name, (drain, gate, source))
        if length_nm <= 0.0:
            raise ParameterError(f"{name}: length must be > 0")
        self.backend = _Backend(device)
        self.length_m = length_nm * 1e-9
        if polarity is None:
            polarity = getattr(device, "polarity", "n")
        if polarity not in ("n", "p"):
            raise ParameterError(f"{name}: polarity must be 'n' or 'p'")
        self.polarity = polarity
        #: memoised previous-step charges: (vgs_prev, vds_prev, charges)
        self._prev_charges: Optional[Tuple[float, float, Tuple[
            float, float, float]]] = None
        #: memoised last evaluation for the Jacobian-reuse fast path:
        #: (vgs, vds, full-tuple, was_transient)
        self._eval_memo: Optional[Tuple[float, float, Tuple, bool]] = None

    def reset_state(self) -> None:
        self._prev_charges = None
        self._eval_memo = None

    @classmethod
    def lane_group(cls, elements):
        """Stacked lane group when every lane runs the fast piecewise
        backend; the reference backend falls back to the scalar loop."""
        if all(isinstance(el.backend.device, CNFET) for el in elements):
            return _CNFETLaneGroup([elements])
        return GenericLaneGroup(elements)

    @classmethod
    def lane_groups(cls, slots):
        """One merged stacked group across every fast-backend CNFET
        slot (all devices of the batch evaluate in a single pass);
        reference-backend slots fall back to per-lane scalar groups."""
        stacked = [
            slot for slot in slots
            if all(isinstance(el.backend.device, CNFET) for el in slot)
        ]
        groups = []
        if stacked:
            groups.append(_CNFETLaneGroup(stacked))
        groups.extend(
            GenericLaneGroup(slot) for slot in slots
            if not all(isinstance(el.backend.device, CNFET)
                       for el in slot)
        )
        return groups

    # -- bias helpers ----------------------------------------------------

    def _bias(self, ctx: StampContext) -> Tuple[float, float]:
        d, g, s = self.nodes
        vgs = ctx.voltage(g) - ctx.voltage(s)
        vds = ctx.voltage(d) - ctx.voltage(s)
        if self.polarity == "p":
            return -vgs, -vds
        return vgs, vds

    def ids(self, ctx: StampContext) -> float:
        """Drain-to-source current at the current iterate (reporting)."""
        vgs, vds = self._bias(ctx)
        ids, _, _, _ = self.backend.evaluate(vgs, vds)
        return ids if self.polarity == "n" else -ids

    # -- stamping ---------------------------------------------------------

    def stamp(self, ctx: StampContext) -> None:
        """Stamp the linearised current companion (gm, gds,
        residual) plus, in transient, the charge companions."""
        d, g, s = self.nodes
        vgs, vds = self._bias(ctx)
        tran = ctx.analysis == "tran" and ctx.dt is not None
        # Jacobian-reuse fast path: when the bias moved less than the
        # reuse tolerance since the last evaluation, restamp from that
        # frozen linearisation (companion values at the memoised bias,
        # so the stamp stays a self-consistent Newton-chord step whose
        # solution error is O(curvature * tol^2)).
        memo = self._eval_memo
        if ctx.reuse_tol > 0.0 and memo is not None \
                and memo[3] == tran \
                and abs(vgs - memo[0]) <= ctx.reuse_tol \
                and abs(vds - memo[1]) <= ctx.reuse_tol:
            vgs, vds, full = memo[0], memo[1], memo[2]
        else:
            full = self.backend.evaluate_full(vgs, vds, with_charge=tran)
            self._eval_memo = (vgs, vds, full, tran)
        ids, gm, gds = full[0], full[1], full[2]
        # Mirroring flips both the controlling voltages and the current
        # direction; the conductance signs are invariant (d(-I)/d(-V)).
        sign = 1.0 if self.polarity == "n" else -1.0
        # Linearised current (n-frame): I = ids + gm*dvgs + gds*dvds.
        ctx.add_transconductance(d, s, g, s, gm)
        ctx.add_conductance(d, s, gds)
        ctx.add_conductance(d, s, ctx.gmin)
        ctx.add_conductance(g, s, ctx.gmin)
        residual = sign * ids - gm * sign * vgs - gds * sign * vds
        ctx.add_current(d, s, residual)
        if tran:
            self._stamp_charges(ctx, vgs, vds, full)

    def _stamp_charges(self, ctx: StampContext, vgs: float, vds: float,
                       full: Tuple) -> None:
        """Charge companion stamps from the already-computed solve.

        The charges and their partials come analytically from the
        implicit-function derivatives ``dVSC/dVGS``, ``dVSC/dVDS`` (no
        perturbed re-solves); the previous-step charges are memoised
        because ``x_prev`` is constant across a step's Newton
        iterations.
        """
        d, g, s = self.nodes
        sign = 1.0 if self.polarity == "n" else -1.0
        _ids, _gm, _gds, vsc, dvsc_g, dvsc_d, q_d, dq_d = full
        length = self.length_m
        caps = self.backend.caps
        qg = length * caps.cg * (vgs + vsc)
        qd = length * (caps.cd * (vds + vsc) - q_d)
        q0 = (qg, qd, -(qg + qd))
        # Analytic partials (n-frame): the mobile drain charge moves
        # with Q'(VSC+VDS) times the inner-node sensitivity.
        dg_gs = length * caps.cg * (1.0 + dvsc_g)
        dg_ds = length * caps.cg * dvsc_d
        dd_gs = length * dvsc_g * (caps.cd - dq_d)
        dd_ds = length * (1.0 + dvsc_d) * (caps.cd - dq_d)
        dq_dvgs = (dg_gs, dd_gs, -(dg_gs + dd_gs))
        dq_dvds = (dg_ds, dd_ds, -(dg_ds + dd_ds))
        # Previous-step charges (memoised per accepted step).
        vgs_prev = ctx.previous_voltage(g) - ctx.previous_voltage(s)
        vds_prev = ctx.previous_voltage(d) - ctx.previous_voltage(s)
        if self.polarity == "p":
            vgs_prev, vds_prev = -vgs_prev, -vds_prev
        memo = self._prev_charges
        if memo is not None and memo[0] == vgs_prev \
                and memo[1] == vds_prev:
            q_prev = memo[2]
        else:
            q_prev = self.backend.charges(vgs_prev, vds_prev,
                                          self.length_m)
            self._prev_charges = (vgs_prev, vds_prev, q_prev)
        dt = ctx.dt
        terminals = (g, d, s)
        for t_idx, terminal in enumerate(terminals):
            # Backward-Euler companion for i_t = dq_t/dt, linearised in
            # (vgs, vds).  Mirroring multiplies both q and v by -1, so
            # the conductances are invariant and currents flip.
            geq_gs = dq_dvgs[t_idx] / dt
            geq_ds = dq_dvds[t_idx] / dt
            i_now = (q0[t_idx] - q_prev[t_idx]) / dt
            ctx.add_transconductance(terminal, "0", g, s, geq_gs)
            ctx.add_transconductance(terminal, "0", d, s, geq_ds)
            residual = sign * i_now - geq_gs * sign * vgs \
                - geq_ds * sign * vds
            ctx.add_current(terminal, "0", residual)
