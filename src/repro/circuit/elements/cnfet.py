"""CNFET circuit element (the paper's Fig. 1 device in MNA form).

DC: a nonlinear voltage-controlled current source ``IDS(VGS, VDS)``.
The inner self-consistent voltage is solved *inside* the evaluation —
closed-form for the fast piecewise backend, Newton for the reference
backend — and the small-signal stamps (gm, gds) are computed
analytically through the implicit-function theorem on the charge-balance
residual:

``dVSC/dVGS = -CG / (CSum - dDQ/dVSC)``
``dVSC/dVDS = -(CD - Q'(VSC+VDS)) / (CSum - dDQ/dVSC)``

with ``dDQ/dVSC = Q'(VSC) + Q'(VSC+VDS)`` — all quantities the piecewise
model evaluates in closed form, so a Newton iteration of the circuit
engine costs a handful of polynomial evaluations per device.

Transient: terminal charges (gate / drain, with the source taking the
balance so the three displacement currents sum to zero) are companion-
modelled with numerical charge partials.
"""

from __future__ import annotations

import math
from typing import Tuple, Union

from repro.circuit.elements.base import Element, StampContext
from repro.errors import ParameterError
from repro.pwl.device import CNFET
from repro.reference.fettoy import FETToyModel


def _log1pexp(x: float) -> float:
    """Stable ``log(1 + exp(x))`` (order-0 Fermi-Dirac integral)."""
    if x > 35.0:
        return x
    if x < -35.0:
        return math.exp(x)
    return math.log1p(math.exp(x))


def _logistic(x: float) -> float:
    """``1 / (1 + exp(-x))`` — derivative of ``_log1pexp``."""
    if x >= 0.0:
        return 1.0 / (1.0 + math.exp(-x))
    e = math.exp(x)
    return e / (1.0 + e)


class _Backend:
    """Uniform view over the fast (CNFET) and reference (FETToyModel)
    devices: vsc solve, mobile-charge curve and derivative, current."""

    def __init__(self, device: Union[CNFET, FETToyModel]) -> None:
        self.device = device
        if isinstance(device, CNFET):
            self.caps = device.capacitances
            self.kt = device._kt
            self.ef = device._ef
            self.pref = device._i_prefactor
            self._solve = lambda vgs, vds: device.solver.solve(vgs, vds, 0.0)
            self._q = device.fitted.curve.value
            self._dq = device.fitted.curve.derivative
        elif isinstance(device, FETToyModel):
            self.caps = device.capacitances
            self.kt = device.kt_ev
            self.ef = device.params.fermi_level_ev
            self.pref = (
                device.params.transmission
                * device.params.temperature_k
                * 2.0 * 1.602176634e-19 * 1.380649e-23
                / (math.pi * 1.054571817e-34)
            )
            self._solve = lambda vgs, vds: device.solve_vsc(vgs, vds, 0.0)
            self._q = lambda u: float(device.charge.qs(u))
            self._dq = lambda u: float(device.charge.dqs_dvsc(u))
        else:
            raise ParameterError(
                f"unsupported CNFET backend {type(device).__name__}; "
                "expected repro.pwl.CNFET or repro.reference.FETToyModel"
            )

    def evaluate(self, vgs: float, vds: float
                 ) -> Tuple[float, float, float, float]:
        """``(ids, gm, gds, vsc)`` at a source-referenced bias point."""
        vsc = self._solve(vgs, vds)
        kt = self.kt
        eta_s = (self.ef - vsc) / kt
        eta_d = eta_s - vds / kt
        ids = self.pref * (_log1pexp(eta_s) - _log1pexp(eta_d))
        sig_s = _logistic(eta_s)
        sig_d = _logistic(eta_d)
        di_dvsc = (self.pref / kt) * (sig_d - sig_s)
        di_dvds_direct = (self.pref / kt) * sig_d
        dq_s = self._dq(vsc)
        dq_d = self._dq(vsc + vds)
        denominator = self.caps.csum - dq_s - dq_d
        dvsc_dvgs = -self.caps.cg / denominator
        dvsc_dvds = -(self.caps.cd - dq_d) / denominator
        gm = di_dvsc * dvsc_dvgs
        gds = di_dvds_direct + di_dvsc * dvsc_dvds
        return ids, gm, gds, vsc

    def charges(self, vgs: float, vds: float,
                length_m: float) -> Tuple[float, float, float]:
        """Terminal charges (gate, drain, source) [C]; they sum to zero
        by construction so transient displacement currents conserve
        charge."""
        vsc = self._solve(vgs, vds)
        caps = self.caps
        qg = length_m * caps.cg * (vgs + vsc)
        qd = length_m * (caps.cd * (vds + vsc) - self._q(vsc + vds))
        return qg, qd, -(qg + qd)


class CNFETElement(Element):
    """Three-terminal CNFET for the MNA engine.

    Parameters
    ----------
    name:
        Element name.
    drain, gate, source:
        Node names.
    device:
        A :class:`repro.pwl.CNFET` (fast, the normal case) or a
        :class:`repro.reference.FETToyModel` (baseline; hundreds of
        times slower per Newton iteration — used by the speed-comparison
        benchmarks).
    length_nm:
        Effective channel length for charge scaling (transient only;
        the ballistic current is length-independent).
    polarity:
        ``"n"`` or ``"p"``; p-type mirrors all terminal voltages.  If
        ``device`` is a p-type :class:`CNFET` its polarity is adopted.
    """

    nonlinear = True

    def __init__(self, name: str, drain: str, gate: str, source: str,
                 device: Union[CNFET, FETToyModel],
                 length_nm: float = 30.0,
                 polarity: str | None = None) -> None:
        super().__init__(name, (drain, gate, source))
        if length_nm <= 0.0:
            raise ParameterError(f"{name}: length must be > 0")
        self.backend = _Backend(device)
        self.length_m = length_nm * 1e-9
        if polarity is None:
            polarity = getattr(device, "polarity", "n")
        if polarity not in ("n", "p"):
            raise ParameterError(f"{name}: polarity must be 'n' or 'p'")
        self.polarity = polarity
        self._charge_delta = 1e-4  # V, for numeric charge partials

    # -- bias helpers ----------------------------------------------------

    def _bias(self, ctx: StampContext) -> Tuple[float, float]:
        d, g, s = self.nodes
        vgs = ctx.voltage(g) - ctx.voltage(s)
        vds = ctx.voltage(d) - ctx.voltage(s)
        if self.polarity == "p":
            return -vgs, -vds
        return vgs, vds

    def ids(self, ctx: StampContext) -> float:
        """Drain-to-source current at the current iterate (reporting)."""
        vgs, vds = self._bias(ctx)
        ids, _, _, _ = self.backend.evaluate(vgs, vds)
        return ids if self.polarity == "n" else -ids

    # -- stamping ---------------------------------------------------------

    def stamp(self, ctx: StampContext) -> None:
        d, g, s = self.nodes
        vgs, vds = self._bias(ctx)
        ids, gm, gds, _vsc = self.backend.evaluate(vgs, vds)
        # Mirroring flips both the controlling voltages and the current
        # direction; the conductance signs are invariant (d(-I)/d(-V)).
        sign = 1.0 if self.polarity == "n" else -1.0
        # Linearised current (n-frame): I = ids + gm*dvgs + gds*dvds.
        ctx.add_transconductance(d, s, g, s, gm)
        ctx.add_conductance(d, s, gds)
        ctx.add_conductance(d, s, ctx.gmin)
        ctx.add_conductance(g, s, ctx.gmin)
        residual = sign * ids - gm * sign * vgs - gds * sign * vds
        ctx.add_current(d, s, residual)
        if ctx.analysis == "tran" and ctx.dt is not None:
            self._stamp_charges(ctx)

    def _stamp_charges(self, ctx: StampContext) -> None:
        d, g, s = self.nodes
        vgs, vds = self._bias(ctx)
        sign = 1.0 if self.polarity == "n" else -1.0
        delta = self._charge_delta
        q0 = self.backend.charges(vgs, vds, self.length_m)
        qg_p, qd_p, qs_p = self.backend.charges(vgs + delta, vds,
                                                self.length_m)
        qg_d, qd_d, qs_d = self.backend.charges(vgs, vds + delta,
                                                self.length_m)
        # Partials w.r.t. vgs / vds (n-frame).
        dq_dvgs = [(qg_p - q0[0]) / delta, (qd_p - q0[1]) / delta,
                   (qs_p - q0[2]) / delta]
        dq_dvds = [(qg_d - q0[0]) / delta, (qd_d - q0[1]) / delta,
                   (qs_d - q0[2]) / delta]
        # Previous-step charges.
        vgs_prev = ctx.previous_voltage(g) - ctx.previous_voltage(s)
        vds_prev = ctx.previous_voltage(d) - ctx.previous_voltage(s)
        if self.polarity == "p":
            vgs_prev, vds_prev = -vgs_prev, -vds_prev
        q_prev = self.backend.charges(vgs_prev, vds_prev, self.length_m)
        dt = ctx.dt
        terminals = (g, d, s)
        for t_idx, terminal in enumerate(terminals):
            # Backward-Euler companion for i_t = dq_t/dt, linearised in
            # (vgs, vds).  Mirroring multiplies both q and v by -1, so
            # the conductances are invariant and currents flip.
            geq_gs = dq_dvgs[t_idx] / dt
            geq_ds = dq_dvds[t_idx] / dt
            i_now = (q0[t_idx] - q_prev[t_idx]) / dt
            ctx.add_transconductance(terminal, "0", g, s, geq_gs)
            ctx.add_transconductance(terminal, "0", d, s, geq_ds)
            residual = sign * i_now - geq_gs * sign * vgs \
                - geq_ds * sign * vds
            ctx.add_current(terminal, "0", residual)
