"""Linear resistor."""

from __future__ import annotations

from repro.circuit.elements.base import Element, StampContext
from repro.errors import ParameterError


class Resistor(Element):
    """Two-terminal linear resistor.

    Parameters
    ----------
    name, a, b:
        Element name and terminal nodes.
    resistance:
        Ohms; must be positive (use a voltage source for a short).
    """

    def __init__(self, name: str, a: str, b: str, resistance: float) -> None:
        super().__init__(name, (a, b))
        if resistance <= 0.0 or not _finite(resistance):
            raise ParameterError(
                f"{name}: resistance must be finite and > 0, "
                f"got {resistance!r}"
            )
        self.resistance = float(resistance)

    @property
    def conductance(self) -> float:
        """Conductance ``1/R`` [S]."""
        return 1.0 / self.resistance

    def stamp(self, ctx: StampContext) -> None:
        """Stamp the conductance four-pattern."""
        a, b = self.nodes
        ctx.add_conductance(a, b, self.conductance)

    def current(self, va: float, vb: float) -> float:
        """Branch current a -> b for reporting."""
        return (va - vb) * self.conductance


def _finite(x: float) -> bool:
    return x == x and abs(x) != float("inf")
