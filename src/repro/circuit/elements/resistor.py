"""Linear resistor."""

from __future__ import annotations

import numpy as np

from repro.circuit.elements.base import (
    Element,
    LaneContext,
    LaneGroup,
    StampContext,
)
from repro.errors import ParameterError


class _ResistorLaneGroup(LaneGroup):
    """Vectorized conductance four-pattern across lanes."""

    def __init__(self, elements) -> None:
        super().__init__(elements)
        self.g = np.array([el.conductance for el in elements])

    def stamp(self, ctx: LaneContext) -> None:
        a, b = self.elements[0].nodes
        ia, ib = ctx.idx(a), ctx.idx(b)
        lanes = ctx.lanes
        g = self.g[lanes]
        matrix = ctx.matrix
        matrix[lanes, ia, ia] += g
        matrix[lanes, ib, ib] += g
        matrix[lanes, ia, ib] -= g
        matrix[lanes, ib, ia] -= g


class Resistor(Element):
    """Two-terminal linear resistor.

    Parameters
    ----------
    name, a, b:
        Element name and terminal nodes.
    resistance:
        Ohms; must be positive (use a voltage source for a short).
    """

    def __init__(self, name: str, a: str, b: str, resistance: float) -> None:
        super().__init__(name, (a, b))
        if resistance <= 0.0 or not _finite(resistance):
            raise ParameterError(
                f"{name}: resistance must be finite and > 0, "
                f"got {resistance!r}"
            )
        self.resistance = float(resistance)

    @property
    def conductance(self) -> float:
        """Conductance ``1/R`` [S]."""
        return 1.0 / self.resistance

    def stamp(self, ctx: StampContext) -> None:
        """Stamp the conductance four-pattern."""
        a, b = self.nodes
        ctx.add_conductance(a, b, self.conductance)

    @classmethod
    def lane_group(cls, elements):
        return _ResistorLaneGroup(elements)

    def current(self, va: float, vb: float) -> float:
        """Branch current a -> b for reporting."""
        return (va - vb) * self.conductance


def _finite(x: float) -> bool:
    return x == x and abs(x) != float("inf")
