"""Element interface and the stamping context.

The engine solves ``A x = z`` where ``x`` stacks node voltages (ground
eliminated) and auxiliary branch currents (voltage sources, inductors).
Elements contribute via :meth:`Element.stamp`, receiving a
:class:`StampContext` that hides index bookkeeping and ground handling.

Sign conventions
----------------
* ``add_conductance(a, b, g)`` stamps a conductance *between* nodes
  ``a`` and ``b`` (the four-entry pattern).
* ``add_current(a, b, i)`` injects a current of value ``i`` flowing
  *from node a to node b through the element* (it leaves ``a``, enters
  ``b``).
* Nonlinear elements stamp their own Newton companion:
  ``add_transconductance`` for cross-terms plus ``add_current`` with the
  linearisation residual.
"""

from __future__ import annotations

import copy
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import NetlistError

GROUND_NAMES = ("0", "gnd", "GND")


class StampContext:
    """Assembly context handed to every element's ``stamp``.

    Attributes
    ----------
    analysis:
        ``"dc"`` or ``"tran"``.
    time, dt:
        Current time and step (transient only; ``None`` in DC).
    x:
        Current Newton iterate (full solution vector) — elements read
        their controlling voltages from it.
    x_prev:
        Converged solution of the previous time step (transient only).
    method:
        ``"be"`` (backward Euler) or ``"trap"`` (trapezoidal).
    gmin:
        Shunt conductance added by nonlinear elements for robustness
        (swept during gmin stepping).
    """

    def __init__(
        self,
        matrix: np.ndarray,
        rhs: np.ndarray,
        node_index: Dict[str, int],
        x: np.ndarray,
        analysis: str = "dc",
        time: Optional[float] = None,
        dt: Optional[float] = None,
        x_prev: Optional[np.ndarray] = None,
        method: str = "be",
        gmin: float = 1e-12,
        source_scale: float = 1.0,
    ) -> None:
        self.matrix = matrix
        self.rhs = rhs
        self.node_index = node_index
        self.x = x
        self.analysis = analysis
        self.time = time
        self.dt = dt
        self.x_prev = x_prev
        self.method = method
        self.gmin = gmin
        self.source_scale = source_scale
        #: Jacobian-reuse tolerance [V] of the current Newton iteration
        #: (see :attr:`NewtonOptions.jacobian_reuse_tol`); elements may
        #: restamp a frozen linearisation when their controlling
        #: voltages moved less than this.  0 disables reuse.
        self.reuse_tol = 0.0

    # -- index helpers --------------------------------------------------

    def idx(self, node: str) -> int:
        """Matrix row of a node; -1 for ground."""
        if node in GROUND_NAMES:
            return -1
        try:
            return self.node_index[node]
        except KeyError:
            raise NetlistError(f"unknown node {node!r}") from None

    def voltage(self, node: str) -> float:
        """Node voltage in the current Newton iterate."""
        i = self.idx(node)
        return 0.0 if i < 0 else float(self.x[i])

    def previous_voltage(self, node: str) -> float:
        """Node voltage at the previous accepted time point."""
        if self.x_prev is None:
            return 0.0
        i = self.idx(node)
        return 0.0 if i < 0 else float(self.x_prev[i])

    # -- stamping primitives --------------------------------------------

    def add_entry(self, row: int, col: int, value: float) -> None:
        if row >= 0 and col >= 0:
            self.matrix[row, col] += value

    def add_rhs(self, row: int, value: float) -> None:
        if row >= 0:
            self.rhs[row] += value

    def add_conductance(self, a: str, b: str, g: float) -> None:
        ia, ib = self.idx(a), self.idx(b)
        self.add_entry(ia, ia, g)
        self.add_entry(ib, ib, g)
        self.add_entry(ia, ib, -g)
        self.add_entry(ib, ia, -g)

    def add_transconductance(self, out_a: str, out_b: str,
                             in_a: str, in_b: str, gm: float) -> None:
        """Current ``gm * (V(in_a) - V(in_b))`` flowing out_a -> out_b."""
        ia, ib = self.idx(out_a), self.idx(out_b)
        ja, jb = self.idx(in_a), self.idx(in_b)
        self.add_entry(ia, ja, gm)
        self.add_entry(ia, jb, -gm)
        self.add_entry(ib, ja, -gm)
        self.add_entry(ib, jb, gm)

    def add_current(self, a: str, b: str, i: float) -> None:
        """Current ``i`` flowing from ``a`` to ``b`` through the element."""
        ia, ib = self.idx(a), self.idx(b)
        self.add_rhs(ia, -i)
        self.add_rhs(ib, i)

    # -- vectorized stamping (CNFET slab / stacked groups) --------------

    def add_flat(self, m_idx: np.ndarray, m_val: np.ndarray,
                 r_idx: np.ndarray, r_val: np.ndarray) -> None:
        """Bulk scatter-add of precomputed stamp entries.

        ``m_idx`` holds flattened matrix positions ``row * dim + col``
        with ``dim * dim`` as a discard pad for grounded entries;
        ``r_idx`` holds rhs rows with ``dim`` as the pad.  The dense
        implementation lands everything with two padded scatter-adds
        through the active kernel tier (numpy bincount or a compiled
        loop); :class:`TripletStampContext` overrides this to record
        COO triplets instead.
        """
        from repro.pwl.kernels import active_kernel_backend
        backend = active_kernel_backend()
        backend.scatter_add_pad(self.matrix.reshape(-1), m_idx, m_val)
        backend.scatter_add_pad(self.rhs, r_idx, r_val)


class TripletStampContext(StampContext):
    """Stamping context that records COO triplets (sparse assembly).

    Elements stamp through the same ``add_entry`` / ``add_rhs``
    primitives; matrix entries are appended to growing flat-index /
    value arrays instead of written into a dense buffer (the rhs stays
    a dense vector — it is O(n)).  The sparse backend of
    :class:`repro.circuit.mna.TwoPhaseAssembler` turns the recorded
    triplets into a sparse system once per run and re-scatters only the
    values on subsequent steps/iterations.
    """

    def __init__(self, dim: int, node_index: Dict[str, int],
                 **kwargs) -> None:
        super().__init__(
            matrix=np.zeros((0, 0)), rhs=np.zeros(dim),
            node_index=node_index, x=np.zeros(dim), **kwargs,
        )
        self.dim = dim
        self._cap = 256
        #: flattened matrix positions ``row * dim + col``
        self.m_idx = np.empty(self._cap, dtype=np.intp)
        #: matrix entry values, parallel to :attr:`m_idx`
        self.m_val = np.empty(self._cap)
        #: number of recorded triplets
        self.count = 0

    def clear(self) -> None:
        """Forget the recorded triplets and zero the rhs (new stamp
        pass starting)."""
        self.count = 0
        self.rhs[:] = 0.0

    def _grow(self, need: int) -> None:
        while self._cap < need:
            self._cap *= 2
        self.m_idx = np.resize(self.m_idx, self._cap)
        self.m_val = np.resize(self.m_val, self._cap)

    def triplets(self) -> Tuple[np.ndarray, np.ndarray]:
        """Views of the recorded ``(flat_index, value)`` triplets."""
        return self.m_idx[:self.count], self.m_val[:self.count]

    def add_entry(self, row: int, col: int, value: float) -> None:
        """Record one matrix triplet (ground rows/columns skipped)."""
        if row >= 0 and col >= 0:
            count = self.count
            if count == self._cap:
                self._grow(count + 1)
            self.m_idx[count] = row * self.dim + col
            self.m_val[count] = value
            self.count = count + 1

    def add_flat(self, m_idx: np.ndarray, m_val: np.ndarray,
                 r_idx: np.ndarray, r_val: np.ndarray) -> None:
        """Bulk-append matrix triplets (pad entries dropped) and
        scatter the rhs contributions."""
        from repro.pwl.kernels import active_kernel_backend
        backend = active_kernel_backend()
        count = self.count
        if count + m_idx.size > self._cap:
            self._grow(count + m_idx.size)
        kept = backend.triplet_append(
            m_idx, m_val, self.dim * self.dim,
            self.m_idx, self.m_val, count)
        self.count = count + kept
        backend.scatter_add_pad(self.rhs, r_idx, r_val)


class LaneContext:
    """Stacked assembly context of the lane-batched engine.

    ``B`` independent instances (*lanes*) of one circuit topology are
    assembled into a ``(B, n + 1, n + 1)`` matrix stack and a
    ``(B, n + 1)`` rhs stack, where ``n`` is the scalar system
    dimension; row/column ``n`` is a *ground pad* that absorbs stamps
    whose node is ground, so vectorized scatter-adds never need per-
    entry sign checks (the pad is sliced off before the stacked solve).

    ``x``/``x_prev`` are ``(B, n)`` per-lane iterate / previous-step
    stacks; ``lanes`` holds the indices of the *active* lanes (Newton
    freezes converged lanes, the stepper retires finished ones).  The
    remaining fields mirror :class:`StampContext`.
    """

    def __init__(self, matrix: np.ndarray, rhs: np.ndarray,
                 node_index: Dict[str, int], x: np.ndarray,
                 lanes: np.ndarray, analysis: str = "dc",
                 time: Optional[float] = None, dt: Optional[float] = None,
                 x_prev: Optional[np.ndarray] = None, method: str = "be",
                 gmin: float = 1e-12, source_scale: float = 1.0) -> None:
        self.matrix = matrix
        self.rhs = rhs
        self.node_index = node_index
        self.x = x
        self.lanes = lanes
        self.analysis = analysis
        self.time = time
        self.dt = dt
        self.x_prev = x_prev
        self.method = method
        self.gmin = gmin
        self.source_scale = source_scale

    @property
    def n_lanes(self) -> int:
        return self.matrix.shape[0]

    @property
    def dim(self) -> int:
        """Scalar system dimension (the stacks carry one pad row more)."""
        return self.matrix.shape[1] - 1

    def idx(self, node: str) -> int:
        """Matrix row of a node; the ground pad row for ground."""
        if node in GROUND_NAMES:
            return self.dim
        try:
            return self.node_index[node]
        except KeyError:
            raise NetlistError(f"unknown node {node!r}") from None

    def voltages(self, node: str, x: Optional[np.ndarray] = None
                 ) -> np.ndarray:
        """Per-active-lane node voltages from ``x`` (default: the
        current iterate stack); zeros for ground."""
        source = self.x if x is None else x
        i = self.idx(node)
        if i >= self.dim:
            return np.zeros(len(self.lanes))
        return source[self.lanes, i]

    def scalar_context(self, lane: int) -> "StampContext":
        """Scalar :class:`StampContext` viewing one lane's system
        (the generic per-lane fallback of :meth:`Element.lane_group`)."""
        dim = self.dim
        return StampContext(
            matrix=self.matrix[lane, :dim, :dim],
            rhs=self.rhs[lane, :dim],
            node_index=self.node_index,
            x=self.x[lane],
            analysis=self.analysis,
            time=self.time,
            dt=self.dt,
            x_prev=None if self.x_prev is None else self.x_prev[lane],
            method=self.method,
            gmin=self.gmin,
            source_scale=self.source_scale,
        )


class LaneGroup:
    """Batched stamping unit: one element *slot* across all lanes.

    The lane-batched assembler collects, for every element position of
    the shared topology, the ``B`` per-lane element objects ("slot")
    and asks the element class for a group via
    :meth:`Element.lane_group`.  The group owns whatever stacked
    parameter arrays and per-lane transient state the slot needs:

    * :meth:`stamp` adds the slot's contribution for the *active* lanes
      (``ctx.lanes``) into the stacks — vectorized implementations
      gather per-lane values and scatter-add; the generic fallback
      loops the scalar ``Element.stamp``.
    * :meth:`accept` commits a converged step (per-lane state update).
    * :meth:`reset` forgets transient state at the start of a run.

    ``nonlinear`` mirrors :attr:`Element.nonlinear`: ``False`` groups
    are stamped once per step into the static stack, ``True`` groups
    per Newton iteration.
    """

    nonlinear = False

    def __init__(self, elements: Sequence["Element"]) -> None:
        self.elements = list(elements)

    def stamp(self, ctx: LaneContext) -> None:
        raise NotImplementedError

    def accept(self, ctx: LaneContext) -> None:
        """Commit a converged step for the active lanes."""

    def reset(self) -> None:
        """Forget per-lane transient state (new run starting)."""


class GenericLaneGroup(LaneGroup):
    """Per-lane scalar fallback group (correct for any element).

    Elements without a vectorized group implementation — and any
    user-defined element — are stamped lane by lane through their
    scalar :meth:`Element.stamp` on a one-lane view of the stacks.
    The per-lane scalar contexts are cached per underlying buffer
    stack and mutated in place, so the dynamic-stamp hot path does
    not allocate a context (and two matrix/rhs views) per lane per
    Newton iteration.
    """

    def __init__(self, elements: Sequence["Element"]) -> None:
        super().__init__(elements)
        self.nonlinear = elements[0].nonlinear
        #: (id(matrix stack), lane) -> reusable scalar context
        self._scalar_ctx: Dict[Tuple[int, int], StampContext] = {}

    def _lane_context(self, ctx: LaneContext,
                      lane: int) -> "StampContext":
        key = (id(ctx.matrix), lane)
        cached = self._scalar_ctx.get(key)
        if cached is None:
            cached = ctx.scalar_context(lane)
            if len(self._scalar_ctx) < 4 * len(self.elements):
                self._scalar_ctx[key] = cached
            return cached
        cached.x = ctx.x[lane]
        cached.x_prev = None if ctx.x_prev is None else ctx.x_prev[lane]
        cached.analysis = ctx.analysis
        cached.time = ctx.time
        cached.dt = ctx.dt
        cached.method = ctx.method
        cached.gmin = ctx.gmin
        cached.source_scale = ctx.source_scale
        return cached

    def stamp(self, ctx: LaneContext) -> None:
        for lane in ctx.lanes:
            self.elements[lane].stamp(self._lane_context(ctx, int(lane)))

    def accept(self, ctx: LaneContext) -> None:
        for lane in ctx.lanes:
            self.elements[lane].accept_step(
                self._lane_context(ctx, int(lane)))

    def reset(self) -> None:
        for el in self.elements:
            el.reset_state()


class Element:
    """Base class of all circuit elements.

    Subclasses set ``nodes`` (terminal names in a fixed order), override
    :meth:`stamp`, and declare ``n_aux`` auxiliary unknowns (branch
    currents).  ``aux_index`` is assigned by the circuit when the system
    is dimensioned.

    The lane-batched engine additionally asks the class for a
    :class:`LaneGroup` per element slot via :meth:`lane_group`; the
    default returns the scalar-loop fallback, so every element is
    batchable out of the box and vectorized groups are a pure
    optimisation.
    """

    #: number of auxiliary (branch-current) unknowns
    n_aux: int = 0
    #: True when the stamp depends on the current iterate.  The
    #: two-phase assembler relies on this flag: elements left at False
    #: are stamped once per step (their ``stamp`` must not read
    #: ``ctx.x``), nonlinear ones are re-stamped per Newton iteration.
    nonlinear: bool = False

    def __init__(self, name: str, nodes: Sequence[str]) -> None:
        if not name:
            raise NetlistError("element name must be non-empty")
        self.name = name
        self.nodes: Tuple[str, ...] = tuple(nodes)
        self.aux_index: int = -1

    def stamp(self, ctx: StampContext) -> None:
        raise NotImplementedError

    def clone(self, name: str, nodes: Sequence[str]) -> "Element":
        """Shallow copy bound to a new name and terminal nodes.

        Used by subcircuit flattening: parameters and heavyweight
        shared objects (CNFET devices, fitted curves, waveforms) stay
        shared with the prototype, while identity (name, nodes, matrix
        indices) and transient state are per-clone.
        """
        if len(nodes) != len(self.nodes):
            raise NetlistError(
                f"{self.name}: clone needs {len(self.nodes)} nodes, "
                f"got {len(nodes)}"
            )
        dup = copy.copy(self)
        dup.name = name
        dup.nodes = tuple(nodes)
        dup.aux_index = -1
        dup.reset_state()
        return dup

    @classmethod
    def lane_group(cls, elements: Sequence["Element"]) -> LaneGroup:
        """Batched stamping group for one slot (``elements[b]`` is the
        slot's element in lane ``b``).  Override to vectorize."""
        return GenericLaneGroup(elements)

    @classmethod
    def lane_groups(cls, slots: Sequence[Sequence["Element"]]
                    ) -> Sequence[LaneGroup]:
        """Batched stamping groups for *all* of this class's slots.

        The default is one :meth:`lane_group` per slot; classes whose
        vectorization spans slots (CNFETs stack every device of the
        batch into one evaluation) override this to return fewer,
        wider groups.
        """
        return [cls.lane_group(slot) for slot in slots]

    def accept_step(self, ctx: StampContext) -> None:
        """Called once after a transient step converges; elements with
        memory (trapezoidal capacitors, inductors) update their state."""

    def reset_state(self) -> None:
        """Forget any transient state (called when an analysis starts)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name}, nodes={self.nodes})"
