"""Element interface and the stamping context.

The engine solves ``A x = z`` where ``x`` stacks node voltages (ground
eliminated) and auxiliary branch currents (voltage sources, inductors).
Elements contribute via :meth:`Element.stamp`, receiving a
:class:`StampContext` that hides index bookkeeping and ground handling.

Sign conventions
----------------
* ``add_conductance(a, b, g)`` stamps a conductance *between* nodes
  ``a`` and ``b`` (the four-entry pattern).
* ``add_current(a, b, i)`` injects a current of value ``i`` flowing
  *from node a to node b through the element* (it leaves ``a``, enters
  ``b``).
* Nonlinear elements stamp their own Newton companion:
  ``add_transconductance`` for cross-terms plus ``add_current`` with the
  linearisation residual.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import NetlistError

GROUND_NAMES = ("0", "gnd", "GND")


class StampContext:
    """Assembly context handed to every element's ``stamp``.

    Attributes
    ----------
    analysis:
        ``"dc"`` or ``"tran"``.
    time, dt:
        Current time and step (transient only; ``None`` in DC).
    x:
        Current Newton iterate (full solution vector) — elements read
        their controlling voltages from it.
    x_prev:
        Converged solution of the previous time step (transient only).
    method:
        ``"be"`` (backward Euler) or ``"trap"`` (trapezoidal).
    gmin:
        Shunt conductance added by nonlinear elements for robustness
        (swept during gmin stepping).
    """

    def __init__(
        self,
        matrix: np.ndarray,
        rhs: np.ndarray,
        node_index: Dict[str, int],
        x: np.ndarray,
        analysis: str = "dc",
        time: Optional[float] = None,
        dt: Optional[float] = None,
        x_prev: Optional[np.ndarray] = None,
        method: str = "be",
        gmin: float = 1e-12,
        source_scale: float = 1.0,
    ) -> None:
        self.matrix = matrix
        self.rhs = rhs
        self.node_index = node_index
        self.x = x
        self.analysis = analysis
        self.time = time
        self.dt = dt
        self.x_prev = x_prev
        self.method = method
        self.gmin = gmin
        self.source_scale = source_scale

    # -- index helpers --------------------------------------------------

    def idx(self, node: str) -> int:
        """Matrix row of a node; -1 for ground."""
        if node in GROUND_NAMES:
            return -1
        try:
            return self.node_index[node]
        except KeyError:
            raise NetlistError(f"unknown node {node!r}") from None

    def voltage(self, node: str) -> float:
        """Node voltage in the current Newton iterate."""
        i = self.idx(node)
        return 0.0 if i < 0 else float(self.x[i])

    def previous_voltage(self, node: str) -> float:
        """Node voltage at the previous accepted time point."""
        if self.x_prev is None:
            return 0.0
        i = self.idx(node)
        return 0.0 if i < 0 else float(self.x_prev[i])

    # -- stamping primitives --------------------------------------------

    def add_entry(self, row: int, col: int, value: float) -> None:
        if row >= 0 and col >= 0:
            self.matrix[row, col] += value

    def add_rhs(self, row: int, value: float) -> None:
        if row >= 0:
            self.rhs[row] += value

    def add_conductance(self, a: str, b: str, g: float) -> None:
        ia, ib = self.idx(a), self.idx(b)
        self.add_entry(ia, ia, g)
        self.add_entry(ib, ib, g)
        self.add_entry(ia, ib, -g)
        self.add_entry(ib, ia, -g)

    def add_transconductance(self, out_a: str, out_b: str,
                             in_a: str, in_b: str, gm: float) -> None:
        """Current ``gm * (V(in_a) - V(in_b))`` flowing out_a -> out_b."""
        ia, ib = self.idx(out_a), self.idx(out_b)
        ja, jb = self.idx(in_a), self.idx(in_b)
        self.add_entry(ia, ja, gm)
        self.add_entry(ia, jb, -gm)
        self.add_entry(ib, ja, -gm)
        self.add_entry(ib, jb, gm)

    def add_current(self, a: str, b: str, i: float) -> None:
        """Current ``i`` flowing from ``a`` to ``b`` through the element."""
        ia, ib = self.idx(a), self.idx(b)
        self.add_rhs(ia, -i)
        self.add_rhs(ib, i)


class Element:
    """Base class of all circuit elements.

    Subclasses set ``nodes`` (terminal names in a fixed order), override
    :meth:`stamp`, and declare ``n_aux`` auxiliary unknowns (branch
    currents).  ``aux_index`` is assigned by the circuit when the system
    is dimensioned.
    """

    #: number of auxiliary (branch-current) unknowns
    n_aux: int = 0
    #: True when the stamp depends on the current iterate.  The
    #: two-phase assembler relies on this flag: elements left at False
    #: are stamped once per step (their ``stamp`` must not read
    #: ``ctx.x``), nonlinear ones are re-stamped per Newton iteration.
    nonlinear: bool = False

    def __init__(self, name: str, nodes: Sequence[str]) -> None:
        if not name:
            raise NetlistError("element name must be non-empty")
        self.name = name
        self.nodes: Tuple[str, ...] = tuple(nodes)
        self.aux_index: int = -1

    def stamp(self, ctx: StampContext) -> None:
        raise NotImplementedError

    def accept_step(self, ctx: StampContext) -> None:
        """Called once after a transient step converges; elements with
        memory (trapezoidal capacitors, inductors) update their state."""

    def reset_state(self) -> None:
        """Forget any transient state (called when an analysis starts)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name}, nodes={self.nodes})"
