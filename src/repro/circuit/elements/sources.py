"""Independent voltage and current sources."""

from __future__ import annotations

from typing import Union

from repro.circuit.elements.base import Element, StampContext
from repro.circuit.waveforms import DC, Waveform


def _as_waveform(value: Union[float, Waveform]) -> Waveform:
    if isinstance(value, Waveform):
        return value
    return DC(float(value))


class VoltageSource(Element):
    """Independent voltage source ``V(a) - V(b) = value(t)``.

    One auxiliary unknown: the branch current flowing a -> b through the
    source (so a positive current means the source *sinks* current at
    its + terminal, the SPICE convention).
    """

    n_aux = 1

    def __init__(self, name: str, a: str, b: str,
                 value: Union[float, Waveform] = 0.0) -> None:
        super().__init__(name, (a, b))
        self.waveform = _as_waveform(value)

    def source_value(self, ctx: StampContext) -> float:
        """Waveform value at the context time (DC value in DC) [V]."""
        if ctx.analysis == "tran" and ctx.time is not None:
            return self.waveform.value(ctx.time)
        return self.waveform.dc_value()

    def stamp(self, ctx: StampContext) -> None:
        """Stamp the branch constraint rows and the source value."""
        a, b = self.nodes
        ia, ib = ctx.idx(a), ctx.idx(b)
        k = self.aux_index
        ctx.add_entry(ia, k, 1.0)
        ctx.add_entry(ib, k, -1.0)
        ctx.add_entry(k, ia, 1.0)
        ctx.add_entry(k, ib, -1.0)
        ctx.add_rhs(k, self.source_value(ctx) * ctx.source_scale)


class CurrentSource(Element):
    """Independent current source pushing ``value(t)`` from a to b
    through the element (i.e. out of node ``a`` into node ``b``)."""

    def __init__(self, name: str, a: str, b: str,
                 value: Union[float, Waveform] = 0.0) -> None:
        super().__init__(name, (a, b))
        self.waveform = _as_waveform(value)

    def source_value(self, ctx: StampContext) -> float:
        """Waveform value at the context time (DC value in DC) [A]."""
        if ctx.analysis == "tran" and ctx.time is not None:
            return self.waveform.value(ctx.time)
        return self.waveform.dc_value()

    def stamp(self, ctx: StampContext) -> None:
        """Inject the source current from node a to node b."""
        a, b = self.nodes
        ctx.add_current(a, b, self.source_value(ctx) * ctx.source_scale)
