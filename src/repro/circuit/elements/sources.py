"""Independent voltage and current sources."""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.circuit.elements.base import (
    Element,
    LaneContext,
    LaneGroup,
    StampContext,
)
from repro.circuit.waveforms import DC, Waveform


def _as_waveform(value: Union[float, Waveform]) -> Waveform:
    if isinstance(value, Waveform):
        return value
    return DC(float(value))


class _SourceLaneGroup(LaneGroup):
    """Shared plumbing: per-lane source values at the context time.

    Waveform evaluation is a scalar call per lane (waveforms are cheap
    plain-Python objects and may differ per lane); the all-DC common
    case short-circuits to a cached value vector.  The DC cache is
    rebuilt per stamp when any lane's waveform object was swapped
    (``dc_sweep``-style mutation).
    """

    def __init__(self, elements) -> None:
        super().__init__(elements)
        self._dc_cache = None

    def _values(self, ctx: LaneContext) -> np.ndarray:
        lanes = ctx.lanes
        elements = self.elements
        if ctx.analysis == "tran" and ctx.time is not None:
            time = ctx.time
            return np.array([
                elements[lane].waveform.value(time) for lane in lanes
            ])
        cache = self._dc_cache
        waveforms = [elements[lane].waveform for lane in lanes]
        if cache is None or cache[0] != [id(w) for w in waveforms]:
            values = np.array([w.dc_value() for w in waveforms])
            self._dc_cache = ([id(w) for w in waveforms], values)
            return values
        return cache[1]


class _VoltageSourceLaneGroup(_SourceLaneGroup):
    def stamp(self, ctx: LaneContext) -> None:
        a, b = self.elements[0].nodes
        ia, ib = ctx.idx(a), ctx.idx(b)
        k = self.elements[0].aux_index
        lanes = ctx.lanes
        matrix = ctx.matrix
        matrix[lanes, ia, k] += 1.0
        matrix[lanes, ib, k] -= 1.0
        matrix[lanes, k, ia] += 1.0
        matrix[lanes, k, ib] -= 1.0
        ctx.rhs[lanes, k] += self._values(ctx) * ctx.source_scale


class _CurrentSourceLaneGroup(_SourceLaneGroup):
    def stamp(self, ctx: LaneContext) -> None:
        a, b = self.elements[0].nodes
        ia, ib = ctx.idx(a), ctx.idx(b)
        lanes = ctx.lanes
        i = self._values(ctx) * ctx.source_scale
        ctx.rhs[lanes, ia] -= i
        ctx.rhs[lanes, ib] += i


class VoltageSource(Element):
    """Independent voltage source ``V(a) - V(b) = value(t)``.

    One auxiliary unknown: the branch current flowing a -> b through the
    source (so a positive current means the source *sinks* current at
    its + terminal, the SPICE convention).
    """

    n_aux = 1

    def __init__(self, name: str, a: str, b: str,
                 value: Union[float, Waveform] = 0.0) -> None:
        super().__init__(name, (a, b))
        self.waveform = _as_waveform(value)

    def source_value(self, ctx: StampContext) -> float:
        """Waveform value at the context time (DC value in DC) [V]."""
        if ctx.analysis == "tran" and ctx.time is not None:
            return self.waveform.value(ctx.time)
        return self.waveform.dc_value()

    def stamp(self, ctx: StampContext) -> None:
        """Stamp the branch constraint rows and the source value."""
        a, b = self.nodes
        ia, ib = ctx.idx(a), ctx.idx(b)
        k = self.aux_index
        ctx.add_entry(ia, k, 1.0)
        ctx.add_entry(ib, k, -1.0)
        ctx.add_entry(k, ia, 1.0)
        ctx.add_entry(k, ib, -1.0)
        ctx.add_rhs(k, self.source_value(ctx) * ctx.source_scale)

    @classmethod
    def lane_group(cls, elements):
        return _VoltageSourceLaneGroup(elements)


class CurrentSource(Element):
    """Independent current source pushing ``value(t)`` from a to b
    through the element (i.e. out of node ``a`` into node ``b``)."""

    def __init__(self, name: str, a: str, b: str,
                 value: Union[float, Waveform] = 0.0) -> None:
        super().__init__(name, (a, b))
        self.waveform = _as_waveform(value)

    def source_value(self, ctx: StampContext) -> float:
        """Waveform value at the context time (DC value in DC) [A]."""
        if ctx.analysis == "tran" and ctx.time is not None:
            return self.waveform.value(ctx.time)
        return self.waveform.dc_value()

    def stamp(self, ctx: StampContext) -> None:
        """Inject the source current from node a to node b."""
        a, b = self.nodes
        ctx.add_current(a, b, self.source_value(ctx) * ctx.source_scale)

    @classmethod
    def lane_group(cls, elements):
        return _CurrentSourceLaneGroup(elements)
