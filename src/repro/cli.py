"""Command-line interface: ``repro-cnt`` / ``python -m repro``.

Subcommands
-----------
``iv``           print an IV family for the fast or reference model
``fit``          fit a model and print its piecewise regions
``table``        regenerate a paper table (1, 2, 3, 4 or 5)
``figure``       regenerate a paper figure (2-11)
``codegen``      emit VHDL-AMS / Verilog-A / SPICE for a fitted device
``mc``           run a variability Monte-Carlo campaign
``characterize`` delay/slew/energy tables for a logic gate
``netlist``      parse a SPICE-flavoured deck and run its analyses
``transient``    run one transient on a deck, optionally partitioned
                 (``--partition auto``, latency bypass) and/or
                 streamed to an on-disk store (``--store DIR``) —
                 see ``docs/partitioning.md``
``partition-report``  print the block structure a partitioned
                 transient would use (block count, size histogram,
                 boundary-node count)
``serve``        run the HTTP job server (see ``docs/service.md``)
``experiments``  run a declarative experiment config (factors x levels
                 x repetitions) into a resumable run directory with a
                 documented ``run_table.csv`` — see
                 ``docs/experiments.md``

``iv``, ``table``, ``mc`` and ``characterize`` accept ``--seed`` and
``--json`` so one-off runs and campaign runs are scriptable the same
way (``--json`` prints a machine-readable payload; the seed is echoed
in it and, where an experiment is stochastic, drives its random
stream).  ``netlist``, ``mc`` and ``characterize`` accept
``--backend {auto,dense,sparse}`` to pick the linear-solver backend
(auto switches to sparse at the measured dense/sparse crossover
dimension; see ``docs/hierarchy.md``) and
``--kernels {auto,numpy,compiled}`` to pick the hot-kernel tier
(auto prefers a compiled tier — numba or the system C compiler —
falling back to numpy; see ``docs/kernels.md``).  Process counts for
``mc`` (default: all cores) and ``characterize`` (default: 1) come
from ``--workers``; ``auto`` honours the ``REPRO_WORKERS``
environment variable before falling back to ``os.cpu_count()``.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Optional, Sequence

import numpy as np


def _device_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--diameter-nm", type=float, default=1.0)
    parser.add_argument("--tox-nm", type=float, default=1.5)
    parser.add_argument("--kappa", type=float, default=3.9)
    parser.add_argument("--temperature", type=float, default=300.0)
    parser.add_argument("--fermi-level", type=float, default=-0.32)
    parser.add_argument("--gate", choices=("coaxial", "backgate"),
                        default="coaxial")
    parser.add_argument("--model", choices=("model1", "model2", "reference"),
                        default="model2")


def _script_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags shared by the scriptable subcommands (iv/table/mc)."""
    parser.add_argument("--seed", type=int, default=None,
                        help="seed for any stochastic ingredient "
                             "(echoed in --json output)")
    parser.add_argument("--json", action="store_true",
                        help="print a machine-readable JSON payload")


def _backend_argument(parser: argparse.ArgumentParser) -> None:
    """The linear-solver backend flag shared by circuit subcommands."""
    parser.add_argument("--backend", choices=("auto", "dense", "sparse"),
                        default="auto",
                        help="linear-solver backend for the circuit "
                             "engine (auto picks sparse above the "
                             "dense/sparse crossover dimension)")
    parser.add_argument("--kernels",
                        choices=("auto", "numpy", "compiled", "numba",
                                 "cc"),
                        default="auto",
                        help="hot-kernel tier (auto prefers compiled "
                             "— numba or the system C compiler — and "
                             "falls back to numpy; overrides the "
                             "REPRO_KERNELS environment variable)")


def _dump_json(payload) -> str:
    """Strict RFC 8259 output: non-finite floats (failed runs report
    NaN metrics) become ``null`` so any consumer can parse it."""
    def sanitize(obj):
        if isinstance(obj, float):
            return obj if math.isfinite(obj) else None
        if isinstance(obj, dict):
            return {k: sanitize(v) for k, v in obj.items()}
        if isinstance(obj, (list, tuple)):
            return [sanitize(v) for v in obj]
        return obj

    return json.dumps(sanitize(payload), indent=1, allow_nan=False)


def _build_device(args):
    from repro.pwl.device import CNFET
    from repro.reference.fettoy import FETToyModel, FETToyParameters

    params = FETToyParameters(
        diameter_nm=args.diameter_nm,
        tox_nm=args.tox_nm,
        kappa=args.kappa,
        temperature_k=args.temperature,
        fermi_level_ev=args.fermi_level,
        gate_geometry=args.gate,
    )
    if args.model == "reference":
        return FETToyModel(params)
    return CNFET(params, model=args.model)


def _cmd_iv(args) -> int:
    from repro.experiments.report import ascii_table

    device = _build_device(args)
    vgs = np.arange(args.vg_start, args.vg_stop + 1e-9, args.vg_step)
    vds = np.linspace(0.0, args.vd_stop, args.vd_points)
    family = device.iv_family(vgs, vds)
    if args.json:
        print(_dump_json({
            "command": "iv",
            "model": args.model,
            "seed": args.seed,
            "vg": [float(v) for v in vgs],
            "vds": [float(v) for v in vds],
            "ids": family.tolist(),
        }))
        return 0
    rows = []
    for j, vd in enumerate(vds):
        rows.append([float(vd)] + [float(family[i, j])
                                   for i in range(len(vgs))])
    headers = ["VDS [V]"] + [f"VG={vg:.2f}" for vg in vgs]
    print(ascii_table(headers, rows,
                      title=f"IDS [A] ({args.model})"))
    return 0


def _cmd_fit(args) -> int:
    device = _build_device(args)
    if not hasattr(device, "fitted"):
        print("fit applies to model1/model2 only", file=sys.stderr)
        return 2
    fitted = device.fitted
    print(f"model: {fitted.spec.name}  T={fitted.temperature_k} K  "
          f"EF={fitted.fermi_level_ev} eV")
    print(f"charge-fit RMS: {100 * fitted.rms_error_relative:.3f}% of peak")
    print(fitted.curve.describe())
    return 0


def _cmd_table(args) -> int:
    from repro.experiments import runners
    from repro.experiments.report import jsonify

    if args.number == 1:
        result = runners.run_table1()
    elif args.number in (2, 3, 4):
        fermi = {2: -0.32, 3: -0.5, 4: 0.0}[args.number]
        result = runners.run_rms_table(fermi)
    else:
        # Table V compares against the synthetic measurement set, whose
        # ripple is the one stochastic ingredient — the seed re-rolls it.
        result = runners.run_table5(seed=args.seed)
    if args.json:
        print(_dump_json({"command": "table", "number": args.number,
                          "seed": args.seed, "result": jsonify(result)}))
    else:
        print(result.render())
    return 0


def _cmd_mc(args) -> int:
    from repro.experiments.report import ascii_table
    from repro.experiments.workloads import variability_workload
    from repro.parallel import resolve_workers
    from repro.variability.campaign import Campaign, CampaignConfig
    from repro.variability.params import CORNERS, corner_sample

    workers = resolve_workers(args.workers)
    # The device workloads are already batched in-process; they shard
    # at the chunk level (campaign.run) only, so the factory keeps its
    # workers-free contract for them.
    factory_workers = (1 if args.workload in ("device",
                                              "device-chirality")
                       else workers)
    space, evaluator = variability_workload(
        args.workload, sigma_scale=args.sigma_scale, vdd=args.vdd,
        model=args.model, stages=args.stages, workers=factory_workers,
        metrics=args.metric, gate=args.gate,
        use_batch=not args.no_batch, backend=args.backend,
    )
    config = CampaignConfig(
        name=args.workload, n_samples=args.samples,
        seed=0 if args.seed is None else args.seed,
        sampler=args.sampler, chunk_size=args.chunk_size,
    )
    campaign = Campaign(config, space, evaluator, run_dir=args.run_dir)
    result = campaign.run(resume=not args.no_resume, workers=workers)

    corners = None
    if args.corners:
        corners = {}
        for corner in sorted(CORNERS):
            sample = corner_sample(space, corner)
            corners[corner] = evaluator.evaluate([sample])[0]

    if args.json:
        payload = result.to_json_dict()
        if corners is not None:
            payload["corners"] = corners
        print(_dump_json(payload))
        return 0
    print(result.render(histograms=args.histograms))
    if corners is not None:
        metric_names = result.metric_names
        rows = [[corner] + [corners[corner].get(m, float("nan"))
                            for m in metric_names]
                for corner in sorted(corners)]
        print()
        print(ascii_table(["corner"] + metric_names, rows,
                          title="Process corners"))
    if result.run_dir:
        print(f"\nrun directory: {result.run_dir} "
              f"({result.resumed_chunks} chunks resumed, "
              f"{result.computed_chunks} computed)")
    return 0


def _cmd_characterize(args) -> int:
    from repro.characterize import characterize_gate
    from repro.circuit.logic import LogicFamily

    family = LogicFamily.default(vdd=args.vdd, model=args.model)
    loads = tuple(float(c) * 1e-15 for c in args.loads.split(","))
    slews = tuple(float(s) * 1e-12 for s in args.slews.split(","))
    table = characterize_gate(family, args.gate, loads=loads,
                              slews=slews,
                              use_batch=not args.no_batch,
                              backend=args.backend,
                              workers=args.workers)
    if args.json:
        payload = table.to_json_dict()
        payload["command"] = "characterize"
        payload["seed"] = args.seed
        print(_dump_json(payload))
    elif args.format == "csv":
        print(table.to_csv(), end="")
    elif args.format == "liberty":
        print(table.to_liberty(), end="")
    else:
        print(table.render())
    return 0


def _cmd_netlist(args) -> int:
    from repro.circuit.dc import dc_sweep, operating_point
    from repro.circuit.parser import parse_netlist
    from repro.circuit.transient import transient
    from repro.experiments.report import sparkline

    if args.deck == "-":
        text = sys.stdin.read()
        title = "<stdin>"
    else:
        with open(args.deck) as handle:
            text = handle.read()
        title = args.deck
    deck = parse_netlist(text, title=title)
    circuit = deck.circuit
    payload = {
        "command": "netlist", "deck": title, "backend": args.backend,
        "elements": len(circuit.elements), "nodes": circuit.n_nodes,
        "subcircuits": sorted(deck.subcircuits), "analyses": [],
    }
    if not args.json:
        print(f"parsed {title}: {len(circuit.elements)} elements, "
              f"{circuit.n_nodes} nodes, {len(deck.subcircuits)} "
              f"subcircuit definitions, {len(deck.analyses)} analyses "
              f"[backend={args.backend}]")
    shown = args.nodes.split(",") if args.nodes else circuit.nodes[:4]
    if not deck.analyses:
        op = operating_point(circuit, backend=args.backend)
        entry = {"kind": "op",
                 "voltages": {n: op.voltage(n) for n in circuit.nodes}}
        payload["analyses"].append(entry)
        if not args.json:
            print("\noperating point:")
            for node in shown:
                print(f"  v({node}) = {op.voltage(node):.6g} V")
    for directive in deck.analyses:
        if directive.kind == "dc":
            values = np.linspace(
                directive.params["start"], directive.params["stop"],
                int(directive.params["points"]),
            )
            ds = dc_sweep(circuit, directive.source, values,
                          backend=args.backend)
            entry = {"kind": "dc", "source": directive.source,
                     "points": len(values),
                     "final": {f"v({n})": float(ds.voltage(n)[-1])
                               for n in shown}}
            payload["analyses"].append(entry)
            if not args.json:
                print(f"\n.dc sweep of {directive.source} "
                      f"({len(values)} points):")
                for node in shown:
                    print(f"  v({node}): "
                          f"{sparkline(ds.voltage(node), 50)}")
        else:
            stats: dict = {}
            ds = transient(
                circuit, tstop=directive.params["tstop"],
                dt=directive.params["tstep"], method=directive.method,
                record_currents="sources", stats=stats,
                backend=args.backend,
            )
            entry = {"kind": "tran", "method": directive.method,
                     "steps": stats.get("steps", 0),
                     "newton_iterations": stats.get("iterations", 0),
                     "final": {f"v({n})": float(ds.voltage(n)[-1])
                               for n in shown}}
            payload["analyses"].append(entry)
            if not args.json:
                print(f"\n.tran ({directive.method}), "
                      f"{len(ds.axis)} time points, "
                      f"{stats.get('iterations', 0)} Newton "
                      f"iterations:")
                for node in shown:
                    print(f"  v({node}): "
                          f"{sparkline(ds.voltage(node), 50)}")
    if args.json:
        print(_dump_json(payload))
    return 0


def _read_deck(path: str):
    from repro.circuit.parser import parse_netlist

    if path == "-":
        return parse_netlist(sys.stdin.read(), title="<stdin>"), "<stdin>"
    with open(path) as handle:
        text = handle.read()
    return parse_netlist(text, title=path), path


def _cmd_transient(args) -> int:
    from repro.circuit.transient import transient
    from repro.experiments.report import sparkline

    deck, title = _read_deck(args.deck)
    circuit = deck.circuit
    tstop, tstep = args.tstop, args.dt
    if tstop is None or tstep is None:
        # fall back to the deck's own .tran directive
        for directive in deck.analyses:
            if directive.kind == "tran":
                tstop = directive.params["tstop"] if tstop is None \
                    else tstop
                tstep = directive.params["tstep"] if tstep is None \
                    else tstep
                break
    if tstop is None:
        print("error: no --tstop and the deck has no .tran directive",
              file=sys.stderr)
        return 2
    stats: dict = {}
    ds = transient(
        circuit, tstop=tstop, dt=tstep, method=args.method,
        record_currents="sources" if args.store is None else False,
        stats=stats, backend=args.backend,
        partition=args.partition, bypass_tol=args.bypass_tol,
        store=args.store, store_chunk_rows=args.store_chunk_rows,
    )
    shown = args.nodes.split(",") if args.nodes else circuit.nodes[:4]
    payload = {
        "command": "transient", "deck": title,
        "partition": args.partition, "store": args.store,
        "steps": stats.get("steps", 0),
        "newton_iterations": stats.get("iterations", 0),
        "time_points": int(ds.axis.shape[0]),
        "partition_stats": {k: v for k, v in stats.items()
                            if k.startswith("partition_")},
        "final": {f"v({n})": float(ds.voltage(n)[-1]) for n in shown},
    }
    if args.json:
        print(_dump_json(payload))
        return 0
    print(f"transient on {title}: {payload['time_points']} time "
          f"points, {payload['newton_iterations']} Newton iterations "
          f"[partition={args.partition}]")
    byp = stats.get("partition_block_steps_bypassed")
    if byp is not None:
        active = stats.get("partition_block_steps_active", 0)
        print(f"  block-steps: {active} active, {byp} bypassed")
    for node in shown:
        print(f"  v({node}): {sparkline(ds.voltage(node), 50)}")
    if args.store:
        print(f"  waveforms stored in {args.store}")
    return 0


def _cmd_partition_report(args) -> int:
    from repro.circuit.partition import partition_circuit

    deck, title = _read_deck(args.deck)
    kwargs = {} if args.max_block is None else \
        {"max_block": args.max_block}
    part = partition_circuit(deck.circuit, **kwargs)
    report = part.report()
    if args.json:
        payload = report.as_dict()
        payload["command"] = "partition-report"
        payload["deck"] = title
        print(_dump_json(payload))
        return 0
    print(f"partition of {title}: {report.n_blocks} blocks, "
          f"{report.boundary_nodes} boundary nodes, "
          f"{report.interface_unknowns} interface unknowns "
          f"of {report.total_unknowns} total")
    print("block sizes (unknowns per block):")
    print(report.histogram())
    return 0


def _cmd_serve(args) -> int:
    import sys as _sys

    from repro.service.metrics import StructuredLogger
    from repro.service.server import serve

    logger = StructuredLogger(stream=_sys.stderr)
    print(f"repro service listening on "
          f"http://{args.host}:{args.port} "
          f"(workers={args.workers}, "
          f"batch-window={args.batch_window:g}s, "
          f"cache-size={args.cache_size})", flush=True)
    serve(host=args.host, port=args.port, workers=args.workers,
          batch_window=args.batch_window, cache_size=args.cache_size,
          max_queue=args.max_queue, backend=args.backend,
          logger=logger)
    return 0


def _cmd_experiments(args) -> int:
    from pathlib import Path

    from repro.exprunner import (
        ExperimentRunner,
        load_config,
        render_report,
    )

    suite = load_config(args.config)
    run_root = Path(args.run_dir)
    payload = {"suite": suite.name, "experiments": []}
    for config in suite:
        runner = ExperimentRunner(config, run_root / config.name)
        if args.report_only:
            result = runner.load()
        else:
            result = runner.run(resume=not args.no_resume,
                                workers=args.workers,
                                max_runs=args.max_runs)
        report = render_report(config, result.records,
                               pending=result.pending)
        if args.report or args.report_only:
            _atomic_report = Path(result.run_dir) / "report.json"
            _atomic_report.write_text(_dump_json(report) + "\n")
        payload["experiments"].append(report)
        if not args.json:
            state = ("complete" if result.complete
                     else f"{result.pending} runs pending")
            print(f"{config.name}: {result.resumed} resumed, "
                  f"{result.computed} computed ({state})")
            for cell in result.cells():
                levels = " ".join(f"{k}={v}"
                                  for k, v in cell["point"].items())
                parity = cell["parity_max"]
                parity_txt = ("" if math.isnan(parity)
                              else f"  parity<={parity:.3g}")
                print(f"  [{levels}]  wall min {cell['wall_s_min']:.4g}s"
                      f" median {cell['wall_s_median']:.4g}s"
                      f" (n={cell['n_ok']}/{cell['n']}){parity_txt}")
    if args.json:
        print(_dump_json(payload))
    return 0


def _cmd_figure(args) -> int:
    from repro.experiments import runners

    n = args.number
    if n == 2:
        print(runners.run_fig2_3("model1").render())
    elif n == 3:
        print(runners.run_fig2_3("model2").render())
    elif n == 4:
        print(runners.run_fig4_5("model1").render())
    elif n == 5:
        print(runners.run_fig4_5("model2").render())
    elif n == 6:
        print(runners.run_fig6_7("model1").render())
    elif n == 7:
        print(runners.run_fig6_7("model2").render())
    elif n == 8:
        print(runners.run_fig8().render())
    elif n == 9:
        print(runners.run_fig9().render())
    elif n == 10:
        print(runners.run_fig10_11("model1").render())
    else:
        print(runners.run_fig10_11("model2").render())
    return 0


def _cmd_codegen(args) -> int:
    from repro.pwl.codegen import (
        generate_spice_subcircuit,
        generate_verilog_a,
        generate_vhdl_ams,
    )

    device = _build_device(args)
    if not hasattr(device, "fitted"):
        print("codegen applies to model1/model2 only", file=sys.stderr)
        return 2
    emitter = {
        "vhdl-ams": generate_vhdl_ams,
        "verilog-a": generate_verilog_a,
        "spice": generate_spice_subcircuit,
    }[args.language]
    print(emitter(device))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cnt",
        description="Ballistic CNFET compact modelling (DATE 2008 "
                    "reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_iv = sub.add_parser("iv", help="print an IV family")
    _device_arguments(p_iv)
    p_iv.add_argument("--vg-start", type=float, default=0.3)
    p_iv.add_argument("--vg-stop", type=float, default=0.6)
    p_iv.add_argument("--vg-step", type=float, default=0.1)
    p_iv.add_argument("--vd-stop", type=float, default=0.6)
    p_iv.add_argument("--vd-points", type=int, default=13)
    _script_arguments(p_iv)
    p_iv.set_defaults(func=_cmd_iv)

    p_fit = sub.add_parser("fit", help="fit and describe a model")
    _device_arguments(p_fit)
    p_fit.set_defaults(func=_cmd_fit)

    p_table = sub.add_parser("table", help="regenerate a paper table")
    p_table.add_argument("number", type=int, choices=(1, 2, 3, 4, 5))
    _script_arguments(p_table)
    p_table.set_defaults(func=_cmd_table)

    p_mc = sub.add_parser(
        "mc", help="run a variability Monte-Carlo campaign")
    p_mc.add_argument("--workload", default="device",
                      choices=("device", "device-chirality", "inverter",
                               "ringosc", "gate"))
    p_mc.add_argument("--samples", type=int, default=256)
    p_mc.add_argument("--sampler", choices=("mc", "lhs"), default="mc")
    p_mc.add_argument("--chunk-size", type=int, default=256)
    p_mc.add_argument("--run-dir", default=None,
                      help="persist per-chunk records here (resumable)")
    p_mc.add_argument("--no-resume", action="store_true",
                      help="ignore existing chunks in --run-dir")
    p_mc.add_argument("--metric", action="append",
                      choices=("ion", "ioff", "vth", "gm",
                               "ion_ioff_ratio"),
                      help="restrict device metrics (repeatable)")
    p_mc.add_argument("--sigma-scale", type=float, default=1.0,
                      help="widen/narrow every knob spread at once")
    p_mc.add_argument("--vdd", type=float, default=0.6)
    p_mc.add_argument("--model", choices=("model1", "model2"),
                      default="model2")
    p_mc.add_argument("--stages", type=int, default=3,
                      help="ring-oscillator stages (ringosc workload)")
    p_mc.add_argument("--gate", default="nand2",
                      help="gate name for the gate workload "
                           "(see `characterize --help`)")
    p_mc.add_argument("--workers", default="auto",
                      help="process count for chunk/lane sharding "
                           "(default: auto = REPRO_WORKERS env if "
                           "set, else all cores)")
    p_mc.add_argument("--no-batch", action="store_true",
                      help="disable the lane-batched circuit engine "
                           "for the circuit workloads (per-sample "
                           "scalar loop, optionally pooled)")
    _backend_argument(p_mc)
    p_mc.add_argument("--corners", action="store_true",
                      help="also evaluate the TT/FF/SS corner devices")
    p_mc.add_argument("--histograms", action="store_true",
                      help="append per-metric ASCII histograms")
    _script_arguments(p_mc)
    p_mc.set_defaults(func=_cmd_mc)

    p_char = sub.add_parser(
        "characterize",
        help="delay/slew/energy lookup tables for a logic gate")
    p_char.add_argument("--gate", default="nand2",
                        choices=("inverter", "nand2", "nor2", "nand3",
                                 "tgate"))
    p_char.add_argument("--loads", default="0.01,0.04,0.08",
                        help="output loads, comma-separated [fF]")
    p_char.add_argument("--slews", default="1,4,10",
                        help="input slews, comma-separated [ps]")
    p_char.add_argument("--vdd", type=float, default=0.6)
    p_char.add_argument("--model", choices=("model1", "model2"),
                        default="model2")
    p_char.add_argument("--format", choices=("ascii", "csv", "liberty"),
                        default="ascii",
                        help="text output format (--json overrides)")
    p_char.add_argument("--no-batch", action="store_true",
                        help="characterize each grid point with its "
                             "own scalar transient instead of one "
                             "lane-batched run")
    p_char.add_argument("--workers", default=1,
                        help="shard the batched grid into this many "
                             "tiles, one forked process each "
                             "('auto' = REPRO_WORKERS env if set, "
                             "else all cores; default 1 keeps the "
                             "single-batch run)")
    _backend_argument(p_char)
    _script_arguments(p_char)
    p_char.set_defaults(func=_cmd_characterize)

    p_net = sub.add_parser(
        "netlist",
        help="parse a SPICE-flavoured deck (with .subckt hierarchy) "
             "and run its analyses")
    p_net.add_argument("deck", help="netlist file path, or '-' for stdin")
    p_net.add_argument("--nodes", default=None,
                       help="comma-separated nodes to report "
                            "(default: first few, sorted)")
    _backend_argument(p_net)
    p_net.add_argument("--json", action="store_true",
                       help="print a machine-readable JSON payload")
    p_net.set_defaults(func=_cmd_netlist)

    p_tran = sub.add_parser(
        "transient",
        help="run one transient on a netlist deck, optionally "
             "partitioned (latency bypass) and/or streamed to an "
             "on-disk waveform store")
    p_tran.add_argument("deck", help="netlist file path, or '-' for stdin")
    p_tran.add_argument("--tstop", type=float, default=None,
                        help="stop time [s] (default: the deck's "
                             ".tran directive)")
    p_tran.add_argument("--dt", type=float, default=None,
                        help="fixed step [s] (default: the deck's "
                             ".tran step, else adaptive)")
    p_tran.add_argument("--method", choices=("trap", "be"),
                        default="trap")
    p_tran.add_argument("--partition", choices=("off", "auto"),
                        default="off",
                        help="partition along subcircuit boundaries "
                             "and skip quiescent blocks "
                             "(docs/partitioning.md)")
    p_tran.add_argument("--bypass-tol", type=float, default=None,
                        help="latency-bypass drift tolerance [V] "
                             "(requires --partition auto; 0 disables "
                             "bypass while keeping the block solve)")
    p_tran.add_argument("--store", default=None, metavar="DIR",
                        help="stream waveforms to a chunked on-disk "
                             "store instead of holding them in memory")
    p_tran.add_argument("--store-chunk-rows", type=int, default=256,
                        help="rows buffered per store chunk")
    p_tran.add_argument("--nodes", default=None,
                        help="comma-separated nodes to report "
                             "(default: first few, sorted)")
    _backend_argument(p_tran)
    p_tran.add_argument("--json", action="store_true",
                        help="print a machine-readable JSON payload")
    p_tran.set_defaults(func=_cmd_transient)

    p_part = sub.add_parser(
        "partition-report",
        help="print the block structure a partitioned transient "
             "would use (block count, size histogram, boundary nodes)")
    p_part.add_argument("deck", help="netlist file path, or '-' for stdin")
    p_part.add_argument("--max-block", type=int, default=None,
                        help="maximum elements per block before a "
                             "group is split further")
    p_part.add_argument("--json", action="store_true",
                        help="print a machine-readable JSON payload")
    p_part.set_defaults(func=_cmd_partition_report)

    p_srv = sub.add_parser(
        "serve",
        help="run the HTTP job server (transient/DC/MC/characterize "
             "jobs with fingerprint caching and lane coalescing)")
    p_srv.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    p_srv.add_argument("--port", type=int, default=8080,
                       help="TCP port; 0 picks a free port")
    p_srv.add_argument("--workers", type=int, default=2,
                       help="scheduler worker threads")
    p_srv.add_argument("--batch-window", type=float, default=0.05,
                       help="seconds a worker waits to coalesce "
                            "same-topology jobs into one lane-batched "
                            "solve (0 disables coalescing)")
    p_srv.add_argument("--cache-size", type=int, default=256,
                       help="fingerprint result-cache entries "
                            "(0 disables caching)")
    p_srv.add_argument("--max-queue", type=int, default=None,
                       help="bound on queued jobs; submissions past "
                            "it get HTTP 503 + Retry-After "
                            "(default: unbounded)")
    _backend_argument(p_srv)
    p_srv.set_defaults(func=_cmd_serve)

    p_exp = sub.add_parser(
        "experiments",
        help="run a declarative experiment config into a resumable "
             "run directory (factors x levels x repetitions)")
    p_exp.add_argument("--config", required=True,
                       help="experiment config JSON (single experiment "
                            "or a suite; see docs/experiments.md)")
    p_exp.add_argument("--run-dir", required=True,
                       help="root run directory; each experiment gets "
                            "a subdirectory with manifest.json, "
                            "runs/rNNNN/record.json and run_table.csv")
    p_exp.add_argument("--no-resume", action="store_true",
                       help="recompute every run, ignoring existing "
                            "records in --run-dir")
    p_exp.add_argument("--workers", default=1,
                       help="shard pending runs over this many forked "
                            "processes ('auto' = REPRO_WORKERS env if "
                            "set, else all cores; default 1)")
    p_exp.add_argument("--max-runs", type=int, default=None,
                       help="execute at most this many pending runs "
                            "per experiment, then stop (incremental "
                            "invocation; resume later)")
    p_exp.add_argument("--report", action="store_true",
                       help="also write report.json per experiment")
    p_exp.add_argument("--report-only", action="store_true",
                       help="regenerate run_table.csv and report.json "
                            "from existing records without executing "
                            "anything")
    p_exp.add_argument("--json", action="store_true",
                       help="print the suite report as JSON instead "
                            "of the per-cell summary lines")
    p_exp.set_defaults(func=_cmd_experiments)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure")
    p_fig.add_argument("number", type=int, choices=tuple(range(2, 12)))
    p_fig.set_defaults(func=_cmd_figure)

    p_gen = sub.add_parser("codegen", help="emit HDL for a fitted device")
    _device_arguments(p_gen)
    p_gen.add_argument("--language",
                       choices=("vhdl-ams", "verilog-a", "spice"),
                       default="vhdl-ams")
    p_gen.set_defaults(func=_cmd_codegen)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.errors import ReproError

    try:
        if getattr(args, "kernels", "auto") != "auto":
            from repro.pwl.kernels import set_kernel_backend
            set_kernel_backend(args.kernels)
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
