"""Command-line interface: ``repro-cnt`` / ``python -m repro``.

Subcommands
-----------
``iv``       print an IV family for the fast or reference model
``fit``      fit a model and print its piecewise regions
``table``    regenerate a paper table (1, 2, 3, 4 or 5)
``figure``   regenerate a paper figure (2-11)
``codegen``  emit VHDL-AMS / Verilog-A / SPICE for a fitted device
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np


def _device_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--diameter-nm", type=float, default=1.0)
    parser.add_argument("--tox-nm", type=float, default=1.5)
    parser.add_argument("--kappa", type=float, default=3.9)
    parser.add_argument("--temperature", type=float, default=300.0)
    parser.add_argument("--fermi-level", type=float, default=-0.32)
    parser.add_argument("--gate", choices=("coaxial", "backgate"),
                        default="coaxial")
    parser.add_argument("--model", choices=("model1", "model2", "reference"),
                        default="model2")


def _build_device(args):
    from repro.pwl.device import CNFET
    from repro.reference.fettoy import FETToyModel, FETToyParameters

    params = FETToyParameters(
        diameter_nm=args.diameter_nm,
        tox_nm=args.tox_nm,
        kappa=args.kappa,
        temperature_k=args.temperature,
        fermi_level_ev=args.fermi_level,
        gate_geometry=args.gate,
    )
    if args.model == "reference":
        return FETToyModel(params)
    return CNFET(params, model=args.model)


def _cmd_iv(args) -> int:
    from repro.experiments.report import ascii_table

    device = _build_device(args)
    vgs = np.arange(args.vg_start, args.vg_stop + 1e-9, args.vg_step)
    vds = np.linspace(0.0, args.vd_stop, args.vd_points)
    family = device.iv_family(vgs, vds)
    rows = []
    for j, vd in enumerate(vds):
        rows.append([float(vd)] + [float(family[i, j])
                                   for i in range(len(vgs))])
    headers = ["VDS [V]"] + [f"VG={vg:.2f}" for vg in vgs]
    print(ascii_table(headers, rows,
                      title=f"IDS [A] ({args.model})"))
    return 0


def _cmd_fit(args) -> int:
    device = _build_device(args)
    if not hasattr(device, "fitted"):
        print("fit applies to model1/model2 only", file=sys.stderr)
        return 2
    fitted = device.fitted
    print(f"model: {fitted.spec.name}  T={fitted.temperature_k} K  "
          f"EF={fitted.fermi_level_ev} eV")
    print(f"charge-fit RMS: {100 * fitted.rms_error_relative:.3f}% of peak")
    print(fitted.curve.describe())
    return 0


def _cmd_table(args) -> int:
    from repro.experiments import runners

    if args.number == 1:
        print(runners.run_table1().render())
    elif args.number in (2, 3, 4):
        fermi = {2: -0.32, 3: -0.5, 4: 0.0}[args.number]
        print(runners.run_rms_table(fermi).render())
    else:
        print(runners.run_table5().render())
    return 0


def _cmd_figure(args) -> int:
    from repro.experiments import runners

    n = args.number
    if n == 2:
        print(runners.run_fig2_3("model1").render())
    elif n == 3:
        print(runners.run_fig2_3("model2").render())
    elif n == 4:
        print(runners.run_fig4_5("model1").render())
    elif n == 5:
        print(runners.run_fig4_5("model2").render())
    elif n == 6:
        print(runners.run_fig6_7("model1").render())
    elif n == 7:
        print(runners.run_fig6_7("model2").render())
    elif n == 8:
        print(runners.run_fig8().render())
    elif n == 9:
        print(runners.run_fig9().render())
    elif n == 10:
        print(runners.run_fig10_11("model1").render())
    else:
        print(runners.run_fig10_11("model2").render())
    return 0


def _cmd_codegen(args) -> int:
    from repro.pwl.codegen import (
        generate_spice_subcircuit,
        generate_verilog_a,
        generate_vhdl_ams,
    )

    device = _build_device(args)
    if not hasattr(device, "fitted"):
        print("codegen applies to model1/model2 only", file=sys.stderr)
        return 2
    emitter = {
        "vhdl-ams": generate_vhdl_ams,
        "verilog-a": generate_verilog_a,
        "spice": generate_spice_subcircuit,
    }[args.language]
    print(emitter(device))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cnt",
        description="Ballistic CNFET compact modelling (DATE 2008 "
                    "reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_iv = sub.add_parser("iv", help="print an IV family")
    _device_arguments(p_iv)
    p_iv.add_argument("--vg-start", type=float, default=0.3)
    p_iv.add_argument("--vg-stop", type=float, default=0.6)
    p_iv.add_argument("--vg-step", type=float, default=0.1)
    p_iv.add_argument("--vd-stop", type=float, default=0.6)
    p_iv.add_argument("--vd-points", type=int, default=13)
    p_iv.set_defaults(func=_cmd_iv)

    p_fit = sub.add_parser("fit", help="fit and describe a model")
    _device_arguments(p_fit)
    p_fit.set_defaults(func=_cmd_fit)

    p_table = sub.add_parser("table", help="regenerate a paper table")
    p_table.add_argument("number", type=int, choices=(1, 2, 3, 4, 5))
    p_table.set_defaults(func=_cmd_table)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure")
    p_fig.add_argument("number", type=int, choices=tuple(range(2, 12)))
    p_fig.set_defaults(func=_cmd_figure)

    p_gen = sub.add_parser("codegen", help="emit HDL for a fitted device")
    _device_arguments(p_gen)
    p_gen.add_argument("--language",
                       choices=("vhdl-ams", "verilog-a", "spice"),
                       default="vhdl-ams")
    p_gen.set_defaults(func=_cmd_codegen)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
