"""Exception hierarchy for the ``repro`` package.

Every error deliberately raised by the library derives from
:class:`ReproError` so applications can catch library failures without
masking programming errors (``TypeError`` etc. propagate untouched).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ParameterError(ReproError, ValueError):
    """A physical or model parameter is out of its valid domain."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to converge.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Magnitude of the final residual, when known.
    """

    def __init__(self, message: str, *, iterations: int | None = None,
                 residual: float | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class FittingError(ReproError, RuntimeError):
    """Piecewise charge-curve fitting failed (degenerate data, bad bounds)."""


class RootNotFoundError(ReproError, RuntimeError):
    """No closed-form root was found in any piecewise region.

    This indicates the operating point fell outside the fitted VSC window;
    the message carries the scanned interval for diagnosis.
    """


class NetlistError(ReproError, ValueError):
    """Malformed netlist: unknown node, duplicate element, bad topology."""


class ParseError(NetlistError):
    """A SPICE-flavoured netlist file could not be parsed.

    Attributes
    ----------
    line_number:
        1-based line number of the offending line, when known.
    line:
        The raw offending line.
    """

    def __init__(self, message: str, *, line_number: int | None = None,
                 line: str | None = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number
        self.line = line


class AnalysisError(ReproError, RuntimeError):
    """A circuit analysis (DC, transient) failed to complete."""


class CodegenError(ReproError, RuntimeError):
    """HDL code generation failed (unsupported model structure)."""


class CampaignError(ReproError, RuntimeError):
    """A variability campaign could not run or resume (corrupt run
    directory, manifest/config mismatch, unknown workload)."""


class ServiceError(ReproError, RuntimeError):
    """A job-service operation failed (HTTP error reply, job failure,
    timeout waiting for a result, or a server shutting down)."""
