"""Exception hierarchy for the ``repro`` package.

Every error deliberately raised by the library derives from
:class:`ReproError` so applications can catch library failures without
masking programming errors (``TypeError`` etc. propagate untouched).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ParameterError(ReproError, ValueError):
    """A physical or model parameter is out of its valid domain."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to converge.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Magnitude of the final residual, when known.
    """

    def __init__(self, message: str, *, iterations: int | None = None,
                 residual: float | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class FittingError(ReproError, RuntimeError):
    """Piecewise charge-curve fitting failed (degenerate data, bad bounds)."""


class RootNotFoundError(ReproError, RuntimeError):
    """No closed-form root was found in any piecewise region.

    This indicates the operating point fell outside the fitted VSC window;
    the message carries the scanned interval for diagnosis.
    """


class NetlistError(ReproError, ValueError):
    """Malformed netlist: unknown node, duplicate element, bad topology."""


class ParseError(NetlistError):
    """A SPICE-flavoured netlist file could not be parsed.

    Attributes
    ----------
    line_number:
        1-based line number of the offending line, when known.
    line:
        The raw offending line.
    """

    def __init__(self, message: str, *, line_number: int | None = None,
                 line: str | None = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number
        self.line = line


class AnalysisError(ReproError, RuntimeError):
    """A circuit analysis (DC, transient) failed to complete.

    Attributes
    ----------
    residual:
        Inf-norm of the last Newton voltage update [V], when known —
        how far from convergence the best attempt got.
    node:
        Name of the node with the largest final update, when known.
    strategies:
        Names of the solve strategies attempted before giving up
        (e.g. ``("newton", "gmin-stepping", "source-stepping")``).
    """

    def __init__(self, message: str, *,
                 residual: float | None = None,
                 node: str | None = None,
                 strategies: "tuple[str, ...] | None" = None) -> None:
        super().__init__(message)
        self.residual = residual
        self.node = node
        self.strategies = strategies


class StoreError(ReproError, RuntimeError):
    """An on-disk waveform store (``repro.circuit.store``) is missing,
    corrupt beyond the quarantined chunks, or was opened with an
    incompatible schema version."""


class ParallelError(ReproError, RuntimeError):
    """A sharded :func:`repro.parallel.fork_map` run failed as a whole
    (the ``timeout=`` budget elapsed with shards still running).  An
    individual item that raises — in a worker, or during the
    post-crash serial re-run — re-raises its *original* exception
    annotated with the item index instead.

    Attributes
    ----------
    indices:
        Original item indices involved in the failure, when known.
    """

    def __init__(self, message: str, *,
                 indices: "tuple[int, ...] | None" = None) -> None:
        super().__init__(message)
        self.indices = indices


class CancelledError(ReproError, RuntimeError):
    """Cooperative cancellation: a :class:`repro.cancel.CancelToken`
    was cancelled or its deadline passed and the running analysis
    stopped at its next check point.

    Attributes
    ----------
    kind:
        ``"timeout"`` when a deadline expired, ``"cancelled"`` for an
        explicit cancellation.
    """

    def __init__(self, message: str, *, kind: str = "cancelled") -> None:
        super().__init__(message)
        self.kind = kind


class CodegenError(ReproError, RuntimeError):
    """HDL code generation failed (unsupported model structure)."""


class CampaignError(ReproError, RuntimeError):
    """A variability campaign could not run or resume (corrupt run
    directory, manifest/config mismatch, unknown workload)."""


class ServiceError(ReproError, RuntimeError):
    """A job-service operation failed (HTTP error reply, job failure,
    timeout waiting for a result, or a server shutting down)."""


class ServiceTransportError(ServiceError):
    """The HTTP transport failed before a server reply arrived
    (connection refused/reset, DNS, socket timeout).  Distinct from an
    HTTP error reply so clients know a retry is safe: submissions are
    idempotent through the fingerprint result cache."""


class ServiceOverloadError(ServiceError):
    """The job queue is full; the server replies 503 with a
    ``Retry-After`` header.

    Attributes
    ----------
    retry_after_s:
        Seconds the client should wait before retrying.
    """

    def __init__(self, message: str, *, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s
