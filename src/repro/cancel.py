"""Cooperative cancellation: deadline/cancel tokens for long solves.

A :class:`CancelToken` is threaded through the engine's long loops
(``newton_solve`` iterations, transient steps, DC sweep points,
campaign chunks).  Each loop calls :meth:`CancelToken.check` at its
natural boundary; when the token was cancelled — explicitly, or
because its deadline passed — the check raises
:class:`repro.errors.CancelledError` and the loop unwinds cleanly,
freeing the worker thread that ran it.  This is how the job service
enforces per-job ``deadline_s`` budgets and serves
``POST /jobs/<id>/cancel`` without killing threads.

Checks are cheap (one flag read plus, with a deadline, one
``time.monotonic()`` call), so per-Newton-iteration granularity is
fine; cancellation latency is bounded by the longest interval between
checks, not by the job length.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.errors import CancelledError, ParameterError

__all__ = ["CancelToken"]


class CancelToken:
    """A cancellation flag with an optional monotonic deadline.

    ``deadline_s`` is a budget in seconds from token creation; pass
    ``None`` for a token that only cancels explicitly.  Thread-safe:
    one thread runs the solve and checks, another cancels.
    """

    def __init__(self, deadline_s: Optional[float] = None) -> None:
        if deadline_s is not None and deadline_s <= 0:
            raise ParameterError(
                f"deadline_s must be > 0 or None: {deadline_s!r}")
        self.deadline_s = deadline_s
        self._deadline = (time.monotonic() + deadline_s
                          if deadline_s is not None else None)
        self._cancelled = threading.Event()
        self._reason = "cancelled"

    def cancel(self, reason: str = "cancelled") -> None:
        """Cancel explicitly; every later :meth:`check` raises."""
        self._reason = reason
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        """True after an explicit :meth:`cancel` call."""
        return self._cancelled.is_set()

    @property
    def expired(self) -> bool:
        """True once the deadline (if any) has passed."""
        return (self._deadline is not None
                and time.monotonic() > self._deadline)

    def remaining(self) -> Optional[float]:
        """Seconds left before the deadline (``None`` = no deadline;
        never negative)."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - time.monotonic())

    def check(self) -> None:
        """Raise :class:`repro.errors.CancelledError` when cancelled
        or past the deadline; otherwise return immediately."""
        if self._cancelled.is_set():
            raise CancelledError(self._reason, kind="cancelled")
        if self.expired:
            raise CancelledError(
                f"deadline of {self.deadline_s:g}s exceeded",
                kind="timeout")
