"""ASCII rendering of experiment results (tables and figure series),
plus JSON conversion for scriptable CLI output."""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Sequence

import numpy as np


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                title: str = "") -> str:
    """Render a fixed-width table with a separator under the header."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0.0:
            return "0"
        magnitude = abs(cell)
        if magnitude >= 1e4 or magnitude < 1e-2:
            return f"{cell:.3e}"
        return f"{cell:.3f}"
    return str(cell)


def series_block(title: str, x_label: str, x: Sequence[float],
                 series: dict, max_points: int = 13) -> str:
    """Print figure data as columns: the x axis plus one column per
    labelled series (down-sampled to ``max_points`` rows)."""
    x_arr = np.asarray(x, dtype=float)
    if len(x_arr) > max_points:
        idx = np.linspace(0, len(x_arr) - 1, max_points).round().astype(int)
    else:
        idx = np.arange(len(x_arr))
    headers = [x_label] + list(series)
    rows = []
    for i in idx:
        rows.append([float(x_arr[i])]
                    + [float(np.asarray(v)[i]) for v in series.values()])
    return ascii_table(headers, rows, title=title)


def jsonify(obj):
    """Recursively convert a result object to JSON-able primitives.

    Handles the experiment-result dataclasses (numpy arrays become
    lists, tuple dict keys become ``"a/b"`` strings) so every CLI
    subcommand can offer ``--json`` without per-result serialisers.
    """
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return obj.item()
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: jsonify(getattr(obj, f.name))
                for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {
            (k if isinstance(k, str)
             else "/".join(str(p) for p in k) if isinstance(k, tuple)
             else str(k)): jsonify(v)
            for k, v in obj.items()
        }
    if isinstance(obj, (list, tuple)):
        return [jsonify(v) for v in obj]
    return obj


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Tiny unicode chart for quick visual shape checks in test logs."""
    v = np.asarray(values, dtype=float)
    if len(v) == 0:
        return ""
    if len(v) > width:
        idx = np.linspace(0, len(v) - 1, width).round().astype(int)
        v = v[idx]
    lo, hi = float(np.min(v)), float(np.max(v))
    if hi == lo:
        return "-" * len(v)
    blocks = "▁▂▃▄▅▆▇█"
    scaled = (v - lo) / (hi - lo) * (len(blocks) - 1)
    return "".join(blocks[int(round(s))] for s in scaled)
