"""Experiment harness: regenerates every table and figure of the paper.

``repro.experiments.runners`` exposes one function per experiment
(``run_table1`` ... ``run_table5``, ``run_fig2_3`` ... ``run_fig10_11``);
each returns a plain-data result object and can render itself as an
ASCII table via :mod:`repro.experiments.report`.  The pytest-benchmark
modules under ``benchmarks/`` are thin wrappers over these runners.
"""

from repro.experiments.metrics import (
    average_rms_error_percent,
    rms_error_percent,
)
from repro.experiments.workloads import (
    PAPER_FERMI_LEVELS,
    PAPER_TEMPERATURES,
    PAPER_VDS_SWEEP,
    PAPER_VG_VALUES,
)

__all__ = [
    "rms_error_percent",
    "average_rms_error_percent",
    "PAPER_TEMPERATURES",
    "PAPER_FERMI_LEVELS",
    "PAPER_VG_VALUES",
    "PAPER_VDS_SWEEP",
]
