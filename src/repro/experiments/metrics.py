"""Error metrics used by the paper's evaluation.

The paper reports "average RMS errors in IDS" per gate voltage: for each
``VG``, the model's output characteristic ``IDS(VDS)`` is compared with
the reference over the drain sweep.  We normalise the RMS deviation by
the curve's peak reference current, which reproduces the paper's
magnitudes; alternative normalisations are provided for sensitivity
checks (and used by the ablation benchmarks).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.errors import ParameterError

#: supported normalisation modes
NORMALISATIONS = ("peak", "mean", "rms", "pointwise")


def rms_error_percent(model: Sequence[float], reference: Sequence[float],
                      normalisation: str = "peak") -> float:
    """RMS deviation of one characteristic, as a percentage.

    Parameters
    ----------
    model, reference:
        Currents over the same bias sweep.
    normalisation:
        ``"peak"``  — RMS / max|reference| (default, the headline metric);
        ``"mean"``  — RMS / mean|reference|;
        ``"rms"``   — RMS / RMS(reference);
        ``"pointwise"`` — RMS of per-point relative errors (points where
        the reference is < 1e-3 of its peak are excluded to avoid 0/0).
    """
    m = np.asarray(model, dtype=float)
    r = np.asarray(reference, dtype=float)
    if m.shape != r.shape:
        raise ParameterError(
            f"shape mismatch: model {m.shape} vs reference {r.shape}"
        )
    if m.size == 0:
        raise ParameterError("empty characteristics")
    if normalisation not in NORMALISATIONS:
        raise ParameterError(
            f"normalisation must be one of {NORMALISATIONS}: "
            f"{normalisation!r}"
        )
    diff = m - r
    if normalisation == "pointwise":
        floor = 1e-3 * float(np.max(np.abs(r)))
        mask = np.abs(r) > floor
        if not np.any(mask):
            raise ParameterError("reference is identically ~zero")
        rel = diff[mask] / r[mask]
        return 100.0 * float(np.sqrt(np.mean(rel**2)))
    rms = float(np.sqrt(np.mean(diff**2)))
    if normalisation == "peak":
        denom = float(np.max(np.abs(r)))
    elif normalisation == "mean":
        denom = float(np.mean(np.abs(r)))
    else:
        denom = float(np.sqrt(np.mean(r**2)))
    if denom == 0.0:
        raise ParameterError("reference is identically zero")
    return 100.0 * rms / denom


def average_rms_error_percent(
    model_family: np.ndarray, reference_family: np.ndarray,
    normalisation: str = "peak",
) -> float:
    """Mean of per-VG RMS errors over a full IV family
    (rows = gate voltages)."""
    m = np.asarray(model_family, dtype=float)
    r = np.asarray(reference_family, dtype=float)
    if m.shape != r.shape or m.ndim != 2:
        raise ParameterError(
            f"families must be equal-shaped 2-D arrays: {m.shape} vs "
            f"{r.shape}"
        )
    return float(np.mean([
        rms_error_percent(m[i], r[i], normalisation)
        for i in range(m.shape[0])
    ]))


def error_table(model_family: np.ndarray, reference_family: np.ndarray,
                vg_values: Sequence[float],
                normalisation: str = "peak") -> Dict[float, float]:
    """Per-VG error dictionary ``{vg: percent}`` (a paper table column)."""
    m = np.asarray(model_family, dtype=float)
    r = np.asarray(reference_family, dtype=float)
    if len(vg_values) != m.shape[0]:
        raise ParameterError("vg_values length must match family rows")
    return {
        float(vg): rms_error_percent(m[i], r[i], normalisation)
        for i, vg in enumerate(vg_values)
    }
